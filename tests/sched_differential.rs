//! Differential tests for the timing-pass fast paths (DESIGN.md §11)
//! and the parallel timing pass (DESIGN.md §13): cohort event batching,
//! homogeneous-grid fast-forward, timing-domain parallelism, and the
//! analytic closed form are pure host-side speedups, so every
//! profiler-visible number — and the exported Chrome trace, byte for
//! byte — must be identical with each of them on and off, across every
//! template, the sorts, the apps, multi-stream HyperQ batches, both memo
//! modes, 1/2/8 timing-pass lanes, 1 and 8 host threads, and strict
//! checking. Only [`SimStats`] (wall time, counters) may differ.

use std::sync::Arc;

use npar::apps::{bfs, sort, spmv, sssp, tree_apps};
use npar::core::{LoopParams, LoopTemplate, RecParams, RecTemplate};
use npar::graph::{citeseer_like, with_random_weights};
use npar::sim::{CheckLevel, Gpu, LaunchConfig, Report, SimStats, Stream, ThreadCtx, ThreadKernel};
use npar::tree::TreeGen;

/// Run the same workload with the fast paths on and off — profiler
/// attached both times — and require bit-identical reports (modulo the
/// host-side [`SimStats`]) and byte-identical Chrome traces.
fn assert_ff_invariant(label: &str, mk: impl Fn() -> Gpu, run: impl Fn(&mut Gpu) -> Report) {
    let mut on = mk().with_profiler(true);
    let mut off = mk().with_profiler(true).with_fast_forward(false);
    assert!(on.fast_forward_enabled() && !off.fast_forward_enabled());
    let mut r_on = run(&mut on);
    let mut r_off = run(&mut off);
    r_on.sim = SimStats::default();
    r_off.sim = SimStats::default();
    assert_eq!(r_on, r_off, "{label}: report differs between ffwd modes");
    let t_on = on.take_profile().to_chrome_trace();
    let t_off = off.take_profile().to_chrome_trace();
    assert_eq!(
        t_on, t_off,
        "{label}: Chrome trace differs between ffwd modes"
    );
}

fn assert_ff_invariant_default(label: &str, check: CheckLevel, run: impl Fn(&mut Gpu) -> Report) {
    assert_ff_invariant(label, || Gpu::k20().with_check(check), &run);
}

#[test]
fn loop_templates_are_ff_invariant() {
    let g = with_random_weights(&citeseer_like(900, 11), 10, 12);
    for template in LoopTemplate::ALL {
        assert_ff_invariant_default(&format!("sssp/{template}"), CheckLevel::Off, |gpu| {
            sssp::sssp_gpu(gpu, &g, 0, template, &LoopParams::with_lb_thres(32)).report
        });
    }
}

#[test]
fn rec_templates_are_ff_invariant() {
    let tree = TreeGen {
        depth: 5,
        outdegree: 5,
        sparsity: 1,
        seed: 9,
    }
    .generate();
    for template in RecTemplate::ALL {
        assert_ff_invariant_default(&format!("tree/{template}"), CheckLevel::Off, |gpu| {
            tree_apps::tree_gpu(
                gpu,
                &tree,
                tree_apps::TreeMetric::Descendants,
                template,
                &RecParams::default(),
            )
            .report
        });
    }
}

#[test]
fn sorts_are_ff_invariant() {
    let input: Vec<u32> = (0..1500u32)
        .map(|i| i.wrapping_mul(2_654_435_761) % 512)
        .collect();
    for algo in [
        sort::SortAlgo::MergeFlat,
        sort::SortAlgo::QuickSimple,
        sort::SortAlgo::QuickAdvanced,
    ] {
        assert_ff_invariant_default(algo.label(), CheckLevel::Off, |gpu| {
            sort::sort_gpu(gpu, &input, algo, &sort::SortParams::default()).report
        });
    }
}

#[test]
fn recursive_bfs_is_ff_invariant_under_warn() {
    let g = citeseer_like(500, 3);
    assert_ff_invariant_default("bfs-recursive", CheckLevel::Warn, |gpu| {
        bfs::bfs_recursive_gpu(gpu, &g, 0, bfs::RecBfsVariant::Hier, 2).report
    });
}

#[test]
fn spmv_is_ff_invariant_under_warn() {
    let g = citeseer_like(700, 5);
    let x = vec![1.0f32; g.num_nodes()];
    for template in [LoopTemplate::ThreadMapped, LoopTemplate::DbufShared] {
        assert_ff_invariant_default(&format!("spmv/{template}"), CheckLevel::Warn, |gpu| {
            spmv::spmv_gpu(gpu, &g, &x, template, &LoopParams::default()).report
        });
    }
}

/// The fast paths must also be invariant with memoization off (replayed
/// blocks are cohort-uniform by construction; traced blocks must be
/// re-proven bitwise) and at any host thread count (the timing pass runs
/// serially after the canonical merge).
#[test]
fn memo_and_thread_variations_are_ff_invariant() {
    let g = with_random_weights(&citeseer_like(600, 7), 10, 12);
    for memo in [true, false] {
        for threads in [1usize, 8] {
            let label = format!("sssp/dpar-opt memo={memo} threads={threads}");
            assert_ff_invariant(
                &label,
                || Gpu::k20().with_memo(memo).with_threads(threads),
                |gpu| {
                    sssp::sssp_gpu(
                        gpu,
                        &g,
                        0,
                        LoopTemplate::DparOpt,
                        &LoopParams::with_lb_thres(32),
                    )
                    .report
                },
            );
        }
    }
}

/// A hazard-free uniform kernel: every block records the same trace, so
/// the fast-forward wheel engages, and strict checking stays quiet.
struct Saxpy {
    n: usize,
    x: npar::sim::GBuf<f32>,
    y: npar::sim::GBuf<f32>,
}

impl ThreadKernel for Saxpy {
    fn name(&self) -> &str {
        "saxpy"
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let i = t.global_id();
        if i < self.n {
            t.ld(&self.x, i);
            t.ld(&self.y, i);
            t.compute(2);
            t.st(&self.y, i);
        }
    }
}

fn launch_saxpy_streams(gpu: &mut Gpu, launches: usize, streams: u32) -> Report {
    let n = 64 * 128;
    let x = gpu.alloc::<f32>(n);
    let y = gpu.alloc::<f32>(n);
    let k = Arc::new(Saxpy { n, x, y });
    for i in 0..launches {
        gpu.launch_in(
            k.clone(),
            LaunchConfig::new(64, 128),
            Stream::Slot(i as u32 % streams),
        )
        .unwrap();
    }
    gpu.synchronize()
}

#[test]
fn strict_checking_is_ff_invariant() {
    assert_ff_invariant_default("saxpy/strict", CheckLevel::Strict, |gpu| {
        launch_saxpy_streams(gpu, 3, 1)
    });
}

/// Multi-stream HyperQ batch: overlapping host streams exercise the inert-
/// release entry condition of the wheel (releases of non-head grids queued
/// while another grid fast-forwards).
#[test]
fn hyperq_streams_are_ff_invariant() {
    assert_ff_invariant_default("saxpy/hyperq", CheckLevel::Off, |gpu| {
        launch_saxpy_streams(gpu, 8, 4)
    });
}

/// Run the same workload with `timing_threads` lanes and with the serial
/// timing pass, and require bit-identical reports (modulo host-side
/// [`SimStats`]) and byte-identical Chrome traces. Returns the parallel
/// run's stats so callers can assert the domain machinery engaged.
fn assert_tt_invariant(
    label: &str,
    mk: impl Fn() -> Gpu,
    run: impl Fn(&mut Gpu) -> Report,
) -> SimStats {
    // Pin the baseline to the serial pass explicitly — CI re-runs this
    // suite under NPAR_TIMING_THREADS=8, which changes the default.
    let mut serial = mk().with_profiler(true).with_timing_threads(1);
    assert_eq!(
        serial.timing_threads(),
        1,
        "{label}: baseline must be serial"
    );
    let mut r_serial = run(&mut serial);
    let t_serial = serial.take_profile().to_chrome_trace();
    r_serial.sim = SimStats::default();
    let mut last = SimStats::default();
    for tt in [2usize, 8] {
        let mut par = mk().with_profiler(true).with_timing_threads(tt);
        assert_eq!(par.timing_threads(), tt);
        let mut r_par = run(&mut par);
        last = r_par.sim;
        r_par.sim = SimStats::default();
        assert_eq!(
            r_par, r_serial,
            "{label}: report differs at timing-threads={tt}"
        );
        let t_par = par.take_profile().to_chrome_trace();
        assert_eq!(
            t_par, t_serial,
            "{label}: Chrome trace differs at timing-threads={tt}"
        );
    }
    last
}

/// The full cross product the determinism contract promises: timing
/// lanes x fast-forward x memo over a multi-stream HyperQ batch whose
/// long kernels overlap in time, so every parallel run partitions into
/// several domains and rolls them back to the serial suffix. The merge
/// must still be bitwise.
#[test]
fn timing_threads_matrix_is_invariant() {
    for memo in [true, false] {
        for ffwd in [true, false] {
            let label = format!("saxpy/hyperq memo={memo} ffwd={ffwd}");
            let stats = assert_tt_invariant(
                &label,
                || Gpu::k20().with_memo(memo).with_fast_forward(ffwd),
                |gpu| launch_saxpy_streams(gpu, 8, 4),
            );
            assert!(
                stats.timing_domains >= 2,
                "{label}: expected multiple timing domains, got {stats:?}"
            );
        }
    }
}

#[test]
fn timing_threads_are_invariant_under_strict_checking() {
    assert_tt_invariant(
        "saxpy/hyperq strict",
        || Gpu::k20().with_check(CheckLevel::Strict),
        |gpu| launch_saxpy_streams(gpu, 8, 4),
    );
}

#[test]
fn timing_threads_are_invariant_on_irregular_apps() {
    let g = with_random_weights(&citeseer_like(600, 7), 10, 12);
    assert_tt_invariant("sssp/dpar-opt", Gpu::k20, |gpu| {
        sssp::sssp_gpu(
            gpu,
            &g,
            0,
            LoopTemplate::DparOpt,
            &LoopParams::with_lb_thres(32),
        )
        .report
    });
}

/// A single-warp compute-only kernel: every warp trace is identical, so
/// span == work bitwise per block, and a full-SM shared-memory
/// reservation pins residency to one block per SM. That satisfies the
/// analytic proof obligations (span-bound, local replacement, wave
/// synchrony) on the tiny device.
struct UniformCompute {
    cycles: u32,
}

impl ThreadKernel for UniformCompute {
    fn name(&self) -> &str {
        "uniform-compute"
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        t.compute(self.cycles);
    }
}

fn launch_uniform(gpu: &mut Gpu, blocks: u32, streams: u32, cycles: u32) -> Report {
    let k = Arc::new(UniformCompute { cycles });
    let smem = gpu.device().shared_mem_per_block;
    for s in 0..streams {
        gpu.launch_in(
            k.clone(),
            LaunchConfig::with_shared(blocks, 32, smem),
            Stream::Slot(s),
        )
        .unwrap();
    }
    gpu.synchronize()
}

/// Short kernels on separate streams finish inside the host launch
/// cadence, so their time windows are disjoint and the optimistic commit
/// keeps every domain — the parallel path, not the rollback fallback.
#[test]
fn disjoint_stream_windows_commit_and_stay_invariant() {
    let stats = assert_tt_invariant("uniform/disjoint", Gpu::tiny, |gpu| {
        launch_uniform(gpu, 2, 4, 8)
    });
    assert!(
        stats.timing_domains >= 2 && stats.timing_domains_committed >= 2,
        "expected committed parallel domains, got {stats:?}"
    );
}

/// Analytic closed form vs full event replay: bit-identical reports and
/// traces, and the analytic path must actually engage on the span-bound
/// uniform waves (one resident single-warp block per SM).
#[test]
fn analytic_mode_matches_event_replay_and_engages() {
    let run = |gpu: &mut Gpu| launch_uniform(gpu, 6, 1, 16);
    let mut event = Gpu::tiny().with_profiler(true);
    let mut closed = Gpu::tiny().with_profiler(true).with_analytic(true);
    assert!(!event.analytic_enabled() && closed.analytic_enabled());
    let mut r_event = run(&mut event);
    let mut r_closed = run(&mut closed);
    assert_eq!(r_event.sim.analytic_grids, 0);
    assert!(
        r_closed.sim.analytic_grids > 0,
        "analytic mode never engaged: {:?}",
        r_closed.sim
    );
    r_event.sim = SimStats::default();
    r_closed.sim = SimStats::default();
    assert_eq!(r_event, r_closed, "analytic report differs from event mode");
    assert_eq!(
        event.take_profile().to_chrome_trace(),
        closed.take_profile().to_chrome_trace(),
        "analytic Chrome trace differs from event mode"
    );
}

/// Analytic mode composed with timing domains and both fast-forward
/// settings on real apps: it must silently fall back wherever the proof
/// obligations fail, never perturbing a single byte.
#[test]
fn analytic_mode_is_invariant_on_irregular_apps() {
    let input: Vec<u32> = (0..900u32)
        .map(|i| i.wrapping_mul(2_654_435_761) % 512)
        .collect();
    for ffwd in [true, false] {
        let label = format!("quick-adv analytic ffwd={ffwd}");
        let mk = |analytic: bool| {
            Gpu::k20()
                .with_profiler(true)
                .with_fast_forward(ffwd)
                .with_analytic(analytic)
                .with_timing_threads(if analytic { 4 } else { 1 })
        };
        let run = |gpu: &mut Gpu| {
            sort::sort_gpu(
                gpu,
                &input,
                sort::SortAlgo::QuickAdvanced,
                &sort::SortParams::default(),
            )
            .report
        };
        let mut plain = mk(false);
        let mut fancy = mk(true);
        let mut r_plain = run(&mut plain);
        let mut r_fancy = run(&mut fancy);
        r_plain.sim = SimStats::default();
        r_fancy.sim = SimStats::default();
        assert_eq!(r_plain, r_fancy, "{label}: report differs");
        assert_eq!(
            plain.take_profile().to_chrome_trace(),
            fancy.take_profile().to_chrome_trace(),
            "{label}: Chrome trace differs"
        );
    }
}

#[test]
fn fast_paths_actually_engage_end_to_end() {
    // Guard against the differential tests passing vacuously: a uniform
    // single-stream batch must actually take the fast-forward wheel. The
    // wheel leaves no report-visible trace by design, so probe it the same
    // way a regression would surface: the escape hatch must change nothing
    // while both modes run the full stack (profiler on, memo on).
    let mut gpu = Gpu::k20().with_profiler(true);
    assert!(gpu.fast_forward_enabled(), "fast paths should default on");
    let r = launch_saxpy_streams(&mut gpu, 4, 1);
    assert!(
        r.sim.timing_pass_ns > 0,
        "timing pass not measured: {:?}",
        r.sim
    );
    gpu.set_fast_forward(false);
    assert!(!gpu.fast_forward_enabled());
}
