//! End-to-end tests for npar-check, the trace-based hazard sanitizer:
//! * seeded-bug kernels — one per diagnostic kind — must be detected with
//!   located diagnostics under `CheckLevel::Strict` (and recorded without
//!   failing under `Warn`);
//! * randomized racy / race-free kernel pairs must be classified exactly;
//! * every loop template, recursive template, sort and graph app the repo
//!   ships must run hazard-clean under `Strict` on its standard datasets.

use std::sync::Arc;

use npar::apps::{bc, bfs, pagerank, sort, spmv, sssp, tree_apps};
use npar::core::{LoopParams, LoopTemplate, RecParams, RecTemplate};
use npar::graph::{uniform_random, with_random_weights};
use npar::sim::{
    BlockCtx, CheckLevel, GBuf, Gpu, HazardKind, Kernel, KernelRef, LaunchConfig, SimError, Stream,
    ThreadCtx, ThreadKernel,
};
use npar::tree::TreeGen;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn hazards_of(err: SimError) -> Vec<npar::sim::Hazard> {
    match err {
        SimError::Hazard(report) => report.hazards,
        other => panic!("expected SimError::Hazard, got {other}"),
    }
}

// ---------------------------------------------------------------------------
// Seeded-bug kernels: each plants one specific hazard.
// ---------------------------------------------------------------------------

/// Every thread of the block stores to shared offset 0 in one segment.
struct SharedRaceKernel;
impl Kernel for SharedRaceKernel {
    fn name(&self) -> &str {
        "seeded-shared-race"
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        blk.for_each_thread(|t| t.shared_st(0));
    }
}

/// Every thread of every block stores to the same global element.
struct GlobalRaceKernel {
    buf: GBuf<u32>,
}
impl ThreadKernel for GlobalRaceKernel {
    fn name(&self) -> &str {
        "seeded-global-race"
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        t.st(&self.buf, 0);
    }
}

/// Each thread stores to its own global element — the race-free twin.
struct DisjointWriteKernel {
    buf: GBuf<u32>,
}
impl ThreadKernel for DisjointWriteKernel {
    fn name(&self) -> &str {
        "disjoint-writes"
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        t.st(&self.buf, t.global_id());
    }
}

/// The leader touches one shared word past the declared allocation.
struct OobKernel {
    declared: u32,
}
impl Kernel for OobKernel {
    fn name(&self) -> &str {
        "seeded-shared-oob"
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let edge = self.declared;
        blk.leader(|t| t.shared_st(edge));
    }
}

/// Child grid that plainly writes the first `n` elements of a buffer.
struct ChildWriter {
    buf: GBuf<u32>,
    n: usize,
}
impl ThreadKernel for ChildWriter {
    fn name(&self) -> &str {
        "child-writer"
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let i = t.global_id();
        if i < self.n {
            t.st(&self.buf, i);
        }
    }
}

/// Fire-and-forget parent: launches the child, then reads what the child
/// writes with only a plain barrier in between (no `sync_children`), or
/// with a proper join when `join` is set.
struct ForgetfulParent {
    child: KernelRef,
    buf: GBuf<u32>,
    join: bool,
}
impl Kernel for ForgetfulParent {
    fn name(&self) -> &str {
        "seeded-unjoined-read"
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let cfg = LaunchConfig::new(1, 32);
        blk.leader(|t| t.launch(&self.child, cfg, Stream::Default));
        if self.join {
            blk.sync_children();
        } else {
            blk.sync();
        }
        blk.for_each_thread(|t| t.ld(&self.buf, 0));
    }
}

/// Launches a child grid whose block size exceeds the device limit.
struct BadLauncher {
    child: KernelRef,
    block_dim: u32,
}
impl Kernel for BadLauncher {
    fn name(&self) -> &str {
        "seeded-bad-launch"
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let cfg = LaunchConfig::new(1, self.block_dim);
        blk.leader(|t| t.launch(&self.child, cfg, Stream::Default));
    }
}

#[test]
fn seeded_shared_race_is_detected_and_located() {
    let mut gpu = Gpu::k20().with_check(CheckLevel::Strict);
    let err = gpu
        .launch(
            Arc::new(SharedRaceKernel),
            LaunchConfig::with_shared(1, 64, 4),
        )
        .unwrap_err();
    let hazards = hazards_of(err);
    assert!(!hazards.is_empty());
    let h = &hazards[0];
    assert_eq!(h.kind, HazardKind::SharedRace);
    assert_eq!(h.kernel, "seeded-shared-race");
    assert_eq!(h.block, 0);
    assert!(h.details.contains("shared offset 0x0"), "{}", h.details);
}

#[test]
fn seeded_global_race_is_detected_across_blocks() {
    let mut gpu = Gpu::k20().with_check(CheckLevel::Strict);
    let buf = gpu.alloc::<u32>(64);
    let err = gpu
        .launch(Arc::new(GlobalRaceKernel { buf }), LaunchConfig::new(2, 32))
        .unwrap_err();
    let hazards = hazards_of(err);
    assert_eq!(hazards[0].kind, HazardKind::GlobalRace);
    assert!(
        hazards[0].details.contains("blocks 0 and 1"),
        "{}",
        hazards[0].details
    );
}

#[test]
fn disjoint_writes_pass_strict() {
    let mut gpu = Gpu::k20().with_check(CheckLevel::Strict);
    let buf = gpu.alloc::<u32>(64);
    gpu.launch(
        Arc::new(DisjointWriteKernel { buf }),
        LaunchConfig::new(2, 32),
    )
    .unwrap();
    assert!(gpu.take_check_report().is_empty());
}

#[test]
fn seeded_shared_oob_is_detected() {
    let mut gpu = Gpu::k20().with_check(CheckLevel::Strict);
    let err = gpu
        .launch(
            Arc::new(OobKernel { declared: 128 }),
            LaunchConfig::with_shared(1, 32, 128),
        )
        .unwrap_err();
    let hazards = hazards_of(err);
    assert_eq!(hazards[0].kind, HazardKind::SharedOutOfBounds);
    assert!(
        hazards[0].details.contains("128 byte(s)"),
        "{}",
        hazards[0].details
    );
}

#[test]
fn seeded_unjoined_child_read_is_linted() {
    let mut gpu = Gpu::k20().with_check(CheckLevel::Strict);
    let buf = gpu.alloc::<u32>(32);
    let child: KernelRef = Arc::new(ChildWriter { buf, n: 32 });
    let err = gpu
        .launch(
            Arc::new(ForgetfulParent {
                child,
                buf,
                join: false,
            }),
            LaunchConfig::new(1, 32),
        )
        .unwrap_err();
    let hazards = hazards_of(err);
    assert_eq!(hazards[0].kind, HazardKind::UnjoinedChildRead);
    assert!(
        hazards[0].details.contains("sync_children"),
        "{}",
        hazards[0].details
    );
}

#[test]
fn joined_child_read_passes_strict() {
    let mut gpu = Gpu::k20().with_check(CheckLevel::Strict);
    let buf = gpu.alloc::<u32>(32);
    let child: KernelRef = Arc::new(ChildWriter { buf, n: 32 });
    gpu.launch(
        Arc::new(ForgetfulParent {
            child,
            buf,
            join: true,
        }),
        LaunchConfig::new(1, 32),
    )
    .unwrap();
    assert!(gpu.take_check_report().is_empty());
}

#[test]
fn seeded_invalid_child_launch_is_fatal_even_with_checks_off() {
    // Structural faults have no "ignore" semantics: Off still reports them.
    let mut gpu = Gpu::k20(); // CheckLevel::Off is the default
    assert_eq!(gpu.check_level(), CheckLevel::Off);
    let buf = gpu.alloc::<u32>(32);
    let child: KernelRef = Arc::new(ChildWriter { buf, n: 32 });
    let err = gpu
        .launch(
            Arc::new(BadLauncher {
                child,
                block_dim: 4096,
            }),
            LaunchConfig::new(1, 32),
        )
        .unwrap_err();
    let hazards = hazards_of(err);
    assert_eq!(hazards[0].kind, HazardKind::InvalidChildLaunch);
    assert!(
        hazards[0].details.contains("block_dim 4096"),
        "{}",
        hazards[0].details
    );
}

#[test]
fn warn_level_records_and_continues() {
    let mut gpu = Gpu::k20().with_check(CheckLevel::Warn);
    gpu.launch(
        Arc::new(SharedRaceKernel),
        LaunchConfig::with_shared(1, 64, 4),
    )
    .expect("Warn must not fail the launch");
    let report = gpu.synchronize();
    assert!(report.hazards > 0, "hazard count missing from the report");
    let check = gpu.take_check_report();
    assert!(check.of_kind(HazardKind::SharedRace).next().is_some());
    assert!(
        gpu.take_check_report().is_empty(),
        "draining must be one-shot"
    );
}

#[test]
fn off_level_ignores_races() {
    let mut gpu = Gpu::k20(); // Off
    gpu.launch(
        Arc::new(SharedRaceKernel),
        LaunchConfig::with_shared(1, 64, 4),
    )
    .unwrap();
    assert_eq!(gpu.synchronize().hazards, 0);
    assert!(gpu.take_check_report().is_empty());
}

// ---------------------------------------------------------------------------
// Randomized classification: generated racy / race-free kernels.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
enum PlanOp {
    W(u32),
    R(u32),
    A(u32),
}

/// Replays an explicit per-segment, per-lane shared-memory access plan.
struct PlanKernel {
    plan: Vec<Vec<Vec<PlanOp>>>, // [segment][lane][ops]
}
impl Kernel for PlanKernel {
    fn name(&self) -> &str {
        "plan"
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        for (s, seg) in self.plan.iter().enumerate() {
            if s > 0 {
                blk.sync();
            }
            blk.for_each_thread(|t| {
                for op in &seg[t.thread_idx() as usize] {
                    match *op {
                        PlanOp::W(a) => t.shared_st(a),
                        PlanOp::R(a) => t.shared_ld(a),
                        PlanOp::A(a) => t.shared_atomic(a),
                    }
                }
            });
        }
    }
}

const LANES: usize = 32;
/// Lane-private slots 0..32, injection offsets 32..40, a read-only word at
/// 41 and a shared atomic counter at 42 — 43 words of shared memory.
const PLAN_SHARED: u32 = 43 * 4;
const RO_WORD: u32 = 41 * 4;
const COUNTER_WORD: u32 = 42 * 4;

/// A plan that is race-free by construction: lanes touch only their own
/// slot, read the read-only word and hit the shared counter atomically.
fn race_free_plan(rng: &mut ChaCha8Rng, nsegs: usize) -> Vec<Vec<Vec<PlanOp>>> {
    (0..nsegs)
        .map(|_| {
            (0..LANES)
                .map(|lane| {
                    let own = lane as u32 * 4;
                    (0..rng.gen_range(0usize..4))
                        .map(|_| match rng.gen_range(0u32..5) {
                            0 => PlanOp::W(own),
                            1 => PlanOp::R(own),
                            2 => PlanOp::A(own),
                            3 => PlanOp::R(RO_WORD),
                            _ => PlanOp::A(COUNTER_WORD),
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Inject one conflicting pair: a plain write by one lane and any access by
/// another lane to the same word within one segment.
fn inject_race(rng: &mut ChaCha8Rng, plan: &mut [Vec<Vec<PlanOp>>]) {
    let seg = rng.gen_range(0..plan.len());
    let l1 = rng.gen_range(0..LANES);
    let l2 = (l1 + 1 + rng.gen_range(0..LANES - 1)) % LANES;
    let addr = (LANES as u32 + rng.gen_range(0u32..8)) * 4;
    plan[seg][l1].push(PlanOp::W(addr));
    plan[seg][l2].push(match rng.gen_range(0u32..3) {
        0 => PlanOp::W(addr),
        1 => PlanOp::R(addr),
        _ => PlanOp::A(addr),
    });
}

#[test]
fn randomized_shared_plans_are_classified_exactly() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5eed);
    for case in 0..30 {
        let nsegs = rng.gen_range(1usize..4);
        let mut plan = race_free_plan(&mut rng, nsegs);
        let racy = case % 2 == 0;
        if racy {
            inject_race(&mut rng, &mut plan);
        }
        let mut gpu = Gpu::k20().with_check(CheckLevel::Strict);
        let result = gpu.launch(
            Arc::new(PlanKernel { plan }),
            LaunchConfig::with_shared(1, LANES as u32, PLAN_SHARED),
        );
        match (racy, result) {
            (true, Err(err)) => {
                let hazards = hazards_of(err);
                assert!(
                    hazards.iter().all(|h| h.kind == HazardKind::SharedRace),
                    "case {case}: unexpected kinds {hazards:?}"
                );
            }
            (true, Ok(())) => panic!("case {case}: injected race not detected"),
            (false, Err(err)) => panic!("case {case}: false positive: {err}"),
            (false, Ok(())) => assert!(gpu.take_check_report().is_empty()),
        }
    }
}

/// Each thread writes `buf[global_id % modulus]`: race-free when the
/// modulus covers the whole grid, cross-block racy when it wraps.
struct StrideKernel {
    buf: GBuf<u32>,
    modulus: usize,
}
impl ThreadKernel for StrideKernel {
    fn name(&self) -> &str {
        "stride"
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let i = t.global_id() % self.modulus;
        t.st(&self.buf, i);
    }
}

#[test]
fn randomized_global_strides_are_classified_exactly() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x610b41);
    for case in 0..20 {
        let blocks = rng.gen_range(2u32..5);
        let bd = 32u32;
        let total = (blocks * bd) as usize;
        let racy = case % 2 == 1;
        let modulus = if racy { bd as usize } else { total };
        let mut gpu = Gpu::k20().with_check(CheckLevel::Strict);
        let buf = gpu.alloc::<u32>(total);
        let result = gpu.launch(
            Arc::new(StrideKernel { buf, modulus }),
            LaunchConfig::new(blocks, bd),
        );
        match (racy, result) {
            (true, Err(err)) => {
                assert_eq!(hazards_of(err)[0].kind, HazardKind::GlobalRace);
            }
            (true, Ok(())) => panic!("case {case}: wrap-around race not detected"),
            (false, Err(err)) => panic!("case {case}: false positive: {err}"),
            (false, Ok(())) => {}
        }
    }
}

// ---------------------------------------------------------------------------
// The shipped templates and apps must be hazard-clean under Strict.
// ---------------------------------------------------------------------------

#[test]
fn all_loop_templates_are_hazard_clean_under_strict() {
    let g = with_random_weights(&uniform_random(300, 1, 14, 33), 7, 5);
    let x = vec![1.0f32; g.num_nodes()];
    let (y_cpu, _) = spmv::spmv_cpu(&g, &x);
    for template in LoopTemplate::ALL {
        let mut gpu = Gpu::k20().with_check(CheckLevel::Strict);
        // A Strict hazard fails the internal launches, which the template
        // drivers surface as panics — reaching the assert means clean.
        let r = spmv::spmv_gpu(&mut gpu, &g, &x, template, &LoopParams::default());
        assert!(
            r.y.iter().zip(&y_cpu).all(|(a, b)| (a - b).abs() < 1e-2),
            "{template} result wrong under Strict"
        );
        assert!(
            gpu.take_check_report().is_empty(),
            "{template} left hazards"
        );
    }
}

#[test]
fn all_recursive_templates_are_hazard_clean_under_strict() {
    let tree = TreeGen {
        depth: 6,
        outdegree: 6,
        sparsity: 1,
        seed: 99,
    }
    .generate();
    for metric in [
        tree_apps::TreeMetric::Descendants,
        tree_apps::TreeMetric::Heights,
    ] {
        let (cpu, _) = tree_apps::tree_cpu_recursive(&tree, metric);
        for template in RecTemplate::ALL {
            let mut gpu = Gpu::k20().with_check(CheckLevel::Strict);
            let r = tree_apps::tree_gpu(&mut gpu, &tree, metric, template, &RecParams::default());
            assert_eq!(r.values, cpu, "{template} values wrong under Strict");
            assert!(
                gpu.take_check_report().is_empty(),
                "{template} left hazards"
            );
        }
    }
}

#[test]
fn graph_apps_are_hazard_clean_under_strict() {
    let g = with_random_weights(&uniform_random(250, 1, 12, 21), 9, 4);

    let (cpu_dist, _) = sssp::sssp_cpu(&g, 0);
    for template in [
        LoopTemplate::ThreadMapped,
        LoopTemplate::DbufShared,
        LoopTemplate::DparNaive,
    ] {
        let mut gpu = Gpu::k20().with_check(CheckLevel::Strict);
        let r = sssp::sssp_gpu(&mut gpu, &g, 0, template, &LoopParams::default());
        let same = r
            .dist
            .iter()
            .zip(&cpu_dist)
            .all(|(a, b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-3);
        assert!(same, "SSSP {template} wrong under Strict");
        assert!(gpu.take_check_report().is_empty());
    }

    let (cpu_lvl, _) = bfs::bfs_cpu_iterative(&g, 0);
    let mut gpu = Gpu::k20().with_check(CheckLevel::Strict);
    let r = bfs::bfs_flat_gpu(
        &mut gpu,
        &g,
        0,
        LoopTemplate::ThreadMapped,
        &LoopParams::default(),
    );
    assert_eq!(r.level, cpu_lvl, "flat BFS wrong under Strict");
    assert!(gpu.take_check_report().is_empty());
    for variant in [bfs::RecBfsVariant::Naive, bfs::RecBfsVariant::Hier] {
        let mut gpu = Gpu::k20().with_check(CheckLevel::Strict);
        let r = bfs::bfs_recursive_gpu(&mut gpu, &g, 0, variant, 2);
        assert_eq!(
            r.level, cpu_lvl,
            "recursive BFS {variant:?} wrong under Strict"
        );
        assert!(gpu.take_check_report().is_empty());
    }

    let mut gpu = Gpu::k20().with_check(CheckLevel::Strict);
    let pr = pagerank::pagerank_gpu(
        &mut gpu,
        &g,
        3,
        LoopTemplate::BlockMapped,
        &LoopParams::default(),
    );
    assert!(pr.ranks.iter().all(|v| v.is_finite()));
    assert!(gpu.take_check_report().is_empty());

    let sources = bc::sample_sources(&g, 2);
    let (cpu_bc, _) = bc::bc_cpu(&g, &sources);
    let mut gpu = Gpu::k20().with_check(CheckLevel::Strict);
    let r = bc::bc_gpu(
        &mut gpu,
        &g,
        &sources,
        LoopTemplate::DualQueue,
        &LoopParams::default(),
    );
    assert!(r
        .bc
        .iter()
        .zip(&cpu_bc)
        .all(|(a, b)| (a - b).abs() < 1e-6 * (1.0 + b.abs())));
    assert!(gpu.take_check_report().is_empty());
}

#[test]
fn sorts_are_hazard_clean_under_strict() {
    let mut rng = ChaCha8Rng::seed_from_u64(424242);
    let input: Vec<u32> = (0..6_000).map(|_| rng.gen::<u32>()).collect();
    let mut expect = input.clone();
    expect.sort_unstable();
    for algo in [
        sort::SortAlgo::MergeFlat,
        sort::SortAlgo::QuickSimple,
        sort::SortAlgo::QuickAdvanced,
    ] {
        let mut gpu = Gpu::k20().with_check(CheckLevel::Strict);
        let r = sort::sort_gpu(&mut gpu, &input, algo, &sort::SortParams::default());
        assert_eq!(r.data, expect, "{} wrong under Strict", algo.label());
        assert!(
            gpu.take_check_report().is_empty(),
            "{} left hazards",
            algo.label()
        );
    }
}
