//! Cross-crate integration tests: generated datasets through the full
//! template/simulator pipeline, checked against the serial references.

use std::sync::Arc;

use npar::apps::{bc, bfs, pagerank, sort, spmv, sssp, tree_apps};
use npar::core::{LoopParams, LoopTemplate, RecParams, RecTemplate};
use npar::graph::{
    citeseer_like, uniform_random, wiki_vote_like, with_random_weights, DegreeStats,
};
use npar::sim::Gpu;
use npar::tree::TreeGen;

#[test]
fn citeseer_like_pipeline_end_to_end() {
    // A miniature CiteSeer through SSSP + SpMV under two templates.
    let g = with_random_weights(&citeseer_like(2_000, 5), 10, 6);
    let stats = DegreeStats::of(&g);
    assert!(stats.mean > 30.0, "degree stats off: {stats}");

    let (cpu_dist, _) = sssp::sssp_cpu(&g, 0);
    for template in [LoopTemplate::ThreadMapped, LoopTemplate::DbufShared] {
        let mut gpu = Gpu::k20();
        let r = sssp::sssp_gpu(&mut gpu, &g, 0, template, &LoopParams::default());
        let same = r
            .dist
            .iter()
            .zip(&cpu_dist)
            .all(|(a, b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-3);
        assert!(same, "{template} SSSP result mismatch");
    }

    let x = vec![1.0f32; g.num_nodes()];
    let (y_cpu, _) = spmv::spmv_cpu(&g, &x);
    let mut gpu = Gpu::k20();
    let r = spmv::spmv_gpu(
        &mut gpu,
        &g,
        &x,
        LoopTemplate::DparOpt,
        &LoopParams::default(),
    );
    assert!(r.y.iter().zip(&y_cpu).all(|(a, b)| (a - b).abs() < 1e-2));
}

#[test]
fn wiki_vote_bc_pipeline() {
    let g = wiki_vote_like(77);
    let sources = bc::sample_sources(&g, 3);
    let (cpu_bc, _) = bc::bc_cpu(&g, &sources);
    let mut gpu = Gpu::k20();
    let r = bc::bc_gpu(
        &mut gpu,
        &g,
        &sources,
        LoopTemplate::DualQueue,
        &LoopParams::default(),
    );
    assert!(r
        .bc
        .iter()
        .zip(&cpu_bc)
        .all(|(a, b)| (a - b).abs() < 1e-6 * (1.0 + b.abs())));
}

#[test]
fn pagerank_ranks_are_template_invariant() {
    let g = citeseer_like(1_500, 9);
    let mut reference: Option<Vec<f64>> = None;
    for template in LoopTemplate::ALL {
        let mut gpu = Gpu::k20();
        let r = pagerank::pagerank_gpu(&mut gpu, &g, 4, template, &LoopParams::default());
        match &reference {
            None => reference = Some(r.ranks),
            Some(base) => {
                assert!(
                    r.ranks.iter().zip(base).all(|(a, b)| (a - b).abs() < 1e-9),
                    "{template} ranks drifted"
                );
            }
        }
    }
}

#[test]
fn recursive_and_flat_bfs_agree_on_random_graphs() {
    for seed in [1u64, 2, 3] {
        let g = uniform_random(600, 1, 24, seed);
        let (cpu, _) = bfs::bfs_cpu_iterative(&g, 0);
        let mut gpu = Gpu::k20();
        let flat = bfs::bfs_flat_gpu(
            &mut gpu,
            &g,
            0,
            LoopTemplate::ThreadMapped,
            &LoopParams::default(),
        );
        assert_eq!(flat.level, cpu);
        let mut gpu = Gpu::k20();
        let rec = bfs::bfs_recursive_gpu(&mut gpu, &g, 0, bfs::RecBfsVariant::Naive, 2);
        assert_eq!(rec.level, cpu);
    }
}

#[test]
fn tree_metrics_survive_extreme_shapes() {
    // Wide-and-shallow, narrow-and-deep, and sparse trees.
    for gen in [
        TreeGen {
            depth: 2,
            outdegree: 900,
            sparsity: 0,
            seed: 4,
        },
        TreeGen {
            depth: 8,
            outdegree: 2,
            sparsity: 0,
            seed: 4,
        },
        TreeGen {
            depth: 6,
            outdegree: 6,
            sparsity: 3,
            seed: 4,
        },
    ] {
        let tree = gen.generate();
        for metric in [
            tree_apps::TreeMetric::Descendants,
            tree_apps::TreeMetric::Heights,
        ] {
            let (cpu, _) = tree_apps::tree_cpu_recursive(&tree, metric);
            for template in RecTemplate::ALL {
                let mut gpu = Gpu::k20();
                let r =
                    tree_apps::tree_gpu(&mut gpu, &tree, metric, template, &RecParams::default());
                assert_eq!(r.values, cpu, "{metric:?}/{template} on {gen:?}");
            }
        }
    }
}

#[test]
fn sorts_agree_with_std_on_adversarial_inputs() {
    let mut inputs: Vec<Vec<u32>> = vec![
        (0..2048).rev().collect(),
        vec![7; 1000],
        (0..1500).map(|i| (i * 37) % 64).collect(),
    ];
    // Sawtooth.
    inputs.push((0..2000).map(|i| (i % 100) as u32).collect());
    for input in inputs {
        let mut expect = input.clone();
        expect.sort_unstable();
        for algo in [
            sort::SortAlgo::MergeFlat,
            sort::SortAlgo::QuickSimple,
            sort::SortAlgo::QuickAdvanced,
        ] {
            let mut gpu = Gpu::k20();
            let r = sort::sort_gpu(&mut gpu, &input, algo, &sort::SortParams::default());
            assert_eq!(r.data, expect, "{}", algo.label());
        }
    }
}

#[test]
fn reports_are_deterministic_across_runs() {
    let g = citeseer_like(1_000, 3);
    let run = || {
        let mut gpu = Gpu::k20();
        let x = vec![1.0f32; g.num_nodes()];
        let r = spmv::spmv_gpu(
            &mut gpu,
            &g,
            &x,
            LoopTemplate::DbufGlobal,
            &LoopParams::default(),
        );
        (r.report.cycles, r.report.total().issue_slots)
    };
    assert_eq!(run(), run());
}

#[test]
fn profiler_metrics_are_internally_consistent() {
    let g = uniform_random(800, 0, 50, 5);
    let x = vec![1.0f32; 800];
    let mut gpu = Gpu::k20();
    let r = spmv::spmv_gpu(
        &mut gpu,
        &g,
        &x,
        LoopTemplate::ThreadMapped,
        &LoopParams::default(),
    );
    let m = r.report.total();
    assert!(m.warp_execution_efficiency() > 0.0 && m.warp_execution_efficiency() <= 1.0);
    assert!(m.gld_efficiency() > 0.0 && m.gld_efficiency() <= 1.0);
    assert!(m.gst_efficiency() > 0.0 && m.gst_efficiency() <= 1.0);
    assert!(r.report.achieved_occupancy > 0.0 && r.report.achieved_occupancy <= 1.0);
    assert!(m.work_cycles <= r.report.cycles * 13.0 * 64.0); // device capacity bound
                                                             // SpMV reads one value + one column index per nonzero at minimum.
    assert!(m.gld_requested_bytes >= 8 * g.num_edges() as u64);
}

/// The headline claim of the paper in miniature: on an irregular graph the
/// load-balancing templates beat the thread-mapped baseline, and the naive
/// dynamic-parallelism template does not.
#[test]
fn paper_headline_shape_holds_in_miniature() {
    let g = with_random_weights(&citeseer_like(4_000, 21), 10, 22);
    let time = |template| {
        let mut gpu = Gpu::k20();
        sssp::sssp_gpu(&mut gpu, &g, 0, template, &LoopParams::with_lb_thres(32))
            .report
            .seconds
    };
    let base = time(LoopTemplate::ThreadMapped);
    for good in [
        LoopTemplate::DualQueue,
        LoopTemplate::DbufShared,
        LoopTemplate::DbufGlobal,
        LoopTemplate::DparOpt,
    ] {
        assert!(
            time(good) < base,
            "{good} failed to beat the baseline on an irregular graph"
        );
    }
    assert!(
        time(LoopTemplate::DparNaive) > base,
        "dpar-naive should pay for its launch storm"
    );
}

/// Library ergonomics: the umbrella crate re-exports compose.
#[test]
fn umbrella_reexports_compose() {
    let mut gpu = Gpu::k20();
    let _buf = gpu.alloc::<f32>(16);
    let _ = Arc::new(TreeGen {
        depth: 2,
        outdegree: 2,
        sparsity: 0,
        seed: 0,
    })
    .generate();
}
