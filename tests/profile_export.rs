//! Timeline-shape tests for npar-prof on a real dynamic-parallelism
//! workload (tree descendants, rec-hier template): kernel spans exist for
//! every grid, block spans land on SMs and nest inside their kernel spans,
//! parent→child launches carry flow arrows that respect causality, and the
//! Chrome-trace export is well-formed JSON that Perfetto can load.

use npar::apps::tree_apps::{tree_gpu, TreeMetric};
use npar::core::{RecParams, RecTemplate};
use npar::sim::{Gpu, Profile};
use npar::tree::TreeGen;
use serde::Value;

fn profiled_tree_run(gpu: &mut Gpu) -> Profile {
    let tree = TreeGen {
        depth: 5,
        outdegree: 5,
        sparsity: 1,
        seed: 42,
    }
    .generate();
    tree_gpu(
        gpu,
        &tree,
        TreeMetric::Descendants,
        RecTemplate::RecHier,
        &RecParams::default(),
    );
    gpu.take_profile()
}

#[test]
fn dp_workload_records_parent_links_and_nested_spans() {
    let mut gpu = Gpu::k20().with_profiler(true);
    let profile = profiled_tree_run(&mut gpu);

    assert!(!profile.is_empty());
    assert_eq!(profile.device, "Tesla K20 (simulated)");
    assert!(profile.clock_ghz > 0.0);

    // The recursive template must produce device-launched child grids with
    // parent links, and every link must point at an earlier grid.
    let children = profile
        .kernels
        .iter()
        .filter(|k| k.parent.is_some())
        .count();
    assert!(children > 0, "rec-hier run recorded no device launches");
    for k in &profile.kernels {
        assert!(k.release <= k.start && k.start <= k.end, "{k:?}");
        if let Some((parent_grid, parent_block)) = k.parent {
            let p = &profile.kernels[parent_grid as usize];
            assert!(parent_grid < k.grid, "child {k:?} precedes parent");
            assert!(p.start <= k.release, "child released before parent ran");
            assert!(
                profile
                    .blocks
                    .iter()
                    .any(|b| b.grid == parent_grid && b.block == parent_block),
                "parent block ({parent_grid},{parent_block}) has no span"
            );
        }
    }

    // Every block span sits on a valid SM and nests inside its grid's span.
    assert!(!profile.blocks.is_empty());
    let sms: std::collections::BTreeSet<u32> = profile.blocks.iter().map(|b| b.sm).collect();
    assert!(sms.len() > 1, "multi-block run used a single SM");
    for b in &profile.blocks {
        let k = &profile.kernels[b.grid as usize];
        assert!(b.start <= b.end, "{b:?}");
        assert!(
            k.start - 1e-9 <= b.start && b.end <= k.end + 1e-9,
            "block span {b:?} escapes kernel span {k:?}"
        );
    }

    // Flow arrows: one per device launch, launch happens before the child
    // starts, and endpoints agree with the kernel spans.
    assert_eq!(profile.flows.len(), children);
    for f in &profile.flows {
        assert!(f.launch <= f.child_start, "{f:?}");
        let child = &profile.kernels[f.child_grid as usize];
        assert_eq!(child.parent, Some((f.parent_grid, f.parent_block)));
        assert!((f.child_start - child.start).abs() < 1e-9);
    }
}

#[test]
fn chrome_trace_export_is_valid_json_with_flows() {
    let mut gpu = Gpu::k20().with_profiler(true);
    let profile = profiled_tree_run(&mut gpu);
    let trace = profile.to_chrome_trace();

    let v: Value = serde_json::parse(&trace).expect("chrome trace must be valid JSON");
    let Some(Value::Array(events)) = v.get("traceEvents") else {
        panic!("missing traceEvents array");
    };

    let ph = |e: &Value| match e.get("ph") {
        Some(Value::Str(s)) => s.clone(),
        _ => panic!("event without ph: {e:?}"),
    };
    let count = |p: &str| events.iter().filter(|e| ph(e) == p).count();

    // Metadata names the device process and the per-SM threads; complete
    // events cover grids + blocks; flow arrows come in s/f pairs.
    assert!(count("M") >= 2, "missing process/thread metadata");
    assert_eq!(
        count("X"),
        profile.kernels.len() + profile.blocks.len(),
        "one complete event per kernel and block span"
    );
    assert_eq!(count("s"), profile.flows.len());
    assert_eq!(count("f"), profile.flows.len());

    // Spot-check a complete event's schema: ts/dur in microseconds, and
    // timestamps non-negative so Perfetto renders from t=0.
    for e in events.iter().filter(|e| ph(e) == "X") {
        let num = |key: &str| match e.get(key) {
            Some(Value::Float(f)) => *f,
            Some(Value::Int(i)) => *i as f64,
            Some(Value::UInt(u)) => *u as f64,
            other => panic!("event {key} missing or non-numeric: {other:?}"),
        };
        assert!(num("ts") >= 0.0 && num("dur") >= 0.0);
        assert!(e.get("pid").is_some() && e.get("tid").is_some());
        assert!(e.get("name").is_some());
    }
}

#[test]
fn repeat_launches_produce_memo_spans_and_one_timeline() {
    // Two identical synchronized batches: the second replays from the memo
    // cache; the profile must splice both batches into one timeline with
    // the second batch's spans marked memo and shifted past the first.
    let tree = TreeGen {
        depth: 4,
        outdegree: 4,
        sparsity: 0,
        seed: 7,
    }
    .generate();
    let run = |gpu: &mut Gpu| {
        tree_gpu(
            gpu,
            &tree,
            TreeMetric::Descendants,
            RecTemplate::Flat,
            &RecParams::default(),
        );
    };
    let mut probe = Gpu::k20().with_profiler(true);
    run(&mut probe);
    let one_batch = probe.take_profile().kernels.len();
    assert!(one_batch > 0);

    let mut gpu = Gpu::k20().with_profiler(true);
    run(&mut gpu);
    run(&mut gpu);
    let profile = gpu.take_profile();

    assert_eq!(profile.kernels.len(), 2 * one_batch);
    // Grid ids stay dense and ordered across the batch splice.
    for (i, k) in profile.kernels.iter().enumerate() {
        assert_eq!(k.grid as usize, i);
    }
    assert!(
        profile.blocks.iter().any(|b| b.memo),
        "repeat launch produced no memo-replayed spans"
    );
}
