//! Differential tests for parallel host execution (DESIGN.md §10): thread
//! count is a pure host-side speedup, so every profiler-visible number —
//! cycles, per-kernel metrics, hazard counts, exported Chrome traces — must
//! be *bit-identical* at 1, 2 and 8 worker threads, across the loop and
//! recursive templates, the sort study, the graph apps, with memoization on
//! and off, at every checker level. Only [`SimStats`] (wall time, cache
//! hit/miss counters) may depend on the thread count.

use std::sync::Arc;

use npar::apps::{bfs, sort, spmv, sssp, tree_apps};
use npar::core::{LoopParams, LoopTemplate, RecParams, RecTemplate};
use npar::graph::{citeseer_like, with_random_weights};
use npar::sim::{
    BlockCtx, CheckLevel, Gpu, Kernel, KernelRef, LaunchConfig, Report, SimStats, Stream,
    ThreadCtx, ThreadKernel,
};
use npar::tree::TreeGen;

const THREADS: [usize; 2] = [2, 8];

/// Run the same workload serially and at several thread counts and require
/// the reports to match exactly, modulo the host-side [`SimStats`].
fn assert_thread_invariant(
    label: &str,
    check: CheckLevel,
    memo: bool,
    run: impl Fn(&mut Gpu) -> Report,
) {
    let build = |threads: usize| {
        Gpu::k20()
            .with_check(check)
            .with_memo(memo)
            .with_threads(threads)
    };
    let mut serial_gpu = build(1);
    let mut base = run(&mut serial_gpu);
    base.sim = SimStats::default();
    for threads in THREADS {
        let mut gpu = build(threads);
        assert_eq!(gpu.threads(), threads);
        let mut r = run(&mut gpu);
        r.sim = SimStats::default();
        assert_eq!(
            base, r,
            "{label}: report differs at {threads} threads (memo={memo}, {check:?})"
        );
    }
}

#[test]
fn loop_templates_are_thread_invariant() {
    let g = with_random_weights(&citeseer_like(600, 9), 10, 12);
    for template in LoopTemplate::ALL {
        for memo in [true, false] {
            assert_thread_invariant(&format!("sssp/{template}"), CheckLevel::Off, memo, |gpu| {
                sssp::sssp_gpu(gpu, &g, 0, template, &LoopParams::with_lb_thres(32)).report
            });
        }
    }
}

#[test]
fn rec_templates_are_thread_invariant() {
    let tree = TreeGen {
        depth: 5,
        outdegree: 5,
        sparsity: 1,
        seed: 9,
    }
    .generate();
    for template in RecTemplate::ALL {
        for memo in [true, false] {
            assert_thread_invariant(&format!("tree/{template}"), CheckLevel::Off, memo, |gpu| {
                tree_apps::tree_gpu(
                    gpu,
                    &tree,
                    tree_apps::TreeMetric::Descendants,
                    template,
                    &RecParams::default(),
                )
                .report
            });
        }
    }
}

#[test]
fn sorts_are_thread_invariant() {
    // QuickAdvanced is the dynamic-parallelism-heavy one: parents join
    // children mid-block, which forces the chunked executor to flush its
    // deferred blocks before every nested grid.
    let input: Vec<u32> = (0..1200u32)
        .map(|i| i.wrapping_mul(2_654_435_761) % 512)
        .collect();
    for algo in [
        sort::SortAlgo::MergeFlat,
        sort::SortAlgo::QuickSimple,
        sort::SortAlgo::QuickAdvanced,
    ] {
        for memo in [true, false] {
            assert_thread_invariant(algo.label(), CheckLevel::Off, memo, |gpu| {
                sort::sort_gpu(gpu, &input, algo, &sort::SortParams::default()).report
            });
        }
    }
}

#[test]
fn spmv_is_thread_invariant_under_warn() {
    // Warn keeps runs alive while recording hazard counts, which are part
    // of the report and so also checked for bit-equality.
    let g = citeseer_like(500, 5);
    let x = vec![1.0f32; g.num_nodes()];
    for template in [LoopTemplate::ThreadMapped, LoopTemplate::DbufShared] {
        assert_thread_invariant(&format!("spmv/{template}"), CheckLevel::Warn, true, |gpu| {
            spmv::spmv_gpu(gpu, &g, &x, template, &LoopParams::default()).report
        });
    }
}

#[test]
fn recursive_bfs_is_thread_invariant_under_warn() {
    let g = citeseer_like(400, 3);
    for memo in [true, false] {
        assert_thread_invariant("bfs-recursive", CheckLevel::Warn, memo, |gpu| {
            bfs::bfs_recursive_gpu(gpu, &g, 0, bfs::RecBfsVariant::Hier, 2).report
        });
    }
}

/// A hazard-free kernel so the strict checker stays quiet while the cache
/// takes real hits.
struct Saxpy {
    n: usize,
    x: npar::sim::GBuf<f32>,
    y: npar::sim::GBuf<f32>,
}

impl ThreadKernel for Saxpy {
    fn name(&self) -> &str {
        "saxpy"
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let i = t.global_id();
        if i < self.n {
            t.ld(&self.x, i);
            t.ld(&self.y, i);
            t.compute(2);
            t.st(&self.y, i);
        }
    }
}

fn launch_saxpy(gpu: &mut Gpu, launches: usize) -> Report {
    let n = 64 * 128;
    let x = gpu.alloc::<f32>(n);
    let y = gpu.alloc::<f32>(n);
    let k = Arc::new(Saxpy { n, x, y });
    for _ in 0..launches {
        gpu.launch(k.clone(), LaunchConfig::new(64, 128)).unwrap();
    }
    gpu.synchronize()
}

#[test]
fn strict_checking_is_thread_invariant() {
    for memo in [true, false] {
        assert_thread_invariant("saxpy/strict", CheckLevel::Strict, memo, |gpu| {
            launch_saxpy(gpu, 3)
        });
    }
}

#[test]
fn profiler_timelines_are_thread_invariant() {
    // The timeline profiler hooks into the (serial) timing pass, but its
    // replayed-block marks and child-grid ids come from the merge — the
    // whole exported Chrome trace must be byte-identical at any thread
    // count.
    let run = |threads: usize| {
        let mut gpu = Gpu::k20().with_threads(threads).with_profiler(true);
        let mut r = launch_saxpy(&mut gpu, 2);
        r.sim = SimStats::default();
        (r, gpu.take_profile().to_chrome_trace())
    };
    let (base_report, base_trace) = run(1);
    for threads in THREADS {
        let (r, trace) = run(threads);
        assert_eq!(base_report, r, "report differs at {threads} threads");
        assert_eq!(
            base_trace, trace,
            "chrome trace differs at {threads} threads"
        );
    }
}

/// A dynamic-parallelism-heavy recursive kernel that opts into concurrent
/// block tracing: every block's leader launches a child grid of the same
/// kernel one level down (fire-and-forget, joined at grid completion — the
/// only join `parallel_trace` allows). With several blocks per grid this
/// exercises the fully concurrent executor end to end: worker-side trace
/// hosts, canonical child registration with placeholder patching, and the
/// pool's nested task submission (workers splitting spawned ranges again).
struct RecSpawn {
    depth: u32,
    data: npar::sim::GBuf<f32>,
}

impl Kernel for RecSpawn {
    fn name(&self) -> &str {
        "rec-spawn"
    }

    fn parallel_trace(&self) -> bool {
        true
    }

    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let depth = self.depth;
        let data = self.data;
        blk.for_each_thread(|t| {
            let i = t.global_id() % 4096;
            t.ld(&data, i);
            t.compute(2 + depth);
            t.st(&data, i);
        });
        blk.sync();
        if depth > 0 {
            let child: KernelRef = Arc::new(RecSpawn {
                depth: depth - 1,
                data: self.data,
            });
            blk.leader(|t| {
                t.compute(4);
                // Alternate device streams like the paper's per-block
                // extra-stream variant.
                t.launch(&child, LaunchConfig::new(4, 64), Stream::Slot(depth % 2));
            });
        }
    }
}

fn launch_rec_spawn(gpu: &mut Gpu) -> Report {
    let data = gpu.alloc::<f32>(4096);
    gpu.launch(
        Arc::new(RecSpawn { depth: 3, data }),
        LaunchConfig::new(16, 64),
    )
    .unwrap();
    gpu.synchronize()
}

#[test]
fn parallel_traced_dp_kernel_is_thread_invariant() {
    for (check, memo) in [
        (CheckLevel::Off, true),
        (CheckLevel::Off, false),
        (CheckLevel::Warn, true),
    ] {
        assert_thread_invariant("rec-spawn", check, memo, launch_rec_spawn);
    }
    // Sanity: the recursion actually fanned out into device launches.
    let mut gpu = Gpu::k20().with_threads(2);
    let r = launch_rec_spawn(&mut gpu);
    assert_eq!(r.host_launches, 1);
    assert!(
        r.device_launches >= 16,
        "expected a device-launch cascade, got {}",
        r.device_launches
    );
}

/// Invalid device launches recorded mid-trace by concurrent workers must be
/// spliced into the report in canonical block order — hazard counts (and
/// under Warn, the execution that continues past them) must not depend on
/// the thread count.
struct BadLauncher;

impl Kernel for BadLauncher {
    fn name(&self) -> &str {
        "bad-launcher"
    }

    fn parallel_trace(&self) -> bool {
        true
    }

    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        blk.for_each_thread(|t| t.compute(1));
        let child: KernelRef = Arc::new(BadLauncher);
        blk.leader(|t| {
            // block_dim 4096 exceeds every device limit: recorded as an
            // InvalidChildLaunch hazard, the child is dropped.
            t.launch(&child, LaunchConfig::new(1, 4096), Stream::Default);
        });
    }
}

#[test]
fn invalid_child_launch_hazards_are_thread_invariant() {
    assert_thread_invariant("bad-launcher", CheckLevel::Warn, true, |gpu| {
        gpu.launch(Arc::new(BadLauncher), LaunchConfig::new(12, 32))
            .unwrap();
        gpu.synchronize()
    });
    let mut gpu = Gpu::k20().with_check(CheckLevel::Warn).with_threads(8);
    gpu.launch(Arc::new(BadLauncher), LaunchConfig::new(12, 32))
        .unwrap();
    let r = gpu.synchronize();
    assert_eq!(r.hazards, 12, "one invalid-launch hazard per block");
    assert_eq!(r.device_launches, 0);
}
