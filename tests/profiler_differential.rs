//! Differential tests for the npar-prof timeline profiler: profiling is
//! *observational*, so every profiler-visible number in the [`Report`] —
//! cycles, per-kernel metrics, stall buckets, hazard counts — must be
//! bit-identical with the profiler on and off, across every template, the
//! sort study, and the apps, at every checker level and in both memo
//! modes. Only [`SimStats`] (host wall time, cache counters) may differ.
//!
//! The same sweeps also pin the stall-attribution invariant: per kernel,
//! the seven buckets partition the attributed cycles exactly.

use std::sync::Arc;

use npar::apps::{bfs, sort, spmv, sssp, tree_apps};
use npar::core::{LoopParams, LoopTemplate, RecParams, RecTemplate};
use npar::graph::{citeseer_like, with_random_weights};
use npar::sim::{CheckLevel, Gpu, LaunchConfig, Report, SimStats, ThreadCtx, ThreadKernel};
use npar::tree::TreeGen;

/// Per kernel, the stall buckets must partition the attributed cycles
/// (compute work plus barrier overhead) to floating-point tolerance.
fn assert_stalls_partition(label: &str, report: &Report) {
    for (name, m) in &report.kernels {
        let total = m.stalls.total();
        let attributed = m.attributed_cycles();
        let tol = 1e-9 * attributed.max(1.0);
        assert!(
            (total - attributed).abs() <= tol,
            "{label}/{name}: stall buckets sum to {total}, attributed cycles {attributed}"
        );
    }
}

/// Run the same workload with the profiler off and on (in both memo modes)
/// and require the reports to match exactly, modulo the host-side
/// [`SimStats`]. The profiled runs must actually record a timeline.
fn assert_identical(label: &str, check: CheckLevel, run: impl Fn(&mut Gpu) -> Report) {
    let mut reports = Vec::new();
    for memo in [true, false] {
        let mut plain = Gpu::k20().with_check(check).with_memo(memo);
        let mut profiled = Gpu::k20()
            .with_check(check)
            .with_memo(memo)
            .with_profiler(true);
        assert!(!plain.profiler_enabled() && profiled.profiler_enabled());

        let mut r_plain = run(&mut plain);
        let mut r_prof = run(&mut profiled);
        let profile = profiled.take_profile();
        assert!(
            !profile.is_empty(),
            "{label} (memo={memo}): profiler on but no timeline recorded"
        );
        assert!(plain.take_profile().is_empty());

        assert_stalls_partition(label, &r_prof);
        r_plain.sim = SimStats::default();
        r_prof.sim = SimStats::default();
        assert_eq!(
            r_plain, r_prof,
            "{label} (memo={memo}): report differs between profiler modes"
        );
        reports.push(r_plain);
    }
    // Transitively, memo modes also agree under the profiler.
    assert_eq!(
        reports[0], reports[1],
        "{label}: report differs across memo"
    );
}

#[test]
fn loop_templates_are_profiler_invariant() {
    let g = with_random_weights(&citeseer_like(900, 11), 10, 12);
    for template in LoopTemplate::ALL {
        assert_identical(&format!("sssp/{template}"), CheckLevel::Off, |gpu| {
            sssp::sssp_gpu(gpu, &g, 0, template, &LoopParams::with_lb_thres(32)).report
        });
    }
}

#[test]
fn rec_templates_are_profiler_invariant() {
    let tree = TreeGen {
        depth: 5,
        outdegree: 5,
        sparsity: 1,
        seed: 9,
    }
    .generate();
    for template in RecTemplate::ALL {
        assert_identical(&format!("tree/{template}"), CheckLevel::Off, |gpu| {
            tree_apps::tree_gpu(
                gpu,
                &tree,
                tree_apps::TreeMetric::Descendants,
                template,
                &RecParams::default(),
            )
            .report
        });
    }
}

#[test]
fn sorts_are_profiler_invariant() {
    let input: Vec<u32> = (0..1500u32)
        .map(|i| i.wrapping_mul(2_654_435_761) % 512)
        .collect();
    for algo in [
        sort::SortAlgo::MergeFlat,
        sort::SortAlgo::QuickSimple,
        sort::SortAlgo::QuickAdvanced,
    ] {
        assert_identical(algo.label(), CheckLevel::Off, |gpu| {
            sort::sort_gpu(gpu, &input, algo, &sort::SortParams::default()).report
        });
    }
}

#[test]
fn recursive_bfs_is_profiler_invariant_under_warn() {
    let g = citeseer_like(500, 3);
    assert_identical("bfs-recursive", CheckLevel::Warn, |gpu| {
        bfs::bfs_recursive_gpu(gpu, &g, 0, bfs::RecBfsVariant::Hier, 2).report
    });
}

#[test]
fn spmv_is_profiler_invariant_under_warn() {
    let g = citeseer_like(700, 5);
    let x = vec![1.0f32; g.num_nodes()];
    for template in [LoopTemplate::ThreadMapped, LoopTemplate::DbufShared] {
        assert_identical(&format!("spmv/{template}"), CheckLevel::Warn, |gpu| {
            spmv::spmv_gpu(gpu, &g, &x, template, &LoopParams::default()).report
        });
    }
}

/// A hazard-free kernel (same trace in every block) so the strict checker
/// stays quiet while the memoized replay path carries profiling events.
struct Saxpy {
    n: usize,
    x: npar::sim::GBuf<f32>,
    y: npar::sim::GBuf<f32>,
}

impl ThreadKernel for Saxpy {
    fn name(&self) -> &str {
        "saxpy"
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let i = t.global_id();
        if i < self.n {
            t.ld(&self.x, i);
            t.ld(&self.y, i);
            t.compute(2);
            t.st(&self.y, i);
        }
    }
}

fn launch_saxpy(gpu: &mut Gpu, launches: usize) -> Report {
    let n = 64 * 128;
    let x = gpu.alloc::<f32>(n);
    let y = gpu.alloc::<f32>(n);
    let k = Arc::new(Saxpy { n, x, y });
    for _ in 0..launches {
        gpu.launch(k.clone(), LaunchConfig::new(64, 128)).unwrap();
    }
    gpu.synchronize()
}

#[test]
fn strict_checking_is_profiler_invariant() {
    assert_identical("saxpy/strict", CheckLevel::Strict, |gpu| {
        launch_saxpy(gpu, 3)
    });
}

#[test]
fn memo_replay_is_flagged_but_observational() {
    // With memoization on, repeat launches replay cached block outcomes.
    // The profiler must (a) mark those spans, and (b) not perturb anything.
    let mut gpu = Gpu::k20().with_profiler(true);
    let r = launch_saxpy(&mut gpu, 4);
    assert!(
        r.sim.block_hits > 0,
        "expected block-cache hits: {:?}",
        r.sim
    );
    let profile = gpu.take_profile();
    let memo_spans = profile.blocks.iter().filter(|b| b.memo).count();
    assert!(
        memo_spans > 0,
        "block-cache hits but no memo-flagged spans in the timeline"
    );
    assert!(memo_spans < profile.blocks.len(), "first run cannot replay");
}

#[test]
fn disabling_the_profiler_drops_the_timeline() {
    let mut gpu = Gpu::k20().with_profiler(true);
    launch_saxpy(&mut gpu, 1);
    gpu.set_profiler(false);
    assert!(!gpu.profiler_enabled());
    assert!(gpu.take_profile().is_empty());
}
