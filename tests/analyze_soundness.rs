//! Soundness tests for npar-analyze's proof-carrying scan elision
//! (DESIGN.md §12). The contract under test: elision may only ever skip
//! work the dynamic checker would have passed, so
//! * no seeded-bug kernel may ever be statically "proven clean" — its
//!   class must end flagged or unproven, with zero elided blocks;
//! * elided and full runs must produce byte-identical [`Report`]s (and
//!   identical hazard lists) under `CheckLevel::Strict`, including on
//!   randomized kernels and at any host thread count;
//! * on a clean repetitive workload elision must actually engage — the
//!   differential assertions must not pass vacuously.

use std::sync::Arc;

use npar::sim::{
    BlockCtx, CheckLevel, GBuf, Gpu, Kernel, KernelRef, LaunchConfig, Report, SimError, SimStats,
    Stream, ThreadCtx, ThreadKernel,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

// ---------------------------------------------------------------------------
// Seeded-bug kernels (mirrors tests/checker.rs): one per diagnostic kind.
// ---------------------------------------------------------------------------

/// Every thread of the block stores to shared offset 0 in one segment.
struct SharedRaceKernel;
impl Kernel for SharedRaceKernel {
    fn name(&self) -> &str {
        "seeded-shared-race"
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        blk.for_each_thread(|t| t.shared_st(0));
    }
}

/// Every thread of every block stores to the same global element — the
/// per-block scans stay quiet; only the cross-block sweep catches it.
struct GlobalRaceKernel {
    buf: GBuf<u32>,
}
impl ThreadKernel for GlobalRaceKernel {
    fn name(&self) -> &str {
        "seeded-global-race"
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        t.st(&self.buf, 0);
    }
}

/// Each thread stores to its own global element — the race-free twin, the
/// positive control for promotion.
struct DisjointWriteKernel {
    buf: GBuf<u32>,
}
impl ThreadKernel for DisjointWriteKernel {
    fn name(&self) -> &str {
        "disjoint-writes"
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        t.st(&self.buf, t.global_id());
    }
}

/// The leader touches one shared word past the declared allocation.
struct OobKernel {
    declared: u32,
}
impl Kernel for OobKernel {
    fn name(&self) -> &str {
        "seeded-shared-oob"
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let edge = self.declared;
        blk.leader(|t| t.shared_st(edge));
    }
}

/// Child grid that plainly writes the first `n` elements of a buffer.
struct ChildWriter {
    buf: GBuf<u32>,
    n: usize,
}
impl ThreadKernel for ChildWriter {
    fn name(&self) -> &str {
        "child-writer"
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let i = t.global_id();
        if i < self.n {
            t.st(&self.buf, i);
        }
    }
}

/// Launches the child, then reads what the child writes with only a plain
/// barrier in between (no `sync_children`).
struct ForgetfulParent {
    child: KernelRef,
    buf: GBuf<u32>,
}
impl Kernel for ForgetfulParent {
    fn name(&self) -> &str {
        "seeded-unjoined-read"
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let cfg = LaunchConfig::new(1, 32);
        blk.leader(|t| t.launch(&self.child, cfg, Stream::Default));
        blk.sync();
        blk.for_each_thread(|t| t.ld(&self.buf, 0));
    }
}

/// Launches a child grid whose block size exceeds the device limit.
struct BadLauncher {
    child: KernelRef,
    block_dim: u32,
}
impl Kernel for BadLauncher {
    fn name(&self) -> &str {
        "seeded-bad-launch"
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let cfg = LaunchConfig::new(1, self.block_dim);
        blk.leader(|t| t.launch(&self.child, cfg, Stream::Default));
    }
}

/// Run `launch` three times under `Warn` (hazards recorded, runs continue,
/// elision active) and return the analysis of the named kernel. Several
/// grids give a wrong promotion every chance to happen.
fn analyze_seeded(
    kernel_name: &str,
    mut launch: impl FnMut(&mut Gpu),
) -> npar::sim::KernelAnalysis {
    let mut gpu = Gpu::k20().with_check(CheckLevel::Warn);
    for _ in 0..3 {
        launch(&mut gpu);
    }
    let r = gpu.synchronize();
    let analysis = gpu.analysis();
    let k = analysis
        .get(kernel_name)
        .unwrap_or_else(|| panic!("kernel {kernel_name} missing from analysis: {analysis}"))
        .clone();
    // A clean helper class (e.g. the child grid) may legitimately elide;
    // the seeded kernel's own class never may.
    let _ = r;
    assert_eq!(
        k.elided_blocks, 0,
        "{kernel_name}: elision engaged on a seeded-bug kernel"
    );
    assert!(
        !k.elision.is_proven(),
        "{kernel_name}: seeded-bug kernel proven clean: {}",
        k.elision
    );
    k
}

#[test]
fn seeded_shared_race_is_never_proven() {
    let k = analyze_seeded("seeded-shared-race", |gpu| {
        gpu.launch(
            Arc::new(SharedRaceKernel),
            LaunchConfig::with_shared(2, 64, 4),
        )
        .unwrap();
    });
    assert!(k.shared_races.is_flagged(), "{}", k.shared_races);
}

#[test]
fn seeded_global_race_is_never_proven() {
    let mut buf = None;
    let k = analyze_seeded("seeded-global-race", |gpu| {
        let buf = *buf.get_or_insert_with(|| gpu.alloc::<u32>(64));
        gpu.launch(Arc::new(GlobalRaceKernel { buf }), LaunchConfig::new(2, 32))
            .unwrap();
    });
    assert!(
        k.global_races.is_flagged(),
        "cross-block race not attributed: {}",
        k.global_races
    );
}

#[test]
fn seeded_shared_oob_is_never_proven() {
    let k = analyze_seeded("seeded-shared-oob", |gpu| {
        gpu.launch(
            Arc::new(OobKernel { declared: 128 }),
            LaunchConfig::with_shared(2, 32, 128),
        )
        .unwrap();
    });
    assert!(k.shared_bounds.is_flagged(), "{}", k.shared_bounds);
}

#[test]
fn seeded_unjoined_child_read_is_never_proven() {
    let mut buf = None;
    analyze_seeded("seeded-unjoined-read", |gpu| {
        let buf = *buf.get_or_insert_with(|| gpu.alloc::<u32>(32));
        let child: KernelRef = Arc::new(ChildWriter { buf, n: 32 });
        gpu.launch(
            Arc::new(ForgetfulParent { child, buf }),
            LaunchConfig::new(1, 32),
        )
        .unwrap();
    });
}

#[test]
fn seeded_invalid_child_launch_is_never_proven() {
    let mut buf = None;
    analyze_seeded("seeded-bad-launch", |gpu| {
        let buf = *buf.get_or_insert_with(|| gpu.alloc::<u32>(32));
        let child: KernelRef = Arc::new(ChildWriter { buf, n: 32 });
        // Warn records the structural fault and continues.
        let _ = gpu.launch(
            Arc::new(BadLauncher {
                child,
                block_dim: 4096,
            }),
            LaunchConfig::new(1, 32),
        );
    });
}

#[test]
fn clean_twin_is_proven_and_elides() {
    // Positive control: the race-free twin must be promoted after its
    // first clean grid and elide identical blocks from then on.
    let mut gpu = Gpu::k20().with_check(CheckLevel::Strict);
    let buf = gpu.alloc::<u32>(64);
    let k = Arc::new(DisjointWriteKernel { buf });
    for _ in 0..3 {
        gpu.launch(k.clone(), LaunchConfig::new(2, 32)).unwrap();
    }
    let r = gpu.synchronize();
    assert!(r.sim.elided > 0, "clean kernel never elided: {:?}", r.sim);
    let analysis = gpu.analysis();
    let ka = analysis.get("disjoint-writes").expect("class observed");
    assert!(ka.elision.is_proven(), "{}", ka.elision);
    assert!(ka.barriers.is_proven(), "{}", ka.barriers);
    let check = gpu.take_check_report();
    assert!(check.is_empty());
    assert_eq!(check.scanned + check.elided, 6, "2 blocks x 3 grids");
    assert!(check.elided > 0);
}

// ---------------------------------------------------------------------------
// Randomized elide-on/off differential under Strict.
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
enum PlanOp {
    W(u32),
    R(u32),
    A(u32),
}

/// Replays an explicit per-segment, per-lane shared-memory access plan —
/// identically in every block, so clean plans become elidable.
struct PlanKernel {
    plan: Vec<Vec<Vec<PlanOp>>>, // [segment][lane][ops]
}
impl Kernel for PlanKernel {
    fn name(&self) -> &str {
        "plan"
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        for (s, seg) in self.plan.iter().enumerate() {
            if s > 0 {
                blk.sync();
            }
            blk.for_each_thread(|t| {
                for op in &seg[t.thread_idx() as usize] {
                    match *op {
                        PlanOp::W(a) => t.shared_st(a),
                        PlanOp::R(a) => t.shared_ld(a),
                        PlanOp::A(a) => t.shared_atomic(a),
                    }
                }
            });
        }
    }
}

const LANES: usize = 32;
const PLAN_SHARED: u32 = 43 * 4;
const RO_WORD: u32 = 41 * 4;
const COUNTER_WORD: u32 = 42 * 4;

fn race_free_plan(rng: &mut ChaCha8Rng, nsegs: usize) -> Vec<Vec<Vec<PlanOp>>> {
    (0..nsegs)
        .map(|_| {
            (0..LANES)
                .map(|lane| {
                    let own = lane as u32 * 4;
                    (0..rng.gen_range(0usize..4))
                        .map(|_| match rng.gen_range(0u32..5) {
                            0 => PlanOp::W(own),
                            1 => PlanOp::R(own),
                            2 => PlanOp::A(own),
                            3 => PlanOp::R(RO_WORD),
                            _ => PlanOp::A(COUNTER_WORD),
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn inject_race(rng: &mut ChaCha8Rng, plan: &mut [Vec<Vec<PlanOp>>]) {
    let seg = rng.gen_range(0..plan.len());
    let l1 = rng.gen_range(0..LANES);
    let l2 = (l1 + 1 + rng.gen_range(0..LANES - 1)) % LANES;
    let addr = (LANES as u32 + rng.gen_range(0u32..8)) * 4;
    plan[seg][l1].push(PlanOp::W(addr));
    plan[seg][l2].push(match rng.gen_range(0u32..3) {
        0 => PlanOp::W(addr),
        1 => PlanOp::R(addr),
        _ => PlanOp::A(addr),
    });
}

/// Launch the plan three times (6 blocks each) and return what a Strict
/// run observes: the synchronize report (or the failing launch's hazard
/// report) plus the drained check report rendered to text.
fn strict_outcome(plan: &[Vec<Vec<PlanOp>>], elide: bool) -> (Result<Report, String>, String, u64) {
    let mut gpu = Gpu::k20().with_check(CheckLevel::Strict).with_elide(elide);
    let k = Arc::new(PlanKernel {
        plan: plan.to_vec(),
    });
    for _ in 0..3 {
        match gpu.launch(
            k.clone(),
            LaunchConfig::with_shared(6, LANES as u32, PLAN_SHARED),
        ) {
            Ok(()) => {}
            Err(SimError::Hazard(report)) => {
                return (Err(format!("{report}")), String::new(), 0);
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    let mut r = gpu.synchronize();
    let elided = r.sim.elided;
    r.sim = SimStats::default();
    (Ok(r), format!("{}", gpu.take_check_report()), elided)
}

#[test]
fn randomized_plans_are_elide_invariant_under_strict() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xe11de);
    let mut engaged = 0u64;
    for case in 0..20 {
        let nsegs = rng.gen_range(1usize..4);
        let mut plan = race_free_plan(&mut rng, nsegs);
        if case % 2 == 0 {
            inject_race(&mut rng, &mut plan);
        }
        let (on, on_check, on_elided) = strict_outcome(&plan, true);
        let (off, off_check, off_elided) = strict_outcome(&plan, false);
        assert_eq!(on, off, "case {case}: Strict outcome differs with elision");
        assert_eq!(off_elided, 0, "case {case}: --no-elide run elided blocks");
        engaged += on_elided;
        // The hazard lists themselves must match verbatim, not just counts;
        // only the scanned/elided footer may differ between the modes.
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("statically elided"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            strip(&on_check),
            strip(&off_check),
            "case {case}: check report differs"
        );
    }
    // Race-free cases repeat an identical clean grid: elision must have
    // engaged somewhere or the equalities above are vacuous.
    assert!(engaged > 0, "elision never engaged across 20 cases");
}

// ---------------------------------------------------------------------------
// Thread-count and report-shape invariants with elision.
// ---------------------------------------------------------------------------

/// A hazard-free kernel recording the same trace in every block.
struct Saxpy {
    n: usize,
    x: GBuf<f32>,
    y: GBuf<f32>,
}
impl ThreadKernel for Saxpy {
    fn name(&self) -> &str {
        "saxpy"
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let i = t.global_id();
        if i < self.n {
            t.ld(&self.x, i);
            t.ld(&self.y, i);
            t.compute(2);
            t.st(&self.y, i);
        }
    }
}

fn saxpy_strict(gpu: &mut Gpu, launches: usize) -> Report {
    let n = 64 * 128;
    let x = gpu.alloc::<f32>(n);
    let y = gpu.alloc::<f32>(n);
    let k = Arc::new(Saxpy { n, x, y });
    for _ in 0..launches {
        gpu.launch(k.clone(), LaunchConfig::new(64, 128)).unwrap();
    }
    gpu.synchronize()
}

#[test]
fn elision_is_thread_count_invariant() {
    let mut reports = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut gpu = Gpu::k20()
            .with_check(CheckLevel::Strict)
            .with_threads(threads);
        let mut r = saxpy_strict(&mut gpu, 3);
        assert!(r.sim.elided > 0, "threads={threads}: elision never engaged");
        r.sim = SimStats::default();
        reports.push((threads, r));
    }
    let (_, first) = &reports[0];
    for (threads, r) in &reports[1..] {
        assert_eq!(r, first, "threads={threads}: report differs");
    }
}

#[test]
fn analysis_verdicts_match_with_elision_off() {
    // --no-elide must reach identical verdicts for the four analyses (only
    // the elision bookkeeping itself may differ).
    let verdicts = |elide: bool| {
        // --no-elide alone deactivates analysis; request it explicitly on
        // both legs so the comparison is symmetric.
        let mut gpu = Gpu::k20()
            .with_check(CheckLevel::Strict)
            .with_analyze(true)
            .with_elide(elide);
        let r = saxpy_strict(&mut gpu, 3);
        assert_eq!(r.sim.elided > 0, elide);
        let a = gpu.analysis();
        let k = a.get("saxpy").expect("class observed").clone();
        assert!(k.barriers.is_proven());
        (
            k.barriers.tag(),
            k.shared_bounds.tag(),
            k.shared_races.tag(),
            k.global_races.tag(),
            k.bank_conflicts,
            k.launch_shape.spawned_grids,
        )
    };
    assert_eq!(verdicts(true), verdicts(false));
}
