//! Randomized property tests over the core invariants (hand-rolled
//! case generation on the deterministic in-tree RNG — the offline build
//! environment has no proptest):
//! * every loop template computes the serial result, for arbitrary
//!   irregular shapes and thresholds;
//! * every recursive template matches the serial tree reduction on
//!   arbitrary tree shapes;
//! * CSR construction and reversal are structure-preserving;
//! * sorts sort, whatever the input;
//! * profiler metrics stay within their physical bounds.

use npar_sim::SyncCell;
use std::sync::Arc;

use npar::core::{
    run_loop, run_recursive, IrregularLoop, LoopParams, LoopTemplate, RecParams, RecTemplate,
};
use npar::graph::Csr;
use npar::sim::{GBuf, Gpu, ThreadCtx};
use npar::tree::TreeGen;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// An arbitrary irregular loop whose body XOR-mixes (i, j) into out[i] —
/// order-independent, so any correct template reproduces it exactly; the
/// outer_end transform is non-commutative to catch once-and-after-bodies
/// violations.
struct MixLoop {
    sizes: Vec<usize>,
    out: SyncCell<Vec<u64>>,
    buf: GBuf<u64>,
}

impl IrregularLoop for MixLoop {
    fn name(&self) -> &str {
        "prop-mix"
    }
    fn outer_len(&self) -> usize {
        self.sizes.len()
    }
    fn inner_len(&self, i: usize) -> usize {
        self.sizes[i]
    }
    fn body(&self, t: &mut ThreadCtx<'_, '_>, i: usize, j: usize) {
        self.out.borrow_mut()[i] ^= 0x9e37_79b9_7f4a_7c15u64
            .wrapping_mul(i as u64 + 1)
            .wrapping_add(j as u64);
        t.ld(&self.buf, i.min(self.buf.len() - 1));
        t.compute(1);
    }
    fn outer_end(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        let mut o = self.out.borrow_mut();
        o[i] = o[i].rotate_left(7) ^ 0xabcd;
        t.st(&self.buf, i.min(self.buf.len() - 1));
    }
    fn has_reduction(&self) -> bool {
        true
    }
    fn combine_atomic(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.atomic(&self.buf, i.min(self.buf.len() - 1));
    }
}

fn serial_mix(sizes: &[usize]) -> Vec<u64> {
    sizes
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            let mut v = 0u64;
            for j in 0..f {
                v ^= 0x9e37_79b9_7f4a_7c15u64
                    .wrapping_mul(i as u64 + 1)
                    .wrapping_add(j as u64);
            }
            v.rotate_left(7) ^ 0xabcd
        })
        .collect()
}

#[test]
fn any_loop_template_matches_serial() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5e5);
    for case in 0..48 {
        let outer = rng.gen_range(1usize..80);
        let sizes: Vec<usize> = (0..outer).map(|_| rng.gen_range(0usize..120)).collect();
        let template = LoopTemplate::ALL[case % LoopTemplate::ALL.len()];
        let lb = rng.gen_range(0usize..200);

        let mut gpu = Gpu::k20();
        let app = Arc::new(MixLoop {
            out: SyncCell::new(vec![0; sizes.len()]),
            buf: gpu.alloc::<u64>(sizes.len().max(1)),
            sizes: sizes.clone(),
        });
        let report = run_loop(
            &mut gpu,
            app.clone(),
            template,
            &LoopParams::with_lb_thres(lb),
        );
        assert_eq!(
            &*app.out.borrow(),
            &serial_mix(&sizes),
            "case {case}: {template:?} lb={lb} sizes={sizes:?}"
        );
        let m = report.total();
        assert!(m.warp_execution_efficiency() <= 1.0 + 1e-9);
        // Broadcast reads can push gld efficiency above 100% (one
        // transaction serves every lane), like nvprof's metric; the warp
        // width bounds it.
        assert!(m.gld_efficiency() <= 32.0 + 1e-9);
        assert!(m.gld_efficiency() > 0.0);
        assert!(report.achieved_occupancy <= 1.0 + 1e-9);
    }
}

#[test]
fn any_tree_template_matches_serial() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7ee);
    for case in 0..36 {
        let depth = rng.gen_range(1u32..6);
        let outdegree = rng.gen_range(1u32..12);
        let sparsity = rng.gen_range(0u32..4);
        let seed = rng.gen_range(0u64..1000);
        let template = RecTemplate::ALL[case % RecTemplate::ALL.len()];

        let tree = TreeGen {
            depth,
            outdegree,
            sparsity,
            seed,
        }
        .generate();
        let n = tree.num_nodes();
        // Serial descendants.
        let mut expect = vec![1u64; n];
        for v in (1..n).rev() {
            let p = tree.parent(v) as usize;
            expect[p] += expect[v];
        }
        let mut gpu = Gpu::k20();
        let app = Arc::new(PropDesc {
            vals: SyncCell::new(vec![1; n]),
            values: gpu.alloc::<u64>(n),
            parents: gpu.alloc::<u32>(n),
            offsets: gpu.alloc::<u32>(n + 1),
            children: gpu.alloc::<u32>(n.saturating_sub(1).max(1)),
            tree,
        });
        run_recursive(&mut gpu, app.clone(), template, &RecParams::default());
        assert_eq!(
            &*app.vals.borrow(),
            &expect,
            "case {case}: {template:?} depth={depth} outdegree={outdegree} \
             sparsity={sparsity} seed={seed}"
        );
    }
}

#[test]
fn csr_roundtrip_preserves_edges() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xc52);
    for case in 0..48 {
        let m = rng.gen_range(0usize..400);
        let edges: Vec<(u32, u32)> = (0..m)
            .map(|_| (rng.gen_range(0u32..50), rng.gen_range(0u32..50)))
            .collect();

        let g = Csr::from_edges(50, &edges);
        assert!(g.validate().is_ok(), "case {case}");
        assert_eq!(g.num_edges(), edges.len());
        // Degree sums match.
        let total: usize = (0..50).map(|v| g.degree(v)).sum();
        assert_eq!(total, edges.len());
        // Reversal preserves the edge multiset.
        let r = g.reverse();
        assert_eq!(r.num_edges(), edges.len());
        let mut fwd: Vec<(u32, u32)> = edges.clone();
        let mut back: Vec<(u32, u32)> = (0..50)
            .flat_map(|v| r.neighbors(v).iter().map(move |&u| (u, v as u32)))
            .collect();
        fwd.sort_unstable();
        back.sort_unstable();
        assert_eq!(fwd, back, "case {case}");
    }
}

#[test]
fn gpu_sorts_sort() {
    const ALGOS: [npar::apps::sort::SortAlgo; 3] = [
        npar::apps::sort::SortAlgo::MergeFlat,
        npar::apps::sort::SortAlgo::QuickSimple,
        npar::apps::sort::SortAlgo::QuickAdvanced,
    ];
    let mut rng = ChaCha8Rng::seed_from_u64(0x5047);
    for case in 0..24 {
        let n = rng.gen_range(0usize..600);
        let mut data: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
        let algo = ALGOS[case % ALGOS.len()];

        let mut gpu = Gpu::k20();
        let r = npar::apps::sort::sort_gpu(
            &mut gpu,
            &data,
            algo,
            &npar::apps::sort::SortParams::default(),
        );
        data.sort_unstable();
        assert_eq!(r.data, data, "case {case}: {algo:?} n={n}");
    }
}

#[test]
fn tree_generation_invariants() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x18ee);
    for case in 0..60 {
        let depth = rng.gen_range(1u32..7);
        let outdegree = rng.gen_range(0u32..10);
        let sparsity = rng.gen_range(0u32..5);
        let seed = rng.gen_range(0u64..500);

        let tree = TreeGen {
            depth,
            outdegree,
            sparsity,
            seed,
        }
        .generate();
        assert!(tree.validate().is_ok(), "case {case}");
        assert!(tree.num_levels() as u32 <= depth.max(1));
        // Level-order ids: every child id greater than its parent.
        for v in 1..tree.num_nodes() {
            assert!((tree.parent(v) as usize) < v, "case {case}");
        }
    }
}

struct PropDesc {
    tree: npar::tree::Tree,
    vals: SyncCell<Vec<u64>>,
    values: GBuf<u64>,
    parents: GBuf<u32>,
    offsets: GBuf<u32>,
    children: GBuf<u32>,
}

impl npar::core::TreeReduce for PropDesc {
    fn name(&self) -> &str {
        "prop-desc"
    }
    fn tree(&self) -> &npar::tree::Tree {
        &self.tree
    }
    fn values_buf(&self) -> GBuf<u64> {
        self.values
    }
    fn parent_buf(&self) -> GBuf<u32> {
        self.parents
    }
    fn child_offsets_buf(&self) -> GBuf<u32> {
        self.offsets
    }
    fn children_buf(&self) -> GBuf<u32> {
        self.children
    }
    fn combine(&self, parent: usize, child: usize) {
        let c = self.vals.borrow()[child];
        self.vals.borrow_mut()[parent] += c;
    }
    fn flat_update(&self, _node: usize, ancestor: usize) {
        self.vals.borrow_mut()[ancestor] += 1;
    }
}
