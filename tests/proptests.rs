//! Property-based tests over the core invariants:
//! * every loop template computes the serial result, for arbitrary
//!   irregular shapes and thresholds;
//! * every recursive template matches the serial tree reduction on
//!   arbitrary tree shapes;
//! * CSR construction and reversal are structure-preserving;
//! * sorts sort, whatever the input;
//! * profiler metrics stay within their physical bounds.

use std::cell::RefCell;
use std::rc::Rc;

use npar::core::{
    run_loop, run_recursive, IrregularLoop, LoopParams, LoopTemplate, RecParams, RecTemplate,
};
use npar::graph::Csr;
use npar::sim::{GBuf, Gpu, ThreadCtx};
use npar::tree::TreeGen;
use proptest::prelude::*;

/// An arbitrary irregular loop whose body XOR-mixes (i, j) into out[i] —
/// order-independent, so any correct template reproduces it exactly; the
/// outer_end transform is non-commutative to catch once-and-after-bodies
/// violations.
struct MixLoop {
    sizes: Vec<usize>,
    out: RefCell<Vec<u64>>,
    buf: GBuf<u64>,
}

impl IrregularLoop for MixLoop {
    fn name(&self) -> &str {
        "prop-mix"
    }
    fn outer_len(&self) -> usize {
        self.sizes.len()
    }
    fn inner_len(&self, i: usize) -> usize {
        self.sizes[i]
    }
    fn body(&self, t: &mut ThreadCtx<'_, '_>, i: usize, j: usize) {
        self.out.borrow_mut()[i] ^= 0x9e37_79b9_7f4a_7c15u64
            .wrapping_mul(i as u64 + 1)
            .wrapping_add(j as u64);
        t.ld(&self.buf, i.min(self.buf.len() - 1));
        t.compute(1);
    }
    fn outer_end(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        let mut o = self.out.borrow_mut();
        o[i] = o[i].rotate_left(7) ^ 0xabcd;
        t.st(&self.buf, i.min(self.buf.len() - 1));
    }
    fn has_reduction(&self) -> bool {
        true
    }
    fn combine_atomic(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.atomic(&self.buf, i.min(self.buf.len() - 1));
    }
}

fn serial_mix(sizes: &[usize]) -> Vec<u64> {
    sizes
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            let mut v = 0u64;
            for j in 0..f {
                v ^= 0x9e37_79b9_7f4a_7c15u64
                    .wrapping_mul(i as u64 + 1)
                    .wrapping_add(j as u64);
            }
            v.rotate_left(7) ^ 0xabcd
        })
        .collect()
}

fn template_strategy() -> impl Strategy<Value = LoopTemplate> {
    prop::sample::select(LoopTemplate::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_loop_template_matches_serial(
        sizes in prop::collection::vec(0usize..120, 1..80),
        template in template_strategy(),
        lb in 0usize..200,
    ) {
        let mut gpu = Gpu::k20();
        let app = Rc::new(MixLoop {
            out: RefCell::new(vec![0; sizes.len()]),
            buf: gpu.alloc::<u64>(sizes.len().max(1)),
            sizes: sizes.clone(),
        });
        let report = run_loop(&mut gpu, app.clone(), template, &LoopParams::with_lb_thres(lb));
        prop_assert_eq!(&*app.out.borrow(), &serial_mix(&sizes));
        let m = report.total();
        prop_assert!(m.warp_execution_efficiency() <= 1.0 + 1e-9);
        // Broadcast reads can push gld efficiency above 100% (one
        // transaction serves every lane), like nvprof's metric; the warp
        // width bounds it.
        prop_assert!(m.gld_efficiency() <= 32.0 + 1e-9);
        prop_assert!(m.gld_efficiency() > 0.0);
        prop_assert!(report.achieved_occupancy <= 1.0 + 1e-9);
    }

    #[test]
    fn any_tree_template_matches_serial(
        depth in 1u32..6,
        outdegree in 1u32..12,
        sparsity in 0u32..4,
        seed in 0u64..1000,
        template in prop::sample::select(RecTemplate::ALL.to_vec()),
    ) {
        let tree = TreeGen { depth, outdegree, sparsity, seed }.generate();
        let n = tree.num_nodes();
        // Serial descendants.
        let mut expect = vec![1u64; n];
        for v in (1..n).rev() {
            let p = tree.parent(v) as usize;
            expect[p] += expect[v];
        }
        let mut gpu = Gpu::k20();
        let app = Rc::new(PropDesc {
            vals: RefCell::new(vec![1; n]),
            values: gpu.alloc::<u64>(n),
            parents: gpu.alloc::<u32>(n),
            offsets: gpu.alloc::<u32>(n + 1),
            children: gpu.alloc::<u32>(n.saturating_sub(1).max(1)),
            tree,
        });
        run_recursive(&mut gpu, app.clone(), template, &RecParams::default());
        prop_assert_eq!(&*app.vals.borrow(), &expect);
    }

    #[test]
    fn csr_roundtrip_preserves_edges(
        edges in prop::collection::vec((0u32..50, 0u32..50), 0..400),
    ) {
        let g = Csr::from_edges(50, &edges);
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.num_edges(), edges.len());
        // Degree sums match.
        let total: usize = (0..50).map(|v| g.degree(v)).sum();
        prop_assert_eq!(total, edges.len());
        // Reversal preserves the edge multiset.
        let r = g.reverse();
        prop_assert_eq!(r.num_edges(), edges.len());
        let mut fwd: Vec<(u32, u32)> = edges.clone();
        let mut back: Vec<(u32, u32)> = (0..50)
            .flat_map(|v| r.neighbors(v).iter().map(move |&u| (u, v as u32)))
            .collect();
        fwd.sort_unstable();
        back.sort_unstable();
        prop_assert_eq!(fwd, back);
    }

    #[test]
    fn gpu_sorts_sort(
        mut data in prop::collection::vec(any::<u32>(), 0..600),
        algo in prop::sample::select(vec![
            npar::apps::sort::SortAlgo::MergeFlat,
            npar::apps::sort::SortAlgo::QuickSimple,
            npar::apps::sort::SortAlgo::QuickAdvanced,
        ]),
    ) {
        let mut gpu = Gpu::k20();
        let r = npar::apps::sort::sort_gpu(
            &mut gpu,
            &data,
            algo,
            &npar::apps::sort::SortParams::default(),
        );
        data.sort_unstable();
        prop_assert_eq!(r.data, data);
    }

    #[test]
    fn tree_generation_invariants(
        depth in 1u32..7,
        outdegree in 0u32..10,
        sparsity in 0u32..5,
        seed in 0u64..500,
    ) {
        let tree = TreeGen { depth, outdegree, sparsity, seed }.generate();
        prop_assert!(tree.validate().is_ok());
        prop_assert!(tree.num_levels() as u32 <= depth.max(1));
        // Level-order ids: every child id greater than its parent.
        for v in 1..tree.num_nodes() {
            prop_assert!((tree.parent(v) as usize) < v);
        }
    }
}

struct PropDesc {
    tree: npar::tree::Tree,
    vals: RefCell<Vec<u64>>,
    values: GBuf<u64>,
    parents: GBuf<u32>,
    offsets: GBuf<u32>,
    children: GBuf<u32>,
}

impl npar::core::TreeReduce for PropDesc {
    fn name(&self) -> &str {
        "prop-desc"
    }
    fn tree(&self) -> &npar::tree::Tree {
        &self.tree
    }
    fn values_buf(&self) -> GBuf<u64> {
        self.values
    }
    fn parent_buf(&self) -> GBuf<u32> {
        self.parents
    }
    fn child_offsets_buf(&self) -> GBuf<u32> {
        self.offsets
    }
    fn children_buf(&self) -> GBuf<u32> {
        self.children
    }
    fn combine(&self, parent: usize, child: usize) {
        let c = self.vals.borrow()[child];
        self.vals.borrow_mut()[parent] += c;
    }
    fn flat_update(&self, _node: usize, ancestor: usize) {
        self.vals.borrow_mut()[ancestor] += 1;
    }
}
