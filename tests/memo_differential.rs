//! Differential tests for alignment memoization (DESIGN.md §8): the cache
//! is a pure host-side speedup, so every profiler-visible number — cycles,
//! per-kernel metrics, hazard counts — must be *bit-identical* with the
//! cache on and off, across every template, the sort study, and the apps,
//! at every checker level. Only [`SimStats`] (wall time, hit counters) may
//! differ between the two modes.

use std::sync::Arc;

use npar::apps::{bfs, sort, spmv, sssp, tree_apps};
use npar::core::{LoopParams, LoopTemplate, RecParams, RecTemplate};
use npar::graph::{citeseer_like, with_random_weights};
use npar::sim::{CheckLevel, Gpu, LaunchConfig, Report, SimStats, ThreadCtx, ThreadKernel};
use npar::tree::TreeGen;

/// Run the same workload on a memoizing and a non-memoizing simulator and
/// require the reports to match exactly, modulo the host-side [`SimStats`].
fn assert_identical(label: &str, check: CheckLevel, run: impl Fn(&mut Gpu) -> Report) {
    let mut on = Gpu::k20().with_check(check);
    let mut off = Gpu::k20().with_check(check).with_memo(false);
    assert!(on.memo_enabled() && !off.memo_enabled());
    let mut r_on = run(&mut on);
    let mut r_off = run(&mut off);
    r_on.sim = SimStats::default();
    r_off.sim = SimStats::default();
    assert_eq!(r_on, r_off, "{label}: report differs between memo modes");
}

#[test]
fn loop_templates_are_memo_invariant() {
    let g = with_random_weights(&citeseer_like(900, 11), 10, 12);
    for template in LoopTemplate::ALL {
        assert_identical(&format!("sssp/{template}"), CheckLevel::Off, |gpu| {
            sssp::sssp_gpu(gpu, &g, 0, template, &LoopParams::with_lb_thres(32)).report
        });
    }
}

#[test]
fn rec_templates_are_memo_invariant() {
    let tree = TreeGen {
        depth: 5,
        outdegree: 5,
        sparsity: 1,
        seed: 9,
    }
    .generate();
    for template in RecTemplate::ALL {
        assert_identical(&format!("tree/{template}"), CheckLevel::Off, |gpu| {
            tree_apps::tree_gpu(
                gpu,
                &tree,
                tree_apps::TreeMetric::Descendants,
                template,
                &RecParams::default(),
            )
            .report
        });
    }
}

#[test]
fn sorts_are_memo_invariant() {
    let input: Vec<u32> = (0..1500u32)
        .map(|i| i.wrapping_mul(2_654_435_761) % 512)
        .collect();
    for algo in [
        sort::SortAlgo::MergeFlat,
        sort::SortAlgo::QuickSimple,
        sort::SortAlgo::QuickAdvanced,
    ] {
        assert_identical(algo.label(), CheckLevel::Off, |gpu| {
            sort::sort_gpu(gpu, &input, algo, &sort::SortParams::default()).report
        });
    }
}

#[test]
fn recursive_bfs_is_memo_invariant_under_warn() {
    let g = citeseer_like(500, 3);
    assert_identical("bfs-recursive", CheckLevel::Warn, |gpu| {
        bfs::bfs_recursive_gpu(gpu, &g, 0, bfs::RecBfsVariant::Hier, 2).report
    });
}

#[test]
fn spmv_is_memo_invariant_under_warn() {
    // Warn keeps the runs alive while recording hazard counts, which are
    // part of the report and so also checked for bit-equality.
    let g = citeseer_like(700, 5);
    let x = vec![1.0f32; g.num_nodes()];
    for template in [LoopTemplate::ThreadMapped, LoopTemplate::DbufShared] {
        assert_identical(&format!("spmv/{template}"), CheckLevel::Warn, |gpu| {
            spmv::spmv_gpu(gpu, &g, &x, template, &LoopParams::default()).report
        });
    }
}

/// A hazard-free kernel that records the same trace in every block, so the
/// strict checker stays quiet and the cache gets real hits.
struct Saxpy {
    n: usize,
    x: npar::sim::GBuf<f32>,
    y: npar::sim::GBuf<f32>,
}

impl ThreadKernel for Saxpy {
    fn name(&self) -> &str {
        "saxpy"
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let i = t.global_id();
        if i < self.n {
            t.ld(&self.x, i);
            t.ld(&self.y, i);
            t.compute(2);
            t.st(&self.y, i);
        }
    }
}

fn launch_saxpy(gpu: &mut Gpu, launches: usize) -> Report {
    let n = 64 * 128;
    let x = gpu.alloc::<f32>(n);
    let y = gpu.alloc::<f32>(n);
    let k = Arc::new(Saxpy { n, x, y });
    for _ in 0..launches {
        gpu.launch(k.clone(), LaunchConfig::new(64, 128)).unwrap();
    }
    gpu.synchronize()
}

#[test]
fn strict_checking_is_memo_invariant() {
    assert_identical("saxpy/strict", CheckLevel::Strict, |gpu| {
        launch_saxpy(gpu, 3)
    });
}

#[test]
fn memoization_actually_engages() {
    // Guard against the differential tests passing vacuously: on a regular
    // workload the cache must take real hits and replay most of the trace.
    let mut gpu = Gpu::k20();
    let r = launch_saxpy(&mut gpu, 4);
    assert!(r.sim.block_hits > 0, "no block-cache hits: {:?}", r.sim);
    assert!(r.sim.ops_traced > 0);
    assert!(
        r.sim.ops_replayed * 2 > r.sim.ops_traced,
        "expected most ops replayed on a uniform kernel: {:?}",
        r.sim
    );

    // And with the cache off, the same workload must report zero activity.
    let mut gpu = Gpu::k20().with_memo(false);
    let r = launch_saxpy(&mut gpu, 4);
    assert_eq!(r.sim.block_hits + r.sim.warp_hits + r.sim.ops_replayed, 0);
    assert!(r.sim.ops_traced > 0);
}

#[test]
fn toggling_memo_drops_the_cache() {
    let mut gpu = Gpu::k20();
    let r = launch_saxpy(&mut gpu, 2);
    assert!(r.sim.block_hits > 0);
    gpu.set_memo(false);
    assert!(!gpu.memo_enabled());
    gpu.set_memo(true);
    // The cache restarts cold: the first block of the next run must miss.
    let r = launch_saxpy(&mut gpu, 1);
    assert!(r.sim.block_misses > 0);
}
