//! Umbrella crate re-exporting the npar workspace: a reproduction of
//! "Nested Parallelism on GPU" (Li, Wu, Becchi — ICPP 2015) on a SIMT
//! GPU simulator written in pure Rust.
//!
//! See the individual crates for detail:
//! * [`sim`] — the GPU simulator substrate,
//! * [`graph`] / [`tree`] — input data structures and generators,
//! * [`core`] — the parallelization templates (the paper's contribution),
//! * [`apps`] — the seven benchmark applications plus the sort study,
//! * [`serve`] — the sharded simulation service with a persistent memo
//!   cache (SERVING.md).
pub use npar_apps as apps;
pub use npar_core as core;
pub use npar_graph as graph;
pub use npar_serve as serve;
pub use npar_sim as sim;
pub use npar_tree as tree;
