//! Writing a kernel directly against the simulator API: a histogram with
//! global atomics, in a coalesced and an uncoalesced variant, showing how
//! the profiler exposes memory behaviour and atomic contention — and how a
//! kernel opts into multi-threaded host tracing (DESIGN.md §10).
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use npar_sim::SyncCell;
use std::sync::Arc;

use npar::sim::{GBuf, Gpu, LaunchConfig, ThreadCtx, ThreadKernel};

struct Histogram {
    /// Input values.
    data: Vec<u32>,
    /// Bin counts (functional result).
    bins: SyncCell<Vec<u32>>,
    data_buf: GBuf<u32>,
    bins_buf: GBuf<u32>,
    /// Strided (uncoalesced) or linear (coalesced) input access.
    strided: bool,
}

impl ThreadKernel for Histogram {
    fn name(&self) -> &str {
        if self.strided {
            "histogram-strided"
        } else {
            "histogram-linear"
        }
    }
    /// Safe to trace blocks concurrently: the only shared functional state
    /// is the bin counters, and `+= 1` under the `SyncCell` lock commutes —
    /// every block order yields the same bins, and the recorded per-block
    /// traces don't depend on other blocks at all.
    fn parallel_trace(&self) -> bool {
        true
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let n = self.data.len();
        let total = t.grid_threads();
        let per_thread = n.div_ceil(total);
        for k in 0..per_thread {
            // Linear: consecutive threads read consecutive elements.
            // Strided: each thread reads a private contiguous chunk, so a
            // warp's 32 lanes touch 32 different cache lines.
            let idx = if self.strided {
                t.global_id() * per_thread + k
            } else {
                k * total + t.global_id()
            };
            if idx >= n {
                break;
            }
            let bin = (self.data[idx] % 64) as usize;
            self.bins.borrow_mut()[bin] += 1;
            t.ld(&self.data_buf, idx);
            t.compute(2);
            t.atomic(&self.bins_buf, bin);
        }
    }
}

fn main() {
    let n = 1 << 20;
    let data: Vec<u32> = (0..n as u32).map(|x| x.wrapping_mul(2654435761)).collect();

    for strided in [false, true] {
        // Host-side parallelism: trace/align blocks on up to 4 worker
        // threads. Purely a wall-clock knob — the report below is
        // byte-identical at any thread count (or with no call at all,
        // which defaults to NPAR_THREADS / the machine's core count).
        let mut gpu = Gpu::k20().with_threads(4);
        let k = Arc::new(Histogram {
            data: data.clone(),
            bins: SyncCell::new(vec![0; 64]),
            data_buf: gpu.alloc::<u32>(n),
            bins_buf: gpu.alloc::<u32>(64),
            strided,
        });
        // A fixed-size grid so each thread owns a multi-element range (the
        // access-pattern contrast needs per-thread chunks).
        gpu.launch(k.clone(), LaunchConfig::new(130, 192))
            .expect("launch");
        let report = gpu.synchronize();
        let total: u32 = k.bins.borrow().iter().sum();
        assert_eq!(total as usize, n);
        let m = report.total();
        println!(
            "{:<20} {:>9.3} ms  gld_eff {:>6.1}%  atomics {:>8}  occupancy {:>5.1}%",
            if strided {
                "strided (bad)"
            } else {
                "linear (coalesced)"
            },
            report.seconds * 1e3,
            m.gld_efficiency() * 100.0,
            m.atomics(),
            report.achieved_occupancy * 100.0,
        );
    }
    println!("\nSame arithmetic, same atomics — only the addresses differ.");
}
