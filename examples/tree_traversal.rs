//! Recursive tree traversal: compute descendants and heights with the
//! flat, naive-recursive and hierarchical-recursive templates and watch
//! the atomics-vs-launches trade-off of the paper's Section III.C.
//!
//! ```sh
//! cargo run --release --example tree_traversal
//! ```

use npar::apps::tree_apps::{tree_cpu_recursive, tree_gpu, TreeMetric};
use npar::core::{RecParams, RecTemplate};
use npar::sim::{CostModel, CpuConfig, Gpu};
use npar::tree::TreeGen;

fn main() {
    for (outdegree, sparsity) in [(64u32, 0u32), (256, 0), (256, 2)] {
        let tree = TreeGen {
            depth: 4,
            outdegree,
            sparsity,
            seed: 42,
        }
        .generate();
        println!(
            "\ntree: depth 4, outdegree {outdegree}, sparsity {sparsity} -> {} nodes, {} leaves",
            tree.num_nodes(),
            tree.num_leaves()
        );
        for metric in [TreeMetric::Descendants, TreeMetric::Heights] {
            let (cpu_vals, counter) = tree_cpu_recursive(&tree, metric);
            let cpu_s = counter.seconds(&CostModel::default().cpu, &CpuConfig::xeon_e5_2620());
            println!(
                "  {} (root = {}), serial CPU {:.3} ms",
                metric.label(),
                cpu_vals[0],
                cpu_s * 1e3
            );
            for template in RecTemplate::ALL {
                let mut gpu = Gpu::k20();
                let r = tree_gpu(&mut gpu, &tree, metric, template, &RecParams::default());
                assert_eq!(r.values, cpu_vals);
                let m = r.report.total();
                println!(
                    "    {:<10} {:>9.3} ms ({:>7.2}x) atomics {:>9} nested launches {:>7}",
                    template.to_string(),
                    r.report.seconds * 1e3,
                    cpu_s / r.report.seconds,
                    m.atomics(),
                    r.report.device_launches,
                );
            }
        }
    }
}
