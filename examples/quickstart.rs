//! Quickstart: write the "simple code" of an irregular nested loop once,
//! run it under every parallelization template, and read the profile.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use npar_sim::SyncCell;
use std::sync::Arc;

use npar::core::{run_loop, IrregularLoop, LoopParams, LoopTemplate};
use npar::sim::{GBuf, Gpu, ThreadCtx};

/// A toy irregular workload: row i sums `i % 97 + 1` values.
struct Rows {
    sizes: Vec<usize>,
    data: GBuf<f32>,
    out: GBuf<f32>,
    sums: SyncCell<Vec<f32>>,
}

impl IrregularLoop for Rows {
    fn name(&self) -> &str {
        "quickstart"
    }
    fn outer_len(&self) -> usize {
        self.sizes.len()
    }
    fn inner_len(&self, i: usize) -> usize {
        self.sizes[i]
    }
    fn body(&self, t: &mut ThreadCtx<'_, '_>, i: usize, j: usize) {
        self.sums.borrow_mut()[i] += (i + j) as f32;
        t.ld(&self.data, (i + j) % self.data.len());
        t.compute(1);
    }
    fn outer_end(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.st(&self.out, i);
    }
    fn has_reduction(&self) -> bool {
        true
    }
    fn combine_atomic(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.atomic(&self.out, i);
    }
}

fn main() {
    let n = 20_000;
    // Irregular sizes: mostly tiny rows with a heavy tail.
    let sizes: Vec<usize> = (0..n)
        .map(|i| if i % 61 == 0 { 400 + i % 800 } else { i % 9 })
        .collect();

    println!(
        "{:<16} {:>12} {:>10} {:>9} {:>13}",
        "template", "time", "speedup", "warp_eff", "nested calls"
    );
    let mut baseline = None;
    for template in LoopTemplate::ALL {
        let mut gpu = Gpu::k20();
        let app = Arc::new(Rows {
            sizes: sizes.clone(),
            data: gpu.alloc::<f32>(4096),
            out: gpu.alloc::<f32>(n),
            sums: SyncCell::new(vec![0.0; n]),
        });
        let report = run_loop(&mut gpu, app, template, &LoopParams::default());
        let base = *baseline.get_or_insert(report.seconds);
        println!(
            "{:<16} {:>9.3} ms {:>9.2}x {:>8.1}% {:>13}",
            template.to_string(),
            report.seconds * 1e3,
            base / report.seconds,
            report.warp_execution_efficiency() * 100.0,
            report.device_launches,
        );
    }
}
