//! Serving demo: boot a small `npar-serve` fleet, submit a duplicate pair
//! of requests, and watch the second answer from the cache — byte-identical
//! to the first, without re-simulating.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```
//!
//! SERVING.md is the full operator guide; this is the 60-second version.

use npar::serve::{request_key, Request, Response, ServeConfig, Service, Source};

fn main() {
    // Two shards, in-memory only (no cache_dir: nothing spills to disk).
    let service = Service::start(ServeConfig {
        shards: 2,
        cache_dir: None,
        ..ServeConfig::default()
    });

    // A Monte-Carlo replication batch on the paper's K20. Requests are
    // fully declarative, so this prints as one JSON line you could pipe
    // straight into the `npar-serve` binary's stdin.
    let mut req = Request::new("monte-carlo");
    req.dataset.salt = 7;
    println!("request ({:#018x}):", request_key(&req));
    println!("  {}\n", serde_json::to_string(&req).unwrap());

    // Submit the same request twice. The first simulates; the second is
    // answered from the result cache (or deduped onto the first if it is
    // still in flight) — either way, no second simulation.
    let first = service.submit(&req).unwrap().wait();
    let second = service.submit(&req).unwrap().wait();

    let (
        Response::Done {
            source: s1,
            report: r1,
        },
        Response::Done {
            source: s2,
            report: r2,
        },
    ) = (&first, &second)
    else {
        panic!("both submissions must be served");
    };
    println!(
        "first  answered: {s1:?} — {:.3} ms modeled",
        r1.seconds * 1e3
    );
    println!(
        "second answered: {s2:?} — {:.3} ms modeled",
        r2.seconds * 1e3
    );
    assert_eq!(*s1, Source::Fresh);
    assert_ne!(*s2, Source::Fresh, "the duplicate may never re-simulate");
    assert_eq!(
        serde_json::to_string(&**r1).unwrap(),
        serde_json::to_string(&**r2).unwrap(),
        "cached answers are byte-identical to fresh ones"
    );

    let stats = service.join();
    println!("\nfleet stats: {stats}");
}
