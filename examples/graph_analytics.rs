//! Graph analytics on a scale-free network: run SSSP and PageRank under
//! every template and compare against the serial CPU references — the
//! workflow of the paper's Section III.B, at example scale.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use npar::apps::{pagerank, sssp};
use npar::core::{LoopParams, LoopTemplate};
use npar::graph::{citeseer_like, with_random_weights, DegreeStats};
use npar::sim::{CostModel, CpuConfig, Gpu};

fn main() {
    let g = with_random_weights(&citeseer_like(8_000, 7), 10, 8);
    println!("graph: {}", DegreeStats::of(&g));

    let cost = CostModel::default();
    let cpu = CpuConfig::xeon_e5_2620();

    // --- SSSP ---
    let (dist, counter) = sssp::sssp_cpu(&g, 0);
    let cpu_s = counter.seconds(&cost.cpu, &cpu);
    let reached = dist.iter().filter(|d| d.is_finite()).count();
    println!(
        "\nSSSP from node 0: {reached} reachable nodes; serial CPU {:.3} ms",
        cpu_s * 1e3
    );
    println!(
        "{:<16} {:>12} {:>14} {:>10}",
        "template", "gpu time", "vs serial CPU", "warp_eff"
    );
    for template in LoopTemplate::ALL {
        let mut gpu = Gpu::k20();
        let r = sssp::sssp_gpu(&mut gpu, &g, 0, template, &LoopParams::default());
        assert_eq!(
            r.dist.iter().filter(|d| d.is_finite()).count(),
            reached,
            "template changed reachability!"
        );
        println!(
            "{:<16} {:>9.3} ms {:>13.2}x {:>9.1}%",
            template.to_string(),
            r.report.seconds * 1e3,
            cpu_s / r.report.seconds,
            r.report.warp_execution_efficiency() * 100.0,
        );
    }

    // --- PageRank ---
    let iterations = 5;
    let (ranks, counter) = pagerank::pagerank_cpu(&g, iterations);
    let cpu_s = counter.seconds(&cost.cpu, &cpu);
    let top = ranks
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap();
    println!(
        "\nPageRank ({iterations} iters): top node {top}; serial CPU {:.3} ms",
        cpu_s * 1e3
    );
    println!(
        "{:<16} {:>12} {:>14}",
        "template", "gpu time", "vs serial CPU"
    );
    for template in [
        LoopTemplate::ThreadMapped,
        LoopTemplate::DualQueue,
        LoopTemplate::DbufShared,
        LoopTemplate::DbufGlobal,
        LoopTemplate::DparOpt,
    ] {
        let mut gpu = Gpu::k20();
        let r = pagerank::pagerank_gpu(&mut gpu, &g, iterations, template, &LoopParams::default());
        println!(
            "{:<16} {:>9.3} ms {:>13.2}x",
            template.to_string(),
            r.report.seconds * 1e3,
            cpu_s / r.report.seconds,
        );
    }
}
