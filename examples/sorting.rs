//! The Figure 2 case study at example scale: dynamic-parallelism
//! quicksorts against flat mergesort, and the effect of the recursion
//! depth limit the paper discusses.
//!
//! ```sh
//! cargo run --release --example sorting
//! ```

use npar::apps::sort::{sort_gpu, SortAlgo, SortParams};
use npar::sim::Gpu;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2015);
    let data: Vec<u32> = (0..60_000).map(|_| rng.gen()).collect();

    println!("sorting {} random u32s on the simulated K20\n", data.len());
    println!(
        "{:<20} {:>10} {:>14} {:>12}",
        "algorithm", "time", "nested calls", "overflowed"
    );
    for algo in [
        SortAlgo::MergeFlat,
        SortAlgo::QuickAdvanced,
        SortAlgo::QuickSimple,
    ] {
        let mut gpu = Gpu::k20();
        let r = sort_gpu(&mut gpu, &data, algo, &SortParams::default());
        assert!(r.data.windows(2).all(|w| w[0] <= w[1]));
        println!(
            "{:<20} {:>7.3} ms {:>14} {:>12}",
            algo.label(),
            r.report.seconds * 1e3,
            r.report.device_launches,
            r.report.overflow_launches,
        );
    }

    println!("\nrecursion-depth limit on simple quicksort (fallback = selection sort):");
    println!("{:<8} {:>10} {:>14}", "depth", "time", "nested calls");
    for depth in [2u32, 6, 10, 16, 24] {
        let mut gpu = Gpu::k20();
        let r = sort_gpu(
            &mut gpu,
            &data,
            SortAlgo::QuickSimple,
            &SortParams {
                max_depth: depth,
                ..Default::default()
            },
        );
        assert!(r.data.windows(2).all(|w| w[0] <= w[1]));
        println!(
            "{:<8} {:>7.3} ms {:>14}",
            depth,
            r.report.seconds * 1e3,
            r.report.device_launches
        );
    }
    println!("\nShallow limits trade launch overhead for quadratic fallbacks; deep");
    println!("limits drown in nested launches — the paper's Figure 2 trade-off.");
}
