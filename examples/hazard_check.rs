//! npar-check in action: a broken variant of the shared delayed-buffer
//! template, caught by the hazard sanitizer.
//!
//! The real `DbufShared` template reserves a slot in the block's shared
//! staging buffer with a shared-memory *atomic* on the counter word. This
//! variant "saves" the atomic and bumps the counter with a plain
//! read-modify-write — on the sequential simulator the functional answer
//! still comes out right, but on hardware two warps bump the counter
//! concurrently, lose reservations and overwrite each other's buffered
//! iterations. `CheckLevel::Strict` turns that silent corruption into a
//! located diagnostic; the fixed kernel runs clean.
//!
//! ```sh
//! cargo run --release --example hazard_check
//! ```

use std::sync::Arc;

use npar::sim::{BlockCtx, CheckLevel, Gpu, Kernel, LaunchConfig};

/// Phase A of a delayed-buffer kernel: every thread reserves a slot in the
/// shared staging buffer and stashes its deferred iteration there.
struct DelayedBuffer {
    /// Reserve the slot atomically (correct) or with a plain
    /// read-modify-write on the counter word (the bug).
    atomic_counter: bool,
}

impl Kernel for DelayedBuffer {
    fn name(&self) -> &str {
        if self.atomic_counter {
            "dbuf-shared-fixed"
        } else {
            "dbuf-shared-broken"
        }
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        blk.for_each_thread(|t| {
            if self.atomic_counter {
                // next = atomicAdd(&counter, 1)
                t.shared_atomic(0);
            } else {
                // next = counter++  — a write/write race between lanes
                t.shared_ld(0);
                t.shared_st(0);
            }
            // buffer[next] = iteration
            t.shared_st(4 + t.thread_idx() * 4);
        });
        blk.sync();
        // ... phase B would replay the buffered iterations block-wide ...
    }
}

fn main() {
    let cfg = LaunchConfig::with_shared(1, 256, 4 + 256 * 4);

    let mut gpu = Gpu::k20().with_check(CheckLevel::Strict);
    let err = gpu
        .launch(
            Arc::new(DelayedBuffer {
                atomic_counter: false,
            }),
            cfg,
        )
        .expect_err("the broken variant must fail under Strict");
    println!("broken variant, CheckLevel::Strict:\n{err}");

    let mut gpu = Gpu::k20().with_check(CheckLevel::Strict);
    gpu.launch(
        Arc::new(DelayedBuffer {
            atomic_counter: true,
        }),
        cfg,
    )
    .expect("the atomic-counter variant is hazard-free");
    println!(
        "fixed variant, CheckLevel::Strict: clean ({} hazards)",
        gpu.synchronize().hazards
    );
}
