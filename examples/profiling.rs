//! npar-prof in action: profile a recursive tree traversal that uses
//! dynamic parallelism, export the timeline as Chrome-trace JSON, and
//! print the nvprof-style stall-attribution table.
//!
//! The exported file loads in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`: process 0 shows per-SM block residency (memoized
//! replays in their own category), process 1 shows one track per grid,
//! and flow arrows connect each parent block to the child grid it
//! launched. See PROFILING.md for a guided tour.
//!
//! ```sh
//! cargo run --release --example profiling
//! ```

use npar::apps::tree_apps::{tree_gpu, TreeMetric};
use npar::core::{RecParams, RecTemplate};
use npar::sim::Gpu;
use npar::tree::TreeGen;

fn main() {
    let tree = TreeGen {
        depth: 5,
        outdegree: 6,
        sparsity: 1,
        seed: 42,
    }
    .generate();
    println!(
        "tree: depth 5, outdegree 6, sparsity 1 -> {} nodes\n",
        tree.num_nodes()
    );

    for template in [RecTemplate::Flat, RecTemplate::RecHier] {
        // Profiling is opt-in; reports are bit-identical with it off.
        let mut gpu = Gpu::k20().with_profiler(true);
        let r = tree_gpu(
            &mut gpu,
            &tree,
            TreeMetric::Descendants,
            template,
            &RecParams::default(),
        );

        // Per-kernel stall attribution — where the cycles actually went.
        println!("template {template}: {:.3} ms", r.report.seconds * 1e3);
        println!("{}", r.report.stall_table());

        // The timeline itself: kernel spans, per-SM block spans, and
        // parent->child flow arrows for every device-side launch.
        let profile = gpu.take_profile();
        println!("{}", profile.summary());
        let path = std::env::temp_dir().join(format!("npar_profiling_{template}.trace.json"));
        std::fs::write(&path, profile.to_chrome_trace()).expect("write trace");
        println!("  -> wrote {} (open in Perfetto)\n", path.display());
    }
}
