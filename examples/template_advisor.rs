//! The compiler-integration angle: measure a loop's shape, let the advisor
//! pick a template, and validate the pick against a full sweep.
//!
//! ```sh
//! cargo run --release --example template_advisor
//! ```

use npar_sim::SyncCell;
use std::sync::Arc;

use npar::core::{advise_loop, advise_tree, run_loop, IrregularLoop, LoopShape, LoopTemplate};
use npar::sim::{GBuf, Gpu, ThreadCtx};
use npar::tree::TreeGen;

struct Rows {
    sizes: Vec<usize>,
    out: SyncCell<Vec<u64>>,
    buf: GBuf<u64>,
}

impl IrregularLoop for Rows {
    fn name(&self) -> &str {
        "advisor-demo"
    }
    fn outer_len(&self) -> usize {
        self.sizes.len()
    }
    fn inner_len(&self, i: usize) -> usize {
        self.sizes[i]
    }
    fn body(&self, t: &mut ThreadCtx<'_, '_>, i: usize, j: usize) {
        self.out.borrow_mut()[i] += j as u64;
        t.ld(&self.buf, i);
        t.compute(1);
    }
    fn has_reduction(&self) -> bool {
        true
    }
    fn combine_atomic(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.atomic(&self.buf, i);
    }
}

fn demo_loop(label: &str, sizes: Vec<usize>) {
    let n = sizes.len();
    let mut gpu = Gpu::k20();
    let probe = Rows {
        sizes: sizes.clone(),
        out: SyncCell::new(vec![0; n]),
        buf: gpu.alloc(n),
    };
    let shape = LoopShape::measure(&probe);
    let advice = advise_loop(&shape);
    println!("\n=== {label} ===");
    println!(
        "shape: outer {} | mean {:.1} | max {} | imbalance {:.1} | heavy {:.1}%",
        shape.outer,
        shape.mean,
        shape.max,
        shape.imbalance(),
        shape.heavy_fraction * 100.0
    );
    println!("advice: {} — {}", advice.template, advice.rationale);

    // Validate: sweep every template and rank the advisor's pick.
    let mut times: Vec<(LoopTemplate, f64)> = LoopTemplate::ALL
        .iter()
        .map(|&template| {
            let mut gpu = Gpu::k20();
            let app = Arc::new(Rows {
                sizes: sizes.clone(),
                out: SyncCell::new(vec![0; n]),
                buf: gpu.alloc(n),
            });
            let r = run_loop(&mut gpu, app, template, &advice.params);
            (template, r.seconds)
        })
        .collect();
    #[allow(clippy::disallowed_methods)] // total_cmp comparator
    times.sort_by(|a, b| a.1.total_cmp(&b.1));
    let rank = times
        .iter()
        .position(|(t, _)| *t == advice.template)
        .unwrap()
        + 1;
    println!(
        "sweep: best = {} ({:.3} ms); advisor's pick ranks #{rank} of {}",
        times[0].0,
        times[0].1 * 1e3,
        times.len()
    );
}

fn main() {
    demo_loop("regular rows", vec![24; 30_000]);
    demo_loop(
        "skewed rows (power tail)",
        (0..30_000)
            .map(|i| if i % 97 == 0 { 600 + (i % 500) } else { i % 6 })
            .collect(),
    );
    demo_loop(
        "rare heavy tail",
        (0..30_000)
            .map(|i| if i % 2500 == 0 { 4_000 } else { 2 })
            .collect(),
    );

    println!("\n=== trees ===");
    for (outdeg, sparsity) in [(128u32, 0u32), (128, 4), (3, 0)] {
        let tree = TreeGen {
            depth: 4,
            outdegree: outdeg,
            sparsity,
            seed: 11,
        }
        .generate();
        let (template, why) = advise_tree(&tree);
        println!(
            "outdegree {outdeg}, sparsity {sparsity} ({} nodes): {template} — {why}",
            tree.num_nodes()
        );
    }
}
