//! npar-analyze walkthrough: static kernel analysis, proof-carrying scan
//! elision, and the trace-based template advisor.
//!
//! ```sh
//! cargo run --release --example advisor
//! ```
//!
//! Two kernels run under `CheckLevel::Strict`:
//!
//! * a **regular** grid-stride saxpy — every block records the same
//!   canonical trace, so after one checked-clean probe block the analyzer
//!   promotes the class and the checker *elides* the per-block scans of
//!   every later fingerprint-identical block;
//! * an **irregular** thread-mapped loop with power-law trip counts — no
//!   two blocks of one grid fingerprint alike, so the dynamic checker
//!   keeps scanning nearly every block; only the probe's identical twin
//!   in later identical grids ever elides (elision may only ever skip
//!   work the checker would have passed).
//!
//! The analysis report carries four verdicts per kernel class (barrier
//! structure, shared out-of-bounds, shared races, global races) plus
//! launch-shape and occupancy facts; `KernelAnalysis::advise()` turns
//! those facts into a template + consolidation recommendation, the
//! trace-level counterpart of `npar_core::advise_loop` (which works from
//! host-side loop shape instead).

use std::sync::Arc;

use npar::sim::{CheckLevel, GBuf, Gpu, LaunchConfig, ThreadCtx, ThreadKernel};

/// Regular: coalesced saxpy, identical trace in every block.
struct Saxpy {
    n: usize,
    x: GBuf<f32>,
    y: GBuf<f32>,
}

impl ThreadKernel for Saxpy {
    fn name(&self) -> &str {
        "saxpy"
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let i = t.global_id();
        if i < self.n {
            t.ld(&self.x, i);
            t.ld(&self.y, i);
            t.compute(2);
            t.st(&self.y, i);
        }
    }
}

/// Irregular: power-law per-lane trip counts, like a high-variance degree
/// distribution under plain thread mapping.
struct Skewed {
    n: usize,
    data: GBuf<f32>,
}

impl ThreadKernel for Skewed {
    fn name(&self) -> &str {
        "skewed-loop"
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let i = t.global_id();
        // A few threads do hundreds of trips; most do one.
        let trips = if i.is_multiple_of(97) { 400 } else { 1 + i % 3 };
        for j in 0..trips {
            t.ld(&self.data, (i * 31 + j * 17) % self.n);
            t.compute(1);
        }
    }
}

fn main() {
    let mut gpu = Gpu::k20().with_check(CheckLevel::Strict);

    // --- regular kernel: launch the same grid a few times -------------
    let n = 64 * 128;
    let x = gpu.alloc::<f32>(n);
    let y = gpu.alloc::<f32>(n);
    let saxpy = Arc::new(Saxpy { n, x, y });
    for _ in 0..4 {
        gpu.launch(saxpy.clone(), LaunchConfig::new(64, 128))
            .expect("saxpy is hazard-free");
    }

    // --- irregular kernel ---------------------------------------------
    let data = gpu.alloc::<f32>(n);
    let skewed = Arc::new(Skewed { n, data });
    for _ in 0..4 {
        gpu.launch(skewed.clone(), LaunchConfig::new(64, 128))
            .expect("skewed loop is hazard-free");
    }

    let report = gpu.synchronize();

    // Elision is visible in the run stats and the checker report: the
    // saxpy blocks after the first grid's probe were never scanned.
    println!(
        "blocks elided this run: {} (of {} total)",
        report.sim.elided,
        report.total().blocks
    );
    println!("checker: {}", gpu.take_check_report());

    // The per-class analysis: verdicts, structural facts, and advice.
    let analysis = gpu.analysis();
    println!("\n{analysis}");
    for k in &analysis.kernels {
        println!("advice for `{}`:\n  {}\n", k.kernel, k.advise());
    }
}
