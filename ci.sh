#!/usr/bin/env bash
# Repository CI gate: formatting, lints, build, tests, docs freshness, and
# the benchmark gates. simbench fails on a >2x throughput regression, a
# timing-pass fast-path gain dropping below 0.7x of the stored ratio, or
# the heterogeneous (divergent) workload paying >3% wall for the fast
# paths — all against the checked-in crates/bench/BENCH_sim_baseline.json
# (refresh with --update-baseline). loadtest gates the serving layer the
# same way against crates/bench/BENCH_serve_baseline.json, plus its
# structural gates: dup-heavy replay >= 3x cold throughput, warm-restart
# cache-hit rate >= 90%, and byte-identical reports across cache paths.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --check
# clippy.toml bans nondeterminism hazards (partial_cmp / comparator sorts
# on floats, std HashMap/HashSet) workspace-wide; --workspace also lints
# the bench member, which the root package does not depend on.
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
# Once pinned to the serial executor, once at the machine's default thread
# count (the parallel executor when >1 core) — reports must be bit-identical
# either way (tests/parallel_differential.rs), so both runs must pass. The
# scheduler-equivalence suite (tests/sched_differential.rs) rides in both
# passes, pinning fast-forward on/off byte-equality at each thread count.
NPAR_THREADS=1 cargo test -q
cargo test -q
# The scheduler-equivalence suite rides again with the timing pass forced
# parallel (DESIGN.md §13): NPAR_TIMING_THREADS=8 must stay byte-identical
# to the serial default at 1 and 8 host threads. (The suite's own matrix
# already pins --timing-threads 1/2/8 per test; these runs additionally
# flip the *default* every other differential test constructs its Gpus
# with.)
NPAR_THREADS=1 NPAR_TIMING_THREADS=8 cargo test -q --test sched_differential
NPAR_THREADS=8 NPAR_TIMING_THREADS=8 cargo test -q --test sched_differential
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps
cargo test -q --doc --workspace
# Docs freshness: every flag runner::parse accepts must have a row in
# README.md's flags table (fails naming the missing flag).
cargo run --release -p npar-bench --bin docs_check
# Static-analysis gate: no kernel class's verdict may drop from `proven`
# (crates/bench/ANALYZE_baseline.json; refresh with --update-baseline).
cargo run --release -p npar-bench --bin analyze_all
cargo run --release -p npar-bench --bin simbench
# Serving gate: loadtest replays the mixed workload cold / dup-heavy /
# warm-restarted (SERVING.md) and fails on any structural or baseline gate.
cargo run --release -p npar-bench --bin loadtest
