#!/usr/bin/env bash
# Repository CI gate: formatting, lints, build, tests, and the simulator
# throughput benchmark (fails on a >2x regression against the checked-in
# crates/bench/BENCH_sim_baseline.json — refresh with
#   cargo run --release -p npar-bench --bin simbench -- --update-baseline).
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --check
cargo clippy --all-targets -- -D warnings
cargo build --release
# Once pinned to the serial executor, once at the machine's default thread
# count (the parallel executor when >1 core) — reports must be bit-identical
# either way (tests/parallel_differential.rs), so both runs must pass.
NPAR_THREADS=1 cargo test -q
cargo test -q
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps
cargo test -q --doc --workspace
cargo run --release -p npar-bench --bin simbench
