//! Offline stand-in for the `rand_chacha` crate: [`ChaCha8Rng`], a real
//! ChaCha (8-round) keystream generator seeded via SplitMix64 key
//! expansion. Deterministic given a seed; value streams are NOT
//! bit-compatible with crates.io `rand_chacha` (which uses a different
//! `seed_from_u64` expansion), which is fine — the workspace only relies
//! on determinism and statistical quality.

#![warn(missing_docs)]

pub use rand::{RngCore, SeedableRng};

/// Re-export module mirroring `rand_chacha::rand_core`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const CHACHA_ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// ChaCha reduced to 8 rounds (4 column + 4 diagonal passes), the
/// speed-oriented variant `rand` ships as its small-state RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + constant + counter block template.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next word index within `block` (16 = exhausted).
    word: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (w, s) in working.iter_mut().zip(self.state.iter()) {
            *w = w.wrapping_add(*s);
        }
        self.block = working;
        self.word = 0;
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])) + 1;
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit key.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..4 {
            let k = next();
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // counter = 0, nonce = 0.
        ChaCha8Rng {
            state,
            block: [0; 16],
            word: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.word + 2 > 16 {
            self.refill();
        }
        let lo = self.block[self.word];
        let hi = self.block[self.word + 1];
        self.word += 2;
        u64::from(hi) << 32 | u64::from(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(2015);
        let mut b = ChaCha8Rng::seed_from_u64(2015);
        let mut c = ChaCha8Rng::seed_from_u64(2016);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn reasonable_uniformity() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let mean = (0..n).map(|_| r.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let ones: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum();
        let frac = f64::from(ones) / 64_000.0;
        assert!((frac - 0.5).abs() < 0.02, "bit balance {frac}");
    }
}
