//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the narrow API subset it actually uses: [`RngCore`] / [`SeedableRng`] /
//! [`Rng`] with `gen`, `gen_range` and `gen_bool`, plus
//! [`distributions::Uniform`]. Semantics match `rand 0.8` closely enough
//! for the workspace (deterministic streams given a seed; uniform ranges
//! are unbiased via rejection sampling), but the exact value streams are
//! NOT bit-compatible with crates.io `rand`.

#![warn(missing_docs)]

/// A source of random `u64`s. The only primitive the shim needs.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    /// Draw one uniformly random value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Integer types usable as `gen_range` bounds.
pub trait UniformInt: Copy + PartialOrd {
    /// Widen to u64 (order-preserving within the used domains).
    fn to_u64(self) -> u64;
    /// Narrow back from u64.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

/// Unbiased uniform draw in `[0, span)` by rejection of the biased tail.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw uniformly from the range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "gen_range: empty range");
        T::from_u64(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "gen_range: empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + uniform_below(rng, span + 1))
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::draw(rng);
        self.start + (self.end - self.start) * u
    }
}

/// The user-facing convenience trait, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p));
        f64::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// The `rand::distributions` subset: [`Distribution`] and [`Uniform`].
pub mod distributions {
    use super::{uniform_below, RngCore, UniformInt};

    /// A sampleable distribution.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform integer distribution over a fixed range.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        lo: T,
        /// Exclusive span measured in u64.
        span: u64,
    }

    impl<T: UniformInt> Uniform<T> {
        /// Uniform over `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo.to_u64() < hi.to_u64(), "Uniform::new: empty range");
            Uniform {
                lo,
                span: hi.to_u64() - lo.to_u64(),
            }
        }

        /// Uniform over `[lo, hi]`.
        pub fn new_inclusive(lo: T, hi: T) -> Self {
            assert!(lo.to_u64() <= hi.to_u64(), "Uniform::new_inclusive: empty");
            Uniform {
                lo,
                span: hi.to_u64() - lo.to_u64() + 1,
            }
        }
    }

    impl<T: UniformInt> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::from_u64(self.lo.to_u64() + uniform_below(rng, self.span))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Counter(42);
        for _ in 0..1000 {
            let v: u32 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = r.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_distribution_covers_range() {
        use distributions::{Distribution, Uniform};
        let mut r = Counter(7);
        let d = Uniform::new_inclusive(3u32, 5u32);
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[d.sample(&mut r) as usize] = true;
        }
        assert!(seen[3] && seen[4] && seen[5]);
        assert!(!seen[0] && !seen[1] && !seen[2]);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
