//! # npar-core — the paper's parallelization templates
//!
//! The primary contribution of *"Nested Parallelism on GPU"* (Li, Wu,
//! Becchi — ICPP 2015): compiler-style templates that take a user's simple
//! loop or recursion and generate GPU variants with different work-to-
//! hardware mappings.
//!
//! * [`loops`] — irregular nested loops (Figure 1): thread-mapped baseline,
//!   block-mapped, dual-queue, delayed buffer (shared / global), and the
//!   naive / optimized dynamic-parallelism variants.
//! * [`recursive`] — recursive tree reductions (Figure 3): flat
//!   (recursion-eliminated), naive recursive and hierarchical recursive,
//!   with optional extra per-block streams.
//!
//! Every template calls the user's functional hooks exactly once per unit
//! of work, so application results are identical across templates — only
//! the modeled timing and profile differ. That invariant is what the paper
//! (and this crate's tests) lean on when comparing performance.

#![warn(missing_docs)]

pub mod advisor;
pub mod loops;
pub mod recursive;
mod reduce;

pub use advisor::{advise_loop, advise_tree, LoopAdvice, LoopShape};
pub use loops::{run_loop, IrregularLoop, LoopParams, LoopTemplate};
pub use recursive::{run_recursive, RecParams, RecTemplate, TreeReduce};
