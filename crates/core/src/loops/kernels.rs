//! Kernel implementations behind the loop templates. Each struct is the
//! code a template-aware compiler would generate from the user's
//! [`IrregularLoop`]; the host-side drivers live in [`super`].

use npar_sim::SyncCell;
use std::sync::Arc;

use npar_sim::{
    BlockCtx, BlockState, GBuf, Kernel, KernelRef, LaunchConfig, Stream, ThreadCtx, ThreadKernel,
};

use super::spec::IrregularLoop;
use crate::reduce::emit_block_reduce;

/// Shared-memory byte offset where [`DbufSharedKernel`] stages its block
/// reduction: right above the delayed-buffer region.
const REDUCE_BASE: u32 = 4096;

/// Staging slots in the shared-memory delayed buffer: the 4096-byte region
/// holds one tail counter plus 1023 buffered indices.
const DBUF_CAP: usize = (REDUCE_BASE as usize - 4) / 4;

pub(crate) type App = Arc<dyn IrregularLoop>;

fn serial_iteration(app: &App, t: &mut ThreadCtx<'_, '_>, i: usize) {
    app.outer_begin(t, i);
    let f = app.inner_len(i);
    for j in 0..f {
        app.body(t, i, j);
    }
    app.outer_end(t, i);
}

/// Fig 1(a): baseline thread-mapped kernel (grid-stride outer loop, inner
/// loop serialized per thread).
pub(crate) struct ThreadMappedKernel {
    pub name: String,
    pub app: App,
}

impl ThreadKernel for ThreadMappedKernel {
    fn name(&self) -> &str {
        &self.name
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let n = self.app.outer_len();
        let stride = t.grid_threads();
        let mut i = t.global_id();
        while i < n {
            serial_iteration(&self.app, t, i);
            i += stride;
        }
    }
}

/// Where a block-mapped kernel takes its outer iterations from.
pub(crate) enum RowSource {
    /// All `n` outer iterations, block-cyclic.
    All(usize),
    /// Indices staged in a device queue (dual-queue / dbuf-global phase 2).
    Queue {
        items: Arc<Vec<u32>>,
        buf: GBuf<u32>,
    },
}

impl RowSource {
    fn len(&self) -> usize {
        match self {
            RowSource::All(n) => *n,
            RowSource::Queue { items, .. } => items.len(),
        }
    }
}

/// Block-mapped kernel: one outer iteration per block at a time, inner
/// iterations strided over the block's threads, with a shared-memory
/// reduction when the loop accumulates.
pub(crate) struct BlockMappedKernel {
    pub name: String,
    pub app: App,
    pub source: RowSource,
}

impl BlockMappedKernel {
    /// Process outer iteration `i` with the whole block. `reduce_base` is
    /// the shared-memory byte offset where the reduction (if any) stages
    /// its partials; callers must declare `block_dim * 4` bytes above it.
    pub(crate) fn block_iteration(app: &App, blk: &mut BlockCtx<'_>, i: usize, reduce_base: u32) {
        let bd = blk.block_dim() as usize;
        blk.for_each_thread(|t| {
            app.outer_begin(t, i);
            let f = app.inner_len(i);
            let mut j = t.thread_idx() as usize;
            while j < f {
                app.body(t, i, j);
                j += bd;
            }
        });
        if app.has_reduction() {
            emit_block_reduce(blk, bd as u32, reduce_base);
        }
        blk.for_each_thread(|t| {
            if t.is_leader() {
                app.outer_end(t, i);
            }
        });
    }
}

impl Kernel for BlockMappedKernel {
    fn name(&self) -> &str {
        &self.name
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let count = self.source.len();
        let gd = blk.grid_dim() as usize;
        let mut k = blk.block_idx() as usize;
        let mut first = true;
        while k < count {
            if !first {
                blk.sync();
            }
            first = false;
            let i = match &self.source {
                RowSource::All(_) => k,
                RowSource::Queue { items, buf } => {
                    let buf = *buf;
                    blk.for_each_thread(|t| t.ld(&buf, k));
                    items[k] as usize
                }
            };
            Self::block_iteration(&self.app, blk, i, 0);
            k += gd;
        }
    }
}

/// Dual-queue phase 1: classify every outer iteration into the small or
/// large queue by `lb_thres` (atomic tail bump + element store).
pub(crate) struct QueueBuildKernel {
    pub name: String,
    pub app: App,
    pub lb_thres: usize,
    pub tails: GBuf<u32>,
    pub small_buf: GBuf<u32>,
    pub large_buf: GBuf<u32>,
    pub queues: Arc<SyncCell<(Vec<u32>, Vec<u32>)>>,
}

impl ThreadKernel for QueueBuildKernel {
    fn name(&self) -> &str {
        &self.name
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let n = self.app.outer_len();
        let stride = t.grid_threads();
        let mut i = t.global_id();
        while i < n {
            self.app.inner_len_cost(t, i);
            let f = self.app.inner_len(i);
            let mut q = self.queues.borrow_mut();
            if f <= self.lb_thres {
                t.atomic(&self.tails, 0);
                t.st(&self.small_buf, q.0.len());
                q.0.push(i as u32);
            } else {
                t.atomic(&self.tails, 1);
                t.st(&self.large_buf, q.1.len());
                q.1.push(i as u32);
            }
            i += stride;
        }
    }
}

/// Dual-queue phase 2a: thread-mapped processing of a staged queue.
pub(crate) struct QueueThreadKernel {
    pub name: String,
    pub app: App,
    pub items: Arc<Vec<u32>>,
    pub buf: GBuf<u32>,
}

impl ThreadKernel for QueueThreadKernel {
    fn name(&self) -> &str {
        &self.name
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let n = self.items.len();
        let stride = t.grid_threads();
        let mut k = t.global_id();
        while k < n {
            t.ld(&self.buf, k);
            serial_iteration(&self.app, t, self.items[k] as usize);
            k += stride;
        }
    }
}

/// Delayed-buffer (global) phase 1: process small iterations inline,
/// append large ones to a global buffer.
pub(crate) struct DbufGlobalFilterKernel {
    pub name: String,
    pub app: App,
    pub lb_thres: usize,
    pub tail: GBuf<u32>,
    pub buf: GBuf<u32>,
    pub buffered: Arc<SyncCell<Vec<u32>>>,
}

impl ThreadKernel for DbufGlobalFilterKernel {
    fn name(&self) -> &str {
        &self.name
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let n = self.app.outer_len();
        let stride = t.grid_threads();
        let mut i = t.global_id();
        while i < n {
            self.app.inner_len_cost(t, i);
            let f = self.app.inner_len(i);
            if f <= self.lb_thres {
                serial_iteration(&self.app, t, i);
            } else {
                let mut b = self.buffered.borrow_mut();
                t.atomic(&self.tail, 0);
                t.st(&self.buf, b.len());
                b.push(i as u32);
            }
            i += stride;
        }
    }
}

/// Delayed-buffer (shared): a single kernel. Phase A thread-maps small
/// iterations and appends large ones to a per-block shared-memory buffer;
/// after a barrier, phase B processes the block's own buffer block-mapped.
/// No cross-block redistribution happens — the work imbalance the paper
/// analyzes for small `lbTHRES` values.
pub(crate) struct DbufSharedKernel {
    pub name: String,
    pub app: App,
    pub lb_thres: usize,
}

impl Kernel for DbufSharedKernel {
    fn name(&self) -> &str {
        &self.name
    }
    fn block_state(&self, _b: u32) -> BlockState {
        BlockState::new(Vec::<u32>::new())
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let app = &self.app;
        let n = app.outer_len();
        let lb = self.lb_thres;
        blk.for_each_thread(|t| {
            let stride = t.grid_threads();
            let mut i = t.global_id();
            while i < n {
                app.inner_len_cost(t, i);
                let f = app.inner_len(i);
                let full = t.state::<Vec<u32>>().len() >= DBUF_CAP;
                if f <= lb || full {
                    // Small iteration — or the fixed-size buffer overflowed
                    // (the real template's fallback: process inline rather
                    // than write past the staging region).
                    serial_iteration(app, t, i);
                } else {
                    t.shared_atomic(0);
                    let buf = t.state::<Vec<u32>>();
                    let pos = buf.len() as u32;
                    buf.push(i as u32);
                    t.shared_st(4 + pos * 4);
                }
                i += stride;
            }
        });
        blk.sync();
        let items = blk.state::<Vec<u32>>().clone();
        for (idx, &iu) in items.iter().enumerate() {
            if idx > 0 {
                blk.sync();
            }
            let slot = 4 + idx as u32 * 4;
            blk.for_each_thread(|t| t.shared_ld(slot));
            BlockMappedKernel::block_iteration(app, blk, iu as usize, REDUCE_BASE);
        }
    }
}

/// Naive dynamic parallelism: every thread meeting a large iteration
/// launches a dedicated child grid for it (into the block's default device
/// stream, so launches from one block serialize — the CUDA semantics).
pub(crate) struct DparNaiveKernel {
    pub name: String,
    pub app: App,
    pub lb_thres: usize,
    pub child_block: u32,
    pub max_grid: u32,
    /// Outer iterations handed to child grids, recorded for the host-side
    /// [`OuterEndKernel`] epilogue (the inner-length classification can
    /// change while the grid runs, so the set must be captured here).
    pub launched: Arc<SyncCell<Vec<u32>>>,
}

impl ThreadKernel for DparNaiveKernel {
    fn name(&self) -> &str {
        &self.name
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let n = self.app.outer_len();
        let stride = t.grid_threads();
        let mut i = t.global_id();
        while i < n {
            self.app.inner_len_cost(t, i);
            let f = self.app.inner_len(i);
            if f <= self.lb_thres {
                serial_iteration(&self.app, t, i);
            } else {
                let child: KernelRef = Arc::new(DparInnerKernel {
                    name: format!("{}-child", self.name),
                    app: Arc::clone(&self.app),
                    i,
                });
                self.launched.borrow_mut().push(i as u32);
                t.launch(
                    &child,
                    LaunchConfig::cover(f, self.child_block, self.max_grid),
                    Stream::Default,
                );
            }
            i += stride;
        }
    }
}

/// Child grid of dpar-naive: thread-maps one outer iteration's inner loop.
pub(crate) struct DparInnerKernel {
    pub name: String,
    pub app: App,
    pub i: usize,
}

impl ThreadKernel for DparInnerKernel {
    fn name(&self) -> &str {
        &self.name
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let f = self.app.inner_len(self.i);
        let stride = t.grid_threads();
        let mut j = t.global_id();
        if j < f {
            self.app.outer_begin(t, self.i);
        }
        let mut any = false;
        while j < f {
            self.app.body(t, self.i, j);
            any = true;
            j += stride;
        }
        if any && self.app.has_reduction() {
            self.app.combine_atomic(t, self.i);
        }
        // `outer_end` runs in the host-side [`OuterEndKernel`] epilogue:
        // no thread of this grid can finalize the iteration without racing
        // against the other blocks' combines.
    }
}

/// Host-launched epilogue of dpar-naive: runs `outer_end` for every outer
/// iteration that was handed to a child grid. The child kernels combine
/// with atomics but no single thread of theirs can know when the whole
/// grid is done; the reference implementations finalize from a follow-up
/// kernel, which also keeps the cross-block hazard rules satisfied.
pub(crate) struct OuterEndKernel {
    pub name: String,
    pub app: App,
    pub items: Arc<Vec<u32>>,
    pub buf: GBuf<u32>,
}

impl ThreadKernel for OuterEndKernel {
    fn name(&self) -> &str {
        &self.name
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let n = self.items.len();
        let stride = t.grid_threads();
        let mut k = t.global_id();
        while k < n {
            t.ld(&self.buf, k);
            self.app.outer_end(t, self.items[k] as usize);
            k += stride;
        }
    }
}

/// Optimized dynamic parallelism: phase A buffers large iterations per
/// block (records to a global staging array so the child can read them);
/// after the barrier the block leader launches ONE child grid covering the
/// whole buffer — fewer, larger nested kernels.
pub(crate) struct DparOptKernel {
    pub name: String,
    pub app: App,
    pub lb_thres: usize,
    pub child_block: u32,
    pub stage: GBuf<u32>,
}

impl Kernel for DparOptKernel {
    fn name(&self) -> &str {
        &self.name
    }
    fn block_state(&self, _b: u32) -> BlockState {
        BlockState::new(Vec::<u32>::new())
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let app = &self.app;
        let n = app.outer_len();
        let lb = self.lb_thres;
        let stage = self.stage;
        blk.for_each_thread(|t| {
            let stride = t.grid_threads();
            let mut i = t.global_id();
            while i < n {
                app.inner_len_cost(t, i);
                let f = app.inner_len(i);
                if f <= lb {
                    serial_iteration(app, t, i);
                } else {
                    t.shared_atomic(0);
                    t.st(&stage, i);
                    t.state::<Vec<u32>>().push(i as u32);
                }
                i += stride;
            }
        });
        blk.sync();
        let items = Arc::new(blk.state::<Vec<u32>>().clone());
        if items.is_empty() {
            return;
        }
        let child: KernelRef = Arc::new(DparOptChildKernel {
            name: format!("{}-child", self.name),
            app: Arc::clone(app),
            items: Arc::clone(&items),
            stage,
        });
        let mut cfg = LaunchConfig::new(items.len() as u32, self.child_block);
        if app.has_reduction() {
            // The child's block-mapped iterations stage their reduction
            // partials at shared offset 0.
            cfg.shared_mem_bytes = self.child_block * 4;
        }
        blk.for_each_thread(|t| {
            if t.is_leader() {
                t.launch(&child, cfg, Stream::Default);
            }
        });
    }
}

/// Child grid of dpar-opt: one block per buffered iteration, processed
/// block-mapped.
pub(crate) struct DparOptChildKernel {
    pub name: String,
    pub app: App,
    pub items: Arc<Vec<u32>>,
    pub stage: GBuf<u32>,
}

impl Kernel for DparOptChildKernel {
    fn name(&self) -> &str {
        &self.name
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let k = blk.block_idx() as usize;
        let i = self.items[k] as usize;
        let stage = self.stage;
        blk.for_each_thread(|t| t.ld(&stage, i));
        BlockMappedKernel::block_iteration(&self.app, blk, i, 0);
    }
}
