//! Parallelization templates for irregular nested loops (paper §II.B).
//!
//! The user implements [`IrregularLoop`] once (the Figure 1(a) "simple
//! code"); [`run_loop`] generates and executes the requested template on a
//! simulated GPU and returns its profiled [`Report`]. All templates invoke
//! `body(i, j)` exactly once per iteration pair, so application state is
//! identical whichever template ran — the correctness property the test
//! suite pins down.

mod kernels;
mod spec;

use npar_sim::SyncCell;
use std::sync::Arc;

use npar_sim::{Gpu, LaunchConfig, Report};

pub use spec::{IrregularLoop, LoopParams, LoopTemplate};

use kernels::{
    App, BlockMappedKernel, DbufGlobalFilterKernel, DbufSharedKernel, DparNaiveKernel,
    DparOptKernel, OuterEndKernel, QueueBuildKernel, QueueThreadKernel, RowSource,
    ThreadMappedKernel,
};

/// Shared-memory reservation for kernels that stage a per-block delayed
/// buffer (constrains occupancy like the real templates do).
const DBUF_SHARED_BYTES: u32 = 4096;

/// Shared-memory bytes a block-mapped phase needs for its reduction
/// staging area (`block * 4` partials at the reduce base), zero when the
/// loop has no reduction.
fn reduce_shared(app: &dyn IrregularLoop, block: u32) -> u32 {
    if app.has_reduction() {
        block * 4
    } else {
        0
    }
}

/// Run `app` under `template` and return the batch report.
pub fn run_loop(
    gpu: &mut Gpu,
    app: Arc<dyn IrregularLoop>,
    template: LoopTemplate,
    params: &LoopParams,
) -> Report {
    let n = app.outer_len();
    if n == 0 {
        return gpu.synchronize();
    }
    match template {
        LoopTemplate::ThreadMapped => thread_mapped(gpu, app, params),
        LoopTemplate::BlockMapped => block_mapped(gpu, app, params),
        LoopTemplate::StreamMapped => stream_mapped(gpu, app, params),
        LoopTemplate::DualQueue => dual_queue(gpu, app, params),
        LoopTemplate::DbufShared => dbuf_shared(gpu, app, params),
        LoopTemplate::DbufGlobal => dbuf_global(gpu, app, params),
        LoopTemplate::DparNaive => dpar_naive(gpu, app, params),
        LoopTemplate::DparOpt => dpar_opt(gpu, app, params),
    }
}

fn cover(n: usize, block: u32, params: &LoopParams) -> LaunchConfig {
    LaunchConfig::cover(n, block, params.max_grid)
}

fn thread_mapped(gpu: &mut Gpu, app: App, params: &LoopParams) -> Report {
    let n = app.outer_len();
    let name = format!("{}/thread-mapped", app.name());
    let k = Arc::new(ThreadMappedKernel { name, app });
    gpu.launch(k, cover(n, params.thread_block, params))
        .expect("thread-mapped launch");
    gpu.synchronize()
}

fn stream_mapped(gpu: &mut Gpu, app: App, params: &LoopParams) -> Report {
    let n = app.outer_len();
    let streams = params.host_streams.max(1) as usize;
    let chunk = n.div_ceil(streams);
    for (s, start) in (0..n).step_by(chunk.max(1)).enumerate() {
        let len = chunk.min(n - start);
        let name = format!("{}/stream-mapped", app.name());
        let k = Arc::new(ThreadMappedKernel {
            name,
            app: Arc::new(RangeView {
                app: Arc::clone(&app),
                start,
                len,
            }),
        });
        gpu.launch_in(
            k,
            cover(len, params.thread_block, params),
            npar_sim::Stream::Slot(s as u32),
        )
        .expect("stream-mapped launch");
    }
    gpu.synchronize()
}

/// A contiguous window onto another loop's outer range (stream-mapped
/// chunks).
struct RangeView {
    app: App,
    start: usize,
    len: usize,
}

impl IrregularLoop for RangeView {
    fn name(&self) -> &str {
        self.app.name()
    }
    fn outer_len(&self) -> usize {
        self.len
    }
    fn inner_len(&self, i: usize) -> usize {
        self.app.inner_len(self.start + i)
    }
    fn inner_len_cost(&self, t: &mut npar_sim::ThreadCtx<'_, '_>, i: usize) {
        self.app.inner_len_cost(t, self.start + i);
    }
    fn outer_begin(&self, t: &mut npar_sim::ThreadCtx<'_, '_>, i: usize) {
        self.app.outer_begin(t, self.start + i);
    }
    fn body(&self, t: &mut npar_sim::ThreadCtx<'_, '_>, i: usize, j: usize) {
        self.app.body(t, self.start + i, j);
    }
    fn outer_end(&self, t: &mut npar_sim::ThreadCtx<'_, '_>, i: usize) {
        self.app.outer_end(t, self.start + i);
    }
    fn has_reduction(&self) -> bool {
        self.app.has_reduction()
    }
    fn combine_atomic(&self, t: &mut npar_sim::ThreadCtx<'_, '_>, i: usize) {
        self.app.combine_atomic(t, self.start + i);
    }
}

fn block_mapped(gpu: &mut Gpu, app: App, params: &LoopParams) -> Report {
    let n = app.outer_len();
    let name = format!("{}/block-mapped", app.name());
    let shared = reduce_shared(app.as_ref(), params.block_block);
    let k = Arc::new(BlockMappedKernel {
        name,
        app,
        source: RowSource::All(n),
    });
    let grid = (n as u32).min(params.max_grid).max(1);
    gpu.launch(
        k,
        LaunchConfig::with_shared(grid, params.block_block, shared),
    )
    .expect("block-mapped launch");
    gpu.synchronize()
}

fn dual_queue(gpu: &mut Gpu, app: App, params: &LoopParams) -> Report {
    let n = app.outer_len();
    let tails = gpu.alloc::<u32>(2);
    let small_buf = gpu.alloc::<u32>(n);
    let large_buf = gpu.alloc::<u32>(n);
    let queues = Arc::new(SyncCell::new((Vec::new(), Vec::new())));
    let build = Arc::new(QueueBuildKernel {
        name: format!("{}/dual-queue/build", app.name()),
        app: Arc::clone(&app),
        lb_thres: params.lb_thres,
        tails,
        small_buf,
        large_buf,
        queues: Arc::clone(&queues),
    });
    gpu.launch(build, cover(n, params.thread_block, params))
        .expect("queue-build launch");

    let (small, large) = std::mem::take(&mut *queues.borrow_mut());
    if !small.is_empty() {
        let k = Arc::new(QueueThreadKernel {
            name: format!("{}/dual-queue/small", app.name()),
            app: Arc::clone(&app),
            items: Arc::new(small.clone()),
            buf: small_buf,
        });
        gpu.launch(k, cover(small.len(), params.thread_block, params))
            .expect("small-queue launch");
    }
    if !large.is_empty() {
        let grid = (large.len() as u32).min(params.max_grid);
        let shared = reduce_shared(app.as_ref(), params.block_block);
        let k = Arc::new(BlockMappedKernel {
            name: format!("{}/dual-queue/large", app.name()),
            app,
            source: RowSource::Queue {
                items: Arc::new(large),
                buf: large_buf,
            },
        });
        gpu.launch(
            k,
            LaunchConfig::with_shared(grid, params.block_block, shared),
        )
        .expect("large-queue launch");
    }
    gpu.synchronize()
}

fn dbuf_global(gpu: &mut Gpu, app: App, params: &LoopParams) -> Report {
    let n = app.outer_len();
    let tail = gpu.alloc::<u32>(1);
    let buf = gpu.alloc::<u32>(n);
    let buffered = Arc::new(SyncCell::new(Vec::new()));
    let filter = Arc::new(DbufGlobalFilterKernel {
        name: format!("{}/dbuf-global/filter", app.name()),
        app: Arc::clone(&app),
        lb_thres: params.lb_thres,
        tail,
        buf,
        buffered: Arc::clone(&buffered),
    });
    gpu.launch(filter, cover(n, params.thread_block, params))
        .expect("dbuf-global filter launch");

    let items = std::mem::take(&mut *buffered.borrow_mut());
    if !items.is_empty() {
        let grid = (items.len() as u32).min(params.max_grid);
        let shared = reduce_shared(app.as_ref(), params.block_block);
        let k = Arc::new(BlockMappedKernel {
            name: format!("{}/dbuf-global/buffer", app.name()),
            app,
            source: RowSource::Queue {
                items: Arc::new(items),
                buf,
            },
        });
        gpu.launch(
            k,
            LaunchConfig::with_shared(grid, params.block_block, shared),
        )
        .expect("dbuf-global buffer launch");
    }
    gpu.synchronize()
}

fn dbuf_shared(gpu: &mut Gpu, app: App, params: &LoopParams) -> Report {
    let n = app.outer_len();
    let name = format!("{}/dbuf-shared", app.name());
    // The staging region sits below the reduction partials, so the block
    // needs both (the phase-B reduction runs at REDUCE_BASE).
    let shared = DBUF_SHARED_BYTES + reduce_shared(app.as_ref(), params.thread_block);
    let k = Arc::new(DbufSharedKernel {
        name,
        app,
        lb_thres: params.lb_thres,
    });
    let mut cfg = cover(n, params.thread_block, params);
    cfg.shared_mem_bytes = shared;
    gpu.launch(k, cfg).expect("dbuf-shared launch");
    gpu.synchronize()
}

fn dpar_naive(gpu: &mut Gpu, app: App, params: &LoopParams) -> Report {
    let n = app.outer_len();
    let name = format!("{}/dpar-naive", app.name());
    let launched = Arc::new(SyncCell::new(Vec::new()));
    let k = Arc::new(DparNaiveKernel {
        name,
        app: Arc::clone(&app),
        lb_thres: params.lb_thres,
        child_block: params.block_block,
        max_grid: params.max_grid,
        launched: Arc::clone(&launched),
    });
    gpu.launch(k, cover(n, params.thread_block, params))
        .expect("dpar-naive launch");
    // Epilogue: finalize the iterations the child grids processed (their
    // combines are atomic; no child thread can run `outer_end` without
    // racing the other blocks of its grid).
    let items = std::mem::take(&mut *launched.borrow_mut());
    if !items.is_empty() {
        let buf = gpu.alloc::<u32>(items.len());
        let len = items.len();
        let k = Arc::new(OuterEndKernel {
            name: format!("{}/dpar-naive/outer-end", app.name()),
            app,
            items: Arc::new(items),
            buf,
        });
        gpu.launch(k, cover(len, params.thread_block, params))
            .expect("dpar-naive epilogue launch");
    }
    gpu.synchronize()
}

fn dpar_opt(gpu: &mut Gpu, app: App, params: &LoopParams) -> Report {
    let n = app.outer_len();
    let stage = gpu.alloc::<u32>(n);
    let name = format!("{}/dpar-opt", app.name());
    let k = Arc::new(DparOptKernel {
        name,
        app,
        lb_thres: params.lb_thres,
        child_block: params.block_block,
        stage,
    });
    let mut cfg = cover(n, params.thread_block, params);
    cfg.shared_mem_bytes = DBUF_SHARED_BYTES;
    gpu.launch(k, cfg).expect("dpar-opt launch");
    gpu.synchronize()
}
