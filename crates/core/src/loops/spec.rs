//! The irregular-nested-loop abstraction — the "simple code" of the paper's
//! Figure 1(a) that a programmer writes once; the templates in this module's
//! siblings generate every parallelization variant from it.

use npar_sim::ThreadCtx;

/// An irregular nested loop:
///
/// ```text
/// for i in 0..outer_len() {          // parallelizable
///     outer_begin(i);
///     for j in 0..inner_len(i) {     // parallelizable, trip count varies!
///         body(i, j);
///     }
///     outer_end(i);
/// }
/// ```
///
/// Implementations do two things in each hook: perform the *functional* work
/// on their own state (so results are identical under every template) and
/// record the corresponding *timing* instructions on the [`ThreadCtx`].
/// A hook must record the same instruction pattern no matter which template
/// invokes it; the templates differ only in how iterations map to threads,
/// blocks, buffers and nested grids.
///
/// `Send + Sync` is required because kernels (which hold the loop) may be
/// traced on host worker threads (see [`npar_sim::Gpu::with_threads`]);
/// mutable functional state belongs in [`npar_sim::SyncCell`].
pub trait IrregularLoop: Send + Sync {
    /// Name used to key profiler metrics.
    fn name(&self) -> &str;

    /// Outer trip count.
    fn outer_len(&self) -> usize;

    /// Inner trip count `f(i)` — the irregularity.
    fn inner_len(&self, i: usize) -> usize;

    /// Record the cost of *discovering* `f(i)` (e.g. two `row_offsets`
    /// loads for CSR). Called by templates that inspect sizes to classify
    /// iterations (dual-queue, delayed-buffer, dynamic parallelism).
    fn inner_len_cost(&self, t: &mut ThreadCtx<'_, '_>, _i: usize) {
        t.compute(1);
    }

    /// Prologue run by every thread participating in outer iteration `i`.
    fn outer_begin(&self, _t: &mut ThreadCtx<'_, '_>, _i: usize) {}

    /// Inner body for `(i, j)`. Must be called exactly once per pair by any
    /// correct template; the order is unspecified.
    fn body(&self, t: &mut ThreadCtx<'_, '_>, i: usize, j: usize);

    /// Epilogue run by the thread (or block leader) that owns iteration
    /// `i`'s result — typically the result store.
    fn outer_end(&self, _t: &mut ThreadCtx<'_, '_>, _i: usize) {}

    /// Whether inner iterations accumulate into a per-`i` value that a
    /// parallel split of the inner loop must combine (SpMV's dot product,
    /// PageRank's rank sum). When true, block-mapped variants emit a
    /// shared-memory reduction and thread-level nested variants emit
    /// [`IrregularLoop::combine_atomic`].
    fn has_reduction(&self) -> bool {
        false
    }

    /// Record one thread's atomic combination of its partial result into
    /// iteration `i`'s output (timing only — the functional accumulation
    /// already happened in [`IrregularLoop::body`]).
    fn combine_atomic(&self, _t: &mut ThreadCtx<'_, '_>, _i: usize) {}
}

/// Tunables shared by all loop templates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopParams {
    /// Threads per block for thread-mapped kernels. The paper uses 192
    /// (one thread per K20 core per SM), picked with the occupancy
    /// calculator.
    pub thread_block: u32,
    /// Threads per block for block-mapped phases. The paper settles on
    /// small 64-thread blocks (Figure 4's conclusion).
    pub block_block: u32,
    /// Load-balancing threshold `lbTHRES`: outer iterations with
    /// `inner_len(i) > lb_thres` go to the block-mapped / nested phase.
    pub lb_thres: usize,
    /// Grid-size clamp for covering kernels (grid-stride beyond it).
    pub max_grid: u32,
    /// Host streams used by [`LoopTemplate::StreamMapped`] (the paper's
    /// third mapping dimension: different outer-iteration ranges to
    /// different CUDA streams).
    pub host_streams: u32,
}

impl Default for LoopParams {
    fn default() -> Self {
        LoopParams {
            thread_block: 192,
            block_block: 64,
            lb_thres: 32,
            max_grid: 65_535,
            host_streams: 4,
        }
    }
}

impl LoopParams {
    /// Params with a given threshold and paper-default block sizes.
    pub fn with_lb_thres(lb_thres: usize) -> Self {
        LoopParams {
            lb_thres,
            ..Default::default()
        }
    }
}

/// The parallelization templates of Figure 1, plus the plain block- and
/// stream-based mappings Section II.B folds into its discussion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopTemplate {
    /// Fig 1(a) baseline: outer loop over threads, inner loop serialized.
    ThreadMapped,
    /// Outer loop over blocks, inner loop over threads.
    BlockMapped,
    /// §II.B's third mapping dimension: the outer range is chunked across
    /// several host streams, each chunk a thread-mapped kernel — the grids
    /// overlap on the device.
    StreamMapped,
    /// Fig 1(b): split iterations into a small and a large queue, process
    /// thread-mapped / block-mapped respectively.
    DualQueue,
    /// Fig 1(c), shared-memory buffer: one kernel, per-block delayed buffer.
    DbufShared,
    /// Fig 1(c), global-memory buffer: two kernels, buffer redistributed
    /// over blocks.
    DbufGlobal,
    /// Fig 1(d): each thread launches a nested grid for each large
    /// iteration it meets.
    DparNaive,
    /// Fig 1(e): buffer large iterations per block, launch one nested grid
    /// per block in a second phase.
    DparOpt,
}

impl LoopTemplate {
    /// All templates, in the paper's presentation order.
    pub const ALL: [LoopTemplate; 8] = [
        LoopTemplate::ThreadMapped,
        LoopTemplate::BlockMapped,
        LoopTemplate::StreamMapped,
        LoopTemplate::DualQueue,
        LoopTemplate::DbufShared,
        LoopTemplate::DbufGlobal,
        LoopTemplate::DparNaive,
        LoopTemplate::DparOpt,
    ];

    /// The five load-balancing variants the evaluation charts compare
    /// against the thread-mapped baseline.
    pub const LOAD_BALANCED: [LoopTemplate; 5] = [
        LoopTemplate::DualQueue,
        LoopTemplate::DbufShared,
        LoopTemplate::DbufGlobal,
        LoopTemplate::DparNaive,
        LoopTemplate::DparOpt,
    ];

    /// The paper's name for the template.
    pub fn label(&self) -> &'static str {
        match self {
            LoopTemplate::ThreadMapped => "thread-mapped",
            LoopTemplate::BlockMapped => "block-mapped",
            LoopTemplate::StreamMapped => "stream-mapped",
            LoopTemplate::DualQueue => "dual-queue",
            LoopTemplate::DbufShared => "dbuf-shared",
            LoopTemplate::DbufGlobal => "dbuf-global",
            LoopTemplate::DparNaive => "dpar-naive",
            LoopTemplate::DparOpt => "dpar-opt",
        }
    }
}

impl std::fmt::Display for LoopTemplate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = LoopParams::default();
        assert_eq!(p.thread_block, 192);
        assert_eq!(p.block_block, 64);
        assert_eq!(p.lb_thres, 32);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = LoopTemplate::ALL.iter().map(|t| t.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 8);
        assert_eq!(LoopTemplate::DbufShared.to_string(), "dbuf-shared");
    }
}
