//! The recursive tree-reduction abstraction — the Figure 3(a) "simple code"
//! a programmer writes; the sibling modules generate the flat, naive and
//! hierarchical GPU variants from it.

use npar_sim::GBuf;
use npar_tree::Tree;

/// A bottom-up tree reduction such as Tree Descendants (sum) or Tree
/// Heights (max + 1): every node's value starts at an identity set by the
/// application, and a parent's final value combines its children's final
/// values.
///
/// Like [`crate::loops::IrregularLoop`], hooks do the *functional* update on
/// application state and record *timing* on the [`npar_sim::ThreadCtx`]; the
/// templates only decide the mapping and ordering.
///
/// `Send + Sync` is required because kernels (which hold the reduction) may
/// be traced on host worker threads (see [`npar_sim::Gpu::with_threads`]);
/// mutable functional state belongs in [`npar_sim::SyncCell`].
pub trait TreeReduce: Send + Sync {
    /// Name used to key profiler metrics.
    fn name(&self) -> &str;

    /// The tree being reduced.
    fn tree(&self) -> &Tree;

    /// Simulated address range of the per-node value array.
    fn values_buf(&self) -> GBuf<u64>;

    /// Simulated address range of the parent array (flat template).
    fn parent_buf(&self) -> GBuf<u32>;

    /// Simulated address range of the children-CSR offsets array.
    fn child_offsets_buf(&self) -> GBuf<u32>;

    /// Simulated address range of the children array.
    fn children_buf(&self) -> GBuf<u32>;

    /// Functionally fold `child`'s **final** value into `parent`'s slot
    /// (sum for descendants, `max(v, child + 1)` for heights).
    fn combine(&self, parent: usize, child: usize);

    /// Functionally apply `node`'s contribution directly to a proper
    /// `ancestor` — the flat (recursion-eliminated) formulation in which
    /// every node walks its ancestor chain. Must be algebraically
    /// equivalent to folding along the tree.
    fn flat_update(&self, node: usize, ancestor: usize);
}

/// Tunables for the recursive templates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecParams {
    /// Threads per block for the flat (thread-mapped) kernel.
    pub thread_block: u32,
    /// Device streams per thread block for nested launches: 1 = the CUDA
    /// default (launches from one block serialize), 2 = the paper's "one
    /// additional stream per thread-block" variant.
    pub streams: u32,
    /// Grid clamp for covering kernels.
    pub max_grid: u32,
}

impl Default for RecParams {
    fn default() -> Self {
        RecParams {
            thread_block: 192,
            streams: 1,
            max_grid: 65_535,
        }
    }
}

impl RecParams {
    /// Default parameters with `streams` device streams per block.
    pub fn with_streams(streams: u32) -> Self {
        RecParams {
            streams: streams.max(1),
            ..Default::default()
        }
    }
}

/// The three parallelization templates of Figure 3(c–e).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecTemplate {
    /// Fig 3(c): recursion eliminated, thread-mapped iterative kernel
    /// (ancestor-walk with atomics).
    Flat,
    /// Fig 3(d): thread per child; each thread spawns a single-block child
    /// grid for its subtree.
    RecNaive,
    /// Fig 3(e): block per child, threads over grandchildren; one nested
    /// launch per block.
    RecHier,
}

impl RecTemplate {
    /// All templates in presentation order.
    pub const ALL: [RecTemplate; 3] = [
        RecTemplate::Flat,
        RecTemplate::RecNaive,
        RecTemplate::RecHier,
    ];

    /// The paper's label.
    pub fn label(&self) -> &'static str {
        match self {
            RecTemplate::Flat => "flat",
            RecTemplate::RecNaive => "rec-naive",
            RecTemplate::RecHier => "rec-hier",
        }
    }
}

impl std::fmt::Display for RecTemplate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Round a thread count up to a full warp, clamped to the device maximum.
pub(crate) fn block_for(children: usize, max_threads: u32) -> u32 {
    let want = children.max(1) as u32;
    want.div_ceil(32).saturating_mul(32).clamp(32, max_threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_rounding() {
        assert_eq!(block_for(1, 1024), 32);
        assert_eq!(block_for(32, 1024), 32);
        assert_eq!(block_for(33, 1024), 64);
        assert_eq!(block_for(512, 1024), 512);
        assert_eq!(block_for(5000, 1024), 1024);
        assert_eq!(block_for(0, 1024), 32);
    }

    #[test]
    fn labels() {
        assert_eq!(RecTemplate::RecHier.to_string(), "rec-hier");
        assert_eq!(RecParams::with_streams(0).streams, 1);
    }
}
