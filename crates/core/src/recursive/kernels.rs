//! Kernels behind the recursive templates (paper Figure 3(c–e)).

use std::sync::Arc;

use npar_sim::{BlockCtx, Kernel, KernelRef, LaunchConfig, Stream, ThreadCtx, ThreadKernel};
use npar_tree::NO_PARENT;

use super::spec::{block_for, TreeReduce};
use crate::reduce::emit_block_reduce;

pub(crate) type RecApp = Arc<dyn TreeReduce>;

/// Fig 3(c): flat thread-mapped kernel. Each thread owns one node and walks
/// its ancestor chain, atomically folding the node's contribution into every
/// ancestor — no barriers, no recursion, but one global atomic per
/// (node, ancestor) pair, heavily conflicting inside warps because sibling
/// threads hit the same parent.
pub(crate) struct FlatTreeKernel {
    pub name: String,
    pub app: RecApp,
}

impl ThreadKernel for FlatTreeKernel {
    fn name(&self) -> &str {
        &self.name
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let tree = self.app.tree();
        let n = tree.num_nodes();
        let values = self.app.values_buf();
        let parents = self.app.parent_buf();
        let stride = t.grid_threads();
        let mut v = t.global_id();
        while v < n {
            t.ld(&parents, v);
            let mut p = tree.parent(v);
            while p != NO_PARENT {
                self.app.flat_update(v, p as usize);
                t.atomic(&values, p as usize);
                t.ld(&parents, p as usize);
                p = tree.parent(p as usize);
            }
            v += stride;
        }
    }
}

/// Fig 3(d): naive recursive kernel for one node — a single block whose
/// threads each own one child; a thread whose child has children launches a
/// single-block grid for it, the block joins all children, and every thread
/// atomically folds its (now final) child value into the node — all threads
/// contending on the same address.
pub(crate) struct RecNaiveKernel {
    pub name: Arc<str>,
    pub app: RecApp,
    pub node: usize,
    pub streams: u32,
    pub max_threads: u32,
}

impl Kernel for RecNaiveKernel {
    fn name(&self) -> &str {
        &self.name
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let app = &self.app;
        let tree = app.tree();
        let kids: Vec<u32> = tree.children(self.node).to_vec();
        let offsets = app.child_offsets_buf();
        let children_buf = app.children_buf();
        let values = app.values_buf();
        let bd = blk.block_dim() as usize;
        let base = tree.num_children(self.node).min(kids.len());
        debug_assert_eq!(base, kids.len());

        // Phase A: discover each child's own child count; launch recursion
        // for internal children.
        let streams = self.streams;
        blk.for_each_thread(|t| {
            let mut idx = t.thread_idx() as usize;
            while idx < kids.len() {
                let c = kids[idx] as usize;
                t.ld(
                    &children_buf,
                    tree.child_offsets_raw()[self.node] as usize + idx,
                );
                t.ld(&offsets, c);
                t.ld(&offsets, c + 1);
                if tree.num_children(c) > 0 {
                    let child: KernelRef = Arc::new(RecNaiveKernel {
                        name: Arc::clone(&self.name),
                        app: Arc::clone(app),
                        node: c,
                        streams,
                        max_threads: self.max_threads,
                    });
                    let cfg =
                        LaunchConfig::new(1, block_for(tree.num_children(c), self.max_threads));
                    t.launch(&child, cfg, Stream::Slot(idx as u32 % streams));
                }
                idx += bd;
            }
        });
        // Join all children of this block, then fold child values into the
        // node (atomics on one address: heavy intra-warp serialization).
        blk.sync_children();
        blk.for_each_thread(|t| {
            let mut idx = t.thread_idx() as usize;
            while idx < kids.len() {
                let c = kids[idx] as usize;
                t.ld(&values, c);
                app.combine(self.node, c);
                t.atomic(&values, self.node);
                idx += bd;
            }
        });
    }
}

/// Fig 3(e): hierarchical recursive kernel for one node — a grid with one
/// block per child `c`, threads over `c`'s children (the node's
/// grandchildren). A block whose child has grandchildren recurses with a
/// single nested launch; a block whose child's children are all leaves
/// folds them with a shared-memory reduction. Either way the block leader
/// performs ONE global atomic folding the finalized child into the node.
pub(crate) struct RecHierKernel {
    pub name: Arc<str>,
    pub app: RecApp,
    pub node: usize,
    pub streams: u32,
    pub max_threads: u32,
}

impl RecHierKernel {
    /// Grid: one block per child; block size covers the widest
    /// grandchild set (rounded to warps). Declares the shared memory the
    /// leaf-folding reduction stages its per-thread partials in.
    pub(crate) fn config_for(app: &RecApp, node: usize, max_threads: u32) -> LaunchConfig {
        let tree = app.tree();
        let widest = tree
            .children(node)
            .iter()
            .map(|&c| tree.num_children(c as usize))
            .max()
            .unwrap_or(0);
        let block = block_for(widest, max_threads);
        LaunchConfig::with_shared(tree.num_children(node).max(1) as u32, block, block * 4)
    }
}

impl Kernel for RecHierKernel {
    fn name(&self) -> &str {
        &self.name
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let app = &self.app;
        let tree = app.tree();
        let kids = tree.children(self.node);
        let k = blk.block_idx() as usize;
        if k >= kids.len() {
            return;
        }
        let c = kids[k] as usize;
        let offsets = app.child_offsets_buf();
        let children_buf = app.children_buf();
        let values = app.values_buf();
        let bd = blk.block_dim() as usize;

        // Every thread reads the block's child id and scans the
        // grandchild counts (strided).
        let grandkids: Vec<u32> = tree.children(c).to_vec();
        let mut has_grandgrand = false;
        blk.for_each_thread(|t| {
            t.ld(
                &children_buf,
                tree.child_offsets_raw()[self.node] as usize + k,
            );
            t.ld(&offsets, c);
            t.ld(&offsets, c + 1);
            let mut idx = t.thread_idx() as usize;
            while idx < grandkids.len() {
                let gc = grandkids[idx] as usize;
                t.ld(&offsets, gc);
                t.ld(&offsets, gc + 1);
                if tree.num_children(gc) > 0 {
                    has_grandgrand = true;
                }
                idx += bd;
            }
        });

        if has_grandgrand {
            // Recurse on the child: the nested grid finalizes val[c].
            let child: KernelRef = Arc::new(RecHierKernel {
                name: Arc::clone(&self.name),
                app: Arc::clone(app),
                node: c,
                streams: self.streams,
                max_threads: self.max_threads,
            });
            let cfg = RecHierKernel::config_for(app, c, self.max_threads);
            let slot = k as u32 % self.streams;
            blk.for_each_thread(|t| {
                if t.is_leader() {
                    t.launch(&child, cfg, Stream::Slot(slot));
                }
            });
            blk.sync_children();
        } else if !grandkids.is_empty() {
            // All grandchildren are leaves: fold them into the child with a
            // block-local shared-memory reduction (one pass, no atomics).
            blk.for_each_thread(|t| {
                let mut idx = t.thread_idx() as usize;
                while idx < grandkids.len() {
                    let gc = grandkids[idx] as usize;
                    t.ld(&values, gc);
                    app.combine(c, gc);
                    idx += bd;
                }
            });
            emit_block_reduce(blk, bd as u32, 0);
            blk.for_each_thread(|t| {
                if t.is_leader() {
                    t.ld(&values, c);
                    t.compute(1);
                    t.st(&values, c);
                }
            });
        }
        // val[c] is final either way: one atomic folds it into the node.
        blk.for_each_thread(|t| {
            if t.is_leader() {
                t.ld(&values, c);
                app.combine(self.node, c);
                t.atomic(&values, self.node);
            }
        });
    }
}
