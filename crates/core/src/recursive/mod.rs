//! Parallelization templates for recursive tree computations (paper §II.C).
//!
//! The user implements [`TreeReduce`] once (the Figure 3(a) serial
//! recursion); [`run_recursive`] executes the requested GPU variant —
//! [`RecTemplate::Flat`] (recursion eliminated), [`RecTemplate::RecNaive`]
//! or [`RecTemplate::RecHier`] — and returns the profiled report. Every
//! template leaves identical values in the application state.

mod kernels;
mod spec;

use std::sync::Arc;

use npar_sim::{Gpu, LaunchConfig, Report};

pub use spec::{RecParams, RecTemplate, TreeReduce};

use kernels::{FlatTreeKernel, RecHierKernel, RecNaiveKernel};
use spec::block_for;

/// Run `app` under `template` and return the batch report.
pub fn run_recursive(
    gpu: &mut Gpu,
    app: Arc<dyn TreeReduce>,
    template: RecTemplate,
    params: &RecParams,
) -> Report {
    let root_children = app.tree().num_children(0);
    let max_threads = gpu.device().max_threads_per_block;
    match template {
        RecTemplate::Flat => {
            let n = app.tree().num_nodes();
            let k = Arc::new(FlatTreeKernel {
                name: format!("{}/flat", app.name()),
                app,
            });
            gpu.launch(
                k,
                LaunchConfig::cover(n, params.thread_block, params.max_grid),
            )
            .expect("flat launch");
        }
        RecTemplate::RecNaive => {
            if root_children > 0 {
                let k = Arc::new(RecNaiveKernel {
                    name: format!("{}/rec-naive", app.name()).into(),
                    app,
                    node: 0,
                    streams: params.streams.max(1),
                    max_threads,
                });
                let cfg = LaunchConfig::new(1, block_for(root_children, max_threads));
                gpu.launch(k, cfg).expect("rec-naive launch");
            }
        }
        RecTemplate::RecHier => {
            if root_children > 0 {
                let app_rc: Arc<dyn TreeReduce> = app;
                let cfg = RecHierKernel::config_for(&app_rc, 0, max_threads);
                let k = Arc::new(RecHierKernel {
                    name: format!("{}/rec-hier", app_rc.name()).into(),
                    app: app_rc,
                    node: 0,
                    streams: params.streams.max(1),
                    max_threads,
                });
                gpu.launch(k, cfg).expect("rec-hier launch");
            }
        }
    }
    gpu.synchronize()
}
