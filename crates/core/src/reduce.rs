//! Shared-memory block reduction emission.
//!
//! Several templates combine per-thread partial results with the classic
//! shared-memory tree reduction (store partials, then log₂(width) halving
//! rounds separated by barriers). The combination itself already happened
//! functionally inside the loop body; this helper emits the corresponding
//! *timing* instructions.

use npar_sim::BlockCtx;

/// Emit a block-wide tree reduction over `width` 4-byte partials staged at
/// shared-memory offset `base`. Leaves the result in slot 0.
pub fn emit_block_reduce(blk: &mut BlockCtx<'_>, width: u32, base: u32) {
    if width <= 1 {
        return;
    }
    // Every thread publishes its partial.
    blk.for_each_thread(|t| {
        if t.thread_idx() < width {
            t.shared_st(base + t.thread_idx() * 4);
        }
    });
    blk.sync();
    let mut stride = width.next_power_of_two() / 2;
    while stride > 0 {
        blk.for_each_thread(|t| {
            let tid = t.thread_idx();
            if tid < stride && tid + stride < width {
                t.shared_ld(base + (tid + stride) * 4);
                t.shared_ld(base + tid * 4);
                t.compute(1);
                t.shared_st(base + tid * 4);
            }
        });
        blk.sync();
        stride /= 2;
    }
}

#[cfg(test)]
mod tests {
    use npar_sim::{Gpu, Kernel, LaunchConfig};
    use std::sync::Arc;

    struct ReduceKernel {
        width: u32,
    }
    impl Kernel for ReduceKernel {
        fn name(&self) -> &str {
            "reduce"
        }
        fn run_block(&self, blk: &mut npar_sim::BlockCtx<'_>) {
            super::emit_block_reduce(blk, self.width, 0);
        }
    }

    #[test]
    fn reduction_emits_log_rounds_of_barriers() {
        let mut gpu = Gpu::k20();
        gpu.launch(
            Arc::new(ReduceKernel { width: 64 }),
            LaunchConfig::with_shared(1, 64, 256),
        )
        .unwrap();
        let r = gpu.synchronize();
        let m = &r.kernels["reduce"];
        // 1 publish barrier + 6 halving rounds (64 -> 1).
        assert_eq!(m.barriers, 7);
        assert!(m.shared_accesses > 0);
    }

    #[test]
    fn width_one_is_free() {
        let mut gpu = Gpu::k20();
        gpu.launch(
            Arc::new(ReduceKernel { width: 1 }),
            LaunchConfig::with_shared(1, 32, 128),
        )
        .unwrap();
        let r = gpu.synchronize();
        assert_eq!(r.kernels["reduce"].barriers, 0);
    }

    #[test]
    fn non_power_of_two_width() {
        let mut gpu = Gpu::k20();
        gpu.launch(
            Arc::new(ReduceKernel { width: 48 }),
            LaunchConfig::with_shared(1, 64, 256),
        )
        .unwrap();
        let r = gpu.synchronize();
        // 48 -> strides 32,16,8,4,2,1 -> 6 rounds + publish.
        assert_eq!(r.kernels["reduce"].barriers, 7);
    }
}
