//! Template selection heuristics — the compiler-integration angle of the
//! paper's conclusion: given cheap static/profile facts about a loop (its
//! inner-size distribution) or a recursive problem (tree shape), recommend
//! a parallelization template and a load-balancing threshold, encoding the
//! decision rules the evaluation section establishes:
//!
//! * regular loops → plain thread mapping (no balancing cost to pay);
//! * irregular loops → delayed-buffer templates, `lbTHRES` at the warp
//!   size (the paper saw no gains below 32), dbuf-shared by default,
//!   dbuf-global when the tail is heavy enough that per-block buffers
//!   would go unbalanced;
//! * never dpar-naive;
//! * regular/bushy trees → hierarchical recursion; sparse irregular trees
//!   → the flat kernel;
//! * recursion on graphs (shared neighborhoods, atomics required) → flat.

use npar_tree::Tree;

use crate::loops::{IrregularLoop, LoopParams, LoopTemplate};
use crate::recursive::RecTemplate;

/// Summary of an inner-size distribution, the advisor's input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopShape {
    /// Outer trip count.
    pub outer: usize,
    /// Mean inner trip count.
    pub mean: f64,
    /// Maximum inner trip count.
    pub max: usize,
    /// Fraction of outer iterations with `inner > warp size`.
    pub heavy_fraction: f64,
}

impl LoopShape {
    /// Measure a loop's shape by querying `inner_len` (cheap; no kernel
    /// execution).
    pub fn measure(app: &dyn IrregularLoop) -> LoopShape {
        let n = app.outer_len();
        let mut sum = 0usize;
        let mut max = 0usize;
        let mut heavy = 0usize;
        for i in 0..n {
            let f = app.inner_len(i);
            sum += f;
            max = max.max(f);
            if f > 32 {
                heavy += 1;
            }
        }
        LoopShape {
            outer: n,
            mean: if n == 0 { 0.0 } else { sum as f64 / n as f64 },
            max,
            heavy_fraction: if n == 0 { 0.0 } else { heavy as f64 / n as f64 },
        }
    }

    /// Coefficient of imbalance: max over mean. 1.0 for perfectly regular
    /// loops.
    pub fn imbalance(&self) -> f64 {
        if self.mean <= 0.0 {
            1.0
        } else {
            self.max as f64 / self.mean
        }
    }
}

/// A template recommendation with its rationale.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopAdvice {
    /// The recommended template.
    pub template: LoopTemplate,
    /// Parameters to run it with.
    pub params: LoopParams,
    /// One-line human-readable rationale.
    pub rationale: String,
}

/// Recommend a loop template from its shape (paper §III.B decision rules).
pub fn advise_loop(shape: &LoopShape) -> LoopAdvice {
    // Near-regular loops: load balancing buys nothing and the queue /
    // buffer overheads are pure loss.
    if shape.imbalance() < 4.0 || shape.max <= 64 {
        return LoopAdvice {
            template: LoopTemplate::ThreadMapped,
            params: LoopParams::default(),
            rationale: format!(
                "inner sizes are near-regular (max/mean = {:.1}); plain thread \
                 mapping avoids all balancing overhead",
                shape.imbalance()
            ),
        };
    }
    // Irregular: delayed buffers win across the paper's sweeps; lbTHRES at
    // the warp size balanced best, and per-block (shared) buffers are
    // preferable unless heavy iterations are so rare that a handful of
    // blocks would hoard them all.
    let params = LoopParams::with_lb_thres(32);
    if shape.heavy_fraction < 0.02 {
        LoopAdvice {
            template: LoopTemplate::DbufGlobal,
            params,
            rationale: format!(
                "only {:.1}% of iterations are heavy; a global buffer \
                 redistributes them across blocks",
                shape.heavy_fraction * 100.0
            ),
        }
    } else {
        LoopAdvice {
            template: LoopTemplate::DbufShared,
            params,
            rationale: format!(
                "irregular loop (max/mean = {:.1}, {:.0}% heavy); per-block \
                 delayed buffers balance without a second kernel",
                shape.imbalance(),
                shape.heavy_fraction * 100.0
            ),
        }
    }
}

/// Recommend a recursive template for a tree reduction (paper §III.C
/// decision rules: outdegree drives nested-grid utilization, sparsity
/// erodes it).
pub fn advise_tree(tree: &Tree) -> (RecTemplate, String) {
    let n = tree.num_nodes();
    if n <= 1 {
        return (RecTemplate::Flat, "trivial tree".into());
    }
    let internal: Vec<usize> = (0..n).filter(|&v| tree.num_children(v) > 0).collect();
    let mean_out = internal
        .iter()
        .map(|&v| tree.num_children(v))
        .sum::<usize>() as f64
        / internal.len() as f64;
    // Fraction of internal-level nodes that actually have children — the
    // inverse of the generator's sparsity.
    let last_level = tree.num_levels() - 1;
    let above_last: usize = (0..last_level)
        .map(|l| {
            let (a, b) = tree.level_range(l);
            (b - a) as usize
        })
        .sum();
    let density = internal.len() as f64 / above_last.max(1) as f64;

    if mean_out >= 48.0 && density > 0.4 {
        (
            RecTemplate::RecHier,
            format!(
                "bushy tree (mean outdegree {mean_out:.0}, density {density:.2}): \
                 hierarchical recursion replaces per-edge atomics with one \
                 atomic per block"
            ),
        )
    } else {
        (
            RecTemplate::Flat,
            format!(
                "thin or sparse tree (mean outdegree {mean_out:.0}, density \
                 {density:.2}): nested grids would underfill; the flat \
                 ancestor-walk kernel wins"
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npar_sim::ThreadCtx;
    use npar_tree::TreeGen;

    struct FakeLoop {
        sizes: Vec<usize>,
    }
    impl IrregularLoop for FakeLoop {
        fn name(&self) -> &str {
            "fake"
        }
        fn outer_len(&self) -> usize {
            self.sizes.len()
        }
        fn inner_len(&self, i: usize) -> usize {
            self.sizes[i]
        }
        fn body(&self, _t: &mut ThreadCtx<'_, '_>, _i: usize, _j: usize) {}
    }

    #[test]
    fn regular_loops_get_thread_mapping() {
        let app = FakeLoop {
            sizes: vec![16; 1000],
        };
        let shape = LoopShape::measure(&app);
        assert!((shape.imbalance() - 1.0).abs() < 1e-9);
        let advice = advise_loop(&shape);
        assert_eq!(advice.template, LoopTemplate::ThreadMapped);
    }

    #[test]
    fn skewed_loops_get_delayed_buffers() {
        let mut sizes = vec![4usize; 1000];
        for i in (0..1000).step_by(10) {
            sizes[i] = 900;
        }
        let shape = LoopShape::measure(&FakeLoop { sizes });
        let advice = advise_loop(&shape);
        assert_eq!(advice.template, LoopTemplate::DbufShared);
        assert_eq!(advice.params.lb_thres, 32);
    }

    #[test]
    fn rare_heavy_tail_gets_global_buffer() {
        let mut sizes = vec![2usize; 10_000];
        for i in (0..10_000).step_by(2000) {
            sizes[i] = 5_000;
        }
        let shape = LoopShape::measure(&FakeLoop { sizes });
        assert!(shape.heavy_fraction < 0.02);
        let advice = advise_loop(&shape);
        assert_eq!(advice.template, LoopTemplate::DbufGlobal);
    }

    #[test]
    fn advisor_never_recommends_dpar_naive() {
        for sizes in [
            vec![1usize; 10],
            (0..5000).map(|i| i % 2000).collect::<Vec<_>>(),
            vec![0usize; 64],
        ] {
            let shape = LoopShape::measure(&FakeLoop { sizes });
            assert_ne!(advise_loop(&shape).template, LoopTemplate::DparNaive);
        }
    }

    #[test]
    fn bushy_trees_get_hier_sparse_trees_get_flat() {
        let bushy = TreeGen {
            depth: 4,
            outdegree: 128,
            sparsity: 0,
            seed: 1,
        }
        .generate();
        assert_eq!(advise_tree(&bushy).0, RecTemplate::RecHier);

        let sparse = TreeGen {
            depth: 4,
            outdegree: 128,
            sparsity: 4,
            seed: 1,
        }
        .generate();
        assert_eq!(advise_tree(&sparse).0, RecTemplate::Flat);

        let thin = TreeGen {
            depth: 6,
            outdegree: 3,
            sparsity: 0,
            seed: 1,
        }
        .generate();
        assert_eq!(advise_tree(&thin).0, RecTemplate::Flat);
    }

    #[test]
    fn empty_loop_shape() {
        let shape = LoopShape::measure(&FakeLoop { sizes: vec![] });
        assert_eq!(shape.mean, 0.0);
        assert_eq!(advise_loop(&shape).template, LoopTemplate::ThreadMapped);
    }
}
