//! Cross-template correctness: every loop template must compute the same
//! result as a serial run of the user's "simple code", and every recursive
//! template must match the serial recursion — the invariant that makes the
//! paper's performance comparisons meaningful.

use npar_sim::SyncCell;
use std::sync::Arc;

use npar_core::{
    run_loop, run_recursive, IrregularLoop, LoopParams, LoopTemplate, RecParams, RecTemplate,
    TreeReduce,
};
use npar_sim::{GBuf, Gpu, ThreadCtx};
use npar_tree::{Tree, TreeGen};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A synthetic irregular loop: out[i] = sum of (i * 1000 + j) over
/// j < sizes[i]. Exercises the reduction path.
struct SumLoop {
    sizes: Vec<usize>,
    out: SyncCell<Vec<u64>>,
    a: GBuf<u32>,
    y: GBuf<u64>,
}

impl SumLoop {
    fn new(gpu: &mut Gpu, sizes: Vec<usize>) -> Arc<Self> {
        let n = sizes.len();
        let total: usize = sizes.iter().sum();
        let a = gpu.alloc::<u32>(total.max(1));
        let y = gpu.alloc::<u64>(n.max(1));
        Arc::new(SumLoop {
            out: SyncCell::new(vec![0; n]),
            sizes,
            a,
            y,
        })
    }

    fn expected(&self) -> Vec<u64> {
        self.sizes
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                let s: u64 = (0..f).map(|j| (i * 1000 + j) as u64).sum();
                // outer_end applies a non-commutative finalization, pinning
                // down that templates run it once, after every body call.
                s * 2 + 1
            })
            .collect()
    }
}

impl IrregularLoop for SumLoop {
    fn name(&self) -> &str {
        "sum-loop"
    }
    fn outer_len(&self) -> usize {
        self.sizes.len()
    }
    fn inner_len(&self, i: usize) -> usize {
        self.sizes[i]
    }
    fn body(&self, t: &mut ThreadCtx<'_, '_>, i: usize, j: usize) {
        self.out.borrow_mut()[i] += (i * 1000 + j) as u64;
        t.ld(&self.a, j.min(self.a.len() - 1));
        t.compute(1);
    }
    fn outer_end(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        let mut out = self.out.borrow_mut();
        out[i] = out[i] * 2 + 1;
        t.st(&self.y, i);
    }
    fn has_reduction(&self) -> bool {
        true
    }
    fn combine_atomic(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.atomic(&self.y, i);
    }
}

fn random_sizes(n: usize, max: usize, seed: u64) -> Vec<usize> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.2) {
                rng.gen_range(0..=max)
            } else {
                rng.gen_range(0..=8)
            }
        })
        .collect()
}

#[test]
fn all_loop_templates_agree_with_serial() {
    let sizes = random_sizes(400, 300, 42);
    for template in LoopTemplate::ALL {
        let mut gpu = Gpu::k20();
        let app = SumLoop::new(&mut gpu, sizes.clone());
        let expected = app.expected();
        let report = run_loop(&mut gpu, app.clone(), template, &LoopParams::default());
        assert_eq!(
            *app.out.borrow(),
            expected,
            "template {template} produced wrong results"
        );
        assert!(report.cycles > 0.0, "template {template} reported no time");
    }
}

#[test]
fn loop_templates_cover_every_lb_thres() {
    let sizes = random_sizes(200, 150, 7);
    for lb in [0, 1, 16, 64, 1024] {
        for template in [
            LoopTemplate::DualQueue,
            LoopTemplate::DbufShared,
            LoopTemplate::DbufGlobal,
            LoopTemplate::DparNaive,
            LoopTemplate::DparOpt,
        ] {
            let mut gpu = Gpu::k20();
            let app = SumLoop::new(&mut gpu, sizes.clone());
            let expected = app.expected();
            run_loop(
                &mut gpu,
                app.clone(),
                template,
                &LoopParams::with_lb_thres(lb),
            );
            assert_eq!(
                *app.out.borrow(),
                expected,
                "template {template} at lbTHRES={lb} wrong"
            );
        }
    }
}

#[test]
fn empty_and_singleton_loops() {
    for template in LoopTemplate::ALL {
        let mut gpu = Gpu::k20();
        let app = SumLoop::new(&mut gpu, vec![]);
        run_loop(&mut gpu, app.clone(), template, &LoopParams::default());
        assert!(app.out.borrow().is_empty());

        let mut gpu = Gpu::k20();
        let app = SumLoop::new(&mut gpu, vec![5]);
        let expected = app.expected();
        run_loop(&mut gpu, app.clone(), template, &LoopParams::default());
        assert_eq!(*app.out.borrow(), expected, "{template} singleton");
    }
}

#[test]
fn dpar_naive_launches_one_child_per_large_iteration() {
    let sizes = vec![100, 2, 100, 3, 100, 4];
    let mut gpu = Gpu::k20();
    let app = SumLoop::new(&mut gpu, sizes);
    let report = run_loop(
        &mut gpu,
        app,
        LoopTemplate::DparNaive,
        &LoopParams::with_lb_thres(32),
    );
    assert_eq!(report.device_launches, 3);
}

#[test]
fn dpar_opt_launches_at_most_one_child_per_block() {
    let sizes = random_sizes(2000, 200, 3);
    let large = sizes.iter().filter(|&&f| f > 32).count() as u64;
    let mut gpu = Gpu::k20();
    let app = SumLoop::new(&mut gpu, sizes.clone());
    let report = run_loop(
        &mut gpu,
        app,
        LoopTemplate::DparOpt,
        &LoopParams::with_lb_thres(32),
    );
    let blocks = 2000u64.div_ceil(192);
    assert!(report.device_launches <= blocks);
    assert!(report.device_launches > 0);
    // And strictly fewer launches than dpar-naive would make.
    assert!(report.device_launches < large);
}

/// Tree-descendants as a TreeReduce for template testing.
struct Desc {
    tree: Tree,
    vals: SyncCell<Vec<u64>>,
    values: GBuf<u64>,
    parents: GBuf<u32>,
    offsets: GBuf<u32>,
    children: GBuf<u32>,
}

impl Desc {
    fn new(gpu: &mut Gpu, tree: Tree) -> Arc<Self> {
        let n = tree.num_nodes();
        Arc::new(Desc {
            vals: SyncCell::new(vec![1; n]),
            values: gpu.alloc::<u64>(n),
            parents: gpu.alloc::<u32>(n),
            offsets: gpu.alloc::<u32>(n + 1),
            children: gpu.alloc::<u32>(n.saturating_sub(1).max(1)),
            tree,
        })
    }

    fn serial(&self) -> Vec<u64> {
        let n = self.tree.num_nodes();
        let mut v = vec![1u64; n];
        // Level order reversed = children before parents.
        for node in (1..n).rev() {
            let p = self.tree.parent(node) as usize;
            v[p] += v[node];
        }
        v
    }
}

impl TreeReduce for Desc {
    fn name(&self) -> &str {
        "desc"
    }
    fn tree(&self) -> &Tree {
        &self.tree
    }
    fn values_buf(&self) -> GBuf<u64> {
        self.values
    }
    fn parent_buf(&self) -> GBuf<u32> {
        self.parents
    }
    fn child_offsets_buf(&self) -> GBuf<u32> {
        self.offsets
    }
    fn children_buf(&self) -> GBuf<u32> {
        self.children
    }
    fn combine(&self, parent: usize, child: usize) {
        let add = self.vals.borrow()[child];
        self.vals.borrow_mut()[parent] += add;
    }
    fn flat_update(&self, _node: usize, ancestor: usize) {
        self.vals.borrow_mut()[ancestor] += 1;
    }
}

#[test]
fn recursive_templates_agree_with_serial() {
    for (depth, outdeg, sparsity) in [(4, 4, 0), (4, 8, 1), (5, 3, 2), (3, 32, 0), (2, 7, 0)] {
        let tree = TreeGen {
            depth,
            outdegree: outdeg,
            sparsity,
            seed: 99,
        }
        .generate();
        for template in RecTemplate::ALL {
            let mut gpu = Gpu::k20();
            let app = Desc::new(&mut gpu, tree.clone());
            let expected = app.serial();
            run_recursive(&mut gpu, app.clone(), template, &RecParams::default());
            assert_eq!(
                *app.vals.borrow(),
                expected,
                "{template} on depth={depth} outdeg={outdeg} sparsity={sparsity}"
            );
        }
    }
}

#[test]
fn rec_naive_launch_count_is_internal_nodes() {
    let tree = TreeGen {
        depth: 4,
        outdegree: 4,
        sparsity: 0,
        seed: 1,
    }
    .generate();
    let internal = (0..tree.num_nodes())
        .filter(|&v| tree.num_children(v) > 0)
        .count() as u64;
    let mut gpu = Gpu::k20();
    let app = Desc::new(&mut gpu, tree);
    let report = run_recursive(&mut gpu, app, RecTemplate::RecNaive, &RecParams::default());
    // Root kernel comes from the host; every other internal node is a
    // nested launch.
    assert_eq!(report.device_launches + report.host_launches, internal);
}

#[test]
fn rec_hier_launches_fewer_kernels_than_naive() {
    let tree = TreeGen {
        depth: 4,
        outdegree: 8,
        sparsity: 0,
        seed: 1,
    }
    .generate();
    let mut gpu = Gpu::k20();
    let app = Desc::new(&mut gpu, tree.clone());
    let naive = run_recursive(&mut gpu, app, RecTemplate::RecNaive, &RecParams::default());
    let mut gpu = Gpu::k20();
    let app = Desc::new(&mut gpu, tree);
    let hier = run_recursive(&mut gpu, app, RecTemplate::RecHier, &RecParams::default());
    assert!(hier.device_launches < naive.device_launches);
    // Hierarchical: one nested launch per level-1 child (depth-4 tree).
    assert_eq!(hier.device_launches, 8);
    assert_eq!(naive.device_launches, 8 + 64);
}

#[test]
fn rec_hier_uses_fewer_atomics_than_flat() {
    let tree = TreeGen {
        depth: 4,
        outdegree: 16,
        sparsity: 0,
        seed: 5,
    }
    .generate();
    let mut gpu = Gpu::k20();
    let app = Desc::new(&mut gpu, tree.clone());
    let flat = run_recursive(&mut gpu, app, RecTemplate::Flat, &RecParams::default());
    let mut gpu = Gpu::k20();
    let app = Desc::new(&mut gpu, tree.clone());
    let hier = run_recursive(&mut gpu, app, RecTemplate::RecHier, &RecParams::default());
    let flat_atomics = flat.total().atomics();
    let hier_atomics = hier.total().atomics();
    // Flat: one atomic per (node, ancestor) pair; hier: one per block.
    let expected_flat: u64 = (0..tree.num_nodes()).map(|v| tree.level(v) as u64).sum();
    assert_eq!(flat_atomics, expected_flat);
    assert!(hier_atomics < flat_atomics / 4);
}

#[test]
fn streams_change_timing_not_results() {
    let tree = TreeGen {
        depth: 4,
        outdegree: 6,
        sparsity: 0,
        seed: 3,
    }
    .generate();
    let mut gpu = Gpu::k20();
    let app = Desc::new(&mut gpu, tree.clone());
    let expected = app.serial();
    let one = run_recursive(
        &mut gpu,
        app.clone(),
        RecTemplate::RecNaive,
        &RecParams::with_streams(1),
    );
    assert_eq!(*app.vals.borrow(), expected);

    let mut gpu = Gpu::k20();
    let app = Desc::new(&mut gpu, tree);
    let two = run_recursive(
        &mut gpu,
        app.clone(),
        RecTemplate::RecNaive,
        &RecParams::with_streams(2),
    );
    assert_eq!(*app.vals.borrow(), expected);
    // Two streams let same-block launches overlap: never slower.
    assert!(two.cycles <= one.cycles * 1.001);
}
