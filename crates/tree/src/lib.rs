//! # npar-tree — synthetic trees for the recursive-template experiments
//!
//! The paper evaluates Tree Descendants and Tree Heights on synthetic trees
//! shaped by three parameters (Section III.C):
//!
//! * **depth** — number of levels (the paper uses 4 and reports depth has no
//!   significant performance effect);
//! * **outdegree** — every node *with* children has exactly this many;
//! * **sparsity** — a non-leaf candidate actually has children with
//!   probability ρ = (½)^sparsity, so sparsity 0 yields a perfectly regular
//!   tree and larger values increasingly irregular ones.
//!
//! Nodes are numbered in level order (breadth-first), which is the layout
//! the flat (iterative) kernels index.

#![warn(missing_docs)]

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Sentinel parent id of the root.
pub const NO_PARENT: u32 = u32::MAX;

/// A rooted tree in level order: parent array plus a children CSR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    parent: Vec<u32>,
    child_offsets: Vec<u32>,
    children: Vec<u32>,
    level: Vec<u16>,
    level_ranges: Vec<(u32, u32)>,
}

/// Generation parameters (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeGen {
    /// Number of levels (>= 1). A depth-1 tree is a single root.
    pub depth: u32,
    /// Children per internal node.
    pub outdegree: u32,
    /// Irregularity exponent: ρ = (½)^sparsity.
    pub sparsity: u32,
    /// RNG seed.
    pub seed: u64,
}

impl TreeGen {
    /// Probability that a non-leaf-level node has children.
    pub fn rho(&self) -> f64 {
        0.5f64.powi(self.sparsity as i32)
    }

    /// Generate the tree.
    pub fn generate(&self) -> Tree {
        assert!(self.depth >= 1, "depth must be >= 1");
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let rho = self.rho();

        let mut parent: Vec<u32> = vec![NO_PARENT];
        let mut level: Vec<u16> = vec![0];
        let mut level_ranges: Vec<(u32, u32)> = vec![(0, 1)];
        let mut frontier: Vec<u32> = vec![0];

        for lvl in 1..self.depth {
            let mut next = Vec::new();
            for &node in &frontier {
                // The root always has children (the published kernel-call
                // counts for sparse trees are only consistent with the
                // sparsity coin applying from level 1 down); other
                // internal-level nodes spawn with probability rho.
                let spawn = node == 0 || self.sparsity == 0 || rng.gen_range(0.0..1.0) < rho;
                if spawn && self.outdegree > 0 {
                    for _ in 0..self.outdegree {
                        let id = parent.len() as u32;
                        parent.push(node);
                        level.push(lvl as u16);
                        next.push(id);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            let start = parent.len() as u32 - next.len() as u32;
            level_ranges.push((start, parent.len() as u32));
            frontier = next;
        }

        // Children CSR from the parent array (level order keeps each node's
        // children contiguous and sorted).
        let n = parent.len();
        let mut degree = vec![0u32; n];
        for &p in &parent {
            if p != NO_PARENT {
                degree[p as usize] += 1;
            }
        }
        let mut child_offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        child_offsets.push(0);
        for &d in &degree {
            acc += d;
            child_offsets.push(acc);
        }
        let mut children = vec![0u32; n - 1];
        let mut cursor: Vec<u32> = child_offsets[..n].to_vec();
        for (v, &p) in parent.iter().enumerate() {
            if p != NO_PARENT {
                children[cursor[p as usize] as usize] = v as u32;
                cursor[p as usize] += 1;
            }
        }

        Tree {
            parent,
            child_offsets,
            children,
            level,
            level_ranges,
        }
    }
}

impl Tree {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Parent of `v` ([`NO_PARENT`] for the root).
    pub fn parent(&self, v: usize) -> u32 {
        self.parent[v]
    }

    /// The raw parent array.
    pub fn parents_raw(&self) -> &[u32] {
        &self.parent
    }

    /// Children of `v`.
    pub fn children(&self, v: usize) -> &[u32] {
        let a = self.child_offsets[v] as usize;
        let b = self.child_offsets[v + 1] as usize;
        &self.children[a..b]
    }

    /// The raw children CSR offsets (length `n + 1`).
    pub fn child_offsets_raw(&self) -> &[u32] {
        &self.child_offsets
    }

    /// The raw children array.
    pub fn children_raw(&self) -> &[u32] {
        &self.children
    }

    /// Number of children of `v`.
    pub fn num_children(&self, v: usize) -> usize {
        (self.child_offsets[v + 1] - self.child_offsets[v]) as usize
    }

    /// Level (depth) of `v`; the root is level 0.
    pub fn level(&self, v: usize) -> u16 {
        self.level[v]
    }

    /// Number of levels actually present.
    pub fn num_levels(&self) -> usize {
        self.level_ranges.len()
    }

    /// The contiguous id range `[start, end)` of nodes on `lvl`.
    pub fn level_range(&self, lvl: usize) -> (u32, u32) {
        self.level_ranges[lvl]
    }

    /// Nodes with no children.
    pub fn num_leaves(&self) -> usize {
        (0..self.num_nodes())
            .filter(|&v| self.num_children(v) == 0)
            .count()
    }

    /// Structural consistency check (used by property tests).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_nodes();
        if n == 0 {
            return Err("tree must have a root".into());
        }
        if self.parent[0] != NO_PARENT {
            return Err("node 0 must be the root".into());
        }
        for v in 1..n {
            let p = self.parent[v] as usize;
            if p >= n {
                return Err(format!("node {v} has out-of-range parent"));
            }
            if self.level[v] != self.level[p] + 1 {
                return Err(format!("node {v} level inconsistent with parent"));
            }
            if !self.children(p).contains(&(v as u32)) {
                return Err(format!("child CSR misses edge {p} -> {v}"));
            }
        }
        let total_children: usize = (0..n).map(|v| self.num_children(v)).sum();
        if total_children != n - 1 {
            return Err("children CSR does not cover n - 1 edges".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_tree_shape() {
        let t = TreeGen {
            depth: 4,
            outdegree: 3,
            sparsity: 0,
            seed: 1,
        }
        .generate();
        // 1 + 3 + 9 + 27.
        assert_eq!(t.num_nodes(), 40);
        assert_eq!(t.num_levels(), 4);
        assert_eq!(t.num_leaves(), 27);
        assert_eq!(t.level_range(3), (13, 40));
        assert_eq!(t.children(0), &[1, 2, 3]);
        t.validate().unwrap();
    }

    #[test]
    fn depth_one_is_single_root() {
        let t = TreeGen {
            depth: 1,
            outdegree: 5,
            sparsity: 0,
            seed: 1,
        }
        .generate();
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.num_leaves(), 1);
        assert_eq!(t.parent(0), NO_PARENT);
    }

    #[test]
    fn sparsity_shrinks_trees() {
        let full = TreeGen {
            depth: 4,
            outdegree: 8,
            sparsity: 0,
            seed: 2,
        }
        .generate();
        let sparse = TreeGen {
            depth: 4,
            outdegree: 8,
            sparsity: 2,
            seed: 2,
        }
        .generate();
        assert!(sparse.num_nodes() < full.num_nodes());
        sparse.validate().unwrap();
    }

    #[test]
    fn rho_formula() {
        let g = |s| TreeGen {
            depth: 2,
            outdegree: 2,
            sparsity: s,
            seed: 0,
        };
        assert!((g(0).rho() - 1.0).abs() < 1e-12);
        assert!((g(1).rho() - 0.5).abs() < 1e-12);
        assert!((g(4).rho() - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TreeGen {
            depth: 5,
            outdegree: 4,
            sparsity: 1,
            seed: 77,
        }
        .generate();
        let b = TreeGen {
            depth: 5,
            outdegree: 4,
            sparsity: 1,
            seed: 77,
        }
        .generate();
        assert_eq!(a, b);
    }

    #[test]
    fn levels_are_contiguous_and_ordered() {
        let t = TreeGen {
            depth: 5,
            outdegree: 3,
            sparsity: 1,
            seed: 9,
        }
        .generate();
        t.validate().unwrap();
        let mut covered = 0u32;
        for lvl in 0..t.num_levels() {
            let (a, b) = t.level_range(lvl);
            assert_eq!(a, covered);
            for v in a..b {
                assert_eq!(t.level(v as usize) as usize, lvl);
            }
            covered = b;
        }
        assert_eq!(covered as usize, t.num_nodes());
    }
}
