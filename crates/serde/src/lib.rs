//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal self-serialization framework under the same names: a JSON-shaped
//! [`Value`] data model, [`Serialize`] / [`Deserialize`] traits that convert
//! to and from it, and `#[derive(Serialize, Deserialize)]` macros (from the
//! sibling `serde_derive` shim) for plain structs with named fields and
//! unit-variant enums — exactly the shapes this workspace defines. The
//! `serde_json` shim renders [`Value`] as JSON text.

#![warn(missing_docs)]

use std::collections::BTreeMap;
#[allow(clippy::disallowed_types)] // vendored stand-in mirrors serde's std impls
use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value: the whole data model of the shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer number (serialized without a decimal point).
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error raised when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Represent `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error(format!("expected {expected}, got {got:?}")))
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if let Ok(i) = i64::try_from(v) { Value::Int(i) } else { Value::UInt(*self as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| Error(format!("{i} out of range"))),
                    Value::UInt(u) => <$t>::try_from(*u).map_err(|_| Error(format!("{u} out of range"))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => type_err("integer", other),
                }
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => type_err("number", other),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// A `Value` is already the data model; (de)serializing it is the identity.
// Lets callers hand-build dynamic JSON (mixed-shape records, optional
// fields) and pass it through `serde_json::to_string` like any other type.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => type_err("object", other),
        }
    }
}

#[allow(clippy::disallowed_types)] // vendored stand-in mirrors serde's std impls
impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        #[allow(clippy::disallowed_methods)] // total order: String keys
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let Value::Array(items) = v else {
                    return type_err("array", v);
                };
                let mut it = items.iter();
                let out = ($(
                    $t::from_value(
                        it.next().ok_or_else(|| Error("tuple too short".into()))?,
                    )?,
                )+);
                if it.next().is_some() {
                    return Err(Error("tuple too long".into()));
                }
                Ok(out)
            }
        }
    )+};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2].to_value()).unwrap(),
            vec![1, 2]
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b"), None);
    }

    #[test]
    fn big_u64_survives() {
        let big = u64::MAX;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }
}
