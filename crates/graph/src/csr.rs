//! Compressed Sparse Row graphs.
//!
//! Every graph algorithm in the paper (SSSP, BC, PageRank, BFS) and SpMV
//! operate on CSR: a `row_offsets` array of `n + 1` cumulative degrees and a
//! `col_indices` array of adjacency targets. Traversing CSR is precisely the
//! irregular nested loop of the paper's Figure 1(a): the outer loop walks
//! nodes (rows), the inner loop walks `row_offsets[i]..row_offsets[i+1]`.

use serde::{Deserialize, Serialize};

/// A directed graph (or sparse matrix) in CSR form, optionally weighted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    row_offsets: Vec<u32>,
    col_indices: Vec<u32>,
    weights: Option<Vec<f32>>,
}

impl Csr {
    /// Build from an edge list over `n` nodes. Edge order within a row is
    /// preserved in input order; duplicate edges and self-loops are kept
    /// (real-world datasets such as Wiki-Vote contain them).
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Csr {
        Self::build(n, edges.iter().map(|&(u, v)| (u, v, 0.0)), false)
    }

    /// Build a weighted graph from `(src, dst, weight)` triples.
    pub fn from_weighted_edges(n: usize, edges: &[(u32, u32, f32)]) -> Csr {
        Self::build(n, edges.iter().copied(), true)
    }

    fn build(
        n: usize,
        edges: impl Iterator<Item = (u32, u32, f32)> + Clone,
        weighted: bool,
    ) -> Csr {
        let mut degree = vec![0u32; n];
        let mut m = 0usize;
        for (u, _, _) in edges.clone() {
            degree[u as usize] += 1;
            m += 1;
        }
        let mut row_offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        row_offsets.push(0);
        for &d in &degree {
            acc += d;
            row_offsets.push(acc);
        }
        let mut col_indices = vec![0u32; m];
        let mut weights = if weighted { vec![0f32; m] } else { Vec::new() };
        let mut cursor: Vec<u32> = row_offsets[..n].to_vec();
        for (u, v, w) in edges {
            let slot = cursor[u as usize] as usize;
            col_indices[slot] = v;
            if weighted {
                weights[slot] = w;
            }
            cursor[u as usize] += 1;
        }
        Csr {
            row_offsets,
            col_indices,
            weights: weighted.then_some(weights),
        }
    }

    /// Build directly from CSR arrays (used by parsers and generators).
    ///
    /// Panics if the arrays are inconsistent.
    pub fn from_raw(
        row_offsets: Vec<u32>,
        col_indices: Vec<u32>,
        weights: Option<Vec<f32>>,
    ) -> Csr {
        let g = Csr {
            row_offsets,
            col_indices,
            weights,
        };
        g.validate().expect("inconsistent CSR arrays");
        g
    }

    /// Number of nodes (rows).
    pub fn num_nodes(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of edges (nonzeros).
    pub fn num_edges(&self) -> usize {
        self.col_indices.len()
    }

    /// Out-degree of node `v` — the paper's `f(i)` inner-loop trip count.
    pub fn degree(&self, v: usize) -> usize {
        (self.row_offsets[v + 1] - self.row_offsets[v]) as usize
    }

    /// Start of `v`'s adjacency range in [`Csr::col_indices_raw`].
    pub fn row_start(&self, v: usize) -> usize {
        self.row_offsets[v] as usize
    }

    /// Neighbors (column indices) of node `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        let a = self.row_offsets[v] as usize;
        let b = self.row_offsets[v + 1] as usize;
        &self.col_indices[a..b]
    }

    /// Edge weights of node `v`, if the graph is weighted.
    pub fn weights_of(&self, v: usize) -> Option<&[f32]> {
        let a = self.row_offsets[v] as usize;
        let b = self.row_offsets[v + 1] as usize;
        self.weights.as_ref().map(|w| &w[a..b])
    }

    /// Whether the graph carries edge weights.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// The raw row-offset array (length `n + 1`).
    pub fn row_offsets_raw(&self) -> &[u32] {
        &self.row_offsets
    }

    /// The raw column-index array (length `m`).
    pub fn col_indices_raw(&self) -> &[u32] {
        &self.col_indices
    }

    /// The raw weight array, if weighted.
    pub fn weights_raw(&self) -> Option<&[f32]> {
        self.weights.as_deref()
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Mean out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// The transpose (reverse every edge). Pull-style PageRank iterates
    /// in-edges, which is the transpose's out-edges.
    pub fn reverse(&self) -> Csr {
        let n = self.num_nodes();
        let mut degree = vec![0u32; n];
        for &v in &self.col_indices {
            degree[v as usize] += 1;
        }
        let mut row_offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        row_offsets.push(0);
        for &d in &degree {
            acc += d;
            row_offsets.push(acc);
        }
        let mut col_indices = vec![0u32; self.num_edges()];
        let mut weights = self.weights.as_ref().map(|_| vec![0f32; self.num_edges()]);
        let mut cursor: Vec<u32> = row_offsets[..n].to_vec();
        for u in 0..n {
            let a = self.row_offsets[u] as usize;
            let b = self.row_offsets[u + 1] as usize;
            for e in a..b {
                let v = self.col_indices[e] as usize;
                let slot = cursor[v] as usize;
                col_indices[slot] = u as u32;
                if let (Some(w), Some(src)) = (weights.as_mut(), self.weights.as_ref()) {
                    w[slot] = src[e];
                }
                cursor[v] += 1;
            }
        }
        Csr {
            row_offsets,
            col_indices,
            weights,
        }
    }

    /// Structural consistency check.
    pub fn validate(&self) -> Result<(), String> {
        if self.row_offsets.is_empty() {
            return Err("row_offsets must have at least one entry".into());
        }
        if self.row_offsets[0] != 0 {
            return Err("row_offsets must start at 0".into());
        }
        if !self.row_offsets.windows(2).all(|w| w[0] <= w[1]) {
            return Err("row_offsets must be non-decreasing".into());
        }
        let m = *self.row_offsets.last().unwrap() as usize;
        if m != self.col_indices.len() {
            return Err(format!(
                "row_offsets imply {m} edges, col_indices has {}",
                self.col_indices.len()
            ));
        }
        let n = self.num_nodes() as u32;
        if let Some(&bad) = self.col_indices.iter().find(|&&v| v >= n) {
            return Err(format!("column index {bad} out of range (n = {n})"));
        }
        if let Some(w) = &self.weights {
            if w.len() != self.col_indices.len() {
                return Err("weights length differs from col_indices".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Csr::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn from_edges_builds_expected_rows() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[3]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 1.0).abs() < 1e-12);
        g.validate().unwrap();
    }

    #[test]
    fn weighted_edges_keep_weights_aligned() {
        let g = Csr::from_weighted_edges(3, &[(0, 1, 2.5), (0, 2, 1.0), (2, 0, 7.0)]);
        assert!(g.is_weighted());
        assert_eq!(g.weights_of(0).unwrap(), &[2.5, 1.0]);
        assert_eq!(g.weights_of(1).unwrap(), &[] as &[f32]);
        assert_eq!(g.weights_of(2).unwrap(), &[7.0]);
    }

    #[test]
    fn reverse_transposes() {
        let g = diamond();
        let r = g.reverse();
        assert_eq!(r.neighbors(3), &[1, 2]);
        assert_eq!(r.neighbors(0), &[] as &[u32]);
        assert_eq!(r.neighbors(1), &[0]);
        // Double reverse restores edge multiset per node.
        let rr = r.reverse();
        for v in 0..4 {
            let mut a = g.neighbors(v).to_vec();
            let mut b = rr.neighbors(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn reverse_preserves_weights() {
        let g = Csr::from_weighted_edges(3, &[(0, 2, 5.0), (1, 2, 6.0)]);
        let r = g.reverse();
        let mut pairs: Vec<(u32, f32)> = r
            .neighbors(2)
            .iter()
            .copied()
            .zip(r.weights_of(2).unwrap().iter().copied())
            .collect();
        pairs.sort_by_key(|p| p.0);
        assert_eq!(pairs, vec![(0, 5.0), (1, 6.0)]);
    }

    #[test]
    fn validate_catches_corruption() {
        let g = Csr::from_raw(vec![0, 1], vec![0], None);
        g.validate().unwrap();
        let bad = Csr {
            row_offsets: vec![0, 2],
            col_indices: vec![0],
            weights: None,
        };
        assert!(bad.validate().is_err());
        let bad_col = Csr {
            row_offsets: vec![0, 1],
            col_indices: vec![5],
            weights: None,
        };
        assert!(bad_col.validate().is_err());
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edges(0, &[]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "inconsistent CSR")]
    fn from_raw_panics_on_garbage() {
        Csr::from_raw(vec![1, 0], vec![], None);
    }
}
