//! Dataset parsers: DIMACS shortest-path format and plain edge lists.
//!
//! The paper's CiteSeer dataset comes from the DIMACS implementation
//! challenges (`.gr` files) and Wiki-Vote from SNAP (whitespace edge list);
//! these parsers let the real files be dropped into the harness in place of
//! the scaled synthetic stand-ins.

use std::io::BufRead;

use crate::csr::Csr;

/// Parse a DIMACS shortest-path `.gr` file:
/// comment lines `c ...`, one problem line `p sp <nodes> <edges>`, and arc
/// lines `a <src> <dst> <weight>` with 1-based node ids.
pub fn parse_dimacs(reader: impl BufRead) -> Result<Csr, String> {
    let mut n: Option<usize> = None;
    let mut edges: Vec<(u32, u32, f32)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("I/O error: {e}"))?;
        let mut it = line.split_whitespace();
        match it.next() {
            None | Some("c") => {}
            Some("p") => {
                let kind = it
                    .next()
                    .ok_or_else(|| err(lineno, "missing problem kind"))?;
                if kind != "sp" {
                    return Err(err(lineno, "problem kind must be 'sp'"));
                }
                let nodes: usize = parse(it.next(), lineno)?;
                let m: usize = parse(it.next(), lineno)?;
                n = Some(nodes);
                edges.reserve(m);
            }
            Some("a") => {
                let u: u32 = parse(it.next(), lineno)?;
                let v: u32 = parse(it.next(), lineno)?;
                let w: f32 = parse(it.next(), lineno)?;
                if u == 0 || v == 0 {
                    return Err(err(lineno, "DIMACS node ids are 1-based"));
                }
                edges.push((u - 1, v - 1, w));
            }
            Some(tok) => return Err(err(lineno, &format!("unknown record '{tok}'"))),
        }
    }
    let n = n.ok_or("missing 'p sp' problem line")?;
    if let Some(&(u, v, _)) = edges
        .iter()
        .find(|&&(u, v, _)| u as usize >= n || v as usize >= n)
    {
        return Err(format!("edge ({u},{v}) out of range for {n} nodes"));
    }
    Ok(Csr::from_weighted_edges(n, &edges))
}

/// Parse a whitespace edge list (`src dst` per line, `#` comments, 0-based
/// ids as in SNAP exports). The node count is one past the largest id.
pub fn parse_edge_list(reader: impl BufRead) -> Result<Csr, String> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id = 0u32;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("I/O error: {e}"))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let u: u32 = parse(it.next(), lineno)?;
        let v: u32 = parse(it.next(), lineno)?;
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let n = if edges.is_empty() {
        0
    } else {
        max_id as usize + 1
    };
    Ok(Csr::from_edges(n, &edges))
}

/// Parse a MatrixMarket coordinate file (`%%MatrixMarket matrix coordinate
/// real|pattern general|symmetric`) into a weighted CSR — the format SpMV
/// matrices (SuiteSparse etc.) ship in. Pattern matrices get unit weights;
/// symmetric matrices are expanded (off-diagonal entries mirrored).
pub fn parse_matrix_market(reader: impl BufRead) -> Result<Csr, String> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or("empty file")?
        .map_err(|e| format!("I/O error: {e}"))?;
    let head: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_lowercase())
        .collect();
    if head.len() < 5
        || head[0] != "%%matrixmarket"
        || head[1] != "matrix"
        || head[2] != "coordinate"
    {
        return Err("expected '%%MatrixMarket matrix coordinate ...' header".into());
    }
    let pattern = head[3] == "pattern";
    if !pattern && head[3] != "real" && head[3] != "integer" {
        return Err(format!("unsupported field type '{}'", head[3]));
    }
    let symmetric = head[4] == "symmetric";
    if !symmetric && head[4] != "general" {
        return Err(format!("unsupported symmetry '{}'", head[4]));
    }

    let mut dims: Option<(usize, usize)> = None;
    let mut edges: Vec<(u32, u32, f32)> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| format!("I/O error: {e}"))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        if dims.is_none() {
            let rows: usize = parse(it.next(), lineno)?;
            let cols: usize = parse(it.next(), lineno)?;
            let nnz: usize = parse(it.next(), lineno)?;
            if rows != cols {
                return Err(format!("matrix must be square, got {rows}x{cols}"));
            }
            dims = Some((rows, nnz));
            edges.reserve(nnz);
            continue;
        }
        let r: u32 = parse(it.next(), lineno)?;
        let c: u32 = parse(it.next(), lineno)?;
        if r == 0 || c == 0 {
            return Err(err(lineno, "MatrixMarket indices are 1-based"));
        }
        let w: f32 = if pattern {
            1.0
        } else {
            parse(it.next(), lineno)?
        };
        edges.push((r - 1, c - 1, w));
        if symmetric && r != c {
            edges.push((c - 1, r - 1, w));
        }
    }
    // The header's entry count is advisory (symmetric expansion changes
    // it, and some exports are loose); bounds are what must hold.
    let (n, _declared_nnz) = dims.ok_or("missing size line")?;
    if let Some(&(u, v, _)) = edges
        .iter()
        .find(|&&(u, v, _)| u as usize >= n || v as usize >= n)
    {
        return Err(format!("entry ({u},{v}) out of range for {n} rows"));
    }
    Ok(Csr::from_weighted_edges(n, &edges))
}

fn parse<T: std::str::FromStr>(tok: Option<&str>, lineno: usize) -> Result<T, String> {
    tok.ok_or_else(|| err(lineno, "missing field"))?
        .parse()
        .map_err(|_| err(lineno, "unparseable field"))
}

fn err(lineno: usize, msg: &str) -> String {
    format!("line {}: {msg}", lineno + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimacs_roundtrip() {
        let text = "c example\np sp 3 3\na 1 2 5\na 1 3 2\na 3 1 9\n";
        let g = parse_dimacs(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.weights_of(0).unwrap(), &[5.0, 2.0]);
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn dimacs_rejects_zero_ids_and_bad_kind() {
        assert!(parse_dimacs("p sp 2 1\na 0 1 1\n".as_bytes()).is_err());
        assert!(parse_dimacs("p max 2 1\na 1 2 1\n".as_bytes()).is_err());
        assert!(parse_dimacs("a 1 2 1\n".as_bytes()).is_err());
        assert!(parse_dimacs("p sp 1 1\na 1 2 1\n".as_bytes()).is_err());
    }

    #[test]
    fn edge_list_roundtrip() {
        let text = "# SNAP style\n0 1\n0 2\n2 1\n\n";
        let g = parse_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(2), &[1]);
        assert!(!g.is_weighted());
    }

    #[test]
    fn edge_list_empty_is_empty_graph() {
        let g = parse_edge_list("# nothing\n".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 0);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(parse_edge_list("0 x\n".as_bytes()).is_err());
        assert!(parse_edge_list("0\n".as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_real_general() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % comment\n\
                    3 3 3\n\
                    1 2 4.5\n\
                    2 3 1.0\n\
                    3 1 2.0\n";
        let g = parse_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.weights_of(0).unwrap(), &[4.5]);
    }

    #[test]
    fn matrix_market_symmetric_pattern_expands() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    3 3 3\n\
                    2 1\n\
                    3 1\n\
                    3 3\n";
        let g = parse_matrix_market(text.as_bytes()).unwrap();
        // Off-diagonal entries mirrored, diagonal kept once: 5 edges.
        assert_eq!(g.num_edges(), 5);
        let mut n0 = g.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
        assert_eq!(g.weights_of(2).unwrap().len(), g.degree(2));
        assert!(g.weights_of(1).unwrap().iter().all(|&w| w == 1.0));
    }

    #[test]
    fn matrix_market_rejects_bad_input() {
        assert!(parse_matrix_market("garbage\n".as_bytes()).is_err());
        assert!(parse_matrix_market(
            "%%MatrixMarket matrix coordinate complex general\n1 1 0\n".as_bytes()
        )
        .is_err());
        assert!(parse_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 2 1.0\n".as_bytes()
        )
        .is_err());
        assert!(parse_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n".as_bytes()
        )
        .is_err());
        assert!(parse_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 5 1.0\n".as_bytes()
        )
        .is_err());
    }
}
