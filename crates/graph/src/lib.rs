//! # npar-graph — CSR graphs, generators and parsers
//!
//! Input substrate for the npar reproduction: the [`Csr`] structure every
//! graph kernel operates on, deterministic synthetic generators matched to
//! the paper's datasets (CiteSeer, Wiki-Vote, uniform random graphs), and
//! parsers for the real files (DIMACS `.gr`, SNAP edge lists).

#![warn(missing_docs)]

mod csr;
pub mod generate;
pub mod io;
mod stats;

pub use csr::Csr;
pub use generate::{
    citeseer_like, power_law, rmat, uniform_random, wiki_vote_like, with_random_weights,
    PowerLawSpec,
};
pub use stats::DegreeStats;
