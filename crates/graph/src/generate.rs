//! Synthetic graph generators matched to the paper's datasets.
//!
//! The templates' behaviour is driven by the *out-degree distribution* (it
//! is the inner-loop trip count of Figure 1(a)), so each generator targets
//! the published degree statistics of the corresponding dataset:
//!
//! * [`citeseer_like`] — the DIMACS CiteSeer citation network: 434 k nodes,
//!   ~16 M edges, out-degree 1–1188 with mean 73.9 (heavy tail);
//! * [`wiki_vote_like`] — the SNAP Wiki-Vote network: ~7 k nodes, ~100 k
//!   edges, out-degree 0–893 with mean 14.6;
//! * [`uniform_random`] — the Figure 9 graphs: fixed node count, out-degree
//!   uniform within a range.
//!
//! All generators are deterministic given a seed (ChaCha8).

use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::csr::Csr;

/// Degree-distribution description for [`power_law`]: a clamped lognormal,
/// the empirical shape of citation/web out-degree distributions. `sigma`
/// sets the skew (≈0.6 for citation networks' moderate tail, ≥1.2 for
/// social who-votes-on-whom tails); the location parameter is solved so
/// the clamped mean hits `mean_degree`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawSpec {
    /// Minimum out-degree.
    pub min_degree: u32,
    /// Maximum out-degree (clamp point).
    pub max_degree: u32,
    /// Target mean out-degree.
    pub mean_degree: f64,
    /// Lognormal shape (log-space standard deviation).
    pub sigma: f64,
    /// Fraction of nodes forced to degree zero (sinks), applied after
    /// sampling. Wiki-Vote has many voters with no outgoing votes.
    pub zero_fraction: f64,
}

/// Expected value of `clamp(exp(mu + sigma * Z), lo, hi)` for standard
/// normal `Z`, by midpoint quadrature over z in [-8, 8].
fn clamped_lognormal_mean(mu: f64, sigma: f64, lo: f64, hi: f64) -> f64 {
    const STEPS: usize = 2048;
    let (a, b) = (-8.0f64, 8.0f64);
    let h = (b - a) / STEPS as f64;
    let mut acc = 0.0;
    for k in 0..STEPS {
        let z = a + (k as f64 + 0.5) * h;
        let pdf = (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt();
        let x = (mu + sigma * z).exp().clamp(lo, hi);
        acc += x * pdf * h;
    }
    acc
}

/// Solve the lognormal location `mu` whose clamped mean matches `target`
/// (monotone in `mu`, so bisection).
fn solve_mu(sigma: f64, lo: f64, hi: f64, target: f64) -> f64 {
    let mut a = lo.ln() - 4.0;
    let mut b = hi.ln() + 4.0;
    for _ in 0..100 {
        let mid = 0.5 * (a + b);
        if clamped_lognormal_mean(mid, sigma, lo, hi) < target {
            a = mid;
        } else {
            b = mid;
        }
    }
    0.5 * (a + b)
}

/// Generate a graph whose out-degrees follow a clamped lognormal (heavy
/// tail controlled by `spec.sigma`) and whose edge targets are uniform
/// random nodes.
pub fn power_law(n: usize, spec: PowerLawSpec, seed: u64) -> Csr {
    assert!(n > 0);
    assert!(spec.min_degree <= spec.max_degree);
    assert!(spec.sigma > 0.0);
    assert!((0.0..1.0).contains(&spec.zero_fraction));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let lo = f64::from(spec.min_degree).max(0.5);
    let hi = f64::from(spec.max_degree);
    // Mean must be corrected for the zero-degree mass.
    let target = (spec.mean_degree / (1.0 - spec.zero_fraction)).clamp(lo, hi * 0.99);
    let mu = solve_mu(spec.sigma, lo, hi, target);

    let mut degrees = Vec::with_capacity(n);
    for _ in 0..n {
        if spec.zero_fraction > 0.0 && rng.gen_range(0.0..1.0) < spec.zero_fraction {
            degrees.push(0u32);
        } else {
            // Box-Muller standard normal.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let d = (mu + spec.sigma * z).exp().round() as u32;
            degrees.push(d.clamp(spec.min_degree, spec.max_degree));
        }
    }
    // Preferential targets: citation/vote graphs are skewed on both sides,
    // so edge endpoints are drawn proportionally to (out-degree + 1) —
    // giving the transpose (PageRank's in-edge loop) a matching heavy
    // tail.
    let mut cumulative: Vec<u64> = Vec::with_capacity(n);
    let mut acc = 0u64;
    for &d in &degrees {
        acc += u64::from(d) + 1;
        cumulative.push(acc);
    }
    let m: usize = degrees.iter().map(|&d| d as usize).sum();
    let mut row_offsets = Vec::with_capacity(n + 1);
    let mut off = 0u32;
    row_offsets.push(0);
    for &d in &degrees {
        off += d;
        row_offsets.push(off);
    }
    let mut col_indices = Vec::with_capacity(m);
    for _ in 0..m {
        let ticket = rng.gen_range(0..acc);
        let v = cumulative.partition_point(|&c| c <= ticket);
        col_indices.push(v as u32);
    }
    Csr::from_raw(row_offsets, col_indices, None)
}

/// Generate a graph with out-degrees uniform in `[deg_lo, deg_hi]` and
/// uniform random targets — the random graphs of the paper's Figure 9.
pub fn uniform_random(n: usize, deg_lo: u32, deg_hi: u32, seed: u64) -> Csr {
    assert!(n > 0);
    assert!(deg_lo <= deg_hi);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dist = Uniform::new_inclusive(deg_lo, deg_hi.min(n as u32 - 1));
    let degrees: Vec<u32> = (0..n).map(|_| dist.sample(&mut rng)).collect();
    assemble(n, &degrees, &mut rng)
}

fn assemble(n: usize, degrees: &[u32], rng: &mut impl Rng) -> Csr {
    let m: usize = degrees.iter().map(|&d| d as usize).sum();
    let mut row_offsets = Vec::with_capacity(n + 1);
    let mut acc = 0u32;
    row_offsets.push(0);
    for &d in degrees {
        acc += d;
        row_offsets.push(acc);
    }
    let target = Uniform::new(0, n as u32);
    let mut col_indices = Vec::with_capacity(m);
    for _ in 0..m {
        col_indices.push(target.sample(rng));
    }
    Csr::from_raw(row_offsets, col_indices, None)
}

/// Attach uniform-random integer edge weights in `[1, max_weight]` (SSSP
/// inputs in the DIMACS challenge style).
pub fn with_random_weights(g: &Csr, max_weight: u32, seed: u64) -> Csr {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dist = Uniform::new_inclusive(1, max_weight.max(1));
    let weights: Vec<f32> = (0..g.num_edges())
        .map(|_| dist.sample(&mut rng) as f32)
        .collect();
    Csr::from_raw(
        g.row_offsets_raw().to_vec(),
        g.col_indices_raw().to_vec(),
        Some(weights),
    )
}

/// A CiteSeer-like citation network scaled to `n` nodes (the paper's full
/// dataset is `n = 434_000`; DESIGN.md documents the default 60 k scaling
/// for simulator throughput). Mean degree ≈ 73.9, max 1188, min 1.
pub fn citeseer_like(n: usize, seed: u64) -> Csr {
    power_law(
        n,
        PowerLawSpec {
            min_degree: 1,
            max_degree: 1188,
            mean_degree: 73.9,
            // Citation out-degrees have a moderate lognormal tail; this
            // shape also reproduces the paper's ~36% baseline warp
            // execution efficiency on SSSP (Table I).
            sigma: 0.6,
            zero_fraction: 0.0,
        },
        seed,
    )
}

/// An R-MAT (recursive-matrix / Kronecker) graph — the standard synthetic
/// model of the GPU graph-processing literature the paper draws baselines
/// from. `scale` gives `2^scale` nodes; `edge_factor` edges per node;
/// `(a, b, c)` are the quadrant probabilities (`d = 1 - a - b - c`), with
/// the Graph500 defaults `(0.57, 0.19, 0.19)` producing a skewed,
/// community-structured degree distribution.
pub fn rmat(scale: u32, edge_factor: u32, probs: (f64, f64, f64), seed: u64) -> Csr {
    assert!((1..31).contains(&scale));
    let (a, b, c) = probs;
    assert!(a > 0.0 && b >= 0.0 && c >= 0.0 && a + b + c < 1.0 + 1e-9);
    let n = 1usize << scale;
    let m = n * edge_factor as usize;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut lo_u, mut hi_u) = (0usize, n);
        let (mut lo_v, mut hi_v) = (0usize, n);
        while hi_u - lo_u > 1 {
            let r: f64 = rng.gen_range(0.0..1.0);
            let (right, down) = if r < a {
                (false, false)
            } else if r < a + b {
                (true, false)
            } else if r < a + b + c {
                (false, true)
            } else {
                (true, true)
            };
            let mid_u = (lo_u + hi_u) / 2;
            let mid_v = (lo_v + hi_v) / 2;
            if right {
                lo_v = mid_v;
            } else {
                hi_v = mid_v;
            }
            if down {
                lo_u = mid_u;
            } else {
                hi_u = mid_u;
            }
        }
        edges.push((lo_u as u32, lo_v as u32));
    }
    Csr::from_edges(n, &edges)
}

/// A Wiki-Vote-like who-votes-on-whom network at full published scale:
/// 7115 nodes, mean out-degree ≈ 14.6, max 893, with a large zero-degree
/// population.
pub fn wiki_vote_like(seed: u64) -> Csr {
    power_law(
        7115,
        PowerLawSpec {
            min_degree: 1,
            max_degree: 893,
            mean_degree: 14.6,
            // Small-world voting tails are much heavier than citation
            // ones (max/mean ≈ 61), matching the paper's ~10% baseline
            // warp efficiency on BC (Table II).
            sigma: 1.3,
            zero_fraction: 0.55,
        },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mu_solver_hits_target_mean() {
        let mu = solve_mu(0.6, 1.0, 1188.0, 74.0);
        let mean = clamped_lognormal_mean(mu, 0.6, 1.0, 1188.0);
        assert!((mean - 74.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn citeseer_like_matches_published_stats() {
        let g = citeseer_like(20_000, 7);
        g.validate().unwrap();
        let avg = g.avg_degree();
        assert!((avg - 73.9).abs() < 8.0, "avg degree {avg}");
        assert!(g.max_degree() <= 1188);
        assert!(
            g.max_degree() > 500,
            "heavy tail missing: {}",
            g.max_degree()
        );
        assert!((0..g.num_nodes()).all(|v| g.degree(v) >= 1));
    }

    #[test]
    fn wiki_vote_like_matches_published_stats() {
        let g = wiki_vote_like(11);
        assert_eq!(g.num_nodes(), 7115);
        let avg = g.avg_degree();
        assert!((avg - 14.6).abs() < 4.0, "avg degree {avg}");
        let zeros = (0..g.num_nodes()).filter(|&v| g.degree(v) == 0).count();
        assert!(zeros > 2000, "expected many sinks, got {zeros}");
        assert!(g.max_degree() <= 893);
    }

    #[test]
    fn uniform_random_bounds_degrees() {
        let g = uniform_random(1000, 4, 16, 3);
        g.validate().unwrap();
        for v in 0..1000 {
            let d = g.degree(v);
            assert!((4..=16).contains(&d));
        }
        let avg = g.avg_degree();
        assert!((avg - 10.0).abs() < 1.0);
    }

    #[test]
    fn rmat_is_skewed_and_sized() {
        let g = rmat(12, 8, (0.57, 0.19, 0.19), 7);
        assert_eq!(g.num_nodes(), 4096);
        assert_eq!(g.num_edges(), 4096 * 8);
        g.validate().unwrap();
        // Graph500 parameters concentrate edges: the max degree is far
        // above the mean.
        assert!(g.max_degree() as f64 > 8.0 * g.avg_degree());
        // Deterministic.
        assert_eq!(g, rmat(12, 8, (0.57, 0.19, 0.19), 7));
    }

    #[test]
    fn rmat_uniform_probs_are_not_skewed() {
        let g = rmat(10, 8, (0.25, 0.25, 0.25), 3);
        assert!((g.avg_degree() - 8.0).abs() < 1e-9);
        assert!(g.max_degree() < 40);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = uniform_random(500, 1, 8, 42);
        let b = uniform_random(500, 1, 8, 42);
        assert_eq!(a, b);
        let c = uniform_random(500, 1, 8, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn random_weights_in_range() {
        let g = uniform_random(200, 1, 6, 5);
        let w = with_random_weights(&g, 10, 9);
        assert!(w.is_weighted());
        for v in 0..200 {
            for &x in w.weights_of(v).unwrap() {
                assert!((1.0..=10.0).contains(&x));
            }
        }
    }
}
