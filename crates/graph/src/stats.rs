//! Degree statistics — the knobs the paper's analysis keys on (mean/max
//! out-degree, skew) and what EXPERIMENTS.md reports for each dataset.

use crate::csr::Csr;
use serde::{Deserialize, Serialize};

/// Summary statistics of a graph's out-degree distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Minimum out-degree.
    pub min: usize,
    /// Maximum out-degree.
    pub max: usize,
    /// Mean out-degree.
    pub mean: f64,
    /// Median out-degree.
    pub median: usize,
    /// 99th-percentile out-degree.
    pub p99: usize,
    /// Fraction of nodes with zero out-degree.
    pub zero_fraction: f64,
}

impl DegreeStats {
    /// Compute statistics for `g`.
    pub fn of(g: &Csr) -> DegreeStats {
        let n = g.num_nodes();
        let mut degrees: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
        degrees.sort_unstable();
        let zero = degrees.iter().take_while(|&&d| d == 0).count();
        DegreeStats {
            nodes: n,
            edges: g.num_edges(),
            min: degrees.first().copied().unwrap_or(0),
            max: degrees.last().copied().unwrap_or(0),
            mean: g.avg_degree(),
            median: percentile(&degrees, 0.5),
            p99: percentile(&degrees, 0.99),
            zero_fraction: if n == 0 { 0.0 } else { zero as f64 / n as f64 },
        }
    }
}

fn percentile(sorted: &[usize], q: f64) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

impl std::fmt::Display for DegreeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} nodes, {} edges, out-degree min {} / median {} / mean {:.1} / p99 {} / max {} ({:.0}% sinks)",
            self.nodes,
            self.edges,
            self.min,
            self.median,
            self.mean,
            self.p99,
            self.max,
            self.zero_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_small_graph() {
        let g = Csr::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let s = DegreeStats::of(&g);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 4);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 3);
        assert!((s.mean - 1.0).abs() < 1e-12);
        assert!((s.zero_fraction - 0.5).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("4 nodes"));
    }

    #[test]
    fn empty_graph_stats() {
        let g = Csr::from_edges(0, &[]);
        let s = DegreeStats::of(&g);
        assert_eq!(s.max, 0);
        assert_eq!(s.zero_fraction, 0.0);
    }
}
