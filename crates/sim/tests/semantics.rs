//! Public-API semantics of the simulator: deferred child execution,
//! parent/child joins, stream behaviour and the profiling surface.

use npar_sim::SyncCell;
use std::sync::Arc;

use npar_sim::{
    BlockCtx, CostModel, DeviceConfig, Gpu, Kernel, KernelRef, LaunchConfig, Stream, ThreadCtx,
    ThreadKernel,
};

/// Child kernel that appends a tag to a shared log.
struct Tag {
    log: Arc<SyncCell<Vec<&'static str>>>,
    tag: &'static str,
}
impl ThreadKernel for Tag {
    fn name(&self) -> &str {
        "tag"
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        if t.global_id() == 0 {
            self.log.borrow_mut().push(self.tag);
        }
        t.compute(1);
    }
}

/// Parent that launches a child and logs around the launch, optionally
/// joining it.
struct Parent {
    log: Arc<SyncCell<Vec<&'static str>>>,
    join: bool,
}
impl Kernel for Parent {
    fn name(&self) -> &str {
        "parent"
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let log = Arc::clone(&self.log);
        let child: KernelRef = Arc::new(Tag {
            log: Arc::clone(&self.log),
            tag: "child",
        });
        blk.for_each_thread(|t| {
            if t.is_leader() {
                log.borrow_mut().push("before-launch");
                t.launch(&child, LaunchConfig::new(1, 32), Stream::Default);
                log.borrow_mut().push("after-launch");
            }
        });
        if self.join {
            blk.sync_children();
            blk.for_each_thread(|t| {
                if t.is_leader() {
                    log.borrow_mut().push("after-join");
                }
            });
        }
    }
}

#[test]
fn children_are_deferred_until_join() {
    let log = Arc::new(SyncCell::new(Vec::new()));
    let mut gpu = Gpu::k20();
    gpu.launch(
        Arc::new(Parent {
            log: Arc::clone(&log),
            join: true,
        }),
        LaunchConfig::new(1, 32),
    )
    .unwrap();
    gpu.synchronize();
    assert_eq!(
        *log.borrow(),
        vec!["before-launch", "after-launch", "child", "after-join"],
        "child must run at the join, not at the launch point"
    );
}

#[test]
fn fire_and_forget_children_run_by_grid_completion() {
    let log = Arc::new(SyncCell::new(Vec::new()));
    let mut gpu = Gpu::k20();
    gpu.launch(
        Arc::new(Parent {
            log: Arc::clone(&log),
            join: false,
        }),
        LaunchConfig::new(1, 32),
    )
    .unwrap();
    // The host launch drives the whole descendant tree to completion.
    assert_eq!(
        *log.borrow(),
        vec!["before-launch", "after-launch", "child"]
    );
    let r = gpu.synchronize();
    assert_eq!(r.device_launches, 1);
    assert_eq!(r.host_launches, 1);
}

/// Grand-parent joining a child whose own child must also be complete.
struct Grand {
    log: Arc<SyncCell<Vec<&'static str>>>,
}
impl Kernel for Grand {
    fn name(&self) -> &str {
        "grand"
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let mid: KernelRef = Arc::new(Mid {
            log: Arc::clone(&self.log),
        });
        blk.for_each_thread(|t| {
            if t.is_leader() {
                t.launch(&mid, LaunchConfig::new(1, 32), Stream::Default);
            }
        });
        blk.sync_children();
        let log = Arc::clone(&self.log);
        blk.for_each_thread(move |t| {
            if t.is_leader() {
                log.borrow_mut().push("grand-after-join");
            }
        });
    }
}
struct Mid {
    log: Arc<SyncCell<Vec<&'static str>>>,
}
impl Kernel for Mid {
    fn name(&self) -> &str {
        "mid"
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let leaf: KernelRef = Arc::new(Tag {
            log: Arc::clone(&self.log),
            tag: "leaf",
        });
        let log = Arc::clone(&self.log);
        blk.for_each_thread(|t| {
            if t.is_leader() {
                log.borrow_mut().push("mid");
                // Fire-and-forget from the middle kernel.
                t.launch(&leaf, LaunchConfig::new(1, 32), Stream::Default);
            }
        });
    }
}

#[test]
fn join_covers_the_whole_subtree() {
    let log = Arc::new(SyncCell::new(Vec::new()));
    let mut gpu = Gpu::k20();
    gpu.launch(
        Arc::new(Grand {
            log: Arc::clone(&log),
        }),
        LaunchConfig::new(1, 32),
    )
    .unwrap();
    gpu.synchronize();
    assert_eq!(
        *log.borrow(),
        vec!["mid", "leaf", "grand-after-join"],
        "a parent's join must also cover its grandchildren"
    );
}

/// One warp of divergent trip counts for metric surface checks.
struct Skewed;
impl ThreadKernel for Skewed {
    fn name(&self) -> &str {
        "skewed"
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        t.compute(1 + t.thread_idx() * 4);
    }
}

#[test]
fn divergence_shows_in_public_metrics() {
    let mut gpu = Gpu::k20();
    gpu.launch(Arc::new(Skewed), LaunchConfig::new(1, 32))
        .unwrap();
    let r = gpu.synchronize();
    let eff = r.total().warp_execution_efficiency();
    assert!(
        eff > 0.3 && eff < 0.7,
        "triangular skew should land mid-range, got {eff}"
    );
}

#[test]
fn host_streams_overlap_long_kernels() {
    struct Busy;
    impl ThreadKernel for Busy {
        fn name(&self) -> &str {
            "busy"
        }
        fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
            t.compute(200_000);
        }
    }
    let serial = {
        let mut gpu = Gpu::k20();
        gpu.launch(Arc::new(Busy), LaunchConfig::new(1, 32))
            .unwrap();
        gpu.launch(Arc::new(Busy), LaunchConfig::new(1, 32))
            .unwrap();
        gpu.synchronize().cycles
    };
    let overlapped = {
        let mut gpu = Gpu::k20();
        gpu.launch_in(Arc::new(Busy), LaunchConfig::new(1, 32), Stream::Slot(0))
            .unwrap();
        gpu.launch_in(Arc::new(Busy), LaunchConfig::new(1, 32), Stream::Slot(1))
            .unwrap();
        gpu.synchronize().cycles
    };
    assert!(
        overlapped < serial * 0.7,
        "streams should overlap: {overlapped} vs {serial}"
    );
}

#[test]
fn cost_model_is_respected() {
    // Doubling ALU cost doubles the time of a compute-only kernel.
    struct Alu;
    impl ThreadKernel for Alu {
        fn name(&self) -> &str {
            "alu"
        }
        fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
            t.compute(100_000);
        }
    }
    let time = |alu: f64| {
        let cost = CostModel {
            alu_cycles: alu,
            host_launch_cycles: 0.000_001,
            ..Default::default()
        };
        let mut gpu = Gpu::new(DeviceConfig::kepler_k20(), cost);
        gpu.launch(Arc::new(Alu), LaunchConfig::new(1, 32)).unwrap();
        gpu.synchronize().cycles
    };
    let one = time(1.0);
    let two = time(2.0);
    assert!((two / one - 2.0).abs() < 0.01, "ratio {}", two / one);
}
