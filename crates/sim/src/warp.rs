//! Warp lockstep alignment: turns 32 per-lane instruction traces into
//! issue-group timing, divergence and memory-efficiency metrics.
//!
//! The model replays the lanes of a warp position-by-position. At each step
//! every unfinished lane presents its current op; ops of the same kind issue
//! together as one warp instruction (with the presenting lanes active),
//! while ops of *different* kinds at the same position serialize into
//! separate issue groups — the SIMT re-convergence behaviour that makes
//! divergent warps slow. Lanes that have finished their (shorter) traces
//! simply stop presenting, which is exactly how an irregular inner loop
//! degrades warp execution efficiency in the paper's baseline template.

use crate::config::DeviceConfig;
use crate::cost::CostModel;
use crate::memory;
use crate::profiler::{KernelMetrics, StallCycles};
use crate::trace::{Op, OpGroup, ISSUE_GROUPS};

/// A device-side launch observed during alignment: which grid, and how many
/// cycles into the segment the launching instruction completed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct LaunchPoint {
    pub grid: u32,
    pub offset: f64,
}

/// Timing outcome of one warp over one barrier segment.
#[derive(Debug, Clone, Default)]
pub(crate) struct WarpOutcome {
    /// Execution cycles of the warp (its contribution to block work; the
    /// maximum over a block's warps is the segment span).
    pub cycles: f64,
    /// Device-side launches with their cycle offsets.
    pub launches: Vec<LaunchPoint>,
}

/// Reusable scratch buffers for alignment (allocation-free steady state).
#[derive(Debug, Default)]
pub(crate) struct AlignScratch {
    positions: Vec<usize>,
    gaddrs: Vec<(u64, u8)>,
    aaddrs: Vec<u64>,
    saddrs: Vec<u32>,
    lines: Vec<u64>,
    banks: Vec<u32>,
}

/// Align one warp's lane traces (1..=warp_size slices, one per lane) over a
/// single barrier segment, accumulating profiler counters into `metrics`.
pub(crate) fn align_warp(
    lanes: &[&[Op]],
    device: &DeviceConfig,
    cost: &CostModel,
    metrics: &mut KernelMetrics,
    scratch: &mut AlignScratch,
) -> WarpOutcome {
    let warp = f64::from(device.warp_size);
    // Warp widths are powers of two, so multiplying by the reciprocal is
    // bit-identical to dividing and keeps the per-group stall split off
    // the fp-divide unit (it runs once per issue group, the hot path).
    let inv_warp = 1.0 / warp;
    let n = lanes.len();
    debug_assert!(n >= 1 && n <= device.warp_size as usize);

    if cost.divergence == crate::cost::DivergenceModel::MaxLane {
        return max_lane_model(lanes, cost, metrics);
    }

    scratch.positions.clear();
    scratch.positions.resize(n, 0);

    let mut out = WarpOutcome::default();
    let mut issue_slots = 0.0f64;
    let mut active_slots = 0.0f64;
    // Stall attribution: each issue group's duration splits into a busy
    // share (active lanes / warp width, charged to the group's kind) and
    // an idle remainder (charged to divergence). The hot loop accumulates
    // the raw dur x active products; the busy scaling and the divergence
    // remainder happen once per warp below. Accumulated locally and merged
    // once at the end — the same single-add discipline as the counters
    // above, which keeps memoized replays bit-identical.
    let mut stalls = StallCycles::default();

    loop {
        // One pass over the unfinished lanes collects which issue groups
        // the step contains as a bitmask — no per-lane `Option<Op>`
        // snapshot; the group branches below re-read the ops directly.
        let mut mask = 0u16;
        for (pos, lane) in scratch.positions.iter().zip(lanes) {
            if let Some(&op) = lane.get(*pos) {
                debug_assert!(
                    !op.is_delimiter(),
                    "delimiters must be stripped before alignment"
                );
                mask |= 1 << op.group() as u8;
            }
        }
        if mask == 0 {
            break;
        }

        // Issue each populated group in deterministic order.
        for group in ISSUE_GROUPS {
            if mask & (1 << group as u8) == 0 {
                continue;
            }
            match group {
                OpGroup::Compute => {
                    let mut max_n = 0u32;
                    let mut sum_n = 0u64;
                    for (pos, lane) in scratch.positions.iter().zip(lanes) {
                        if let Some(Op::Compute(k)) = lane.get(*pos) {
                            max_n = max_n.max(*k);
                            sum_n += u64::from(*k);
                        }
                    }
                    if max_n > 0 {
                        let dur = f64::from(max_n) * cost.alu_cycles;
                        out.cycles += dur;
                        issue_slots += warp * f64::from(max_n);
                        active_slots += sum_n as f64;
                        stalls.compute += sum_n as f64 * cost.alu_cycles;
                    }
                }
                OpGroup::GlobalRead | OpGroup::GlobalWrite => {
                    // Membership comes from the shared Op::group dispatch
                    // (the hazard checker classifies accesses the same way).
                    scratch.gaddrs.clear();
                    for (pos, lane) in scratch.positions.iter().zip(lanes) {
                        let Some(op) = lane.get(*pos) else {
                            continue;
                        };
                        if op.group() != group {
                            continue;
                        }
                        if let Op::GlobalRead { addr, size } | Op::GlobalWrite { addr, size } = op {
                            scratch.gaddrs.push((*addr, *size));
                        }
                    }
                    if !scratch.gaddrs.is_empty() {
                        let c = memory::coalesce(
                            &scratch.gaddrs,
                            device.mem_transaction_bytes,
                            &mut scratch.lines,
                        );
                        let dur = cost.mem_base_cycles
                            + c.transactions as f64 * cost.mem_transaction_cycles;
                        out.cycles += dur;
                        issue_slots += warp;
                        active_slots += scratch.gaddrs.len() as f64;
                        stalls.gmem += dur * scratch.gaddrs.len() as f64;
                        if group == OpGroup::GlobalRead {
                            metrics.gld_requested_bytes += c.requested_bytes;
                            metrics.gld_transactions += c.transactions;
                        } else {
                            metrics.gst_requested_bytes += c.requested_bytes;
                            metrics.gst_transactions += c.transactions;
                        }
                    }
                }
                OpGroup::SharedRead | OpGroup::SharedWrite => {
                    scratch.saddrs.clear();
                    for (pos, lane) in scratch.positions.iter().zip(lanes) {
                        let Some(op) = lane.get(*pos) else {
                            continue;
                        };
                        if op.group() != group {
                            continue;
                        }
                        if let Op::SharedRead { addr } | Op::SharedWrite { addr } = op {
                            scratch.saddrs.push(*addr);
                        }
                    }
                    if !scratch.saddrs.is_empty() {
                        let replays = memory::bank_replays(
                            &scratch.saddrs,
                            device.shared_banks,
                            &mut scratch.banks,
                        );
                        let dur = cost.shared_cycles * replays as f64;
                        out.cycles += dur;
                        issue_slots += warp;
                        active_slots += scratch.saddrs.len() as f64;
                        metrics.shared_accesses += scratch.saddrs.len() as u64;
                        metrics.shared_replays += replays;
                        stalls.shared += dur * scratch.saddrs.len() as f64;
                    }
                }
                OpGroup::AtomicGlobal => {
                    scratch.aaddrs.clear();
                    for (pos, lane) in scratch.positions.iter().zip(lanes) {
                        if let Some(Op::AtomicGlobal { addr }) = lane.get(*pos) {
                            scratch.aaddrs.push(*addr);
                        }
                    }
                    if !scratch.aaddrs.is_empty() {
                        let count = scratch.aaddrs.len();
                        // Transactions for the distinct addresses touched.
                        scratch.gaddrs.clear();
                        scratch
                            .gaddrs
                            .extend(scratch.aaddrs.iter().map(|&a| (a, 4u8)));
                        let c = memory::coalesce(
                            &scratch.gaddrs,
                            device.mem_transaction_bytes,
                            &mut scratch.lines,
                        );
                        let conflicts = memory::max_multiplicity(&mut scratch.aaddrs);
                        let dur = cost.atomic_base_cycles
                            + (conflicts.saturating_sub(1)) as f64 * cost.atomic_conflict_cycles
                            + c.transactions as f64 * cost.mem_transaction_cycles;
                        out.cycles += dur;
                        issue_slots += warp;
                        active_slots += count as f64;
                        metrics.atomics_global += count as u64;
                        stalls.atomic += dur * count as f64;
                    }
                }
                OpGroup::AtomicShared => {
                    scratch.aaddrs.clear();
                    for (pos, lane) in scratch.positions.iter().zip(lanes) {
                        if let Some(Op::AtomicShared { addr }) = lane.get(*pos) {
                            scratch.aaddrs.push(u64::from(*addr));
                        }
                    }
                    if !scratch.aaddrs.is_empty() {
                        let count = scratch.aaddrs.len();
                        let conflicts = memory::max_multiplicity(&mut scratch.aaddrs);
                        let dur = cost.shared_cycles
                            + (conflicts.saturating_sub(1)) as f64
                                * cost.atomic_shared_conflict_cycles;
                        out.cycles += dur;
                        issue_slots += warp;
                        active_slots += count as f64;
                        metrics.atomics_shared += count as u64;
                        stalls.atomic += dur * count as f64;
                    }
                }
                OpGroup::Launch => {
                    // Device-side launches serialize lane by lane. The
                    // whole serialized duration is launch overhead — the
                    // very cost the paper's dpar templates trade against —
                    // so none of it is charged to divergence.
                    for (pos, lane) in scratch.positions.iter().zip(lanes) {
                        if let Some(Op::Launch { grid }) = lane.get(*pos) {
                            out.cycles += cost.device_launch_issue_cycles;
                            issue_slots += warp;
                            active_slots += 1.0;
                            metrics.device_launches += 1;
                            stalls.launch += cost.device_launch_issue_cycles;
                            out.launches.push(LaunchPoint {
                                grid: *grid,
                                offset: out.cycles,
                            });
                        }
                    }
                }
                OpGroup::Delimiter => unreachable!(),
            }
        }

        for (pos, lane) in scratch.positions.iter_mut().zip(lanes) {
            if *pos < lane.len() {
                *pos += 1;
            }
        }
    }

    metrics.issue_slots += issue_slots;
    metrics.active_slots += active_slots;
    metrics.work_cycles += out.cycles;
    finish_stalls(&mut stalls, inv_warp, out.cycles, metrics);
    out
}

/// Fold one warp's raw stall accumulators into the kernel metrics. The work
/// buckets were accumulated as dur x active-lanes; one exact power-of-two
/// scale per warp turns them into busy cycles (launch is already whole
/// cycles), and divergence is the remainder — which makes the partition of
/// the warp's cycles exact by construction. Kept out of line so the
/// alignment loop stays small.
#[inline(never)]
fn finish_stalls(
    stalls: &mut StallCycles,
    inv_warp: f64,
    cycles: f64,
    metrics: &mut KernelMetrics,
) {
    stalls.compute *= inv_warp;
    stalls.gmem *= inv_warp;
    stalls.shared *= inv_warp;
    stalls.atomic *= inv_warp;
    stalls.divergence = (cycles
        - (stalls.compute + stalls.gmem + stalls.shared + stalls.atomic + stalls.launch))
        .max(0.0);
    metrics.stalls.merge(stalls);
}

/// The [`crate::cost::DivergenceModel::MaxLane`] ablation: every lane is
/// costed as if it owned the warp (each access one transaction, no
/// divergence serialization, no conflicts); the warp takes as long as its
/// slowest lane and reports full efficiency. Launch offsets come from the
/// launching lane's own running cost.
fn max_lane_model(lanes: &[&[Op]], cost: &CostModel, metrics: &mut KernelMetrics) -> WarpOutcome {
    let mut out = WarpOutcome::default();
    let mut max_cycles = 0.0f64;
    let mut max_stalls = StallCycles::default();
    let mut total_ops = 0u64;
    for lane in lanes {
        let mut c = 0.0f64;
        let mut st = StallCycles::default();
        for op in lane.iter() {
            debug_assert!(!op.is_delimiter());
            total_ops += 1;
            match *op {
                Op::Compute(k) => {
                    c += f64::from(k) * cost.alu_cycles;
                    st.compute += f64::from(k) * cost.alu_cycles;
                }
                Op::GlobalRead { size, .. } => {
                    c += cost.mem_base_cycles + cost.mem_transaction_cycles;
                    st.gmem += cost.mem_base_cycles + cost.mem_transaction_cycles;
                    metrics.gld_requested_bytes += u64::from(size);
                    metrics.gld_transactions += 1;
                }
                Op::GlobalWrite { size, .. } => {
                    c += cost.mem_base_cycles + cost.mem_transaction_cycles;
                    st.gmem += cost.mem_base_cycles + cost.mem_transaction_cycles;
                    metrics.gst_requested_bytes += u64::from(size);
                    metrics.gst_transactions += 1;
                }
                Op::SharedRead { .. } | Op::SharedWrite { .. } => {
                    c += cost.shared_cycles;
                    st.shared += cost.shared_cycles;
                    metrics.shared_accesses += 1;
                }
                Op::AtomicGlobal { .. } => {
                    c += cost.atomic_base_cycles + cost.mem_transaction_cycles;
                    st.atomic += cost.atomic_base_cycles + cost.mem_transaction_cycles;
                    metrics.atomics_global += 1;
                }
                Op::AtomicShared { .. } => {
                    c += cost.shared_cycles;
                    st.atomic += cost.shared_cycles;
                    metrics.atomics_shared += 1;
                }
                Op::Launch { grid } => {
                    c += cost.device_launch_issue_cycles;
                    st.launch += cost.device_launch_issue_cycles;
                    metrics.device_launches += 1;
                    out.launches.push(LaunchPoint { grid, offset: c });
                }
                Op::Sync | Op::SyncChildren => unreachable!(),
            }
        }
        if c > max_cycles {
            max_cycles = c;
            max_stalls = st;
        }
    }
    out.cycles = max_cycles;
    // No divergence by construction: report full efficiency, and attribute
    // the warp's cycles as the slowest lane's own breakdown.
    metrics.issue_slots += total_ops as f64;
    metrics.active_slots += total_ops as f64;
    metrics.work_cycles += out.cycles;
    metrics.stalls.merge(&max_stalls);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(lanes: &[Vec<Op>]) -> (WarpOutcome, KernelMetrics) {
        let device = DeviceConfig::kepler_k20();
        let cost = CostModel::default();
        let mut metrics = KernelMetrics::default();
        let mut scratch = AlignScratch::default();
        let refs: Vec<&[Op]> = lanes.iter().map(|v| v.as_slice()).collect();
        let out = align_warp(&refs, &device, &cost, &mut metrics, &mut scratch);
        (out, metrics)
    }

    #[test]
    fn uniform_compute_full_efficiency() {
        let lanes: Vec<Vec<Op>> = (0..32).map(|_| vec![Op::Compute(4)]).collect();
        let (out, m) = run(&lanes);
        assert!((m.warp_execution_efficiency() - 1.0).abs() < 1e-12);
        assert!((out.cycles - 4.0).abs() < 1e-12);
    }

    #[test]
    fn variable_trip_counts_degrade_efficiency() {
        // Lane i executes i+1 compute steps: classic irregular inner loop.
        let lanes: Vec<Vec<Op>> = (0..32)
            .map(|i| (0..=i).map(|_| Op::Compute(1)).collect())
            .collect();
        let (out, m) = run(&lanes);
        // 32 steps, sum of active lanes = 32+31+..+1 = 528.
        assert!((out.cycles - 32.0).abs() < 1e-12);
        let expected = 528.0 / (32.0 * 32.0);
        assert!((m.warp_execution_efficiency() - expected).abs() < 1e-12);
    }

    #[test]
    fn coalesced_load_metrics() {
        let lanes: Vec<Vec<Op>> = (0..32u64)
            .map(|i| {
                vec![Op::GlobalRead {
                    addr: i * 4,
                    size: 4,
                }]
            })
            .collect();
        let (_, m) = run(&lanes);
        assert_eq!(m.gld_transactions, 1);
        assert_eq!(m.gld_requested_bytes, 128);
        assert!((m.gld_efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scattered_store_metrics() {
        let lanes: Vec<Vec<Op>> = (0..32u64)
            .map(|i| {
                vec![Op::GlobalWrite {
                    addr: i * 4096,
                    size: 4,
                }]
            })
            .collect();
        let (_, m) = run(&lanes);
        assert_eq!(m.gst_transactions, 32);
        assert!((m.gst_efficiency() - 0.03125).abs() < 1e-12);
    }

    #[test]
    fn divergent_kinds_serialize() {
        // Half the lanes load, half compute: two issue groups in one step.
        let lanes: Vec<Vec<Op>> = (0..32u64)
            .map(|i| {
                if i % 2 == 0 {
                    vec![Op::Compute(1)]
                } else {
                    vec![Op::GlobalRead {
                        addr: i * 4,
                        size: 4,
                    }]
                }
            })
            .collect();
        let (out, m) = run(&lanes);
        let cost = CostModel::default();
        // The 16 loads at addrs 4..124 share one 128-byte line.
        let expected = cost.alu_cycles + cost.mem_base_cycles + cost.mem_transaction_cycles;
        assert!(
            (out.cycles - expected).abs() < 1e-9,
            "cycles {}",
            out.cycles
        );
        // 2 issued instructions, 16 active lanes each.
        assert!((m.warp_execution_efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn same_address_atomics_serialize() {
        let same: Vec<Vec<Op>> = (0..32)
            .map(|_| vec![Op::AtomicGlobal { addr: 64 }])
            .collect();
        let (out_same, m_same) = run(&same);
        let distinct: Vec<Vec<Op>> = (0..32u64)
            .map(|i| vec![Op::AtomicGlobal { addr: i * 4096 }])
            .collect();
        let (out_distinct, m_distinct) = run(&distinct);
        assert_eq!(m_same.atomics_global, 32);
        assert_eq!(m_distinct.atomics_global, 32);
        // Conflicting atomics cost more serialization than scattered ones
        // (scattered pay transactions, conflicting pay replays; replays are
        // the dominant term by construction of the cost model).
        let cost = CostModel::default();
        assert!(
            (out_same.cycles
                - (cost.atomic_base_cycles
                    + 31.0 * cost.atomic_conflict_cycles
                    + cost.mem_transaction_cycles))
                .abs()
                < 1e-9
        );
        assert!(
            (out_distinct.cycles - (cost.atomic_base_cycles + 32.0 * cost.mem_transaction_cycles))
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn launches_serialize_and_record_offsets() {
        let mut lanes: Vec<Vec<Op>> = (0..32).map(|_| vec![]).collect();
        lanes[3] = vec![Op::Launch { grid: 7 }];
        lanes[9] = vec![Op::Launch { grid: 8 }];
        let (out, m) = run(&lanes);
        assert_eq!(m.device_launches, 2);
        assert_eq!(out.launches.len(), 2);
        assert_eq!(out.launches[0].grid, 7);
        assert_eq!(out.launches[1].grid, 8);
        assert!(out.launches[0].offset < out.launches[1].offset);
        let cost = CostModel::default();
        assert!((out.cycles - 2.0 * cost.device_launch_issue_cycles).abs() < 1e-9);
    }

    #[test]
    fn partial_warp_counts_against_full_width() {
        let lanes: Vec<Vec<Op>> = (0..8).map(|_| vec![Op::Compute(1)]).collect();
        let (_, m) = run(&lanes);
        assert!((m.warp_execution_efficiency() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_lanes_cost_nothing() {
        let lanes: Vec<Vec<Op>> = (0..32).map(|_| vec![]).collect();
        let (out, m) = run(&lanes);
        assert_eq!(out.cycles, 0.0);
        assert_eq!(m.issue_slots, 0.0);
    }

    #[test]
    fn stall_buckets_partition_work_cycles() {
        // A mixed workload: divergent compute, scattered loads, a launch.
        let mut lanes: Vec<Vec<Op>> = (0..32u64)
            .map(|i| {
                vec![
                    Op::Compute((i % 7) as u32 + 1),
                    Op::GlobalRead {
                        addr: i * 4096,
                        size: 4,
                    },
                    Op::AtomicGlobal { addr: 8 },
                ]
            })
            .collect();
        lanes[0].push(Op::Launch { grid: 1 });
        let (out, m) = run(&lanes);
        let sum = m.stalls.compute
            + m.stalls.divergence
            + m.stalls.gmem
            + m.stalls.atomic
            + m.stalls.shared
            + m.stalls.launch;
        assert!(
            (sum - m.work_cycles).abs() < 1e-9 * m.work_cycles.max(1.0),
            "bucket sum {sum} != work {}",
            m.work_cycles
        );
        assert!((m.work_cycles - out.cycles).abs() < 1e-12);
        assert!(m.stalls.compute > 0.0);
        assert!(
            m.stalls.divergence > 0.0,
            "uneven trip counts must idle lanes"
        );
        assert!(m.stalls.gmem > 0.0);
        assert!(m.stalls.atomic > 0.0);
        assert!((m.stalls.launch - CostModel::default().device_launch_issue_cycles).abs() < 1e-12);
        assert_eq!(m.stalls.barrier, 0.0, "barriers are charged by the block");
    }

    #[test]
    fn uniform_compute_has_no_divergence_stall() {
        let lanes: Vec<Vec<Op>> = (0..32).map(|_| vec![Op::Compute(4)]).collect();
        let (_, m) = run(&lanes);
        assert!((m.stalls.compute - m.work_cycles).abs() < 1e-12);
        assert_eq!(m.stalls.divergence, 0.0);
    }

    #[test]
    fn max_lane_model_attributes_slowest_lane() {
        let device = DeviceConfig::kepler_k20();
        let cost = CostModel {
            divergence: crate::cost::DivergenceModel::MaxLane,
            ..CostModel::default()
        };
        let mut metrics = KernelMetrics::default();
        let mut scratch = AlignScratch::default();
        let lanes: Vec<Vec<Op>> = (0..32u64)
            .map(|i| {
                let mut v = vec![Op::Compute(i as u32 + 1)];
                if i == 31 {
                    v.push(Op::GlobalRead { addr: 0, size: 4 });
                }
                v
            })
            .collect();
        let refs: Vec<&[Op]> = lanes.iter().map(|v| v.as_slice()).collect();
        let out = align_warp(&refs, &device, &cost, &mut metrics, &mut scratch);
        assert_eq!(metrics.stalls.divergence, 0.0);
        assert!(
            (metrics.stalls.total() - out.cycles).abs() < 1e-9,
            "maxlane buckets must sum to the slowest lane"
        );
        assert!(metrics.stalls.gmem > 0.0);
    }

    #[test]
    fn shared_bank_conflicts_cost_replays() {
        let conflict: Vec<Vec<Op>> = (0..32u32)
            .map(|i| vec![Op::SharedRead { addr: i * 128 }])
            .collect();
        let (out, m) = run(&conflict);
        let cost = CostModel::default();
        assert_eq!(m.shared_replays, 32);
        assert!((out.cycles - 32.0 * cost.shared_cycles).abs() < 1e-9);
    }
}
