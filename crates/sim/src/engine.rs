//! Functional execution engine: runs kernels thread-by-thread (depth-first
//! across dynamic-parallelism launches), recording traces and producing the
//! grid/block timing tasks consumed by the scheduler.
//!
//! The engine hands [`crate::sched::simulate`] an immutable batch of
//! [`GridTask`]s at synchronize time; the scheduler's fast paths
//! (DESIGN.md §11) are contained entirely inside that call, so nothing in
//! functional execution, checking, or memoization observes whether they
//! ran — [`DeviceConfig::fast_forward`] cannot affect anything recorded
//! here.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::block::{finalize_block, BlockOutcome};
use crate::check::{self, CheckState, GridAccess};
use crate::config::DeviceConfig;
use crate::cost::CostModel;
use crate::ctx::{BlockCtx, TraceHost};
use crate::error::SimError;
use crate::kernel::{KernelRef, LaunchConfig};
use crate::memo::{BlockFps, BlockMemo, ClassStats, MemoCache};
use crate::parallel::BufPool;
use crate::profiler::{KernelMetrics, SimStats};
use crate::warp::AlignScratch;

/// Where a grid was launched from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Origin {
    /// Host launch number `seq` into host stream `stream`.
    Host { seq: u32, stream: u32 },
    /// Device launch from `parent` grid's block `block` into that block's
    /// stream slot `stream_slot`.
    Device {
        parent: usize,
        block: u32,
        stream_slot: u32,
    },
}

/// A grid registered for execution. Device-launched grids are *deferred*:
/// `kernel` holds the pending work until the parent reaches a
/// `sync_children` barrier or completes (the CUDA ordering — a child never
/// runs before its launching warp proceeds). Once executed, `kernel` is
/// dropped and `blocks` is populated.
pub(crate) struct GridTask {
    /// Kernel name (diagnostics key on it; metrics do already).
    pub name: String,
    pub cfg: LaunchConfig,
    pub origin: Origin,
    /// Nesting depth: 0 for host launches, parent's depth + 1 for device
    /// launches (npar-analyze's recursion-depth bound observes this).
    pub depth: u32,
    pub blocks: Vec<BlockOutcome>,
    pub children: Vec<usize>,
    /// Pending functional work (None once executed).
    pub kernel: Option<KernelRef>,
}

/// Engine state for one batch (between synchronizations).
pub(crate) struct Engine {
    pub device: DeviceConfig,
    pub cost: CostModel,
    pub grids: Vec<GridTask>,
    pub metrics: BTreeMap<String, KernelMetrics>,
    pub host_seq: u32,
    pub scratch: AlignScratch,
    /// Recycled per-thread trace buffers (capacity survives across blocks,
    /// which keeps millions of small blocks allocation-free).
    pub trace_pool: Vec<Vec<crate::trace::Op>>,
    /// Recycled per-thread fingerprint state (same lifecycle as
    /// `trace_pool`).
    pub fp_pool: BlockFps,
    /// Alignment memoization cache (see [`crate::memo`]); `None` when
    /// disabled. Survives synchronize — entries are content-keyed and
    /// carry no batch-local state.
    pub memo: Option<MemoCache>,
    /// Host-side statistics for the current batch (wall time, cache
    /// hits/misses); drained into [`crate::profiler::Report::sim`].
    pub stats: SimStats,
    /// Hazard-checker state (see [`crate::check`]).
    pub check: CheckState,
    /// Whether the timeline profiler records events (see [`crate::prof`]).
    pub profiling: bool,
    /// Accumulated timeline across batches; drained by
    /// [`crate::Gpu::take_profile`].
    pub profile: crate::prof::Profile,
    /// Host worker lanes for block-level parallelism (1 = serial path).
    pub threads: usize,
    /// Lazily-built work-stealing pool with `threads` lanes; dropped and
    /// rebuilt when the thread count changes.
    pub pool: Option<npar_par::Pool<AlignScratch>>,
    /// Separate pool for the timing pass (`device.timing_threads` lanes,
    /// no per-lane scratch): timing-domain runs are pure simulation and
    /// their lane count is tuned independently of block execution
    /// (DESIGN.md §13).
    pub timing_pool: Option<npar_par::Pool<()>>,
    /// Sharded recycled block buffers for the parallel path (the parallel
    /// counterpart of `trace_pool`/`fp_pool`).
    pub bufs: BufPool,
    /// Stack of per-grid chunked-executor states (innermost tracing grid on
    /// top); see [`crate::parallel::flush_chunks`]. Always empty on the
    /// serial path.
    pub chunks: Vec<crate::parallel::ChunkState>,
    /// Adaptive memoization policy, keyed by kernel name: each kernel's
    /// rolling block-cache hit rate decides whether fingerprinting (and
    /// hence cache probing) stays on for its future grids. Decisions move
    /// only at grid boundaries so both execution paths see identical
    /// policy for every block.
    pub memo_classes: BTreeMap<String, ClassStats>,
    /// npar-analyze state: per-kernel-class probe facts, launch shapes and
    /// proof-carrying elision signatures (see [`crate::analyze`]).
    pub analyzer: crate::analyze::Analyzer,
}

impl Engine {
    pub(crate) fn new(device: DeviceConfig, cost: CostModel) -> Self {
        let check = CheckState::new(device.check);
        let memo = device.memo.then(MemoCache::default);
        Engine {
            device,
            cost,
            grids: Vec::new(),
            metrics: BTreeMap::new(),
            host_seq: 0,
            scratch: AlignScratch::default(),
            trace_pool: Vec::new(),
            fp_pool: BlockFps::default(),
            memo,
            stats: SimStats::default(),
            check,
            profiling: false,
            profile: crate::prof::Profile::default(),
            threads: 1,
            pool: None,
            timing_pool: None,
            bufs: BufPool::default(),
            chunks: Vec::new(),
            memo_classes: BTreeMap::new(),
            analyzer: crate::analyze::Analyzer::default(),
        }
    }

    /// Whether proof-carrying scan elision is in force: the device opted
    /// in (the default) and there is a checker whose work could be elided.
    pub(crate) fn elide_active(&self) -> bool {
        self.device.elide && self.check.level != crate::check::CheckLevel::Off
    }

    /// Whether npar-analyze collects class state at all: explicitly
    /// requested, or implied by active elision.
    pub(crate) fn analysis_active(&self) -> bool {
        self.device.analyze || self.elide_active()
    }

    /// Whether blocks probe for elision candidates (requires scans to
    /// exist — i.e. a checker above `Off` — but deliberately not the
    /// `elide` flag itself, so `--no-elide` runs reach identical analysis
    /// verdicts).
    pub(crate) fn probe_active(&self) -> bool {
        self.analysis_active() && self.check.level != crate::check::CheckLevel::Off
    }

    /// Validate a launch configuration against the device limits.
    pub(crate) fn validate(&self, cfg: &LaunchConfig) -> Result<(), SimError> {
        validate_cfg(&self.device, cfg)
    }

    /// Lazily build the work-stealing pool for the current thread count.
    pub(crate) fn ensure_pool(&mut self) -> &npar_par::Pool<AlignScratch> {
        if self.pool.as_ref().is_none_or(|p| p.lanes() != self.threads) {
            self.pool = Some(npar_par::Pool::new(self.threads, |_| {
                AlignScratch::default()
            }));
        }
        self.pool.as_ref().expect("pool just built")
    }

    /// Lazily build the timing-pass pool, or `None` while
    /// `timing_threads <= 1` (the partitioned pass then runs its domains
    /// on the calling thread — same results, no workers).
    pub(crate) fn ensure_timing_pool(&mut self) -> Option<&npar_par::Pool<()>> {
        let lanes = self.device.timing_threads;
        if lanes <= 1 {
            return None;
        }
        if self.timing_pool.as_ref().is_none_or(|p| p.lanes() != lanes) {
            self.timing_pool = Some(npar_par::Pool::new(lanes, |_| ()));
        }
        self.timing_pool.as_ref()
    }
}

/// Validate a launch configuration against device limits (free function so
/// trace-time device launches can check without an `Engine` borrow).
pub(crate) fn validate_cfg(device: &DeviceConfig, cfg: &LaunchConfig) -> Result<(), SimError> {
    if cfg.grid_dim == 0 || cfg.block_dim == 0 {
        return Err(SimError::InvalidLaunch(
            "grid and block dimensions must be >= 1".into(),
        ));
    }
    if cfg.block_dim > device.max_threads_per_block {
        return Err(SimError::InvalidLaunch(format!(
            "block_dim {} exceeds device limit {}",
            cfg.block_dim, device.max_threads_per_block
        )));
    }
    if cfg.grid_dim > device.max_grid_dim {
        return Err(SimError::InvalidLaunch(format!(
            "grid_dim {} exceeds device limit {}",
            cfg.grid_dim, device.max_grid_dim
        )));
    }
    if cfg.shared_mem_bytes > device.shared_mem_per_block {
        return Err(SimError::InvalidLaunch(format!(
            "shared memory {} exceeds per-block limit {}",
            cfg.shared_mem_bytes, device.shared_mem_per_block
        )));
    }
    Ok(())
}

/// Register a grid. Host-origin grids execute immediately; device-origin
/// grids are deferred until their parent joins them (or completes).
pub(crate) fn register_grid(
    engine: &mut Engine,
    kernel: &KernelRef,
    cfg: LaunchConfig,
    origin: Origin,
) -> usize {
    let name = kernel.name().to_string();
    let id = engine.grids.len();
    let depth = match origin {
        Origin::Host { .. } => 0,
        Origin::Device { parent, .. } => engine.grids[parent].depth + 1,
    };
    engine.grids.push(GridTask {
        name: name.clone(),
        cfg,
        origin,
        depth,
        blocks: Vec::with_capacity(cfg.grid_dim as usize),
        children: Vec::new(),
        kernel: Some(Arc::clone(kernel)),
    });
    if let Origin::Device { parent, .. } = origin {
        engine.grids[parent].children.push(id);
        if engine.analysis_active() {
            // Launch-shape analysis: attribute the child to the parent's
            // class at registration, which both executors reach in the
            // same canonical order.
            let Engine {
                grids, analyzer, ..
            } = engine;
            let p = &grids[parent];
            analyzer.on_launch(&p.name, &p.cfg, &cfg);
        }
    }
    engine.metrics.entry(name).or_default().grids += 1;
    if matches!(origin, Origin::Host { .. }) {
        run_grid(engine, id);
    }
    id
}

/// Execute one registered grid's blocks (no descendant handling). Also the
/// parallel executor's path for single-block grids, where fan-out buys
/// nothing (hence `pub(crate)`).
pub(crate) fn execute_blocks(engine: &mut Engine, id: usize) {
    let Some(kernel) = engine.grids[id].kernel.take() else {
        return; // already executed
    };
    let cfg = engine.grids[id].cfg;
    let name = kernel.name().to_string();
    // Adaptive memoization: the authoritative class entry moves only at
    // the grid boundary (below), but this block-local copy is probed in
    // trace order so a cold class demotes mid-grid and the remaining
    // blocks trace without rolling fingerprints (see `ClassStats::probe`).
    let memo_enabled = engine.memo.is_some();
    let mut class = engine.memo_classes.get(&name).copied().unwrap_or_default();
    let mut window_attempts = 0u32;
    let mut window_hits = 0u32;
    // npar-analyze per-grid state: probe/candidate collection and the
    // promoted elision signature snapshot (DESIGN.md §12). `probe_on`
    // forces fingerprinting for every block so elision decisions and
    // candidate signatures exist independently of the adaptive memo
    // policy; `elide_on` alone permits actually skipping scans.
    let probe_on = engine.probe_active();
    let elide_on = engine.elide_active();
    let depth = engine.grids[id].depth;
    let mut ga = if engine.analysis_active() {
        Some(
            engine
                .analyzer
                .begin_grid(&name, &cfg, depth, &engine.check),
        )
    } else {
        None
    };
    // Global-access accumulator for the cross-block race sweep. A local:
    // nested grids executed mid-block (a parent joining children) re-enter
    // this function with their own accumulator on the stack.
    let mut gaccess = GridAccess::default();
    // Per-grid metrics accumulator, merged into the per-kernel entry once
    // at the end — no per-block map lookup or name clone. The same
    // delta-then-merge grouping is used with memoization on and off, so
    // the floating-point sums land bit-identically in both modes.
    let mut grid_metrics = KernelMetrics::default();
    for b in 0..cfg.grid_dim {
        let memo_fp = memo_enabled && class.fp_on(b);
        let fp_on = memo_fp || probe_on;
        let traces = std::mem::take(&mut engine.trace_pool);
        let fps = std::mem::take(&mut engine.fp_pool);
        let mut blk = BlockCtx::new(
            TraceHost::Serial(engine),
            kernel.as_ref(),
            id,
            b,
            cfg,
            traces,
            fps,
            fp_on,
        );
        kernel.run_block(&mut blk);
        let (mut traces, fps, pending, _host) = blk.into_parts();
        // Split-borrow the engine so alignment can stream into the metrics
        // accumulator while reading the device/cost config.
        let Engine {
            device,
            cost,
            scratch,
            grids,
            check,
            memo,
            stats,
            ..
        } = engine;
        // Proof-carrying elision: a launch-free block whose fingerprint
        // signature equals the class's promoted probe skips the per-block
        // scans (the probe already passed them on an identical canonical
        // trace); its global intervals still feed the cross-block sweep.
        let elided = elide_on && ga.as_mut().is_some_and(|g| g.try_elide(&fps));
        let pending0 = check.pending_count();
        // The checker sees the raw traces BEFORE any cache consultation,
        // so Warn/Strict diagnostics are identical with memoization on.
        let sanitized = if elided {
            check::scan_block_elided(check, &traces, b, &mut gaccess);
            stats.elided += 1;
            false
        } else {
            check::scan_block(check, &mut traces, &name, id, b, &cfg, &mut gaccess)
        };
        if !elided {
            if let Some(g) = ga.as_mut() {
                let clean = check.pending_count() == pending0;
                g.observe_scanned(
                    &traces,
                    &cfg,
                    device,
                    probe_on.then_some(&fps),
                    sanitized,
                    clean,
                );
            }
        }
        stats.ops_traced += traces.iter().map(|t| t.len() as u64).sum::<u64>();
        let h0 = stats.block_hits;
        // Sanitized (divergent-barrier) blocks bypass the cache: their
        // fingerprints describe the pre-sanitization traces. Blocks whose
        // class has fingerprinting off never recorded one at all.
        let block_memo = if sanitized || !memo_fp {
            None
        } else {
            memo.as_mut().map(|cache| BlockMemo {
                cache,
                fps: &fps,
                cfg: &cfg,
                stats,
            })
        };
        // Launch-bearing blocks are excluded from the block cache, so they
        // carry no signal about whether caching pays off for this class.
        let probed = block_memo.is_some() && !fps.any_launch();
        let outcome = finalize_block(
            &traces,
            device,
            cost,
            &mut grid_metrics,
            scratch,
            block_memo,
        );
        grids[id].blocks.push(outcome);
        // `children` is sorted by construction (grid ids are assigned in
        // increasing order), so each pending launch checks in O(log n).
        debug_assert!(
            pending
                .iter()
                .all(|c| grids[id].children.binary_search(c).is_ok()),
            "pending launches must be registered children"
        );
        if probed {
            let hit = engine.stats.block_hits > h0;
            class.probe(hit);
            window_attempts += 1;
            window_hits += u32::from(hit);
        }
        engine.trace_pool = traces;
        engine.fp_pool = fps;
    }
    check::finish_grid(&mut engine.check, &name, id, gaccess);
    if let Some(g) = ga.take() {
        // Promotion happens after the grid's cross-block sweep, so a
        // global race detected this grid vetoes the candidate.
        engine.analyzer.finish_grid(&name, &cfg, g, &engine.check);
    }
    if memo_enabled {
        let entry = engine.memo_classes.entry(name.clone()).or_default();
        entry.window_attempts += window_attempts;
        entry.window_hits += window_hits;
        entry.eval();
    }
    engine.metrics.entry(name).or_default().merge(&grid_metrics);
}

/// Drive a host-launched grid and its whole descendant tree to functional
/// completion. Fire-and-forget children execute breadth-first in launch
/// order (the closest sequential stand-in for concurrent hardware, and
/// what keeps unordered recursive traversals from degenerating into
/// depth-first re-relaxation storms); joined children were already drained
/// depth-first at their `sync_children` barrier.
pub(crate) fn run_grid(engine: &mut Engine, id: usize) {
    if engine.threads > 1 {
        crate::parallel::run_grid_par(engine, id);
        return;
    }
    let mut queue = std::collections::VecDeque::from([id]);
    while let Some(g) = queue.pop_front() {
        execute_blocks(engine, g);
        queue.extend(engine.grids[g].children.iter().copied());
    }
}

/// Fully execute a grid and its descendants depth-first — the functional
/// effect of a parent block joining a child at `sync_children` (the join
/// covers the child's own nested work, as on hardware).
pub(crate) fn run_subtree(engine: &mut Engine, id: usize) {
    if engine.threads > 1 {
        crate::parallel::run_subtree_par(engine, id);
        return;
    }
    execute_blocks(engine, id);
    let mut next = 0;
    while next < engine.grids[id].children.len() {
        let child = engine.grids[id].children[next];
        run_subtree(engine, child);
        next += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::ThreadCtx;
    use crate::kernel::ThreadKernel;

    struct Noop;
    impl ThreadKernel for Noop {
        fn name(&self) -> &str {
            "noop"
        }
        fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
            t.compute(1);
        }
    }

    #[test]
    fn executes_all_blocks_and_threads() {
        let mut e = Engine::new(DeviceConfig::tiny(), CostModel::default());
        let k: KernelRef = Arc::new(Noop);
        let id = register_grid(
            &mut e,
            &k,
            LaunchConfig::new(3, 64),
            Origin::Host { seq: 0, stream: 0 },
        );
        assert_eq!(id, 0);
        assert_eq!(e.grids[0].blocks.len(), 3);
        assert!(e.grids[0].kernel.is_none(), "host grid runs immediately");
        let m = &e.metrics["noop"];
        assert_eq!(m.grids, 1);
        assert_eq!(m.blocks, 3);
        assert_eq!(m.threads, 192);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let e = Engine::new(DeviceConfig::tiny(), CostModel::default());
        assert!(e.validate(&LaunchConfig::new(0, 32)).is_err());
        assert!(e.validate(&LaunchConfig::new(1, 0)).is_err());
        assert!(e.validate(&LaunchConfig::new(1, 512)).is_err()); // > 256
        assert!(e
            .validate(&LaunchConfig::with_shared(1, 32, 1 << 20))
            .is_err());
        assert!(e.validate(&LaunchConfig::new(4, 128)).is_ok());
    }
}
