//! Per-thread instruction traces.
//!
//! While a kernel executes functionally, every simulated thread records the
//! sequence of instructions it issued as [`Op`]s. Timing never replays the
//! program — it replays these traces: the 32 lanes of a warp are aligned in
//! lockstep (see [`crate::warp`]) to derive divergence, coalescing and
//! serialization behaviour, exactly the quantities `nvprof` reports and the
//! paper analyzes.

/// One instruction issued by one simulated thread.
///
/// `Sync` and `SyncChildren` are *segment delimiters*: they must be issued
/// uniformly by every thread of a block (the CUDA requirement for
/// `__syncthreads`), which the block executor asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// `n` back-to-back arithmetic instructions (run-length encoded so that
    /// large arithmetic bodies do not inflate trace memory).
    Compute(u32),
    /// Global-memory load of `size` bytes at `addr`.
    GlobalRead { addr: u64, size: u8 },
    /// Global-memory store of `size` bytes at `addr`.
    GlobalWrite { addr: u64, size: u8 },
    /// Shared-memory load at byte offset `addr` within the block's space.
    SharedRead { addr: u32 },
    /// Shared-memory store at byte offset `addr`.
    SharedWrite { addr: u32 },
    /// Atomic read-modify-write on global memory at `addr`.
    AtomicGlobal { addr: u64 },
    /// Atomic read-modify-write on shared memory at byte offset `addr`.
    AtomicShared { addr: u32 },
    /// Device-side kernel launch of grid `grid` (index into the engine's
    /// grid table). Launches by multiple lanes of one warp serialize.
    Launch { grid: u32 },
    /// Block-wide barrier (`__syncthreads`).
    Sync,
    /// Block-wide barrier that additionally waits for every child grid this
    /// block has launched so far (the template idiom for
    /// `cudaDeviceSynchronize` inside a parent kernel).
    SyncChildren,
}

impl Op {
    /// Whether this op delimits a barrier segment.
    pub(crate) fn is_delimiter(self) -> bool {
        matches!(self, Op::Sync | Op::SyncChildren)
    }

    /// Dispatch group for lockstep alignment: divergent ops of different
    /// kinds at the same trace position serialize into separate issue
    /// groups, which is how SIMT hardware handles intra-warp divergence.
    /// The hazard checker classifies accesses through the same dispatch
    /// groups, so both consumers agree on what "kind" an op is.
    pub(crate) fn group(self) -> OpGroup {
        match self {
            Op::Compute(_) => OpGroup::Compute,
            Op::GlobalRead { .. } => OpGroup::GlobalRead,
            Op::GlobalWrite { .. } => OpGroup::GlobalWrite,
            Op::SharedRead { .. } => OpGroup::SharedRead,
            Op::SharedWrite { .. } => OpGroup::SharedWrite,
            Op::AtomicGlobal { .. } => OpGroup::AtomicGlobal,
            Op::AtomicShared { .. } => OpGroup::AtomicShared,
            Op::Launch { .. } => OpGroup::Launch,
            Op::Sync | Op::SyncChildren => OpGroup::Delimiter,
        }
    }
}

/// Alignment groups; the numeric order fixes the deterministic issue order
/// of divergent groups within one lockstep step.
#[allow(clippy::disallowed_methods)] // derived PartialOrd: unit variants, total order
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub(crate) enum OpGroup {
    Compute = 0,
    GlobalRead = 1,
    GlobalWrite = 2,
    SharedRead = 3,
    SharedWrite = 4,
    AtomicGlobal = 5,
    AtomicShared = 6,
    Launch = 7,
    /// Barrier ops; never aligned (stripped into segment boundaries first).
    Delimiter = 8,
}

/// All alignment groups except `Delimiter`, in issue order.
pub(crate) const ISSUE_GROUPS: [OpGroup; 8] = [
    OpGroup::Compute,
    OpGroup::GlobalRead,
    OpGroup::GlobalWrite,
    OpGroup::SharedRead,
    OpGroup::SharedWrite,
    OpGroup::AtomicGlobal,
    OpGroup::AtomicShared,
    OpGroup::Launch,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delimiters() {
        assert!(Op::Sync.is_delimiter());
        assert!(Op::SyncChildren.is_delimiter());
        assert!(!Op::Compute(3).is_delimiter());
        assert!(!Op::GlobalRead { addr: 0, size: 4 }.is_delimiter());
    }

    #[test]
    fn groups_cover_all_ops() {
        let ops = [
            Op::Compute(1),
            Op::GlobalRead { addr: 0, size: 4 },
            Op::GlobalWrite { addr: 0, size: 4 },
            Op::SharedRead { addr: 0 },
            Op::SharedWrite { addr: 0 },
            Op::AtomicGlobal { addr: 0 },
            Op::AtomicShared { addr: 0 },
            Op::Launch { grid: 0 },
        ];
        let mut groups: Vec<_> = ops.iter().map(|o| o.group()).collect();
        groups.sort();
        groups.dedup();
        assert_eq!(groups.len(), ops.len());
        assert_eq!(groups, ISSUE_GROUPS.to_vec());
    }

    #[test]
    fn op_is_small() {
        // Traces hold tens of millions of these; keep them at 16 bytes.
        assert!(std::mem::size_of::<Op>() <= 16);
    }
}
