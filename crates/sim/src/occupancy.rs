//! CUDA-occupancy-calculator equivalent: given a block configuration,
//! compute how many blocks fit on one SM and the resulting theoretical
//! occupancy. The paper uses this to pick its 192-thread blocks for
//! thread-mapped kernels and its small 64-thread blocks for block-mapped
//! phases (Section III.B).

use crate::config::DeviceConfig;
use serde::{Deserialize, Serialize};

/// Which hardware limit caps residency for a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Limiter {
    /// Max resident blocks per SM.
    Blocks,
    /// Max resident threads / warps per SM.
    Threads,
    /// Shared-memory capacity.
    SharedMemory,
    /// Register file capacity.
    Registers,
}

impl std::fmt::Display for Limiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Limiter::Blocks => "blocks",
            Limiter::Threads => "threads",
            Limiter::SharedMemory => "shared-memory",
            Limiter::Registers => "registers",
        })
    }
}

/// Occupancy-calculator output for one block configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident warps per SM.
    pub warps_per_sm: u32,
    /// `warps_per_sm / max_warps_per_sm`.
    pub occupancy: f64,
    /// The binding limit.
    pub limiter: Limiter,
}

/// Per-SM block-residency limit for one configuration: the `min` over the
/// four hardware limits, exactly the ceiling the scheduler's placement
/// scan can reach by repeated `block_fits`. Shared by [`occupancy`] and
/// the timing pass's analytic mode, whose span-bound proof obligation
/// needs the worst-case residency a dispatch can observe (DESIGN.md §13).
/// No block-size assertion: scheduler-internal callers pass
/// configurations that already passed launch validation.
pub(crate) fn block_residency_limit(
    device: &DeviceConfig,
    block_dim: u32,
    shared_mem_bytes: u32,
) -> u32 {
    let warps_per_block = block_dim.div_ceil(device.warp_size).max(1);
    let by_blocks = device.max_blocks_per_sm;
    let by_threads = (device.max_threads_per_sm / block_dim.max(1))
        .min(device.max_warps_per_sm / warps_per_block);
    let by_smem = device
        .shared_mem_per_sm
        .checked_div(shared_mem_bytes)
        .unwrap_or(u32::MAX);
    let regs_per_block = block_dim * device.registers_per_thread;
    let by_regs = device
        .registers_per_sm
        .checked_div(regs_per_block)
        .unwrap_or(u32::MAX);
    by_blocks.min(by_threads).min(by_smem).min(by_regs)
}

/// Compute theoretical occupancy for `block_dim`-thread blocks using
/// `shared_mem_bytes` of shared memory per block.
pub fn occupancy(device: &DeviceConfig, block_dim: u32, shared_mem_bytes: u32) -> Occupancy {
    assert!(block_dim >= 1 && block_dim <= device.max_threads_per_block);
    let warps_per_block = block_dim.div_ceil(device.warp_size);
    let by_blocks = device.max_blocks_per_sm;
    let by_threads =
        (device.max_threads_per_sm / block_dim).min(device.max_warps_per_sm / warps_per_block);
    let by_smem = device
        .shared_mem_per_sm
        .checked_div(shared_mem_bytes)
        .unwrap_or(u32::MAX);

    let blocks = block_residency_limit(device, block_dim, shared_mem_bytes);
    let limiter = if blocks == by_blocks {
        Limiter::Blocks
    } else if blocks == by_threads {
        Limiter::Threads
    } else if blocks == by_smem {
        Limiter::SharedMemory
    } else {
        Limiter::Registers
    };
    let warps = blocks * warps_per_block;
    Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm: warps,
        occupancy: f64::from(warps) / f64::from(device.max_warps_per_sm),
        limiter,
    }
}

/// Scan block sizes (multiples of the warp size) and return the smallest
/// one achieving the maximum theoretical occupancy — what a programmer
/// reads off the CUDA occupancy calculator.
pub fn best_block_size(device: &DeviceConfig, shared_mem_bytes: u32) -> u32 {
    let mut best = device.warp_size;
    let mut best_occ = 0.0;
    let mut size = device.warp_size;
    while size <= device.max_threads_per_block {
        let o = occupancy(device, size, shared_mem_bytes);
        if o.occupancy > best_occ + 1e-12 {
            best_occ = o.occupancy;
            best = size;
        }
        size += device.warp_size;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k20_192_thread_blocks() {
        // The paper's thread-mapped configuration: 192 threads/block.
        let d = DeviceConfig::kepler_k20();
        let o = occupancy(&d, 192, 0);
        // 2048/192 = 10 blocks, 60 warps of 64 -> 93.75%.
        assert_eq!(o.blocks_per_sm, 10);
        assert_eq!(o.warps_per_sm, 60);
        assert!((o.occupancy - 0.9375).abs() < 1e-12);
    }

    #[test]
    fn k20_small_blocks_are_block_limited() {
        let d = DeviceConfig::kepler_k20();
        let o = occupancy(&d, 32, 0);
        assert_eq!(o.blocks_per_sm, 16);
        assert_eq!(o.limiter, Limiter::Blocks);
        // 16 warps of 64: only 25% occupancy — why the paper rejects
        // 32-thread blocks for the block-mapped phase.
        assert!((o.occupancy - 0.25).abs() < 1e-12);
    }

    #[test]
    fn shared_memory_limits() {
        let d = DeviceConfig::kepler_k20();
        let o = occupancy(&d, 64, 24 * 1024);
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn best_block_size_reaches_full_occupancy_on_k20() {
        let d = DeviceConfig::kepler_k20();
        let b = best_block_size(&d, 0);
        let o = occupancy(&d, b, 0);
        assert!((o.occupancy - 1.0).abs() < 1e-12);
        // 256 is the smallest block achieving 2048 threads in <=16 blocks.
        assert_eq!(b, 128);
    }

    #[test]
    fn occupancy_monotone_in_shared_mem() {
        let d = DeviceConfig::kepler_k20();
        let lo = occupancy(&d, 128, 1024).occupancy;
        let hi = occupancy(&d, 128, 16 * 1024).occupancy;
        assert!(lo >= hi);
    }
}
