//! The structural IR npar-analyze extracts from a single probe block.
//!
//! The analyzer never runs a full simulation of its own: it piggybacks on
//! the functional trace the engine records anyway, distilling the first
//! scanned block of each kernel class into a [`ProbeIr`] — a handful of
//! integers summarizing barrier structure, address intervals, bank-access
//! geometry and per-lane work. Every downstream analysis (see
//! [`super`]) reads only this IR plus the launch configuration and device
//! description; none of them ever walks a trace again.

use crate::kernel::LaunchConfig;
use crate::trace::Op;

/// Structural summary of one block's trace — the analysis IR.
///
/// All quantities describe the *probe block* only. Facts that generalize
/// to other blocks (barrier uniformity, shared bounds, race freedom) do so
/// via the proof-carrying elision contract: a non-probe block inherits the
/// probe's verdicts only when its canonical trace fingerprint matches the
/// probe's (see `DESIGN.md` §12).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProbeIr {
    /// Threads in the probe block (the launch's `block_dim`).
    pub lanes: u32,
    /// Lanes that issued at least one op (inactive tails are common in
    /// `if tid < n`-guarded kernels).
    pub active_lanes: u32,
    /// Barrier segments per lane (`__syncthreads` count + 1).
    pub segments: u32,
    /// How many of the delimiters additionally join child grids
    /// (`sync_children`).
    pub join_barriers: u32,
    /// Total ops across all lanes (run-length compute ops count once).
    pub ops: u64,
    /// Total arithmetic instructions (expanded run-lengths).
    pub compute: u64,
    /// Maximum per-lane op count.
    pub lane_ops_max: u32,
    /// Mean per-lane op count over *active* lanes.
    pub lane_ops_mean: f64,
    /// Byte interval `[lo, hi)` touched in shared memory, if any.
    pub shared: Option<(u32, u32)>,
    /// Number of shared-memory accesses.
    pub shared_accesses: u64,
    /// Predicted worst-case shared-memory bank conflict degree: the
    /// maximum number of distinct words any warp directs at one bank in a
    /// single lockstep access step. `1` means conflict-free; `0` means no
    /// shared traffic at all.
    pub bank_conflict_degree: u32,
    /// Canonical global byte interval `[lo, hi)` relative to the block's
    /// first-touched 128-byte line, if any global traffic occurred.
    pub global_span: Option<(u64, u64)>,
    /// Number of global-memory accesses (loads + stores + atomics).
    pub global_accesses: u64,
    /// Global atomics issued (a cue that the kernel synchronizes through
    /// memory rather than barriers).
    pub global_atomics: u64,
    /// Device-side child launches issued by the probe block.
    pub launches: u32,
}

impl ProbeIr {
    /// Work imbalance across active lanes: `lane_ops_max / lane_ops_mean`
    /// (`1.0` for perfectly regular kernels, large for single-lane-heavy
    /// ones). Returns `1.0` when the block did nothing.
    pub fn imbalance(&self) -> f64 {
        if self.lane_ops_mean <= 0.0 {
            1.0
        } else {
            f64::from(self.lane_ops_max) / self.lane_ops_mean
        }
    }
}

/// Distill one block's per-lane traces into a [`ProbeIr`].
///
/// `warp_size` and `banks` come from the device description; `cfg` is the
/// grid's launch configuration. The traces must be barrier-uniform (the
/// caller extracts only from blocks the checker has already segmented, or
/// sanitized); extraction is a single linear pass over the ops.
pub(crate) fn extract(
    traces: &[Vec<Op>],
    cfg: &LaunchConfig,
    warp_size: u32,
    banks: u32,
) -> ProbeIr {
    let mut ir = ProbeIr {
        lanes: cfg.block_dim.min(traces.len() as u32),
        segments: 1,
        ..ProbeIr::default()
    };
    let mut global_base: Option<u64> = None;
    let mut total_active_ops = 0u64;
    for t in traces {
        let mut lane_ops = 0u32;
        for op in t {
            lane_ops += 1;
            match *op {
                Op::Compute(n) => ir.compute += u64::from(n),
                Op::SharedRead { addr } | Op::SharedWrite { addr } | Op::AtomicShared { addr } => {
                    record_shared(&mut ir, addr);
                }
                Op::GlobalRead { addr, size } | Op::GlobalWrite { addr, size } => {
                    record_global(&mut ir, &mut global_base, addr, u64::from(size));
                }
                Op::AtomicGlobal { addr } => {
                    ir.global_atomics += 1;
                    record_global(&mut ir, &mut global_base, addr, 4);
                }
                Op::Launch { .. } => ir.launches += 1,
                Op::Sync | Op::SyncChildren => {}
            }
        }
        // Barrier structure comes from lane 0; uniformity across lanes is
        // the checker's concern, not the extractor's.
        if ir.active_lanes == 0 && !t.is_empty() {
            for op in t {
                match op {
                    Op::Sync => ir.segments += 1,
                    Op::SyncChildren => {
                        ir.segments += 1;
                        ir.join_barriers += 1;
                    }
                    _ => {}
                }
            }
        }
        if lane_ops > 0 {
            ir.active_lanes += 1;
            total_active_ops += u64::from(lane_ops);
        }
        ir.ops += u64::from(lane_ops);
        ir.lane_ops_max = ir.lane_ops_max.max(lane_ops);
    }
    if ir.active_lanes > 0 {
        ir.lane_ops_mean = total_active_ops as f64 / f64::from(ir.active_lanes);
    }
    ir.bank_conflict_degree = bank_conflicts(traces, warp_size, banks);
    ir
}

fn record_shared(ir: &mut ProbeIr, addr: u32) {
    ir.shared_accesses += 1;
    let (lo, hi) = (addr, addr.saturating_add(4));
    ir.shared = Some(match ir.shared {
        None => (lo, hi),
        Some((a, b)) => (a.min(lo), b.max(hi)),
    });
}

fn record_global(ir: &mut ProbeIr, base: &mut Option<u64>, addr: u64, size: u64) {
    ir.global_accesses += 1;
    // Same canonicalization the memo fingerprints use: offsets relative to
    // the first-touched 128-byte transaction line, so the span is
    // placement-invariant and comparable across blocks.
    let b = *base.get_or_insert(addr & !127);
    let lo = addr.wrapping_sub(b);
    let hi = lo.wrapping_add(size);
    ir.global_span = Some(match ir.global_span {
        None => (lo, hi),
        Some((a, z)) => (a.min(lo), z.max(hi)),
    });
}

/// Predict the worst-case shared-memory bank conflict degree.
///
/// Approximation of the lockstep replay: within each warp, the `i`-th
/// shared access of every lane is assumed to issue in the same access
/// step (exact for barrier-regular kernels, conservative-ish otherwise,
/// which is fine for a lint). For each step, accesses are bucketed by
/// `word % banks`; the degree is the largest count of *distinct* words in
/// one bank — broadcasts of the same word are conflict-free, as on
/// hardware.
fn bank_conflicts(traces: &[Vec<Op>], warp_size: u32, banks: u32) -> u32 {
    let warp = warp_size.max(1) as usize;
    let banks = banks.max(1) as usize;
    let mut degree = 0u32;
    let mut lanes: Vec<Vec<u32>> = Vec::with_capacity(warp);
    for chunk in traces.chunks(warp) {
        lanes.clear();
        let mut steps = 0usize;
        for t in chunk {
            let words: Vec<u32> = t
                .iter()
                .filter_map(|op| match *op {
                    Op::SharedRead { addr }
                    | Op::SharedWrite { addr }
                    | Op::AtomicShared { addr } => Some(addr / 4),
                    _ => None,
                })
                .collect();
            steps = steps.max(words.len());
            lanes.push(words);
        }
        let mut bank_words: Vec<Vec<u32>> = vec![Vec::new(); banks];
        for step in 0..steps {
            for bw in &mut bank_words {
                bw.clear();
            }
            for words in &lanes {
                if let Some(&w) = words.get(step) {
                    let bw = &mut bank_words[w as usize % banks];
                    if !bw.contains(&w) {
                        bw.push(w);
                    }
                }
            }
            for bw in &bank_words {
                degree = degree.max(bw.len() as u32);
            }
        }
    }
    degree
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(block_dim: u32) -> LaunchConfig {
        LaunchConfig::new(1, block_dim)
    }

    #[test]
    fn extracts_barrier_and_lane_structure() {
        let traces = vec![
            vec![Op::Compute(3), Op::Sync, Op::Compute(1), Op::SyncChildren],
            vec![Op::Compute(5), Op::Sync, Op::Compute(1), Op::SyncChildren],
        ];
        let ir = extract(&traces, &cfg(2), 32, 32);
        assert_eq!(ir.segments, 3);
        assert_eq!(ir.join_barriers, 1);
        assert_eq!(ir.active_lanes, 2);
        assert_eq!(ir.compute, 10);
        assert_eq!(ir.lane_ops_max, 4);
        assert!((ir.imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shared_interval_and_global_span_are_canonical() {
        let traces = vec![vec![
            Op::SharedWrite { addr: 8 },
            Op::SharedRead { addr: 40 },
            Op::GlobalRead {
                addr: 0x1000 + 64,
                size: 4,
            },
            Op::GlobalWrite {
                addr: 0x1000 + 256,
                size: 8,
            },
        ]];
        let ir = extract(&traces, &cfg(1), 32, 32);
        assert_eq!(ir.shared, Some((8, 44)));
        assert_eq!(ir.shared_accesses, 2);
        // Base line is 0x1000 (the first access rounded down to 128 bytes).
        assert_eq!(ir.global_span, Some((64, 264)));
        assert_eq!(ir.global_accesses, 2);
    }

    #[test]
    fn bank_conflict_degree_detects_stride_patterns() {
        // 32 lanes, stride-1 words: conflict-free.
        let unit: Vec<Vec<Op>> = (0..32)
            .map(|l| vec![Op::SharedRead { addr: l * 4 }])
            .collect();
        assert_eq!(extract(&unit, &cfg(32), 32, 32).bank_conflict_degree, 1);
        // Stride-32 words: all 32 lanes hit bank 0 with distinct words.
        let strided: Vec<Vec<Op>> = (0..32)
            .map(|l| vec![Op::SharedRead { addr: l * 32 * 4 }])
            .collect();
        assert_eq!(extract(&strided, &cfg(32), 32, 32).bank_conflict_degree, 32);
        // Broadcast of one word: conflict-free on hardware and here.
        let bcast: Vec<Vec<Op>> = (0..32).map(|_| vec![Op::SharedRead { addr: 0 }]).collect();
        assert_eq!(extract(&bcast, &cfg(32), 32, 32).bank_conflict_degree, 1);
    }

    #[test]
    fn imbalance_reflects_heavy_lanes() {
        let mut traces = vec![vec![Op::Compute(1)]; 32];
        traces[0] = vec![Op::Compute(1); 64];
        let ir = extract(&traces, &cfg(32), 32, 32);
        assert!(ir.imbalance() > 10.0, "imbalance {}", ir.imbalance());
    }
}
