//! npar-analyze — static kernel analysis with proof-carrying checker
//! elision and a template advisor (DESIGN.md §12).
//!
//! The analyzer groups launches into *kernel classes* — one per (kernel
//! name, `block_dim`, `shared_mem_bytes`) — and distills the first scanned
//! block of each class into a tiny structural IR ([`ProbeIr`]). It never
//! runs a simulation of its own: the probe is a single block's functional
//! trace, which the engine records anyway. Four analyses run over the IR
//! and the class's accumulated launch facts:
//!
//! 1. **Barrier structure** (static synccheck): the probe's barrier
//!    segmentation, proven non-divergent for every block whose canonical
//!    trace fingerprint matches the probe's.
//! 2. **Interval analysis** (static memcheck): the shared/global byte
//!    intervals the probe touches, proving in-bounds shared access and
//!    predicting worst-case shared-memory bank conflicts.
//! 3. **Launch shape**: per-class child-launch counts, child sizes and the
//!    nesting depth its grids reach — bounding dynamic-parallelism
//!    recursion per template.
//! 4. **Resource/occupancy lint**: flags launch configurations whose
//!    block size or shared usage caps theoretical occupancy below the
//!    device's sweet spot, with the occupancy-calculator's suggestion.
//!
//! **Proof-carrying elision.** Verdicts feed back into npar-check: once a
//! class has a *promoted probe* — a clean, launch-free block scanned with
//! zero hazards in a grid that finished with no hazards attributed to the
//! kernel — later blocks whose canonical fingerprint equals the probe's
//! signature skip the per-block barrier/bounds/shared-race scans entirely.
//! The contract (tested in `tests/analyze_soundness.rs`): elision may only
//! skip work the dynamic checker would have passed. It rests on the same
//! canonical-fingerprint identity the alignment memo already trusts, and
//! three guards keep it conservative: launch-bearing blocks never elide
//! (launch lints stay exact), the cross-block global-race sweep always
//! runs (elided blocks still contribute their global intervals), and any
//! hazard later attributed to a kernel permanently flags all its classes,
//! stopping elision.
//!
//! The [`Advice`] produced by [`KernelAnalysis::advise`] is the
//! compiler-integration endpoint: a recommended template and consolidation
//! granularity, evaluated against measured crossovers by the fig5/fig7/
//! fig9 bench suites (`--analyze`).

mod advise;
mod ir;

pub use advise::{Advice, Consolidation};
pub use ir::ProbeIr;

use std::collections::BTreeMap;
use std::fmt;

use crate::check::{CheckState, HazardKind};
use crate::config::DeviceConfig;
use crate::kernel::LaunchConfig;
use crate::memo::{warp_key, BlockFps};
use crate::occupancy::{best_block_size, occupancy, Limiter};
use crate::trace::Op;

/// A class's elision signature: the order- and count-sensitive key over
/// the block's per-lane canonical trace fingerprints. Equality means the
/// block issued, lane for lane, the same canonical op sequence as the
/// promoted probe (modulo the 64-bit-hash collision assumption the
/// alignment memo already makes).
pub(crate) fn class_sig(fps: &BlockFps) -> u64 {
    warp_key(fps.lanes.iter().map(|f| f.value()))
}

/// Outcome of one static analysis for one kernel class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds for every block of the class: the probe was
    /// checked clean and every non-scanned block fingerprint-matched it.
    Proven(String),
    /// Nothing was proven — the dynamic checker covered (or would cover)
    /// these blocks. The payload says why the proof did not come through.
    Unproven(String),
    /// The dynamic checker recorded hazards against this kernel; the
    /// payload summarizes them. Flagged classes never elide again.
    Flagged(String),
}

impl Verdict {
    /// Whether the property was statically proven.
    pub fn is_proven(&self) -> bool {
        matches!(self, Verdict::Proven(_))
    }

    /// Whether the dynamic checker contradicted the property.
    pub fn is_flagged(&self) -> bool {
        matches!(self, Verdict::Flagged(_))
    }

    /// The human-readable payload.
    pub fn detail(&self) -> &str {
        match self {
            Verdict::Proven(s) | Verdict::Unproven(s) | Verdict::Flagged(s) => s,
        }
    }

    /// Short machine-readable tag (`proven` / `unproven` / `flagged`),
    /// used by the `ANALYZE_baseline.json` CI gate.
    pub fn tag(&self) -> &'static str {
        match self {
            Verdict::Proven(_) => "proven",
            Verdict::Unproven(_) => "unproven",
            Verdict::Flagged(_) => "flagged",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Proven(s) => write!(f, "proven-clean ({s})"),
            Verdict::Unproven(s) => write!(f, "unproven: {s}"),
            Verdict::Flagged(s) => write!(f, "FLAGGED: {s}"),
        }
    }
}

/// Launch-shape facts accumulated for one kernel class (analysis 3).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LaunchShape {
    /// Child grids launched by blocks of this class.
    pub spawned_grids: u64,
    /// Total threads across those child grids.
    pub child_threads_total: u64,
    /// Largest child grid, in threads.
    pub child_threads_max: u64,
    /// Largest child `grid_dim`.
    pub child_grid_dim_max: u32,
    /// Deepest nesting level grids of this class ran at (host = 0) — the
    /// observed bound on the class's recursion depth.
    pub max_depth: u32,
}

impl LaunchShape {
    /// Mean child-grid size in threads (`0.0` for leaf kernels).
    pub fn mean_child_threads(&self) -> f64 {
        if self.spawned_grids == 0 {
            0.0
        } else {
            self.child_threads_total as f64 / self.spawned_grids as f64
        }
    }
}

/// Resource/occupancy lint output for one kernel class (analysis 4).
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancyFacts {
    /// Theoretical occupancy of the class's launch configuration.
    pub occupancy: f64,
    /// The binding hardware limit.
    pub limiter: Limiter,
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Whether the lint fired: occupancy sits below the device sweet spot
    /// (50%) while another block size would do meaningfully better.
    pub flagged: bool,
    /// The occupancy calculator's suggested block size.
    pub suggested_block_dim: u32,
    /// Occupancy at the suggested block size.
    pub suggested_occupancy: f64,
}

/// Everything npar-analyze knows about one kernel class.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelAnalysis {
    /// Kernel name.
    pub kernel: String,
    /// Block size of this class's launches.
    pub block_dim: u32,
    /// Declared shared-memory bytes per block.
    pub shared_mem_bytes: u32,
    /// Grids of this class launched so far.
    pub grids: u64,
    /// Blocks across those grids.
    pub blocks: u64,
    /// Blocks the dynamic checker fully scanned.
    pub scanned_blocks: u64,
    /// Blocks whose per-block scans were statically elided.
    pub elided_blocks: u64,
    /// Overall elision status (proof-carrying summary).
    pub elision: Verdict,
    /// Analysis 1: barrier structure (static synccheck).
    pub barriers: Verdict,
    /// Analysis 2a: shared-memory bounds (static memcheck).
    pub shared_bounds: Verdict,
    /// Analysis 2b: intra-block shared-memory races.
    pub shared_races: Verdict,
    /// Cross-block global races — never elided, reported for symmetry.
    pub global_races: Verdict,
    /// Analysis 2c: predicted worst-case bank conflict degree (`0` = no
    /// shared traffic, `1` = conflict-free).
    pub bank_conflicts: u32,
    /// Probe work imbalance (`lane_ops_max / lane_ops_mean`).
    pub imbalance: f64,
    /// Probe maximum per-lane op count.
    pub lane_ops_max: u32,
    /// Probe barrier segments per lane.
    pub segments: u32,
    /// Analysis 3: launch shape.
    pub launch_shape: LaunchShape,
    /// Analysis 4: occupancy lint.
    pub occupancy: OccupancyFacts,
    /// The raw probe IR, when a block was observed.
    pub probe: Option<ProbeIr>,
    /// Device warp size the analysis ran with (advisor input).
    warp_size: u32,
}

impl KernelAnalysis {
    /// The template advisor's recommendation for this class.
    pub fn advise(&self) -> Advice {
        advise::advise(self, self.warp_size)
    }
}

impl fmt::Display for KernelAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "kernel `{}` <<<*, {}, {}>>> — {} grid(s), {} block(s) \
             ({} scanned, {} elided)",
            self.kernel,
            self.block_dim,
            self.shared_mem_bytes,
            self.grids,
            self.blocks,
            self.scanned_blocks,
            self.elided_blocks,
        )?;
        writeln!(f, "  elision        {}", self.elision)?;
        writeln!(f, "  barriers       {}", self.barriers)?;
        writeln!(f, "  shared bounds  {}", self.shared_bounds)?;
        writeln!(f, "  shared races   {}", self.shared_races)?;
        writeln!(f, "  global races   {}", self.global_races)?;
        match self.bank_conflicts {
            0 => writeln!(f, "  bank conflicts no shared traffic")?,
            1 => writeln!(f, "  bank conflicts none predicted")?,
            n => writeln!(f, "  bank conflicts up to {n}-way predicted")?,
        }
        if self.launch_shape.spawned_grids == 0 {
            writeln!(
                f,
                "  launch shape   leaf kernel (depth {})",
                self.launch_shape.max_depth
            )?;
        } else {
            writeln!(
                f,
                "  launch shape   {} child grid(s), mean {:.0} / max {} threads, \
                 depth ≤ {}",
                self.launch_shape.spawned_grids,
                self.launch_shape.mean_child_threads(),
                self.launch_shape.child_threads_max,
                self.launch_shape.max_depth,
            )?;
        }
        write!(
            f,
            "  occupancy      {:.1}% ({} blocks/SM, {}-limited)",
            self.occupancy.occupancy * 100.0,
            self.occupancy.blocks_per_sm,
            self.occupancy.limiter,
        )?;
        if self.occupancy.flagged {
            write!(
                f,
                " — LINT: block_dim {} would reach {:.1}%",
                self.occupancy.suggested_block_dim,
                self.occupancy.suggested_occupancy * 100.0,
            )?;
        }
        writeln!(f)?;
        write!(f, "  advice         {}", self.advise())
    }
}

/// The full npar-analyze report: one entry per kernel class, ordered by
/// kernel name, then first-launch order within a name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisReport {
    /// Per-class analyses.
    pub kernels: Vec<KernelAnalysis>,
}

impl AnalysisReport {
    /// Whether any kernel class was observed.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// The first class with this kernel name, if any.
    pub fn get(&self, kernel: &str) -> Option<&KernelAnalysis> {
        self.kernels.iter().find(|k| k.kernel == kernel)
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "npar-analyze: {} kernel class(es)", self.kernels.len())?;
        for k in &self.kernels {
            writeln!(f, "{k}")?;
        }
        Ok(())
    }
}

const KINDS: usize = 6;

fn kind_index(kind: HazardKind) -> usize {
    match kind {
        HazardKind::SharedRace => 0,
        HazardKind::GlobalRace => 1,
        HazardKind::DivergentBarrier => 2,
        HazardKind::UnjoinedChildRead => 3,
        HazardKind::SharedOutOfBounds => 4,
        HazardKind::InvalidChildLaunch => 5,
    }
}

const KIND_NAMES: [&str; KINDS] = [
    "shared-race",
    "global-race",
    "divergent-barrier",
    "unjoined-child-read",
    "shared-out-of-bounds",
    "invalid-child-launch",
];

/// One kernel class's accumulated state.
#[derive(Default)]
struct Class {
    /// Promoted probe signature: `Some` once a clean, launch-free probe
    /// block survived a hazard-free grid of this kernel. Cleared forever
    /// if the class is flagged.
    proven: Option<u64>,
    /// A hazard was attributed to this kernel (by name): terminal.
    flagged: bool,
    /// Recorded hazards per [`HazardKind`], attributed by kernel name.
    hazards: [u64; KINDS],
    /// First scanned block's IR and how it was scanned.
    probe: Option<ProbeIr>,
    probe_sanitized: bool,
    grids: u64,
    blocks: u64,
    scanned: u64,
    elided: u64,
    max_depth: u32,
    shape: LaunchShape,
}

struct ClassSlot {
    block_dim: u32,
    shared: u32,
    class: Class,
}

/// Engine-resident analyzer state: the class table plus the watermark into
/// the checker's hazard list (for attributing late hazards to classes).
#[derive(Default)]
pub(crate) struct Analyzer {
    classes: BTreeMap<String, Vec<ClassSlot>>,
    hazard_mark: usize,
}

impl Analyzer {
    fn class_mut(&mut self, name: &str, cfg: &LaunchConfig) -> &mut Class {
        if !self.classes.contains_key(name) {
            self.classes.insert(name.to_string(), Vec::new());
        }
        let slots = self.classes.get_mut(name).expect("just inserted");
        let idx = slots
            .iter()
            .position(|s| s.block_dim == cfg.block_dim && s.shared == cfg.shared_mem_bytes)
            .unwrap_or_else(|| {
                slots.push(ClassSlot {
                    block_dim: cfg.block_dim,
                    shared: cfg.shared_mem_bytes,
                    class: Class::default(),
                });
                slots.len() - 1
            });
        &mut slots[idx].class
    }

    /// Open per-grid analysis state; called once per grid, before any of
    /// its blocks execute, on the main thread.
    pub(crate) fn begin_grid(
        &mut self,
        name: &str,
        cfg: &LaunchConfig,
        depth: u32,
        check: &CheckState,
    ) -> GridAnalysis {
        let mark = check.hazard_mark();
        let class = self.class_mut(name, cfg);
        class.grids += 1;
        class.blocks += u64::from(cfg.grid_dim);
        class.max_depth = class.max_depth.max(depth);
        GridAnalysis {
            sig: if class.flagged { None } else { class.proven },
            need_probe: class.probe.is_none(),
            candidate: None,
            probe: None,
            scanned: 0,
            elided: 0,
            hz_mark: mark,
        }
    }

    /// Fold a finished grid's observations back into its class and decide
    /// promotion: the candidate signature becomes the class's proof only
    /// if the whole grid ended with no hazard attributed to this kernel
    /// (and no suppressed hazards, which cannot be attributed at all).
    pub(crate) fn finish_grid(
        &mut self,
        name: &str,
        cfg: &LaunchConfig,
        ga: GridAnalysis,
        check: &CheckState,
    ) {
        let clean = check.suppressed_since(ga.hz_mark) == 0
            && check
                .hazards_since(ga.hz_mark)
                .iter()
                .all(|h| h.kernel != name);
        let class = self.class_mut(name, cfg);
        class.scanned += ga.scanned;
        class.elided += ga.elided;
        if class.probe.is_none() {
            if let Some((ir, sanitized)) = ga.probe {
                class.probe = Some(ir);
                class.probe_sanitized = sanitized;
            }
        }
        if clean && !class.flagged && class.proven.is_none() {
            class.proven = ga.candidate;
        }
    }

    /// Attribute a device-side child launch to the parent's class.
    pub(crate) fn on_launch(
        &mut self,
        parent: &str,
        parent_cfg: &LaunchConfig,
        child_cfg: &LaunchConfig,
    ) {
        let shape = &mut self.class_mut(parent, parent_cfg).shape;
        let threads = u64::from(child_cfg.grid_dim) * u64::from(child_cfg.block_dim);
        shape.spawned_grids += 1;
        shape.child_threads_total += threads;
        shape.child_threads_max = shape.child_threads_max.max(threads);
        shape.child_grid_dim_max = shape.child_grid_dim_max.max(child_cfg.grid_dim);
    }

    /// Attribute every hazard recorded since the last sweep to its
    /// kernel's classes (all of them, by name — conservative) and flag
    /// them, permanently stopping elision. Called after lint resolution,
    /// before any report can be drained.
    pub(crate) fn sweep_hazards(&mut self, check: &CheckState) {
        let (len, _) = check.hazard_mark();
        if self.hazard_mark > len {
            // The hazard list was drained since the last sweep.
            self.hazard_mark = 0;
        }
        for h in check.hazards_since((self.hazard_mark, 0)) {
            if let Some(slots) = self.classes.get_mut(&h.kernel) {
                for s in slots.iter_mut() {
                    s.class.flagged = true;
                    s.class.proven = None;
                    s.class.hazards[kind_index(h.kind)] += 1;
                }
            }
        }
        self.hazard_mark = len;
    }

    /// Forget the hazard watermark — the checker's list was drained.
    pub(crate) fn note_drained(&mut self) {
        self.hazard_mark = 0;
    }

    /// Assemble the public report.
    pub(crate) fn report(&self, device: &DeviceConfig) -> AnalysisReport {
        let mut kernels = Vec::new();
        for (name, slots) in &self.classes {
            for s in slots {
                kernels.push(analyze_class(name, s, device));
            }
        }
        AnalysisReport { kernels }
    }
}

fn flag_detail(c: &Class, kinds: &[HazardKind]) -> Option<String> {
    let mut parts = Vec::new();
    for &k in kinds {
        let n = c.hazards[kind_index(k)];
        if n > 0 {
            parts.push(format!("{n} {} hazard(s)", KIND_NAMES[kind_index(k)]));
        }
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join(", "))
    }
}

fn analyze_class(name: &str, slot: &ClassSlot, device: &DeviceConfig) -> KernelAnalysis {
    let c = &slot.class;
    let probe = c.probe.as_ref();
    let launches = probe.map_or(0, |p| p.launches);

    // Why this class has no proof, for the Unproven payloads.
    let unproven_why = if c.probe.is_none() {
        "no block scanned yet (checker off or nothing launched)"
    } else if c.probe_sanitized {
        "probe block diverged at a barrier"
    } else if launches > 0 {
        "probe block launches child grids (launch-bearing blocks never elide)"
    } else {
        "no clean launch-free probe was promoted; blocks checked dynamically"
    };

    let proven = c.proven.is_some() && !c.flagged;
    let verdict = |flag_kinds: &[HazardKind], proven_detail: String| -> Verdict {
        if let Some(d) = flag_detail(c, flag_kinds) {
            Verdict::Flagged(d)
        } else if proven {
            Verdict::Proven(proven_detail)
        } else {
            Verdict::Unproven(unproven_why.to_string())
        }
    };

    let barriers = verdict(
        &[HazardKind::DivergentBarrier],
        format!(
            "{} uniform barrier segment(s); non-scanned blocks fingerprint-match the probe",
            probe.map_or(1, |p| p.segments),
        ),
    );
    let shared_bounds = verdict(
        &[HazardKind::SharedOutOfBounds],
        match probe.and_then(|p| p.shared) {
            None => "no shared-memory traffic".to_string(),
            Some((lo, hi)) => format!(
                "probe touches shared [{lo:#x}, {hi:#x}) within {} declared byte(s)",
                slot.shared,
            ),
        },
    );
    let shared_races = verdict(
        &[HazardKind::SharedRace],
        "probe scan found no intra-block conflicts; non-scanned blocks \
         fingerprint-match the probe"
            .to_string(),
    );
    let global_races = if let Some(d) = flag_detail(c, &[HazardKind::GlobalRace]) {
        Verdict::Flagged(d)
    } else {
        Verdict::Unproven(
            "cross-block property — the global sweep always runs, elided or not".to_string(),
        )
    };

    let elision = if c.flagged {
        let all = HazardKind::ALL;
        Verdict::Flagged(format!(
            "{} — class permanently excluded from elision",
            flag_detail(c, &all).unwrap_or_else(|| "hazards recorded".to_string()),
        ))
    } else if let Some(sig) = c.proven {
        Verdict::Proven(format!(
            "probe signature {sig:#018x}; {} of {} block(s) elided so far",
            c.elided, c.blocks,
        ))
    } else {
        Verdict::Unproven(unproven_why.to_string())
    };

    let occ = occupancy(device, slot.block_dim, slot.shared);
    let suggested = best_block_size(device, slot.shared);
    let suggested_occ = occupancy(device, suggested, slot.shared).occupancy;
    let occupancy = OccupancyFacts {
        occupancy: occ.occupancy,
        limiter: occ.limiter,
        blocks_per_sm: occ.blocks_per_sm,
        flagged: occ.occupancy + 1e-9 < 0.5 && suggested_occ > occ.occupancy + 0.1,
        suggested_block_dim: suggested,
        suggested_occupancy: suggested_occ,
    };

    let mut shape = c.shape.clone();
    shape.max_depth = c.max_depth;

    KernelAnalysis {
        kernel: name.to_string(),
        block_dim: slot.block_dim,
        shared_mem_bytes: slot.shared,
        grids: c.grids,
        blocks: c.blocks,
        scanned_blocks: c.scanned,
        elided_blocks: c.elided,
        elision,
        barriers,
        shared_bounds,
        shared_races,
        global_races,
        bank_conflicts: probe.map_or(0, |p| p.bank_conflict_degree),
        imbalance: probe.map_or(1.0, |p| p.imbalance()),
        lane_ops_max: probe.map_or(0, |p| p.lane_ops_max),
        segments: probe.map_or(1, |p| p.segments),
        launch_shape: shape,
        occupancy,
        probe: c.probe.clone(),
        warp_size: device.warp_size,
    }
}

/// Per-grid analysis state, created by [`Analyzer::begin_grid`] and folded
/// back by [`Analyzer::finish_grid`]. All observation calls happen in
/// canonical block order on the main thread, which keeps candidate
/// selection (and therefore promotion and every later elision decision)
/// independent of host thread count and memoization.
pub(crate) struct GridAnalysis {
    /// The class's promoted signature at grid start: blocks matching it
    /// may elide their scans.
    sig: Option<u64>,
    /// Whether the class still needs its probe IR extracted.
    need_probe: bool,
    /// First clean, launch-free scanned block's signature this grid.
    candidate: Option<u64>,
    /// First scanned block's IR (regardless of cleanliness) + sanitized.
    probe: Option<(ProbeIr, bool)>,
    scanned: u64,
    elided: u64,
    hz_mark: (usize, u64),
}

impl GridAnalysis {
    /// Decide whether a freshly traced block may skip its per-block scans:
    /// only launch-free blocks whose canonical fingerprint signature
    /// equals the promoted probe's. Counts the elision on success.
    pub(crate) fn try_elide(&mut self, fps: &BlockFps) -> bool {
        match self.sig {
            Some(sig) if !fps.any_launch() && class_sig(fps) == sig => {
                self.elided += 1;
                true
            }
            _ => false,
        }
    }

    /// Record a non-elided block (canonical order). `clean` means the scan
    /// attributed zero new hazards to this block; `probe_fps` carries the
    /// block's fingerprints when probing for an elision candidate is
    /// possible (checker above `Off`, fingerprints computed) — its absence
    /// also means the checker did not really scan, so nothing is counted.
    pub(crate) fn observe_scanned(
        &mut self,
        traces: &[Vec<Op>],
        cfg: &LaunchConfig,
        device: &DeviceConfig,
        probe_fps: Option<&BlockFps>,
        sanitized: bool,
        clean: bool,
    ) {
        self.scanned += u64::from(probe_fps.is_some());
        if self.need_probe && self.probe.is_none() {
            self.probe = Some((
                ir::extract(traces, cfg, device.warp_size, device.shared_banks),
                sanitized,
            ));
        }
        if self.candidate.is_none() && clean && !sanitized {
            if let Some(fps) = probe_fps {
                if !fps.any_launch() {
                    self.candidate = Some(class_sig(fps));
                }
            }
        }
    }
}
