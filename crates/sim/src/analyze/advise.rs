//! The template advisor: turns per-kernel analysis facts into a
//! recommended parallelization template and consolidation granularity.
//!
//! This is the compiler-integration angle of the paper's conclusion, made
//! static: instead of running every template and comparing (the fig5/fig7/
//! fig9 suites), the advisor reads the probe IR's work-imbalance, the
//! launch-shape analysis' child-grid statistics and the occupancy lint,
//! and applies the decision rules the evaluation section establishes —
//! regular loops stay thread-mapped, irregular loops consolidate into
//! delayed buffers, dynamic parallelism aggregates its launches (per warp,
//! per block, or per grid) or inlines small children behind a threshold.

use std::fmt;

use super::KernelAnalysis;

/// At which granularity nested work should be aggregated before it is
/// (re)distributed — the consolidation axis of the Wu/Li/Becchi
/// compiler-assisted workload consolidation line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Consolidation {
    /// No aggregation: keep the plain per-thread mapping and serialize
    /// inner work in the thread that met it.
    PerThread,
    /// Aggregate into a per-warp shared buffer and let the warp's lanes
    /// drain it in lockstep.
    PerWarp,
    /// Aggregate into a per-block (shared-memory) buffer, drained
    /// block-wide — the paper's dbuf-shared shape.
    PerBlock,
    /// Aggregate into a global buffer redistributed across the whole grid
    /// (dbuf-global), or keep genuine device-side child grids.
    PerGrid,
    /// Keep launches but inline children below a size threshold into the
    /// parent thread (the thres/dpar-opt idiom).
    ThresholdInline,
}

impl fmt::Display for Consolidation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Consolidation::PerThread => "per-thread (no consolidation)",
            Consolidation::PerWarp => "per-warp buffer",
            Consolidation::PerBlock => "per-block buffer",
            Consolidation::PerGrid => "per-grid / global buffer",
            Consolidation::ThresholdInline => "thresholded serial inlining",
        })
    }
}

/// The advisor's recommendation for one kernel class.
#[derive(Debug, Clone, PartialEq)]
pub struct Advice {
    /// Recommended template, named in the paper's vocabulary
    /// (`thread-mapped`, `dbuf-shared`, `dbuf-global`, `dpar-thres`,
    /// `rec-hier`, `flat`). Bench binaries map this onto their own
    /// template enums for comparison with measured crossovers.
    pub template: &'static str,
    /// Recommended aggregation granularity.
    pub consolidation: Consolidation,
    /// Suggested block size when the occupancy lint fired (the launch's
    /// own block size otherwise).
    pub block_dim: u32,
    /// Human-readable justifications, one per contributing fact.
    pub reasons: Vec<String>,
}

impl fmt::Display for Advice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "template {} · {} · block_dim {}",
            self.template, self.consolidation, self.block_dim
        )?;
        for r in &self.reasons {
            write!(f, "\n    - {r}")?;
        }
        Ok(())
    }
}

/// Imbalance below which a loop counts as regular (mirrors the core
/// advisor's `advise_loop` threshold).
const REGULAR_IMBALANCE: f64 = 4.0;
/// Per-lane op count below which even imbalanced work is too small to be
/// worth consolidating.
const SMALL_MAX_OPS: u32 = 64;
/// Imbalance beyond which per-block buffers themselves go unbalanced and
/// the global buffer is the better home (the dbuf-global regime).
const HEAVY_IMBALANCE: f64 = 32.0;

/// Compute the recommendation for one analyzed kernel class. `warp_size`
/// comes from the device the analysis ran on.
pub(crate) fn advise(a: &KernelAnalysis, warp_size: u32) -> Advice {
    let mut reasons = Vec::new();
    let mut block_dim = a.block_dim;
    if a.occupancy.flagged {
        block_dim = a.occupancy.suggested_block_dim;
        reasons.push(format!(
            "occupancy lint: {:.1}% ({} limited) — suggest block_dim {} ({:.1}%)",
            a.occupancy.occupancy * 100.0,
            a.occupancy.limiter,
            a.occupancy.suggested_block_dim,
            a.occupancy.suggested_occupancy * 100.0,
        ));
    }

    let shape = &a.launch_shape;
    let (template, consolidation) = if shape.spawned_grids > 0 {
        // Dynamic parallelism: decide from the launch-shape analysis.
        let mean_child = shape.mean_child_threads();
        if mean_child <= f64::from(2 * warp_size) {
            reasons.push(format!(
                "children average {mean_child:.0} threads (≤ 2 warps): launch \
                 overhead dominates — inline small children serially behind a \
                 threshold",
            ));
            ("dpar-thres", Consolidation::ThresholdInline)
        } else if shape.max_depth > 2 && mean_child < f64::from(a.block_dim.max(warp_size)) {
            reasons.push(format!(
                "recursion reaches depth {} with sub-block children \
                 ({mean_child:.0} threads): aggregate frontiers per block \
                 (hierarchical recursion)",
                shape.max_depth,
            ));
            ("rec-hier", Consolidation::PerBlock)
        } else {
            reasons.push(format!(
                "children are large ({mean_child:.0} threads on average, max \
                 {}): keep device-side grids and aggregate per grid",
                shape.child_threads_max,
            ));
            ("dpar", Consolidation::PerGrid)
        }
    } else {
        // A leaf loop kernel: decide from the probe's work distribution.
        let imb = a.imbalance;
        if imb <= REGULAR_IMBALANCE || a.lane_ops_max <= SMALL_MAX_OPS {
            reasons.push(format!(
                "regular work distribution (imbalance {imb:.1}, max {} ops/lane): \
                 plain thread mapping has no balancing cost to recoup",
                a.lane_ops_max,
            ));
            ("thread-mapped", Consolidation::PerThread)
        } else if imb > HEAVY_IMBALANCE {
            reasons.push(format!(
                "heavy-tailed lanes (imbalance {imb:.1}): per-block buffers \
                 would themselves go unbalanced — use the global delayed buffer",
            ));
            ("dbuf-global", Consolidation::PerGrid)
        } else {
            reasons.push(format!(
                "irregular lanes (imbalance {imb:.1}, max {} ops/lane): buffer \
                 large iterations per block and drain them block-wide",
                a.lane_ops_max,
            ));
            ("dbuf-shared", Consolidation::PerBlock)
        }
    };

    if a.bank_conflicts > 1 {
        reasons.push(format!(
            "probe predicts {}-way shared-memory bank conflicts: pad or \
             restride the shared layout",
            a.bank_conflicts,
        ));
    }

    Advice {
        template,
        consolidation,
        block_dim,
        reasons,
    }
}
