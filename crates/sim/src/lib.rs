//! # npar-sim — a discrete-event SIMT GPU simulator
//!
//! The execution substrate for the npar reproduction of *"Nested Parallelism
//! on GPU: Exploring Parallelization Templates for Irregular Loops and
//! Recursive Computations"* (Li, Wu, Becchi — ICPP 2015). The paper's
//! evaluation requires an Nvidia K20 with CUDA dynamic parallelism and
//! `nvprof`; this crate provides a software equivalent with the mechanisms
//! the paper measures as first-class citizens:
//!
//! * **SIMT execution** — kernels run thread-by-thread functionally while
//!   recording instruction traces; warps replay the traces in lockstep, so
//!   irregular inner loops produce exactly the divergence (warp execution
//!   efficiency) the paper profiles.
//! * **Memory system** — 128-byte-transaction coalescing (gld/gst
//!   efficiency), shared memory with bank conflicts, and atomics with
//!   intra-warp same-address serialization.
//! * **Device scheduler** — blocks dispatch to SMs under the occupancy
//!   limits, SM issue bandwidth is shared, streams serialize, and child
//!   grids (dynamic parallelism) release after a launch latency; parents
//!   that join their children swap out and pay a restore penalty.
//! * **Profiling** — `nvprof`-style metrics per kernel name, with stall
//!   attribution (where every cycle went: compute, divergence, memory,
//!   atomics, launch overhead, barriers) and an opt-in timeline profiler,
//!   **npar-prof** (see [`prof`]), that records kernel spans, per-SM block
//!   residency and parent→child launch flows, exporting Chrome-trace JSON
//!   for Perfetto.
//! * **Hazard checking** — a `cuda-memcheck`-style sanitizer (see
//!   [`check`]) replays the recorded traces for shared/global data races,
//!   divergent barriers, out-of-bounds shared accesses and misused dynamic
//!   parallelism, gated by [`CheckLevel`] on the device config.
//! * **Static analysis** — **npar-analyze** (see [`analyze`]) distills a
//!   probe block per kernel class into a structural IR, proves barrier/
//!   bounds/race cleanliness where it can (letting the checker elide those
//!   scans, proof-carried), bounds dynamic-parallelism launch shapes, lints
//!   occupancy, and recommends a parallelization template via
//!   [`analyze::KernelAnalysis::advise`].
//!
//! See `DESIGN.md` at the workspace root for the full substitution argument
//! and the cost-model calibration policy.

#![warn(missing_docs)]

pub mod analyze;
mod block;
pub mod check;
pub mod config;
pub mod cost;
pub mod cpu;
mod ctx;
mod device;
mod engine;
mod error;
mod handle;
mod kernel;
mod memo;
mod memory;
pub mod occupancy;
mod parallel;
pub mod prof;
pub mod profiler;
mod sched;
mod sync;
mod trace;
mod warp;

pub use analyze::{Advice, AnalysisReport, Consolidation, KernelAnalysis, Verdict};
pub use check::{CheckLevel, CheckReport, Hazard, HazardKind};
pub use config::{CpuConfig, DeviceConfig};
pub use cost::{CostModel, CpuCostModel, DivergenceModel};
pub use cpu::CpuCounter;
pub use ctx::{BlockCtx, ThreadCtx};
pub use device::Gpu;
pub use error::SimError;
pub use handle::{GBuf, GlobalAllocator};
pub use kernel::{BlockState, Kernel, KernelRef, LaunchConfig, Stream, ThreadKernel};
pub use memo::MemoSnapshot;
pub use prof::{BlockSpan, KernelSpan, LaunchFlow, Profile};
pub use profiler::{KernelMetrics, Report, SimStats, StallCycles};
pub use sync::SyncCell;
