//! Race detection over recorded traces: shared-memory conflicts within a
//! block's barrier segments, and cross-block global-memory conflicts.
//!
//! The functional simulator runs threads sequentially, so a racy kernel
//! still produces one deterministic (usually correct-looking) answer; these
//! passes recover the concurrency the hardware would actually have — any
//! two threads of a block race between barriers, any two blocks of a grid
//! race for the grid's whole duration — and flag the conflicting accesses.

use super::{merge_intervals, CheckState, GridAccess, Hazard, HazardKind};
use crate::trace::Op;

/// Per-role record of up to two *distinct* lanes that touched an address.
#[derive(Clone, Copy, Default)]
struct LanePair(Option<u32>, Option<u32>);

impl LanePair {
    fn add(&mut self, lane: u32) {
        match (self.0, self.1) {
            (None, _) => self.0 = Some(lane),
            (Some(a), None) if a != lane => self.1 = Some(lane),
            _ => {}
        }
    }

    /// A lane in the pair different from `other`, if any.
    fn other_than(&self, other: u32) -> Option<u32> {
        [self.0, self.1].into_iter().flatten().find(|&l| l != other)
    }
}

#[derive(Clone, Copy, Default)]
struct SharedCell {
    writers: LanePair,
    readers: LanePair,
    atomics: LanePair,
}

/// Cap of reported shared races per segment — one bad access pattern
/// otherwise reports every address of the block's shared array.
const MAX_SHARED_PER_SEGMENT: usize = 4;

/// Within each barrier segment, flag shared-memory words where two distinct
/// lanes conflict: write/write, or a non-atomic write against any other
/// lane's read or atomic. Atomic/atomic pairs are ordered by the hardware
/// and never flagged.
pub(crate) fn scan_shared_races(
    st: &mut CheckState,
    traces: &[Vec<Op>],
    ranges: &[(u32, u32)],
    nsegs: usize,
    kernel: &str,
    grid: usize,
    block: u32,
) {
    let mut cells: std::collections::BTreeMap<u32, SharedCell> = std::collections::BTreeMap::new();
    for seg in 0..nsegs {
        cells.clear();
        for (lane, t) in traces.iter().enumerate() {
            let (a, b) = ranges[lane * nsegs + seg];
            for op in &t[a as usize..b as usize] {
                match *op {
                    Op::SharedWrite { addr } => {
                        cells.entry(addr).or_default().writers.add(lane as u32)
                    }
                    Op::SharedRead { addr } => {
                        cells.entry(addr).or_default().readers.add(lane as u32)
                    }
                    Op::AtomicShared { addr } => {
                        cells.entry(addr).or_default().atomics.add(lane as u32)
                    }
                    _ => {}
                }
            }
        }
        let mut reported = 0;
        for (&addr, cell) in &cells {
            if reported >= MAX_SHARED_PER_SEGMENT {
                break;
            }
            let Some(w) = cell.writers.0 else { continue };
            let conflict = if let Some(w2) = cell.writers.other_than(w) {
                Some(("write/write", w2))
            } else if let Some(r) = cell.readers.other_than(w) {
                Some(("read/write", r))
            } else {
                cell.atomics.other_than(w).map(|a| ("atomic/write", a))
            };
            if let Some((what, lane2)) = conflict {
                reported += 1;
                st.record(Hazard {
                    kind: HazardKind::SharedRace,
                    kernel: kernel.to_string(),
                    grid,
                    block,
                    details: format!(
                        "{what} race on shared offset {addr:#x} in barrier segment \
                         {seg}: threads {w} and {lane2}"
                    ),
                });
            }
        }
    }
}

/// Collect this block's global-memory footprint (merged intervals per
/// access kind) into the grid accumulator for the cross-block sweep.
pub(crate) fn collect_global(traces: &[Vec<Op>], block: u32, gaccess: &mut GridAccess) {
    let mut reads: Vec<(u64, u64)> = Vec::new();
    let mut writes: Vec<(u64, u64)> = Vec::new();
    let mut atomics: Vec<(u64, u64)> = Vec::new();
    for t in traces {
        for op in t {
            match *op {
                Op::GlobalRead { addr, size } => reads.push((addr, addr + u64::from(size))),
                Op::GlobalWrite { addr, size } => writes.push((addr, addr + u64::from(size))),
                // Atomics carry no size; the minimum 4-byte word still
                // overlaps any access to the same element.
                Op::AtomicGlobal { addr } => atomics.push((addr, addr + 4)),
                _ => {}
            }
        }
    }
    merge_intervals(&mut reads);
    merge_intervals(&mut writes);
    merge_intervals(&mut atomics);
    gaccess
        .reads
        .extend(reads.into_iter().map(|(a, b)| (a, b, block)));
    gaccess
        .writes
        .extend(writes.into_iter().map(|(a, b)| (a, b, block)));
    gaccess
        .atomics
        .extend(atomics.into_iter().map(|(a, b)| (a, b, block)));
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Read,
    Write,
    Atomic,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Read => "read",
            Kind::Write => "write",
            Kind::Atomic => "atomic",
        }
    }
}

/// Cap of reported cross-block conflicts per grid.
const MAX_GLOBAL_PER_GRID: usize = 8;

/// Sweep the grid's merged intervals for cross-block conflicts: two blocks
/// overlap, at least one side a non-atomic write. Read/atomic and
/// atomic/atomic pairs are the sanctioned communication idioms and pass.
pub(crate) fn sweep_global(st: &mut CheckState, kernel: &str, grid: usize, gaccess: &GridAccess) {
    let mut events: Vec<(u64, u64, u32, Kind)> =
        Vec::with_capacity(gaccess.reads.len() + gaccess.writes.len() + gaccess.atomics.len());
    events.extend(
        gaccess
            .reads
            .iter()
            .map(|&(a, b, blk)| (a, b, blk, Kind::Read)),
    );
    events.extend(
        gaccess
            .writes
            .iter()
            .map(|&(a, b, blk)| (a, b, blk, Kind::Write)),
    );
    events.extend(
        gaccess
            .atomics
            .iter()
            .map(|&(a, b, blk)| (a, b, blk, Kind::Atomic)),
    );
    events.sort_unstable_by_key(|&(a, b, blk, _)| (a, b, blk));

    let mut active: Vec<usize> = Vec::new();
    let mut reported_pairs: std::collections::BTreeSet<(u32, u32)> =
        std::collections::BTreeSet::new();
    for (i, &(start, end, blk, kind)) in events.iter().enumerate() {
        active.retain(|&j| events[j].1 > start);
        for &j in &active {
            let (astart, aend, ablk, akind) = events[j];
            if ablk == blk || (akind != Kind::Write && kind != Kind::Write) {
                continue;
            }
            let pair = (ablk.min(blk), ablk.max(blk));
            if !reported_pairs.insert(pair) {
                continue;
            }
            let lo = start.max(astart);
            let hi = end.min(aend);
            st.record(Hazard {
                kind: HazardKind::GlobalRace,
                kernel: kernel.to_string(),
                grid,
                block: blk,
                details: format!(
                    "{}-{} conflict on global range [{lo:#x}, {hi:#x}) between \
                     blocks {ablk} and {blk}",
                    akind.label(),
                    kind.label()
                ),
            });
            if reported_pairs.len() >= MAX_GLOBAL_PER_GRID {
                return;
            }
        }
        active.push(i);
    }
}
