//! Memory-bounds checks: shared-memory accesses against the block's
//! declared shared size, and device-side launch configuration validation.

use super::{CheckState, Hazard, HazardKind};
use crate::kernel::LaunchConfig;
use crate::trace::Op;

/// Flag shared-memory traffic beyond the launch's declared
/// `shared_mem_bytes`. On hardware this silently corrupts a neighbouring
/// block's shared space (or faults); the simulator's timing model does not
/// care, which is exactly why kernels under-declaring their shared usage
/// also report impossible occupancy. One diagnostic per block — the first
/// offending access — keeps a systematically wrong kernel readable.
pub(crate) fn scan_shared_bounds(
    st: &mut CheckState,
    traces: &[Vec<Op>],
    kernel: &str,
    grid: usize,
    block: u32,
    cfg: &LaunchConfig,
) {
    let limit = u64::from(cfg.shared_mem_bytes);
    for (lane, t) in traces.iter().enumerate() {
        for op in t {
            let addr = match *op {
                Op::SharedRead { addr } | Op::SharedWrite { addr } | Op::AtomicShared { addr } => {
                    addr
                }
                _ => continue,
            };
            // Every shared access models one 4-byte word.
            if u64::from(addr) + 4 > limit {
                st.record(Hazard {
                    kind: HazardKind::SharedOutOfBounds,
                    kernel: kernel.to_string(),
                    grid,
                    block,
                    details: format!(
                        "thread {lane} accessed shared offset {addr:#x} (word end \
                         {:#x}) but the launch declared {limit} byte(s) of shared \
                         memory",
                        u64::from(addr) + 4
                    ),
                });
                return;
            }
        }
    }
}

/// Describe a rejected device-side launch for the diagnostic record.
pub(crate) fn invalid_child_launch(
    kernel: &str,
    grid: usize,
    block: u32,
    thread: u32,
    cfg: &LaunchConfig,
    err: &crate::error::SimError,
) -> Hazard {
    Hazard {
        kind: HazardKind::InvalidChildLaunch,
        kernel: kernel.to_string(),
        grid,
        block,
        details: format!(
            "thread {thread} launched a child grid with grid_dim {} block_dim {} \
             shared {}: {err}",
            cfg.grid_dim, cfg.block_dim, cfg.shared_mem_bytes
        ),
    }
}
