//! npar-check — a trace-based race/hazard sanitizer for simulated kernels.
//!
//! The simulator executes kernels functionally (thread by thread, in order)
//! while recording per-thread [`Op`] traces for timing. That sequential
//! execution order hides exactly the class of bugs that corrupt results on
//! real hardware: data races between concurrent threads, divergent
//! barriers, out-of-bounds shared-memory traffic and misused dynamic
//! parallelism. This module replays the same traces the timing model
//! consumes and reports those hazards as structured diagnostics instead of
//! silent corruption or panics, in the spirit of `cuda-memcheck`'s
//! `racecheck`/`synccheck`/`memcheck` tools:
//!
//! * [`racecheck`] — shared-memory write/write and read/write conflicts
//!   between threads of a block within one barrier segment, and cross-block
//!   conflicts on overlapping global-memory ranges where at least one
//!   access is a non-atomic write;
//! * [`synccheck`] — divergent `__syncthreads` (barriers not issued
//!   uniformly by every thread of a block, or mismatched barrier kinds),
//!   plus a lint for fire-and-forget child launches whose results the
//!   parent grid reads without an intervening join;
//! * [`memcheck`] — shared-memory accesses beyond the block's declared
//!   shared size and invalid device-side launch configurations.
//!
//! The checker's severity is the [`CheckLevel`] on
//! [`crate::config::DeviceConfig`]: `Off` skips everything except
//! structural faults (divergent barriers and invalid device launches, which
//! previously panicked and now surface as [`crate::SimError::Hazard`]);
//! `Warn` records every hazard and keeps going, surfacing counts in
//! [`crate::profiler::Report::hazards`]; `Strict` fails the launch.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::kernel::LaunchConfig;
use crate::trace::Op;

pub(crate) mod memcheck;
pub(crate) mod racecheck;
pub(crate) mod synccheck;

/// How aggressively the hazard checker runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CheckLevel {
    /// No hazard analysis. Structural faults (divergent barriers, invalid
    /// device-side launches) still surface as errors — they previously
    /// crashed the simulator and have no meaningful "ignore" semantics.
    #[default]
    Off,
    /// Record every hazard and continue; counts appear in
    /// [`crate::profiler::Report::hazards`] and the full report can be
    /// drained with [`crate::Gpu::take_check_report`].
    Warn,
    /// Any hazard fails the launch with [`crate::SimError::Hazard`]. The
    /// kernel's *functional* effects have already been applied by then (the
    /// simulator executes before it analyzes), so state may be mid-update —
    /// like an abort after the corrupting run, not a prevented one.
    Strict,
}

/// The kind of a detected hazard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HazardKind {
    /// Two threads of one block touched the same shared-memory word within
    /// one barrier segment, at least one non-atomically writing.
    SharedRace,
    /// Two blocks of one grid touched overlapping global-memory ranges, at
    /// least one access a non-atomic write.
    GlobalRace,
    /// Threads of a block disagreed on their barrier sequence.
    DivergentBarrier,
    /// A block read global memory written by a child grid it launched but
    /// never joined.
    UnjoinedChildRead,
    /// A shared-memory access beyond the block's declared shared size.
    SharedOutOfBounds,
    /// A device-side launch configuration the device cannot accept.
    InvalidChildLaunch,
}

impl HazardKind {
    /// Every hazard kind, in a fixed order (used by npar-analyze to
    /// tabulate per-kind counts).
    pub const ALL: [HazardKind; 6] = [
        HazardKind::SharedRace,
        HazardKind::GlobalRace,
        HazardKind::DivergentBarrier,
        HazardKind::UnjoinedChildRead,
        HazardKind::SharedOutOfBounds,
        HazardKind::InvalidChildLaunch,
    ];
}

impl fmt::Display for HazardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HazardKind::SharedRace => "shared-race",
            HazardKind::GlobalRace => "global-race",
            HazardKind::DivergentBarrier => "divergent-barrier",
            HazardKind::UnjoinedChildRead => "unjoined-child-read",
            HazardKind::SharedOutOfBounds => "shared-out-of-bounds",
            HazardKind::InvalidChildLaunch => "invalid-child-launch",
        })
    }
}

/// One located diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hazard {
    /// What went wrong.
    pub kind: HazardKind,
    /// Kernel name the offending block was running.
    pub kernel: String,
    /// Grid id within the batch.
    pub grid: usize,
    /// Block index within the grid.
    pub block: u32,
    /// Human-readable specifics: addresses, lanes, segments.
    pub details: String,
}

impl fmt::Display for Hazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] kernel `{}` grid {} block {}: {}",
            self.kind, self.kernel, self.grid, self.block, self.details
        )
    }
}

/// Everything the checker found in one batch.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckReport {
    /// Recorded diagnostics, in detection order (capped; see `suppressed`).
    pub hazards: Vec<Hazard>,
    /// Hazards beyond the recording cap, counted but not stored.
    pub suppressed: u64,
    /// Blocks the checker fully scanned in this batch — what "clean"
    /// actually covered.
    pub scanned: u64,
    /// Blocks whose per-block scans npar-analyze statically elided (their
    /// global intervals still fed the cross-block sweep; see
    /// [`crate::analyze`]). `scanned + elided` is every block that ran
    /// with checking enabled.
    pub elided: u64,
}

impl CheckReport {
    /// Whether anything was detected.
    pub fn is_empty(&self) -> bool {
        self.hazards.is_empty() && self.suppressed == 0
    }

    /// Total detections including suppressed ones.
    pub fn len(&self) -> u64 {
        self.hazards.len() as u64 + self.suppressed
    }

    /// Hazards of one kind.
    pub fn of_kind(&self, kind: HazardKind) -> impl Iterator<Item = &Hazard> {
        self.hazards.iter().filter(move |h| h.kind == kind)
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} hazard(s) detected:", self.len())?;
        for h in &self.hazards {
            writeln!(f, "  {h}")?;
        }
        if self.suppressed > 0 {
            writeln!(f, "  ... and {} more (suppressed)", self.suppressed)?;
        }
        if self.scanned + self.elided > 0 {
            writeln!(
                f,
                "  ({} block(s) scanned, {} statically elided)",
                self.scanned, self.elided
            )?;
        }
        Ok(())
    }
}

/// Recording cap: beyond this many stored hazards per batch the checker
/// only counts (one broken kernel otherwise floods the report).
const MAX_HAZARDS: usize = 64;

/// A fire-and-forget launch lint pending resolution: the block read these
/// global ranges while `children` were launched but not yet joined. The
/// lint fires only if one of those children (or its descendants) actually
/// wrote an overlapping range non-atomically.
struct PendingLint {
    kernel: String,
    grid: usize,
    block: u32,
    /// Merged, sorted read intervals `[start, end)`.
    reads: Vec<(u64, u64)>,
    /// Unjoined child grid ids in scope at the offending reads.
    children: Vec<usize>,
}

/// Checker state carried by the engine across a batch.
#[derive(Default)]
pub(crate) struct CheckState {
    pub level: CheckLevel,
    hazards: Vec<Hazard>,
    suppressed: u64,
    /// A structural fault was recorded (fatal at every level).
    fatal: bool,
    /// Per-grid merged union of non-atomic global write intervals, for
    /// resolving unjoined-child-read lints.
    grid_writes: BTreeMap<usize, Vec<(u64, u64)>>,
    lints: Vec<PendingLint>,
    /// Detections already counted by an earlier synchronize's report (they
    /// stay pending until drained, but must not be counted twice).
    reported: u64,
    /// Blocks fully scanned since the last drain (levels above `Off`).
    scanned_blocks: u64,
    /// Blocks whose scans npar-analyze elided since the last drain.
    elided_blocks: u64,
}

impl CheckState {
    pub(crate) fn new(level: CheckLevel) -> Self {
        CheckState {
            level,
            ..Default::default()
        }
    }

    /// Record a hazard, respecting the storage cap.
    pub(crate) fn record(&mut self, hazard: Hazard) {
        if self.hazards.len() < MAX_HAZARDS {
            self.hazards.push(hazard);
        } else {
            self.suppressed += 1;
        }
    }

    /// Record a structural fault — an error at every check level.
    pub(crate) fn record_fatal(&mut self, hazard: Hazard) {
        self.fatal = true;
        self.record(hazard);
    }

    pub(crate) fn has_hazards(&self) -> bool {
        !self.hazards.is_empty() || self.suppressed > 0
    }

    pub(crate) fn is_fatal(&self) -> bool {
        self.fatal
    }

    /// Total detections currently pending.
    pub(crate) fn pending_count(&self) -> u64 {
        self.hazards.len() as u64 + self.suppressed
    }

    /// Detections not yet counted by a synchronize.
    pub(crate) fn batch_count(&self) -> u64 {
        self.pending_count() - self.reported
    }

    /// Drain the pending diagnostics into a report.
    pub(crate) fn take_report(&mut self) -> CheckReport {
        self.fatal = false;
        self.reported = 0;
        CheckReport {
            hazards: std::mem::take(&mut self.hazards),
            suppressed: std::mem::take(&mut self.suppressed),
            scanned: std::mem::take(&mut self.scanned_blocks),
            elided: std::mem::take(&mut self.elided_blocks),
        }
    }

    /// Watermark into the hazard storage: `(stored, suppressed)`.
    /// npar-analyze snapshots this at grid start to attribute later
    /// detections.
    pub(crate) fn hazard_mark(&self) -> (usize, u64) {
        (self.hazards.len(), self.suppressed)
    }

    /// Hazards stored since a [`Self::hazard_mark`] snapshot.
    pub(crate) fn hazards_since(&self, mark: (usize, u64)) -> &[Hazard] {
        &self.hazards[mark.0.min(self.hazards.len())..]
    }

    /// Suppressed (stored-nowhere) detections since a snapshot — these
    /// cannot be attributed to a kernel, so npar-analyze treats any growth
    /// as disqualifying.
    pub(crate) fn suppressed_since(&self, mark: (usize, u64)) -> u64 {
        self.suppressed.saturating_sub(mark.1)
    }

    /// Splice a worker-local state into this one, in canonical order.
    ///
    /// The parallel executor gives each concurrently processed block a
    /// fresh `CheckState` (same level) and absorbs them back in block
    /// order. Hazards replay through [`CheckState::record`], so the global
    /// storage cap and suppression counting behave exactly as if every
    /// hazard had been recorded serially: a worker-local state stores at
    /// least as many hazards as the serial path would still have accepted
    /// from that block, so the first `MAX_HAZARDS` survivors are identical.
    pub(crate) fn absorb(&mut self, other: CheckState) {
        debug_assert_eq!(self.level, other.level);
        debug_assert!(
            other.grid_writes.is_empty(),
            "grid write unions are published by finish_grid on the main thread"
        );
        for h in other.hazards {
            self.record(h);
        }
        self.suppressed += other.suppressed;
        self.fatal |= other.fatal;
        self.lints.extend(other.lints);
        self.scanned_blocks += other.scanned_blocks;
        self.elided_blocks += other.elided_blocks;
    }

    /// Forget batch-scoped bookkeeping (grid ids restart at zero after a
    /// synchronize, so stale write maps and lints must not leak across).
    /// Recorded diagnostics stay pending — [`crate::Gpu::take_check_report`]
    /// after a synchronize must still return them — but are marked as
    /// counted so the next report does not count them again.
    pub(crate) fn reset_batch(&mut self) {
        self.fatal = false;
        self.grid_writes.clear();
        self.lints.clear();
        self.reported = self.pending_count();
    }
}

/// Per-grid accumulator of global-memory access intervals, one entry set
/// per block. Lives on the stack of the grid executor: nested grids that
/// execute mid-block (a parent joining children) use their own accumulator.
#[derive(Default)]
pub(crate) struct GridAccess {
    /// `(start, end, block)` merged read intervals.
    reads: Vec<(u64, u64, u32)>,
    /// `(start, end, block)` merged non-atomic write intervals.
    writes: Vec<(u64, u64, u32)>,
    /// `(start, end, block)` merged atomic intervals.
    atomics: Vec<(u64, u64, u32)>,
}

impl GridAccess {
    /// Splice a worker-local per-block accumulator into this one. Called in
    /// block order by the parallel executor, reproducing exactly the
    /// interval sequence the serial per-block [`scan_block`] calls build.
    pub(crate) fn absorb(&mut self, other: GridAccess) {
        self.reads.extend(other.reads);
        self.writes.extend(other.writes);
        self.atomics.extend(other.atomics);
    }
}

/// Analyze one block's traces right after functional execution and before
/// timing finalization. Always verifies barrier uniformity (sanitizing the
/// traces on divergence so the timing path never sees mismatched
/// barriers); the race/bounds/lint passes run only when checking is on.
///
/// Runs strictly before any memoization-cache lookup, so Warn/Strict
/// results are identical with memoization on. Returns `true` when the
/// traces were rewritten by divergent-barrier sanitization — the caller
/// must then skip the cache, whose fingerprints describe the original
/// traces.
pub(crate) fn scan_block(
    st: &mut CheckState,
    traces: &mut [Vec<Op>],
    kernel: &str,
    grid: usize,
    block: u32,
    cfg: &LaunchConfig,
    gaccess: &mut GridAccess,
) -> bool {
    if st.level != CheckLevel::Off {
        st.scanned_blocks += 1;
    }
    if let Some(details) = synccheck::barrier_divergence(traces) {
        st.record_fatal(Hazard {
            kind: HazardKind::DivergentBarrier,
            kernel: kernel.to_string(),
            grid,
            block,
            details,
        });
        synccheck::sanitize_divergent(traces);
        return true;
    }
    if st.level == CheckLevel::Off {
        return false;
    }
    memcheck::scan_shared_bounds(st, traces, kernel, grid, block, cfg);
    let (nsegs, ranges, delims) = segment_ranges(traces);
    racecheck::scan_shared_races(st, traces, &ranges, nsegs, kernel, grid, block);
    racecheck::collect_global(traces, block, gaccess);
    synccheck::scan_unjoined_reads(st, traces, &ranges, &delims, nsegs, kernel, grid, block);
    false
}

/// The statically-elided counterpart of [`scan_block`]: npar-analyze has
/// proven (by fingerprint identity with a promoted probe block) that the
/// per-block barrier/bounds/shared-race scans would pass, so only the work
/// feeding *cross-block* analyses remains — collecting the block's global
/// intervals for [`finish_grid`]'s sweep, which is never elided. Launch-
/// bearing blocks never reach this path, so no lint can be missed either.
pub(crate) fn scan_block_elided(
    st: &mut CheckState,
    traces: &[Vec<Op>],
    block: u32,
    gaccess: &mut GridAccess,
) {
    debug_assert!(st.level != CheckLevel::Off);
    st.elided_blocks += 1;
    racecheck::collect_global(traces, block, gaccess);
}

/// Cross-block analysis once every block of a grid has executed: sweep the
/// collected global intervals for conflicts and publish the grid's write
/// union for lint resolution.
pub(crate) fn finish_grid(st: &mut CheckState, kernel: &str, grid: usize, gaccess: GridAccess) {
    if st.level == CheckLevel::Off {
        return;
    }
    racecheck::sweep_global(st, kernel, grid, &gaccess);
    let mut writes: Vec<(u64, u64)> = gaccess.writes.iter().map(|&(a, b, _)| (a, b)).collect();
    merge_intervals(&mut writes);
    if !writes.is_empty() {
        st.grid_writes.insert(grid, writes);
    }
}

/// Resolve pending unjoined-child-read lints against what the child grids
/// (and their descendants) actually wrote. Called once all functional
/// execution of a host launch has completed.
pub(crate) fn resolve_lints(engine: &mut crate::engine::Engine) {
    let crate::engine::Engine { grids, check, .. } = engine;
    if check.level == CheckLevel::Off {
        return;
    }
    for lint in std::mem::take(&mut check.lints) {
        // The unjoined children's writes include their whole subtrees: a
        // grandchild's store is just as unordered with the parent's read.
        let mut queue: Vec<usize> = lint.children.clone();
        let mut seen = std::collections::BTreeSet::new();
        let mut offending = None;
        while let Some(g) = queue.pop() {
            if !seen.insert(g) {
                continue;
            }
            if let Some(child) = grids.get(g) {
                queue.extend(child.children.iter().copied());
            }
            if let Some(writes) = check.grid_writes.get(&g) {
                if let Some(overlap) = first_overlap(&lint.reads, writes) {
                    offending = Some((g, overlap));
                    break;
                }
            }
        }
        if let Some((g, (a, b))) = offending {
            check.record(Hazard {
                kind: HazardKind::UnjoinedChildRead,
                kernel: lint.kernel,
                grid: lint.grid,
                block: lint.block,
                details: format!(
                    "read of global range [{a:#x}, {b:#x}) races with unjoined \
                     child grid {g}'s writes (no sync_children before the read)"
                ),
            });
        }
    }
}

/// Segment the (barrier-uniform) traces: returns the segment count, the
/// lane-major `(start, end)` op ranges (`lane * nsegs + seg`), and the
/// delimiter sequence (one entry between consecutive segments).
fn segment_ranges(traces: &[Vec<Op>]) -> (usize, Vec<(u32, u32)>, Vec<Op>) {
    let delims: Vec<Op> = traces[0]
        .iter()
        .copied()
        .filter(|o| o.is_delimiter())
        .collect();
    let nsegs = delims.len() + 1;
    let mut ranges = Vec::with_capacity(traces.len() * nsegs);
    for t in traces {
        let mut start = 0u32;
        for (i, op) in t.iter().enumerate() {
            if op.is_delimiter() {
                ranges.push((start, i as u32));
                start = i as u32 + 1;
            }
        }
        ranges.push((start, t.len() as u32));
    }
    (nsegs, ranges, delims)
}

/// Sort and coalesce a set of `[start, end)` intervals in place.
pub(crate) fn merge_intervals(v: &mut Vec<(u64, u64)>) {
    v.sort_unstable();
    let mut out = 0;
    for i in 0..v.len() {
        if out > 0 && v[i].0 <= v[out - 1].1 {
            v[out - 1].1 = v[out - 1].1.max(v[i].1);
        } else {
            v[out] = v[i];
            out += 1;
        }
    }
    v.truncate(out);
}

/// First overlapping region between two sorted, merged interval lists.
fn first_overlap(a: &[(u64, u64)], b: &[(u64, u64)]) -> Option<(u64, u64)> {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo < hi {
            return Some((lo, hi));
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_intervals_coalesces() {
        let mut v = vec![(10, 20), (0, 5), (19, 30), (40, 41)];
        merge_intervals(&mut v);
        assert_eq!(v, vec![(0, 5), (10, 30), (40, 41)]);
    }

    #[test]
    fn overlap_detection() {
        assert_eq!(first_overlap(&[(0, 4), (8, 12)], &[(4, 8)]), None);
        assert_eq!(
            first_overlap(&[(0, 4), (8, 12)], &[(10, 11)]),
            Some((10, 11))
        );
        assert_eq!(first_overlap(&[], &[(0, 100)]), None);
    }

    #[test]
    fn report_caps_and_counts() {
        let mut st = CheckState::new(CheckLevel::Warn);
        for i in 0..(MAX_HAZARDS + 3) {
            st.record(Hazard {
                kind: HazardKind::SharedRace,
                kernel: "k".into(),
                grid: 0,
                block: i as u32,
                details: String::new(),
            });
        }
        assert_eq!(st.pending_count(), MAX_HAZARDS as u64 + 3);
        let r = st.take_report();
        assert_eq!(r.hazards.len(), MAX_HAZARDS);
        assert_eq!(r.suppressed, 3);
        assert_eq!(r.len(), MAX_HAZARDS as u64 + 3);
        assert!(!st.has_hazards());
    }

    fn cfg(block: u32, shared: u32) -> LaunchConfig {
        LaunchConfig::with_shared(1, block, shared)
    }

    fn scan(level: CheckLevel, traces: &mut [Vec<Op>], shared: u32) -> (CheckState, GridAccess) {
        let mut st = CheckState::new(level);
        let mut ga = GridAccess::default();
        scan_block(
            &mut st,
            traces,
            "k",
            0,
            0,
            &cfg(traces.len() as u32, shared),
            &mut ga,
        );
        (st, ga)
    }

    fn kinds(st: &CheckState) -> Vec<HazardKind> {
        st.hazards.iter().map(|h| h.kind).collect()
    }

    #[test]
    fn divergent_barrier_is_fatal_and_sanitizes() {
        // Lane 1 skips the barrier lane 0 issued.
        let mut traces = vec![
            vec![Op::Compute(1), Op::Sync, Op::Compute(1)],
            vec![Op::Compute(1), Op::Compute(1)],
        ];
        let (st, _) = scan(CheckLevel::Off, &mut traces, 0);
        assert!(st.is_fatal());
        assert_eq!(kinds(&st), vec![HazardKind::DivergentBarrier]);
        assert!(st.hazards[0].details.contains("thread 1"));
        // Sanitized: every lane truncated at its first barrier, so the
        // timing path sees a single uniform (barrier-free) segment.
        assert!(traces.iter().all(|t| !t.iter().any(|o| o.is_delimiter())));
    }

    #[test]
    fn mismatched_barrier_kinds_diverge() {
        let mut traces = vec![vec![Op::Sync], vec![Op::SyncChildren]];
        let (st, _) = scan(CheckLevel::Off, &mut traces, 0);
        assert_eq!(kinds(&st), vec![HazardKind::DivergentBarrier]);
    }

    #[test]
    fn shared_write_write_race_detected() {
        let mut traces = vec![
            vec![Op::SharedWrite { addr: 8 }],
            vec![Op::SharedWrite { addr: 8 }],
        ];
        let (st, _) = scan(CheckLevel::Warn, &mut traces, 64);
        assert_eq!(kinds(&st), vec![HazardKind::SharedRace]);
        assert!(!st.is_fatal(), "races are not structural faults");
        assert!(st.hazards[0].details.contains("0x8"));
    }

    #[test]
    fn barrier_separated_shared_accesses_do_not_race() {
        // Same address, but the write and the read sit in different
        // barrier segments: ordered, not a race.
        let mut traces = vec![
            vec![Op::SharedWrite { addr: 0 }, Op::Sync],
            vec![Op::Sync, Op::SharedRead { addr: 0 }],
        ];
        let (st, _) = scan(CheckLevel::Warn, &mut traces, 64);
        assert!(!st.has_hazards());
    }

    #[test]
    fn shared_atomics_and_private_slots_pass() {
        // Lane-private slots plus atomic/atomic contention on a shared
        // counter: both sanctioned.
        let mut traces = vec![
            vec![
                Op::SharedWrite { addr: 0 },
                Op::SharedRead { addr: 0 },
                Op::AtomicShared { addr: 32 },
            ],
            vec![
                Op::SharedWrite { addr: 4 },
                Op::SharedRead { addr: 4 },
                Op::AtomicShared { addr: 32 },
            ],
        ];
        let (st, _) = scan(CheckLevel::Warn, &mut traces, 64);
        assert!(!st.has_hazards());
    }

    #[test]
    fn atomic_against_plain_write_races() {
        let mut traces = vec![
            vec![Op::AtomicShared { addr: 16 }],
            vec![Op::SharedWrite { addr: 16 }],
        ];
        let (st, _) = scan(CheckLevel::Warn, &mut traces, 64);
        assert_eq!(kinds(&st), vec![HazardKind::SharedRace]);
    }

    #[test]
    fn shared_out_of_bounds_detected() {
        // Word at offset 60 fits a 64-byte declaration; offset 64 does not.
        let mut ok = vec![vec![Op::SharedWrite { addr: 60 }]];
        let (st, _) = scan(CheckLevel::Warn, &mut ok, 64);
        assert!(!st.has_hazards());

        let mut bad = vec![vec![Op::SharedRead { addr: 64 }]];
        let (st, _) = scan(CheckLevel::Warn, &mut bad, 64);
        assert_eq!(kinds(&st), vec![HazardKind::SharedOutOfBounds]);
        assert!(st.hazards[0].details.contains("64 byte(s)"));
    }

    #[test]
    fn cross_block_write_conflict_detected() {
        let mut st = CheckState::new(CheckLevel::Warn);
        let mut ga = GridAccess::default();
        let c = cfg(1, 0);
        let mut b0 = vec![vec![Op::GlobalWrite { addr: 0, size: 4 }]];
        let mut b1 = vec![vec![Op::GlobalWrite { addr: 0, size: 4 }]];
        scan_block(&mut st, &mut b0, "k", 0, 0, &c, &mut ga);
        scan_block(&mut st, &mut b1, "k", 0, 1, &c, &mut ga);
        finish_grid(&mut st, "k", 0, ga);
        assert_eq!(kinds(&st), vec![HazardKind::GlobalRace]);
        assert!(st.hazards[0].details.contains("blocks 0 and 1"));
        // The grid's write union is published for lint resolution.
        assert_eq!(st.grid_writes.get(&0), Some(&vec![(0, 4)]));
    }

    #[test]
    fn cross_block_read_atomic_pairs_pass() {
        let mut st = CheckState::new(CheckLevel::Warn);
        let mut ga = GridAccess::default();
        let c = cfg(1, 0);
        let mut b0 = vec![vec![
            Op::GlobalRead { addr: 0, size: 4 },
            Op::AtomicGlobal { addr: 0 },
        ]];
        let mut b1 = vec![vec![
            Op::GlobalRead { addr: 0, size: 4 },
            Op::AtomicGlobal { addr: 0 },
        ]];
        scan_block(&mut st, &mut b0, "k", 0, 0, &c, &mut ga);
        scan_block(&mut st, &mut b1, "k", 0, 1, &c, &mut ga);
        finish_grid(&mut st, "k", 0, ga);
        assert!(!st.has_hazards());
    }

    #[test]
    fn disjoint_cross_block_writes_pass() {
        let mut st = CheckState::new(CheckLevel::Warn);
        let mut ga = GridAccess::default();
        let c = cfg(1, 0);
        let mut b0 = vec![vec![Op::GlobalWrite { addr: 0, size: 4 }]];
        let mut b1 = vec![vec![Op::GlobalWrite { addr: 4, size: 4 }]];
        scan_block(&mut st, &mut b0, "k", 0, 0, &c, &mut ga);
        scan_block(&mut st, &mut b1, "k", 0, 1, &c, &mut ga);
        finish_grid(&mut st, "k", 0, ga);
        assert!(!st.has_hazards());
    }

    #[test]
    fn unjoined_read_lint_recorded_and_cleared_by_join() {
        // Read after a fire-and-forget launch (plain Sync between them
        // does NOT join the child): lint pending against child grid 3.
        let mut fire_and_forget = vec![
            vec![
                Op::Launch { grid: 3 },
                Op::Sync,
                Op::GlobalRead { addr: 8, size: 4 },
            ],
            vec![Op::Sync],
        ];
        let (st, _) = scan(CheckLevel::Warn, &mut fire_and_forget, 0);
        assert_eq!(st.lints.len(), 1);
        assert_eq!(st.lints[0].children, vec![3]);
        assert_eq!(st.lints[0].reads, vec![(8, 12)]);

        // The same shape with SyncChildren joins the child first: clean.
        let mut joined = vec![
            vec![
                Op::Launch { grid: 3 },
                Op::SyncChildren,
                Op::GlobalRead { addr: 8, size: 4 },
            ],
            vec![Op::SyncChildren],
        ];
        let (st, _) = scan(CheckLevel::Warn, &mut joined, 0);
        assert!(st.lints.is_empty());
    }

    #[test]
    fn diagnostics_survive_a_batch_reset_but_count_once() {
        let h = |block| Hazard {
            kind: HazardKind::SharedRace,
            kernel: "k".into(),
            grid: 0,
            block,
            details: String::new(),
        };
        let mut st = CheckState::new(CheckLevel::Warn);
        st.record(h(0));
        assert_eq!(st.batch_count(), 1);
        st.reset_batch();
        // Still drainable, but already counted.
        assert_eq!(st.batch_count(), 0);
        st.record(h(1));
        assert_eq!(st.batch_count(), 1);
        let r = st.take_report();
        assert_eq!(r.len(), 2);
        assert_eq!(st.batch_count(), 0);
    }

    #[test]
    fn off_level_skips_races_but_not_structure() {
        let mut racy = vec![
            vec![Op::SharedWrite { addr: 0 }],
            vec![Op::SharedWrite { addr: 0 }],
        ];
        let (st, _) = scan(CheckLevel::Off, &mut racy, 64);
        assert!(!st.has_hazards(), "Off must not analyze races");
    }

    #[test]
    fn display_formats() {
        let h = Hazard {
            kind: HazardKind::GlobalRace,
            kernel: "spmv".into(),
            grid: 2,
            block: 7,
            details: "blocks 0 and 1 overlap".into(),
        };
        let s = h.to_string();
        assert!(s.contains("global-race") && s.contains("spmv") && s.contains("block 7"));
        let r = CheckReport {
            hazards: vec![h],
            suppressed: 2,
            scanned: 5,
            elided: 7,
        };
        assert!(r.to_string().contains("3 hazard(s)"));
        assert!(r.to_string().contains("suppressed"));
        assert!(r
            .to_string()
            .contains("5 block(s) scanned, 7 statically elided"));
    }
}
