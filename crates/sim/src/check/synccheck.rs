//! Barrier and dynamic-parallelism synchronization checks.

use super::{merge_intervals, CheckState, PendingLint};
use crate::trace::Op;

/// Compare every lane's barrier sequence against lane 0's. Returns a
/// located description of the first divergence, or `None` when uniform.
///
/// Divergent `__syncthreads` is undefined behaviour on hardware (typically
/// a hang); the simulator used to `assert!` here, which took the whole
/// process down. Now the caller records the diagnostic and sanitizes.
pub(crate) fn barrier_divergence(traces: &[Vec<Op>]) -> Option<String> {
    let reference: Vec<Op> = traces[0]
        .iter()
        .copied()
        .filter(|o| o.is_delimiter())
        .collect();
    for (lane, t) in traces.iter().enumerate().skip(1) {
        let mut mine = t.iter().copied().filter(|o| o.is_delimiter());
        for (pos, &want) in reference.iter().enumerate() {
            match mine.next() {
                Some(got) if got == want => {}
                Some(got) => {
                    return Some(format!(
                        "thread {lane} issued {got:?} at barrier #{pos} where \
                         thread 0 issued {want:?}"
                    ));
                }
                None => {
                    return Some(format!(
                        "thread {lane} issued {pos} barrier(s) but thread 0 \
                         issued {}",
                        reference.len()
                    ));
                }
            }
        }
        let extra = mine.count();
        if extra > 0 {
            return Some(format!(
                "thread {lane} issued {} barrier(s) but thread 0 issued {}",
                reference.len() + extra,
                reference.len()
            ));
        }
    }
    None
}

/// Make divergent traces safe for the timing path: truncate every lane at
/// its first barrier, leaving a single barrier-free segment. The block's
/// timing is then a best-effort prefix — acceptable for a block that is
/// already reported as structurally broken.
pub(crate) fn sanitize_divergent(traces: &mut [Vec<Op>]) {
    for t in traces.iter_mut() {
        if let Some(p) = t.iter().position(|o| o.is_delimiter()) {
            t.truncate(p);
        }
    }
}

/// Lint fire-and-forget dynamic parallelism: record the global reads a
/// block performs while it has launched children it never joined. A child
/// grid only runs at the parent's `sync_children` or after the parent grid
/// completes, so such reads can never observe the child's writes in the
/// order the programmer usually expects — if the child writes what the
/// parent read, that is flagged (resolution happens once the children have
/// executed; see [`super::resolve_lints`]).
///
/// Scope of "unjoined" at a given read: children launched by any lane in
/// an earlier barrier segment (a plain `Sync` does not join children —
/// only `SyncChildren` clears them), plus children the *same lane*
/// launched earlier in the current segment.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_unjoined_reads(
    st: &mut CheckState,
    traces: &[Vec<Op>],
    ranges: &[(u32, u32)],
    delims: &[Op],
    nsegs: usize,
    kernel: &str,
    grid: usize,
    block: u32,
) {
    let mut block_unjoined: Vec<usize> = Vec::new();
    let mut reads: Vec<(u64, u64)> = Vec::new();
    let mut children: Vec<usize> = Vec::new();
    for seg in 0..nsegs {
        let mut seg_launches: Vec<usize> = Vec::new();
        for (lane, t) in traces.iter().enumerate() {
            let (a, b) = ranges[lane * nsegs + seg];
            let mut own: Vec<usize> = Vec::new();
            for op in &t[a as usize..b as usize] {
                match *op {
                    Op::Launch { grid: child } => own.push(child as usize),
                    Op::GlobalRead { addr, size }
                        if !(block_unjoined.is_empty() && own.is_empty()) =>
                    {
                        reads.push((addr, addr + u64::from(size)));
                        children.extend(block_unjoined.iter().copied());
                        children.extend(own.iter().copied());
                    }
                    _ => {}
                }
            }
            seg_launches.extend(own);
        }
        // Crossing the segment's closing barrier: SyncChildren joins every
        // child launched so far; a plain Sync leaves them pending.
        block_unjoined.extend(seg_launches);
        if delims.get(seg) == Some(&Op::SyncChildren) {
            block_unjoined.clear();
        }
    }
    if !reads.is_empty() {
        merge_intervals(&mut reads);
        children.sort_unstable();
        children.dedup();
        st.lints.push(PendingLint {
            kernel: kernel.to_string(),
            grid,
            block,
            reads,
            children,
        });
    }
}
