//! Device and host configuration.
//!
//! The simulator is parameterized by a [`DeviceConfig`] describing the GPU's
//! hardware hierarchy (streaming multiprocessors, cores, warps, occupancy
//! limits) and a [`CpuConfig`] describing the host CPU used for serial
//! baselines. The defaults model the testbed of the ICPP'15 paper: an Nvidia
//! Tesla K20 (Kepler GK110) and an Intel Xeon E5-2620.

use serde::{Deserialize, Serialize};

use crate::check::CheckLevel;

/// Static description of the simulated GPU.
///
/// All limits are per the CUDA programming guide for the modeled compute
/// capability. The device scheduler enforces the per-SM
/// occupancy limits; the [`crate::occupancy`] module mirrors the CUDA
/// occupancy calculator over the same fields.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Human-readable device name, reported in [`crate::profiler::Report`].
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// CUDA cores per SM. `cores_per_sm / warp_size` is the per-cycle warp
    /// issue width used by the scheduler.
    pub cores_per_sm: u32,
    /// Threads per warp (32 on every CUDA device to date).
    pub warp_size: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: u32,
    /// Maximum shared memory per block in bytes.
    pub shared_mem_per_block: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Registers allocated per thread. CUDA kernels declare this at compile
    /// time; the paper's kernels have low register pressure, so the default
    /// is a modest 32.
    pub registers_per_thread: u32,
    /// Maximum number of blocks in the x-dimension of a grid.
    pub max_grid_dim: u32,
    /// Core clock in GHz; converts cycles to seconds.
    pub clock_ghz: f64,
    /// Global-memory transaction size in bytes (L1 cache line on Kepler).
    pub mem_transaction_bytes: u32,
    /// Number of shared-memory banks.
    pub shared_banks: u32,
    /// Size of the device runtime's fixed pending-launch pool. Nested
    /// launches beyond this backlog spill to the virtualized pool and pay
    /// [`crate::cost::CostModel::pool_overflow_factor`]
    /// (`cudaLimitDevRuntimePendingLaunchCount`, default 2048 on Kepler).
    pub pending_launch_limit: u32,
    /// Hazard-checker severity (see [`crate::check`]). `Off` by default —
    /// like running without `cuda-memcheck`.
    pub check: CheckLevel,
    /// Whether the simulator memoizes warp/block alignment by trace
    /// fingerprint (see [`crate::profiler::SimStats`] and DESIGN.md §8).
    /// Purely a host-side speedup: reports are bit-identical either way.
    /// On by default; `--no-memo` / [`crate::Gpu::with_memo`] disable it.
    pub memo: bool,
    /// Whether the timing pass takes the cohort-batching and
    /// homogeneous-grid fast-forward shortcuts (DESIGN.md §11). Like
    /// `memo`, a pure host-side speedup: reports and profiler timelines
    /// are bit-identical either way. On by default; `--fast-forward=off` /
    /// [`crate::Gpu::with_fast_forward`] disable it for ablation and
    /// differential testing.
    pub fast_forward: bool,
    /// Whether npar-check may elide per-block scans for kernels
    /// npar-analyze has statically proven clean (see [`crate::analyze`]
    /// and DESIGN.md §12). Elision only ever skips work the dynamic
    /// checker would have passed, so hazard reports are identical either
    /// way; `--no-elide` / [`crate::Gpu::with_elide`] disable it for
    /// differential testing and auditing. Has no effect while the checker
    /// is [`CheckLevel::Off`].
    pub elide: bool,
    /// Whether npar-analyze collects kernel analyses even when elision is
    /// inactive (e.g. with the checker off). Off by default; `--analyze` /
    /// [`crate::Gpu::with_analyze`] enable it. Elision implies analysis.
    pub analyze: bool,
    /// Worker lanes for the timing pass (DESIGN.md §13). At `1` (the
    /// default) the event loop runs serially; above `1` independent
    /// *timing domains* — connected components of the stream/launch
    /// coupling graph — are simulated on separate calendar queues and
    /// merged back in the exact serial event order, so reports and
    /// profiler timelines are bit-identical at any setting.
    /// `--timing-threads=N` / [`crate::Gpu::with_timing_threads`].
    pub timing_threads: usize,
    /// Whether the timing pass may finish a timing-uniform grid in closed
    /// form — occupancy-limited wave counts and completion times computed
    /// arithmetically instead of dispatching per-block events — when the
    /// analytic proof obligations hold (DESIGN.md §13). Bit-identical to
    /// event replay whenever it engages; falls back to the event path
    /// otherwise. Off by default; `--analytic` /
    /// [`crate::Gpu::with_analytic`] enable it.
    pub analytic: bool,
}

impl DeviceConfig {
    /// Nvidia Tesla K20 (GK110, compute capability 3.5) — the paper's GPU.
    pub fn kepler_k20() -> Self {
        DeviceConfig {
            name: "Tesla K20 (simulated)".to_string(),
            num_sms: 13,
            cores_per_sm: 192,
            warp_size: 32,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 16,
            max_warps_per_sm: 64,
            shared_mem_per_sm: 48 * 1024,
            shared_mem_per_block: 48 * 1024,
            max_threads_per_block: 1024,
            registers_per_sm: 65536,
            registers_per_thread: 32,
            max_grid_dim: 2_147_483_647,
            clock_ghz: 0.706,
            mem_transaction_bytes: 128,
            shared_banks: 32,
            pending_launch_limit: 2048,
            check: CheckLevel::Off,
            memo: true,
            fast_forward: true,
            elide: true,
            analyze: false,
            timing_threads: 1,
            analytic: false,
        }
    }

    /// Nvidia GTX Titan (GK110, 14 SMX at a higher clock) — a second
    /// Kepler part for cross-device checks of the template orderings.
    pub fn gtx_titan() -> Self {
        DeviceConfig {
            name: "GTX Titan (simulated)".to_string(),
            num_sms: 14,
            clock_ghz: 0.837,
            ..Self::kepler_k20()
        }
    }

    /// A deliberately tiny device useful in unit tests: 2 SMs, 64 cores
    /// each, room for 4 blocks / 256 threads per SM.
    pub fn tiny() -> Self {
        DeviceConfig {
            name: "tiny-test-device".to_string(),
            num_sms: 2,
            cores_per_sm: 64,
            warp_size: 32,
            max_threads_per_sm: 256,
            max_blocks_per_sm: 4,
            max_warps_per_sm: 8,
            shared_mem_per_sm: 16 * 1024,
            shared_mem_per_block: 16 * 1024,
            max_threads_per_block: 256,
            registers_per_sm: 32768,
            registers_per_thread: 32,
            max_grid_dim: 65535,
            clock_ghz: 1.0,
            mem_transaction_bytes: 128,
            shared_banks: 32,
            pending_launch_limit: 64,
            check: CheckLevel::Off,
            memo: true,
            fast_forward: true,
            elide: true,
            analyze: false,
            timing_threads: 1,
            analytic: false,
        }
    }

    /// Per-cycle warp issue width of one SM.
    pub fn issue_width(&self) -> f64 {
        f64::from(self.cores_per_sm) / f64::from(self.warp_size)
    }

    /// Convert a cycle count to seconds at the device clock.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9)
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::kepler_k20()
    }
}

/// Static description of the host CPU used for serial baselines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Human-readable name.
    pub name: String,
    /// Effective clock in GHz (sustained single-core, not boost peak).
    pub clock_ghz: f64,
}

impl CpuConfig {
    /// Intel Xeon E5-2620 (Sandy Bridge EP, 2.0 GHz base) — the paper's CPU.
    pub fn xeon_e5_2620() -> Self {
        CpuConfig {
            name: "Xeon E5-2620 (modeled)".to_string(),
            clock_ghz: 2.0,
        }
    }

    /// Convert a cycle count to seconds at the host clock.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e9)
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::xeon_e5_2620()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k20_matches_published_specs() {
        let d = DeviceConfig::kepler_k20();
        assert_eq!(d.num_sms, 13);
        assert_eq!(d.cores_per_sm, 192);
        assert_eq!(d.warp_size, 32);
        assert_eq!(d.max_warps_per_sm, 64);
        assert_eq!(d.max_threads_per_sm, 2048);
        assert!((d.issue_width() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_conversion_is_linear() {
        let d = DeviceConfig::kepler_k20();
        let one = d.cycles_to_seconds(d.clock_ghz * 1e9);
        assert!((one - 1.0).abs() < 1e-12);
        assert_eq!(d.cycles_to_seconds(0.0), 0.0);
    }

    #[test]
    fn tiny_device_is_consistent() {
        let d = DeviceConfig::tiny();
        assert!(d.max_warps_per_sm * d.warp_size <= d.max_threads_per_sm);
        assert!(d.issue_width() >= 1.0);
    }

    #[test]
    fn cpu_conversion() {
        let c = CpuConfig::xeon_e5_2620();
        assert!((c.cycles_to_seconds(2e9) - 1.0).abs() < 1e-12);
    }
}
