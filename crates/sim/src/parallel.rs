//! Parallel host execution: fan one grid's per-block pipeline (trace, scan,
//! align) out over a work-stealing thread pool, then merge in canonical
//! block order so the resulting [`crate::Report`] is byte-for-byte identical
//! to the serial engine at any thread count.
//!
//! The timing pass itself stays serial (it runs after the merge, at
//! synchronize time) — which is exactly why its fast paths exist
//! (DESIGN.md §11): because the merge is canonical, the [`GridTask`] batch
//! reaching the scheduler is identical at every thread count, so the
//! scheduler's cohort/fast-forward decisions — and their byte-identical
//! outputs — are thread-count-invariant by construction.
//!
//! # Determinism contract
//!
//! Everything observable — metrics (bit-identical `f64` sums), hazard
//! reports, lints, block outcomes, the timeline profiler's replay marks and
//! child-grid ids — is produced by a *merge* step that walks blocks in
//! `(grid, block)` order on the main thread. Workers only ever compute
//! block-local data (traces, per-block hazard state, per-block alignment
//! deltas); nothing global is mutated off the main thread. Two executor
//! shapes share that merge:
//!
//! - **Serially traced kernels** (the default): functional tracing and the
//!   hazard scan stay on the main thread, block by block, preserving the
//!   exact serial order of side effects (child-grid registration, hazard
//!   records, `sync_children` joins). Only the expensive part — warp
//!   alignment — is deferred into chunks of `threads * 8` blocks and fanned
//!   out. Deferred blocks are flushed before any joined child grid executes
//!   (see [`flush_chunks`]), so the memoization cache always holds exactly
//!   the content the serial engine would have at the same point.
//! - **[`crate::Kernel::parallel_trace`] kernels**: whole blocks (tracing
//!   included) run concurrently. Device launches are collected per block and
//!   registered afterwards in block order — the same grid-id sequence the
//!   serial engine assigns — with placeholder ids patched in the traces.
//!   Hazards recorded mid-trace land in per-block [`CheckState`]s that are
//!   absorbed, trace-state first then scan-state, per block in order: the
//!   exact serial interleave.
//!
//! # Memoization under concurrency
//!
//! The block/warp caches are consulted through a *decide* step on the main
//! thread that emulates the serial probe sequence: a per-grid pending-key
//! set stands in for entries that earlier blocks of the same flush window
//! will insert at merge time, including the serial path's cap bookkeeping.
//! Workers see a frozen cache snapshot plus a private overlay
//! ([`WorkerMemo`]); their inserts are published in block order at the
//! merge. Warp replay is bitwise identical to live alignment, so cache
//! *content* differences under cap pressure can only show up in hit/miss
//! statistics ([`crate::profiler::SimStats`]), never in metrics or timing.

use std::collections::VecDeque;
use std::hash::BuildHasherDefault;
use std::sync::Mutex;

use crate::block::{align_block, BlockOutcome, WarpMemoView};
use crate::check::{self, CheckState, GridAccess};
use crate::config::DeviceConfig;
use crate::cost::CostModel;
use crate::ctx::{BlockCtx, ParTrace, TraceHost};
use crate::engine::{register_grid, Engine, Origin};
use crate::kernel::{KernelRef, LaunchConfig};
use crate::memo::{
    block_key, BlockEntry, BlockFps, FastMap, IdentityHasher, MemoCache, WarpEntry, BLOCK_CAP,
    WARP_CAP,
};
use crate::profiler::KernelMetrics;
use crate::trace::Op;
use crate::warp::AlignScratch;

#[allow(clippy::disallowed_types)] // fixed hasher: membership-only, never iterated
type FastSet = std::collections::HashSet<u64, BuildHasherDefault<IdentityHasher>>;

/// Deferred blocks per pool lane before a flush (serially traced path). A
/// few blocks of headroom per lane keeps every worker busy without letting
/// the deferred buffers grow past a small multiple of the thread count.
const CHUNK_PER_LANE: usize = 8;

/// Recycled per-block buffers: the parallel counterpart of the engine's
/// single-owner `trace_pool`/`fp_pool`. Sharded per pool lane so workers
/// take and return without contending on one lock; empty shards steal.
#[derive(Default)]
pub(crate) struct BufPool {
    shards: Vec<Mutex<Vec<BlockBufs>>>,
}

/// One block's worth of recycled allocations.
pub(crate) struct BlockBufs {
    pub traces: Vec<Vec<Op>>,
    pub fps: BlockFps,
}

impl BufPool {
    pub fn ensure_lanes(&mut self, lanes: usize) {
        if self.shards.len() < lanes {
            self.shards.resize_with(lanes, Mutex::default);
        }
    }

    /// Pop a recycled buffer set, preferring `lane`'s own shard; allocate
    /// fresh only when every shard is empty (the steady state allocates
    /// nothing per block).
    pub fn take(&self, lane: usize) -> BlockBufs {
        let n = self.shards.len();
        for i in 0..n {
            let shard = &self.shards[(lane + i) % n];
            let popped = shard.lock().unwrap_or_else(|e| e.into_inner()).pop();
            if let Some(b) = popped {
                return b;
            }
        }
        BlockBufs {
            traces: Vec::new(),
            fps: BlockFps::default(),
        }
    }

    pub fn put(&self, lane: usize, bufs: BlockBufs) {
        if self.shards.is_empty() {
            return;
        }
        let shard = &self.shards[lane % self.shards.len()];
        shard.lock().unwrap_or_else(|e| e.into_inner()).push(bufs);
    }
}

/// How the merge step handles one block, fixed by the main-thread decide
/// pass (which emulates the serial cache-probe sequence exactly).
#[derive(Debug, Clone, Copy)]
enum Decision {
    /// Replay the block-cache entry under `key` (already in the cache, or
    /// published by an earlier block of the same flush window by the time
    /// this block merges).
    Replay { key: u64 },
    /// Align live. `bkey` carries the block-cache insert key when the block
    /// is cacheable and the (projected) cache had room; `memo_on` gates the
    /// worker's warp-cache view; `probe_miss` records that the serial path
    /// would have counted a block-cache miss here.
    Align {
        bkey: Option<u64>,
        memo_on: bool,
        probe_miss: bool,
    },
}

/// Warp-entry inserts and statistics a worker produced for one block,
/// published in canonical block order at the merge.
struct WorkerPublish {
    inserts: Vec<(u64, WarpEntry)>,
    warp_hits: u64,
    warp_misses: u64,
    ops_replayed: u64,
}

/// A worker's alignment output for one block.
struct Aligned {
    out: BlockOutcome,
    delta: KernelMetrics,
    publish: Option<WorkerPublish>,
}

/// One block moving through the parallel pipeline. The serially traced
/// path fills only the trace/decision fields; the `parallel_trace` path
/// additionally carries per-block hazard state and pending launches.
pub(crate) struct ParBlock {
    traces: Vec<Vec<Op>>,
    fps: BlockFps,
    /// Whether the *memoization policy* wanted fingerprints for this block
    /// (the cache-probe gate fed to [`decide`]). Fingerprints may also be
    /// computed solely for npar-analyze (`probe_active`), in which case
    /// this stays `false` and the cache is never consulted — exactly the
    /// serial engine's split between `memo_fp` and forced fingerprinting.
    fp_on: bool,
    /// Whether npar-analyze elided this block's per-block scans
    /// (par-traced path only; the serially traced path elides inline).
    elided: bool,
    sanitized: bool,
    ops: u64,
    decision: Decision,
    /// Hazards recorded while tracing (invalid child launches) — par-traced
    /// blocks only; the serial trace records directly into the engine.
    trace_check: Option<CheckState>,
    /// Device launches pending canonical registration — par-traced only.
    launches: Vec<crate::ctx::ParLaunch>,
    /// Hazards recorded by the scan pass — par-traced only.
    scan_check: Option<CheckState>,
    /// Global-access intervals from the scan pass — par-traced only.
    gaccess: Option<GridAccess>,
    result: Option<Aligned>,
}

impl ParBlock {
    fn new(traces: Vec<Vec<Op>>, fps: BlockFps, fp_on: bool) -> Self {
        ParBlock {
            traces,
            fps,
            fp_on,
            elided: false,
            sanitized: false,
            ops: 0,
            decision: Decision::Align {
                bkey: None,
                memo_on: false,
                probe_miss: false,
            },
            trace_check: None,
            launches: Vec::new(),
            scan_check: None,
            gaccess: None,
            result: None,
        }
    }
}

/// Per-grid state of the serially traced executor, engine-resident so that
/// [`flush_chunks`] can publish deferred blocks from inside a
/// `sync_children` join. The innermost tracing grid is the top of the
/// stack; every state below it has an empty deferred list (its grid is
/// suspended inside a flush-preceded join), so flushing the top alone
/// restores the full serial cache/metrics chronology.
pub(crate) struct ChunkState {
    grid: usize,
    pending: FastSet,
    deferred: Vec<ParBlock>,
    grid_metrics: KernelMetrics,
    gaccess: GridAccess,
    window_attempts: u32,
    window_hits: u32,
}

/// Frozen-snapshot warp-cache view for one block's alignment on a worker:
/// reads hit the engine cache as of the flush plus this block's own
/// overlay; inserts stay private until the merge publishes them in block
/// order. Replay is bitwise identical to live alignment (see
/// [`WarpMemoView`]), so which view served a hit never shows in metrics.
struct WorkerMemo<'a> {
    frozen: &'a MemoCache,
    fps: &'a BlockFps,
    overlay: FastMap<WarpEntry>,
    inserts: Vec<u64>,
    warp_hits: u64,
    warp_misses: u64,
    ops_replayed: u64,
}

impl WorkerMemo<'_> {
    fn into_publish(mut self) -> WorkerPublish {
        let overlay = &mut self.overlay;
        let inserts = self
            .inserts
            .iter()
            .filter_map(|k| overlay.remove(k).map(|e| (*k, e)))
            .collect();
        WorkerPublish {
            inserts,
            warp_hits: self.warp_hits,
            warp_misses: self.warp_misses,
            ops_replayed: self.ops_replayed,
        }
    }
}

impl WarpMemoView for WorkerMemo<'_> {
    fn fps(&self) -> &BlockFps {
        self.fps
    }

    fn replay(&mut self, key: u64, delta: &mut KernelMetrics) -> Option<f64> {
        let e = match self.frozen.warps.get(&key) {
            Some(e) => e,
            None => self.overlay.get(&key)?,
        };
        let (cycles, ops) = (e.cycles, e.ops);
        delta.merge(&e.metrics);
        self.warp_hits += 1;
        self.ops_replayed += ops;
        Some(cycles)
    }

    fn miss(&mut self) {
        self.warp_misses += 1;
    }

    fn full(&self) -> bool {
        self.frozen.warps.len() + self.overlay.len() >= WARP_CAP
    }

    fn store(&mut self, key: u64, entry: WarpEntry) {
        if self.overlay.insert(key, entry).is_none() {
            self.inserts.push(key);
        }
    }
}

/// Recursively split `items` across the pool: run the left half here, spawn
/// the right half as a stealable task. Workers that pick up a task split
/// again — nested submission from worker lanes — so the fan-out
/// self-balances regardless of which lanes are busy.
pub(crate) fn split_tasks<'env, W, T, F>(
    scope: &npar_par::Scope<'env, W>,
    w: &mut W,
    base: usize,
    items: &'env mut [T],
    f: &'env F,
) where
    T: Send,
    F: Fn(&npar_par::Scope<'env, W>, &mut W, usize, &mut T) + Sync,
{
    let mut items = items;
    loop {
        match items.len() {
            0 => return,
            1 => {
                f(scope, w, base, &mut items[0]);
                return;
            }
            n => {
                let mid = n / 2;
                let (left, right) = items.split_at_mut(mid);
                let rbase = base + mid;
                scope.spawn(move |sc, w2| split_tasks(sc, w2, rbase, right, f));
                items = left;
            }
        }
    }
}

/// Reproduce the serial cache-probe sequence for one block without touching
/// the cache: `pending` stands in for same-window inserts that the merge
/// will publish before this block, and `cache.blocks.len() + pending.len()`
/// is exactly the serial cache size at this block's probe.
fn decide(
    memo: Option<&MemoCache>,
    pending: &mut FastSet,
    fps: &BlockFps,
    cfg: &LaunchConfig,
    fp_on: bool,
    sanitized: bool,
) -> Decision {
    let off = Decision::Align {
        bkey: None,
        memo_on: false,
        probe_miss: false,
    };
    let Some(cache) = memo else { return off };
    if !fp_on || sanitized {
        return off;
    }
    if fps.any_launch() {
        // Excluded from the block cache (run-specific grid ids), but the
        // warp cache still serves the block's launch-free warps.
        return Decision::Align {
            bkey: None,
            memo_on: true,
            probe_miss: false,
        };
    }
    let key = block_key(fps, cfg);
    if cache.blocks.contains_key(&key) || pending.contains(&key) {
        return Decision::Replay { key };
    }
    if cache.blocks.len() + pending.len() < BLOCK_CAP {
        pending.insert(key);
        Decision::Align {
            bkey: Some(key),
            memo_on: true,
            probe_miss: true,
        }
    } else {
        Decision::Align {
            bkey: None,
            memo_on: true,
            probe_miss: true,
        }
    }
}

/// Align one block on whichever thread holds `scratch` (a worker or the
/// scope owner helping). Replay blocks pass through untouched — their
/// outcome is cloned from the cache at merge time.
fn align_one(
    db: &mut ParBlock,
    device: &DeviceConfig,
    cost: &CostModel,
    frozen: Option<&MemoCache>,
    scratch: &mut AlignScratch,
) {
    let Decision::Align { memo_on, .. } = db.decision else {
        return;
    };
    let mut delta = KernelMetrics::default();
    let mut memo = if memo_on {
        frozen.map(|cache| WorkerMemo {
            frozen: cache,
            fps: &db.fps,
            overlay: FastMap::default(),
            inserts: Vec::new(),
            warp_hits: 0,
            warp_misses: 0,
            ops_replayed: 0,
        })
    } else {
        None
    };
    let out = align_block(&db.traces, device, cost, scratch, &mut memo, &mut delta);
    let publish = memo.map(WorkerMemo::into_publish);
    db.result = Some(Aligned {
        out,
        delta,
        publish,
    });
}

/// Publish one block on the main thread, in canonical block order: absorb
/// its hazard states (trace first, then scan — the serial interleave),
/// splice its access intervals, replay or insert cache entries, and merge
/// its metrics delta. This is the only place global state changes.
#[allow(clippy::too_many_arguments)]
fn merge_block(
    engine: &mut Engine,
    grid: usize,
    mut db: ParBlock,
    gm: &mut KernelMetrics,
    gaccess: &mut GridAccess,
    window_attempts: &mut u32,
    window_hits: &mut u32,
) {
    if let Some(tc) = db.trace_check.take() {
        engine.check.absorb(tc);
    }
    if let Some(sc) = db.scan_check.take() {
        engine.check.absorb(sc);
    }
    if let Some(ga) = db.gaccess.take() {
        gaccess.absorb(ga);
    }
    engine.stats.ops_traced += db.ops;
    let mut replayed = false;
    match db.decision {
        Decision::Replay { key } => {
            replayed = true;
            let cache = engine.memo.as_ref().expect("replay implies memoization");
            let e = cache
                .blocks
                .get(&key)
                .expect("replayed entry published by an earlier block in merge order");
            engine.stats.block_hits += 1;
            engine.stats.ops_replayed += e.ops;
            gm.merge(&e.metrics);
            let mut out = e.outcome.clone();
            out.replayed = true;
            engine.grids[grid].blocks.push(out);
        }
        Decision::Align {
            bkey, probe_miss, ..
        } => {
            if probe_miss {
                engine.stats.block_misses += 1;
            }
            let a = db.result.take().expect("block aligned in the flush scope");
            if let Some(p) = a.publish {
                engine.stats.warp_hits += p.warp_hits;
                engine.stats.warp_misses += p.warp_misses;
                engine.stats.ops_replayed += p.ops_replayed;
                if let Some(cache) = engine.memo.as_mut() {
                    for (k, e) in p.inserts {
                        cache.insert_warp(k, e);
                    }
                }
            }
            if let Some(key) = bkey {
                if let Some(cache) = engine.memo.as_mut() {
                    cache.insert_block(
                        key,
                        BlockEntry {
                            outcome: a.out.clone(),
                            metrics: a.delta.clone(),
                            ops: db.ops,
                        },
                    );
                }
            }
            gm.merge(&a.delta);
            engine.grids[grid].blocks.push(a.out);
        }
    }
    let probed = replayed
        || matches!(
            db.decision,
            Decision::Align {
                probe_miss: true,
                ..
            }
        );
    if probed {
        *window_attempts += 1;
        *window_hits += u32::from(replayed);
    }
    engine.bufs.put(
        0,
        BlockBufs {
            traces: db.traces,
            fps: db.fps,
        },
    );
}

/// Publish the innermost grid's deferred blocks (align in parallel, merge
/// in block order). Called between chunks by the serially traced executor
/// and — crucially — from a `sync_children` join *before* any child grid
/// executes, so nested grids observe exactly the cache, checker and
/// metrics state the serial engine would have at that point.
pub(crate) fn flush_chunks(engine: &mut Engine) {
    if engine.chunks.is_empty() {
        return;
    }
    flush_top(engine);
}

fn flush_top(engine: &mut Engine) {
    let Some(mut cs) = engine.chunks.pop() else {
        return;
    };
    if !cs.deferred.is_empty() {
        let mut blocks = std::mem::take(&mut cs.deferred);
        {
            let Engine {
                pool,
                memo,
                device,
                cost,
                ..
            } = &*engine;
            let pool = pool.as_ref().expect("parallel path without a pool");
            let frozen = memo.as_ref();
            let task =
                move |_s: &npar_par::Scope<'_, AlignScratch>,
                      w: &mut AlignScratch,
                      _i: usize,
                      db: &mut ParBlock| { align_one(db, device, cost, frozen, w) };
            pool.scope(|scope, w| split_tasks(scope, w, 0, &mut blocks, &task));
        }
        let grid = cs.grid;
        for db in blocks {
            merge_block(
                engine,
                grid,
                db,
                &mut cs.grid_metrics,
                &mut cs.gaccess,
                &mut cs.window_attempts,
                &mut cs.window_hits,
            );
        }
        cs.pending.clear();
    }
    engine.chunks.push(cs);
}

/// Parallel counterpart of [`crate::engine::run_grid`]: same breadth-first
/// descendant order, per-grid execution fanned out.
pub(crate) fn run_grid_par(engine: &mut Engine, id: usize) {
    prepare(engine);
    let mut queue = VecDeque::from([id]);
    while let Some(g) = queue.pop_front() {
        execute_blocks_par(engine, g);
        queue.extend(engine.grids[g].children.iter().copied());
    }
}

/// Parallel counterpart of [`crate::engine::run_subtree`] (depth-first join
/// of a child grid and its descendants).
pub(crate) fn run_subtree_par(engine: &mut Engine, id: usize) {
    prepare(engine);
    execute_blocks_par(engine, id);
    let mut next = 0;
    while next < engine.grids[id].children.len() {
        let child = engine.grids[id].children[next];
        run_subtree_par(engine, child);
        next += 1;
    }
}

fn prepare(engine: &mut Engine) {
    engine.ensure_pool();
    let lanes = engine.threads;
    engine.bufs.ensure_lanes(lanes);
}

fn execute_blocks_par(engine: &mut Engine, id: usize) {
    if engine.grids[id].kernel.is_none() {
        return; // already executed
    }
    let cfg = engine.grids[id].cfg;
    if cfg.grid_dim == 1 {
        // Nothing to fan out; the serial path is cheaper and the merged
        // result is identical by construction.
        return crate::engine::execute_blocks(engine, id);
    }
    let Some(kernel) = engine.grids[id].kernel.take() else {
        return;
    };
    let name = kernel.name().to_string();
    if kernel.parallel_trace() {
        execute_par_traced(engine, id, kernel, cfg, name);
    } else {
        execute_serial_traced(engine, id, kernel, cfg, name);
    }
}

/// Chunked executor for kernels without the `parallel_trace` opt-in: trace,
/// scan and decide serially on the main thread (the exact serial order of
/// every side effect), defer alignment, flush in chunks.
fn execute_serial_traced(
    engine: &mut Engine,
    id: usize,
    kernel: KernelRef,
    cfg: LaunchConfig,
    name: String,
) {
    let memo_enabled = engine.memo.is_some();
    // Block-local policy copy, probed in trace order exactly like the
    // serial engine's: a cold class demotes mid-grid, so the chunked path
    // fingerprints the same block set the serial path would.
    let mut class = engine.memo_classes.get(&name).copied().unwrap_or_default();
    // npar-analyze per-grid state (DESIGN.md §12). Tracing, elision
    // decisions, scans and probe observation all stay on the main thread
    // in block order here, so the analyzer sees the exact serial call
    // sequence — elision is thread-count-invariant by construction.
    let probe_on = engine.probe_active();
    let elide_on = engine.elide_active();
    let depth = engine.grids[id].depth;
    let mut ga = if engine.analysis_active() {
        Some(
            engine
                .analyzer
                .begin_grid(&name, &cfg, depth, &engine.check),
        )
    } else {
        None
    };
    engine.chunks.push(ChunkState {
        grid: id,
        pending: FastSet::default(),
        deferred: Vec::new(),
        grid_metrics: KernelMetrics::default(),
        gaccess: GridAccess::default(),
        window_attempts: 0,
        window_hits: 0,
    });
    let chunk_cap = engine.threads * CHUNK_PER_LANE;
    for b in 0..cfg.grid_dim {
        let memo_fp = memo_enabled && class.fp_on(b);
        // Fingerprints are forced whenever npar-analyze probes, even if
        // the memo policy demoted the class — elision signatures must not
        // depend on cache policy (or thread count).
        let fp_on = memo_fp || probe_on;
        let bufs = engine.bufs.take(0);
        let mut blk = BlockCtx::new(
            TraceHost::Serial(engine),
            kernel.as_ref(),
            id,
            b,
            cfg,
            bufs.traces,
            bufs.fps,
            fp_on,
        );
        kernel.run_block(&mut blk);
        let (mut traces, fps, pending_children, _host) = blk.into_parts();
        debug_assert!(
            pending_children
                .iter()
                .all(|c| engine.grids[id].children.binary_search(c).is_ok()),
            "pending launches must be registered children"
        );
        // Proof-carrying elision: same decision and same skipped work as
        // the serial engine (DESIGN.md §12).
        let elided = elide_on && ga.as_mut().is_some_and(|g| g.try_elide(&fps));
        let pending0 = engine.check.pending_count();
        let cs = engine.chunks.last_mut().expect("chunk state pushed above");
        let sanitized = if elided {
            check::scan_block_elided(&mut engine.check, &traces, b, &mut cs.gaccess);
            engine.stats.elided += 1;
            false
        } else {
            check::scan_block(
                &mut engine.check,
                &mut traces,
                &name,
                id,
                b,
                &cfg,
                &mut cs.gaccess,
            )
        };
        if !elided {
            if let Some(g) = ga.as_mut() {
                let clean = engine.check.pending_count() == pending0;
                g.observe_scanned(
                    &traces,
                    &cfg,
                    &engine.device,
                    probe_on.then_some(&fps),
                    sanitized,
                    clean,
                );
            }
        }
        let ops = traces.iter().map(|t| t.len() as u64).sum();
        let decision = decide(
            engine.memo.as_ref(),
            &mut cs.pending,
            &fps,
            &cfg,
            memo_fp,
            sanitized,
        );
        // A replay decision is exactly a serial block-cache hit and a
        // probe miss exactly a serial miss, so probing here keeps the
        // mid-grid demotion sequence identical to the serial engine's.
        match decision {
            Decision::Replay { .. } => class.probe(true),
            Decision::Align {
                probe_miss: true, ..
            } => class.probe(false),
            Decision::Align { .. } => {}
        }
        let mut db = ParBlock::new(traces, fps, memo_fp);
        db.elided = elided;
        db.sanitized = sanitized;
        db.ops = ops;
        db.decision = decision;
        cs.deferred.push(db);
        if cs.deferred.len() >= chunk_cap {
            flush_top(engine);
        }
    }
    flush_top(engine);
    let cs = engine.chunks.pop().expect("chunk state pushed above");
    check::finish_grid(&mut engine.check, &name, id, cs.gaccess);
    if let Some(g) = ga.take() {
        // Promotion after the cross-block sweep, exactly like the serial
        // engine: a global race this grid vetoes the candidate.
        engine.analyzer.finish_grid(&name, &cfg, g, &engine.check);
    }
    if memo_enabled {
        let entry = engine.memo_classes.entry(name.clone()).or_default();
        entry.window_attempts += cs.window_attempts;
        entry.window_hits += cs.window_hits;
        entry.eval();
    }
    engine
        .metrics
        .entry(name)
        .or_default()
        .merge(&cs.grid_metrics);
}

/// Fully concurrent executor for [`crate::Kernel::parallel_trace`] kernels:
/// trace all blocks in one scope, register + patch launches canonically,
/// scan in a second scope, decide serially, align in a third scope, merge.
fn execute_par_traced(
    engine: &mut Engine,
    id: usize,
    kernel: KernelRef,
    cfg: LaunchConfig,
    name: String,
) {
    let memo_enabled = engine.memo.is_some();
    // Grid-start policy snapshot. Unlike the trace-order executors this
    // path cannot demote mid-grid — every block fingerprints before any
    // probe resolves — but the boundary eval still demotes a cold class
    // for the grids after this one. Policy is report-invariant, so the
    // divergence from the serial sequence is host-side only.
    let class = engine.memo_classes.get(&name).copied().unwrap_or_default();
    let level = engine.check.level;
    // npar-analyze per-grid state (DESIGN.md §12). The promoted elision
    // signature is snapshotted here and cannot change mid-grid, so the
    // phase-2.5 decisions below reproduce the serial per-block sequence.
    let probe_on = engine.probe_active();
    let elide_on = engine.elide_active();
    let depth = engine.grids[id].depth;
    let mut ga = if engine.analysis_active() {
        Some(
            engine
                .analyzer
                .begin_grid(&name, &cfg, depth, &engine.check),
        )
    } else {
        None
    };
    let n = cfg.grid_dim as usize;
    let mut slots: Vec<Option<ParBlock>> = (0..n).map(|_| None).collect();

    // Phase 1: trace every block concurrently against a worker-local host.
    {
        let Engine {
            pool, bufs, device, ..
        } = &*engine;
        let pool = pool.as_ref().expect("pool ensured by run_grid_par");
        let kernel = &kernel;
        let name = &name;
        let trace_one = move |scope: &npar_par::Scope<'_, AlignScratch>,
                              _w: &mut AlignScratch,
                              i: usize,
                              slot: &mut Option<ParBlock>| {
            let memo_fp = memo_enabled && class.fp_on(i as u32);
            // Forced whenever npar-analyze probes (see the serial path).
            let fp_on = memo_fp || probe_on;
            let bb = bufs.take(scope.lane());
            let host = TraceHost::Par(ParTrace {
                device,
                grid_name: name,
                grid_id: id,
                check: CheckState::new(level),
                launches: Vec::new(),
            });
            let mut blk = BlockCtx::new(
                host,
                kernel.as_ref(),
                id,
                i as u32,
                cfg,
                bb.traces,
                bb.fps,
                fp_on,
            );
            kernel.run_block(&mut blk);
            let (traces, fps, pending, host) = blk.into_parts();
            debug_assert!(pending.is_empty(), "par host defers all registration");
            let TraceHost::Par(pt) = host else {
                unreachable!("par-traced block keeps its par host")
            };
            let mut pb = ParBlock::new(traces, fps, memo_fp);
            pb.trace_check = Some(pt.check);
            pb.launches = pt.launches;
            *slot = Some(pb);
        };
        pool.scope(|scope, w| split_tasks(scope, w, 0, &mut slots, &trace_one));
    }

    // Phase 2: register child grids in canonical (block, thread, launch)
    // order — the id sequence the serial engine assigns — and patch the
    // placeholder ids in the traces. The fingerprint fold ignores grid
    // ids, so patching never invalidates a rolled fingerprint.
    for (i, slot) in slots.iter_mut().enumerate() {
        let pb = slot.as_mut().expect("trace scope filled every slot");
        if pb.launches.is_empty() {
            continue;
        }
        let map: Vec<u32> = pb
            .launches
            .drain(..)
            .map(|l| {
                let child = register_grid(
                    engine,
                    &l.kernel,
                    l.cfg,
                    Origin::Device {
                        parent: id,
                        block: i as u32,
                        stream_slot: l.stream_slot,
                    },
                );
                u32::try_from(child).expect("grid id overflow")
            })
            .collect();
        for t in &mut pb.traces {
            for op in t.iter_mut() {
                if let Op::Launch { grid } = op {
                    *grid = map[*grid as usize];
                }
            }
        }
    }

    // Phase 2.5: proof-carrying elision decisions, serially in block
    // order. The promoted signature was snapshotted at `begin_grid` and
    // promotion only ever happens at grid end, so deciding every block up
    // front is exactly the serial engine's per-block decision sequence.
    if elide_on {
        for slot in slots.iter_mut() {
            let pb = slot.as_mut().expect("traced");
            pb.elided = ga.as_mut().is_some_and(|g| g.try_elide(&pb.fps));
            if pb.elided {
                engine.stats.elided += 1;
            }
        }
    }

    // Phase 3: hazard scan per block, concurrently, into per-block state.
    // Elided blocks skip the scans the promoted probe already passed; only
    // their global intervals — input to the never-elided cross-block sweep
    // — are still collected.
    {
        let Engine { pool, .. } = &*engine;
        let pool = pool.as_ref().expect("pool ensured by run_grid_par");
        let name = &name;
        let cfg_ref = &cfg;
        let scan_one = move |_s: &npar_par::Scope<'_, AlignScratch>,
                             _w: &mut AlignScratch,
                             i: usize,
                             slot: &mut Option<ParBlock>| {
            let pb = slot.as_mut().expect("traced");
            let mut st = CheckState::new(level);
            let mut gacc = GridAccess::default();
            if pb.elided {
                check::scan_block_elided(&mut st, &pb.traces, i as u32, &mut gacc);
            } else {
                pb.sanitized = check::scan_block(
                    &mut st,
                    &mut pb.traces,
                    name,
                    id,
                    i as u32,
                    cfg_ref,
                    &mut gacc,
                );
            }
            pb.ops = pb.traces.iter().map(|t| t.len() as u64).sum();
            pb.scan_check = Some(st);
            pb.gaccess = Some(gacc);
        };
        pool.scope(|scope, w| split_tasks(scope, w, 0, &mut slots, &scan_one));
    }

    // Phase 4: serial decide in block order (cache-probe emulation), plus
    // npar-analyze probe/candidate observation — here because this is the
    // first serial point where each block's scan outcome is known.
    let mut pending = FastSet::default();
    for slot in slots.iter_mut() {
        let pb = slot.as_mut().expect("traced");
        if !pb.elided {
            if let Some(g) = ga.as_mut() {
                // A fresh per-block state starts empty, so "no pending
                // detections" is exactly the serial path's pending-count
                // delta across its scan.
                let clean = pb
                    .scan_check
                    .as_ref()
                    .is_some_and(|st| st.pending_count() == 0);
                g.observe_scanned(
                    &pb.traces,
                    &cfg,
                    &engine.device,
                    probe_on.then_some(&pb.fps),
                    pb.sanitized,
                    clean,
                );
            }
        }
        pb.decision = decide(
            engine.memo.as_ref(),
            &mut pending,
            &pb.fps,
            &cfg,
            pb.fp_on,
            pb.sanitized,
        );
    }

    // Phase 5: align concurrently against the frozen cache.
    {
        let Engine {
            pool,
            memo,
            device,
            cost,
            ..
        } = &*engine;
        let pool = pool.as_ref().expect("pool ensured by run_grid_par");
        let frozen = memo.as_ref();
        let align_task = move |_s: &npar_par::Scope<'_, AlignScratch>,
                               w: &mut AlignScratch,
                               _i: usize,
                               slot: &mut Option<ParBlock>| {
            align_one(slot.as_mut().expect("traced"), device, cost, frozen, w);
        };
        pool.scope(|scope, w| split_tasks(scope, w, 0, &mut slots, &align_task));
    }

    // Phase 6: canonical merge.
    let mut grid_metrics = KernelMetrics::default();
    let mut gaccess = GridAccess::default();
    let (mut window_attempts, mut window_hits) = (0u32, 0u32);
    for slot in slots.iter_mut() {
        let pb = slot.take().expect("traced");
        merge_block(
            engine,
            id,
            pb,
            &mut grid_metrics,
            &mut gaccess,
            &mut window_attempts,
            &mut window_hits,
        );
    }
    check::finish_grid(&mut engine.check, &name, id, gaccess);
    if let Some(g) = ga.take() {
        // All per-block hazard states were absorbed by the merge above, so
        // the grid-wide cleanliness test sees every detection — promotion
        // after the cross-block sweep, exactly like the serial engine.
        engine.analyzer.finish_grid(&name, &cfg, g, &engine.check);
    }
    if memo_enabled {
        let entry = engine.memo_classes.entry(name.clone()).or_default();
        entry.window_attempts += window_attempts;
        entry.window_hits += window_hits;
        entry.eval();
    }
    engine.metrics.entry(name).or_default().merge(&grid_metrics);
}
