//! Serial-CPU cost accounting for the paper's baselines.
//!
//! The serial reference implementations in `npar-apps` run for real (their
//! outputs validate the GPU templates) while counting the operations they
//! perform; [`CpuCounter::seconds`] converts the counts to modeled time via
//! [`crate::cost::CpuCostModel`] and a [`crate::config::CpuConfig`] clock.

use crate::config::CpuConfig;
use crate::cost::CpuCostModel;
use serde::{Deserialize, Serialize};

/// Operation counters for one serial CPU run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuCounter {
    /// Memory loads.
    pub loads: u64,
    /// Memory stores.
    pub stores: u64,
    /// Arithmetic/logic operations.
    pub alu: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Function calls (recursion overhead).
    pub calls: u64,
}

impl CpuCounter {
    /// Record `n` loads.
    #[inline]
    pub fn load(&mut self, n: u64) {
        self.loads += n;
    }

    /// Record `n` stores.
    #[inline]
    pub fn store(&mut self, n: u64) {
        self.stores += n;
    }

    /// Record `n` ALU ops.
    #[inline]
    pub fn compute(&mut self, n: u64) {
        self.alu += n;
    }

    /// Record `n` branches.
    #[inline]
    pub fn branch(&mut self, n: u64) {
        self.branches += n;
    }

    /// Record `n` function calls.
    #[inline]
    pub fn call(&mut self, n: u64) {
        self.calls += n;
    }

    /// Total modeled CPU cycles.
    pub fn cycles(&self, cost: &CpuCostModel) -> f64 {
        self.loads as f64 * cost.load_cycles
            + self.stores as f64 * cost.store_cycles
            + self.alu as f64 * cost.alu_cycles
            + self.branches as f64 * cost.branch_cycles
            + self.calls as f64 * cost.call_cycles
    }

    /// Total modeled seconds on `cpu`.
    pub fn seconds(&self, cost: &CpuCostModel, cpu: &CpuConfig) -> f64 {
        cpu.cycles_to_seconds(self.cycles(cost))
    }

    /// Merge another counter into this one.
    pub fn merge(&mut self, other: &CpuCounter) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.alu += other.alu;
        self.branches += other.branches;
        self.calls += other.calls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_weight_by_class() {
        let mut c = CpuCounter::default();
        c.load(10);
        c.store(5);
        c.compute(100);
        c.branch(20);
        c.call(2);
        let m = CpuCostModel::default();
        let expect = 10.0 * m.load_cycles
            + 5.0 * m.store_cycles
            + 100.0 * m.alu_cycles
            + 20.0 * m.branch_cycles
            + 2.0 * m.call_cycles;
        assert!((c.cycles(&m) - expect).abs() < 1e-9);
    }

    #[test]
    fn seconds_uses_clock() {
        let mut c = CpuCounter::default();
        c.compute(2_000_000_000);
        let m = CpuCostModel::default();
        let cpu = CpuConfig::xeon_e5_2620();
        assert!((c.seconds(&m, &cpu) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds() {
        let mut a = CpuCounter {
            loads: 1,
            ..Default::default()
        };
        let b = CpuCounter {
            loads: 2,
            calls: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.loads, 3);
        assert_eq!(a.calls, 7);
    }
}
