//! Trace fingerprinting and the warp/block memoization cache.
//!
//! Every experiment is a sweep: the same kernel re-simulated across block
//! sizes, thresholds and datasets, and inside each run thousands of
//! structurally identical blocks are re-aligned from scratch. This module
//! recognizes that redundancy the same way the compiler-consolidation line
//! of work recognizes redundant nested launches: identical warp traces are
//! aligned once and replayed as cheap additive deltas.
//!
//! **Fingerprints.** Each simulated thread maintains a rolling 64-bit
//! FxHash-style fingerprint, updated as ops are recorded (~one multiply per
//! op) instead of re-hashed in a post-hoc pass. Global addresses are
//! *canonicalized* before hashing: they are taken relative to the block's
//! first global access, rounded down to the memory-transaction line. All of
//! the timing the aligner derives from addresses — coalescing transaction
//! counts, atomic same-address multiplicity, requested bytes — is invariant
//! under a uniform line-aligned shift of a block's whole access set, so two
//! blocks whose accesses differ only by such a shift (block `b` of a
//! thread-mapped kernel vs. block `b+1`) produce the same fingerprint *and*
//! provably the same timing. Shifts that are not line-aligned change the
//! canonical offsets and correctly miss. Shared-memory offsets are already
//! block-local and hash as-is.
//!
//! **Cache keys.** A warp key hashes the warp's lane fingerprints (over the
//! barrier segment being aligned) plus the lane count; a block key hashes
//! every lane fingerprint plus the [`LaunchConfig`]. Keys are 64-bit; a
//! collision would silently replay the wrong timing, which the differential
//! test suite (memo on vs. off, bit-identical reports) guards against.
//!
//! **Exclusions.** Warps containing [`Op::Launch`] are never cached: grid
//! ids are assigned per run, and the launch offsets recorded in
//! [`crate::warp::WarpOutcome`] feed the scheduler, so replaying them from
//! a previous block would wire the wrong child grids. Blocks whose traces
//! were sanitized by the hazard checker (divergent barriers) bypass the
//! cache too — their fingerprints describe the pre-sanitization traces.
//!
//! **Interaction with the timing-pass fast paths (DESIGN.md §11).** Blocks
//! replayed from one block-cache entry are clones of the same
//! [`BlockOutcome`], so a grid whose blocks all hit the same entry is
//! timing-uniform *by construction* and eligible for the scheduler's
//! cohort batching and fast-forward wheel — the common case after a warm
//! sweep. The scheduler never trusts fingerprints for this, though: grid
//! uniformity is established by direct bitwise comparison of the outcomes
//! ([`BlockOutcome::timing_uniform_with`]), so a fingerprint collision can
//! mis-time but can never desynchronize fast and slow paths.

#[allow(clippy::disallowed_types)] // only used to build the fixed-hasher FastMap below
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::block::{BlockOutcome, SegmentTask};
use crate::kernel::LaunchConfig;
use crate::profiler::{KernelMetrics, SimStats};
use crate::trace::Op;

/// Fingerprint seed (splitmix64 increment — an arbitrary odd constant).
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;
/// FxHash multiplier.
const K: u64 = 0x517c_c1b7_2722_0a95;

/// One FxHash-style mixing step.
#[inline]
fn mix(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(K)
}

// Op tags, folded into the low bits alongside small operands. Distinct per
// op kind so that e.g. a read and a write of the same address differ.
const T_COMPUTE: u64 = 1;
const T_GLOBAL_READ: u64 = 2;
const T_GLOBAL_WRITE: u64 = 3;
const T_SHARED_READ: u64 = 4;
const T_SHARED_WRITE: u64 = 5;
const T_ATOMIC_GLOBAL: u64 = 6;
const T_ATOMIC_SHARED: u64 = 7;
const T_LAUNCH: u64 = 8;
const T_SYNC: u64 = 9;
const T_SYNC_CHILDREN: u64 = 10;

/// Fold one (final, fusion-complete) op into a hash. `base` is the block's
/// canonical global-address base (0 when the block made no global access).
#[inline]
fn fold_op(h: u64, op: Op, base: u64) -> u64 {
    match op {
        Op::Compute(n) => mix(h, T_COMPUTE | (u64::from(n) << 4)),
        Op::GlobalRead { addr, size } => mix(
            mix(h, T_GLOBAL_READ | (u64::from(size) << 4)),
            addr.wrapping_sub(base),
        ),
        Op::GlobalWrite { addr, size } => mix(
            mix(h, T_GLOBAL_WRITE | (u64::from(size) << 4)),
            addr.wrapping_sub(base),
        ),
        Op::SharedRead { addr } => mix(h, T_SHARED_READ | (u64::from(addr) << 4)),
        Op::SharedWrite { addr } => mix(h, T_SHARED_WRITE | (u64::from(addr) << 4)),
        Op::AtomicGlobal { addr } => mix(mix(h, T_ATOMIC_GLOBAL), addr.wrapping_sub(base)),
        Op::AtomicShared { addr } => mix(h, T_ATOMIC_SHARED | (u64::from(addr) << 4)),
        // Grid ids are run-specific; launch-bearing warps are excluded from
        // the cache anyway, so the id must not poison the hash.
        Op::Launch { .. } => mix(h, T_LAUNCH),
        Op::Sync => mix(h, T_SYNC),
        Op::SyncChildren => mix(h, T_SYNC_CHILDREN),
    }
}

/// Rolling per-thread trace fingerprint.
///
/// Mirrors [`hash_ops`] over the *final* trace: consecutive
/// [`crate::ThreadCtx::compute`] calls fuse into one `Op::Compute` run in
/// the trace, so the pending run is folded only when a different op kind
/// (or the end of the trace) closes it.
#[derive(Debug, Clone)]
pub(crate) struct Fingerprint {
    hash: u64,
    /// Open trailing `Compute` run, not yet folded.
    run: u32,
    /// Whether the thread issued a device-side launch (uncacheable).
    pub has_launch: bool,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint {
            hash: SEED,
            run: 0,
            has_launch: false,
        }
    }
}

impl Fingerprint {
    /// Extend the trailing compute run (mirrors trace fusion).
    #[inline]
    pub fn compute(&mut self, n: u32) {
        self.run += n;
    }

    /// Record a non-compute op. `base` as in [`fold_op`].
    #[inline]
    pub fn record(&mut self, op: Op, base: u64) {
        debug_assert!(
            !matches!(op, Op::Compute(_)),
            "compute runs go through Fingerprint::compute"
        );
        if self.run > 0 {
            self.hash = mix(self.hash, T_COMPUTE | (u64::from(self.run) << 4));
            self.run = 0;
        }
        if matches!(op, Op::Launch { .. }) {
            self.has_launch = true;
        }
        self.hash = fold_op(self.hash, op, base);
    }

    /// Current fingerprint value (folds the open compute run, if any,
    /// without closing it).
    #[inline]
    pub fn value(&self) -> u64 {
        if self.run > 0 {
            mix(self.hash, T_COMPUTE | (u64::from(self.run) << 4))
        } else {
            self.hash
        }
    }
}

/// Hash a recorded op slice post-hoc (used for the per-segment lane keys of
/// barrier-separated blocks, where the rolling whole-trace fingerprint does
/// not apply). Returns the hash and whether the slice contains a launch.
/// Consistent with [`Fingerprint`] because recorded traces never contain
/// adjacent `Compute` ops (fusion happens at record time).
pub(crate) fn hash_ops(ops: &[Op], base: u64) -> (u64, bool) {
    let mut h = SEED;
    let mut launch = false;
    for &op in ops {
        launch |= matches!(op, Op::Launch { .. });
        h = fold_op(h, op, base);
    }
    (h, launch)
}

/// Per-block fingerprint state: one rolling fingerprint per thread plus the
/// canonical global-address base shared by the whole block. Pooled on the
/// engine so steady state allocates nothing.
#[derive(Debug, Default)]
pub(crate) struct BlockFps {
    pub lanes: Vec<Fingerprint>,
    /// First global address touched by the block, rounded down to the
    /// memory-transaction line. `None` until a global access happens.
    pub base: Option<u64>,
}

impl BlockFps {
    /// Reset for a block of `n` threads, keeping capacity.
    pub fn reset(&mut self, n: usize) {
        self.base = None;
        self.lanes.clear();
        self.lanes.resize_with(n, Fingerprint::default);
    }

    /// Whether any thread of the block performed a device-side launch.
    pub fn any_launch(&self) -> bool {
        self.lanes.iter().any(|f| f.has_launch)
    }
}

/// Key over one warp's lane fingerprint values (order- and count-sensitive).
pub(crate) fn warp_key(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = mix(SEED, 0xA1);
    let mut n = 0u64;
    for v in values {
        h = mix(h, v);
        n += 1;
    }
    mix(h, n)
}

/// Key over a whole block: every lane fingerprint plus the launch config
/// (block width fixes the warp partition; the rest keeps the key
/// conservative across configs — warp-level entries still hit there).
pub(crate) fn block_key(fps: &BlockFps, cfg: &LaunchConfig) -> u64 {
    let mut h = mix(SEED, 0xB2);
    for f in &fps.lanes {
        h = mix(h, f.value());
    }
    h = mix(h, u64::from(cfg.grid_dim));
    h = mix(h, u64::from(cfg.block_dim));
    mix(h, u64::from(cfg.shared_mem_bytes))
}

/// Cached outcome of aligning one warp over one barrier segment.
#[derive(Debug, Clone)]
pub(crate) struct WarpEntry {
    /// Warp execution cycles ([`crate::warp::WarpOutcome::cycles`]).
    pub cycles: f64,
    /// The warp's additive profiler-counter contribution.
    pub metrics: KernelMetrics,
    /// Ops the original alignment consumed (observability).
    pub ops: u64,
}

/// Cached outcome of finalizing one whole block.
#[derive(Debug, Clone)]
pub(crate) struct BlockEntry {
    pub outcome: BlockOutcome,
    /// The block's additive counter contribution (including `blocks`,
    /// `threads` and `barriers`).
    pub metrics: KernelMetrics,
    pub ops: u64,
}

/// Entry caps: beyond these the cache stops inserting (workloads where
/// every block is unique — fully divergent sweeps — must not grow without
/// bound; existing entries keep hitting). Kept modest on purpose: a warp
/// entry is ~150 bytes, and on an all-miss workload an over-large cache is
/// pure overhead — tens of MB of page faults for entries that never hit.
/// Regular workloads, the cache's target, need few distinct keys. Once a
/// cache is full, misses fall back to the direct alignment path and pay
/// only the key lookup.
pub(crate) const WARP_CAP: usize = 1 << 16;
pub(crate) const BLOCK_CAP: usize = 1 << 14;

/// Keys are already hashes — the maps pass them through unmixed.
#[derive(Default)]
pub(crate) struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are used; fold defensively for any other caller.
        for &b in bytes {
            self.0 = mix(self.0, u64::from(b));
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

#[allow(clippy::disallowed_types)] // fixed hasher: deterministic, u64 keys
pub(crate) type FastMap<V> = HashMap<u64, V, BuildHasherDefault<IdentityHasher>>;

/// While a kernel class is bypassed, the first `PROBE_BLOCKS` blocks of each
/// grid still roll fingerprints and probe the cache, so a class whose blocks
/// become cacheable again can re-enable itself.
pub(crate) const PROBE_BLOCKS: u32 = 4;

/// Minimum probed blocks in the rolling window before the hit rate is
/// (re-)evaluated at a grid boundary.
pub(crate) const EVAL_MIN: u32 = 4;

/// Rolling memoization hit-rate for one kernel fingerprint-class (keyed by
/// kernel name), driving the adaptive memo bypass.
///
/// Fully divergent workloads pay the fingerprint-rolling cost on every op
/// and never hit (BENCH_sim regression: 0.95x vs memo-off). Each class
/// starts *enabled* — regular workloads hit the block cache from their very
/// first grid (block 0 inserts, the structurally identical blocks after it
/// replay, thanks to canonical addressing), so one grid of window is enough
/// to tell the two apart. A class whose window shows a block hit rate below
/// 50% is demoted to *bypassed*: only the probe blocks of each grid keep
/// fingerprinting, leaving a path back if the workload turns cacheable.
///
/// Promotion back to enabled happens at grid boundaries only
/// ([`ClassStats::eval`]). Demotion additionally fires mid-grid in
/// trace-order executors ([`ClassStats::probe`]) — a hostile first grid
/// stops paying the fingerprint cost after `EVAL_MIN` cold probes instead
/// of fingerprinting every block to its boundary. The concurrently traced
/// path fingerprints all blocks before any probe resolves, so it keeps the
/// grid-start policy; the policy is a host-side heuristic that never
/// reaches the report (see `tests/memo_differential.rs`), so the paths may
/// legally diverge here.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ClassStats {
    /// Whether every block of this class currently rolls fingerprints.
    pub enabled: bool,
    /// Probed blocks in the current window.
    pub window_attempts: u32,
    /// Probed blocks that hit the *block* cache. Warp-level hits are
    /// deliberately ignored: the parallel path's worker-local warp views
    /// count hits differently from the serial cache, and the policy must be
    /// a pure function of state both paths share.
    pub window_hits: u32,
}

impl Default for ClassStats {
    fn default() -> Self {
        ClassStats {
            enabled: true,
            window_attempts: 0,
            window_hits: 0,
        }
    }
}

impl ClassStats {
    /// Whether block `block_idx` of a grid rolls fingerprints and probes
    /// the cache. Depends only on (class state at grid start, block id) —
    /// deterministic at any thread count.
    #[inline]
    pub fn fp_on(&self, block_idx: u32) -> bool {
        self.enabled || block_idx < PROBE_BLOCKS
    }

    /// Record one probed block in trace order, demoting as soon as the
    /// window proves cold (< 50% hits over at least [`EVAL_MIN`] probes) so
    /// the blocks after it stop rolling fingerprints. Called by the
    /// trace-order executors on a block-local copy of the class; the
    /// authoritative entry is updated at the grid boundary via
    /// [`ClassStats::eval`], which reaches the same verdict from the full
    /// window.
    #[inline]
    pub fn probe(&mut self, hit: bool) {
        self.window_attempts += 1;
        self.window_hits += u32::from(hit);
        if self.window_attempts >= EVAL_MIN && self.window_hits * 2 < self.window_attempts {
            self.enabled = false;
        }
    }

    /// Re-evaluate at a grid boundary once the window is large enough.
    pub fn eval(&mut self) {
        if self.window_attempts >= EVAL_MIN {
            self.enabled = self.window_hits * 2 >= self.window_attempts;
            self.window_attempts = 0;
            self.window_hits = 0;
        }
    }
}

/// The engine's alignment memoization cache. Lives for the lifetime of a
/// [`crate::Gpu`], surviving `synchronize` — entries are content-keyed and
/// carry no batch-local state (launch-bearing warps are excluded).
#[derive(Default)]
pub(crate) struct MemoCache {
    pub warps: FastMap<WarpEntry>,
    pub blocks: FastMap<BlockEntry>,
}

/// Everything block finalization needs to consult the cache: the cache
/// itself, the block's fingerprints, the launch config (block-key
/// ingredient) and the stats to report hits/misses into. `None` when
/// memoization is disabled or the block's traces were sanitized by the
/// hazard checker (stale fingerprints).
pub(crate) struct BlockMemo<'a> {
    pub cache: &'a mut MemoCache,
    pub fps: &'a BlockFps,
    pub cfg: &'a LaunchConfig,
    pub stats: &'a mut SimStats,
}

impl MemoCache {
    pub fn insert_warp(&mut self, key: u64, entry: WarpEntry) {
        if !self.warps_full() {
            self.warps.insert(key, entry);
        }
    }

    pub fn insert_block(&mut self, key: u64, entry: BlockEntry) {
        if !self.blocks_full() {
            self.blocks.insert(key, entry);
        }
    }

    /// Whether the warp cache stopped accepting entries. Callers use this
    /// to skip miss-path bookkeeping (per-warp delta, entry clone) that
    /// only pays off if the entry could be stored.
    pub fn warps_full(&self) -> bool {
        self.warps.len() >= WARP_CAP
    }

    /// Whether the block cache stopped accepting entries.
    pub fn blocks_full(&self) -> bool {
        self.blocks.len() >= BLOCK_CAP
    }
}

// === Persistent spill (DESIGN.md §14) ========================================
//
// The cache is content-addressed — keys are pure functions of canonicalized
// traces and launch configs, never of run-local state — so entries survive a
// process boundary byte-for-byte. `MemoSnapshot` is the serializable form:
// every f64 is stored as its IEEE-754 bit pattern (`to_bits`) so a spill →
// restore round trip is bitwise exact regardless of how the JSON layer
// formats floats, and entry lists are sorted by key so the spill bytes are
// deterministic (the backing `FastMap` iterates in table order).

use serde::{Deserialize as De, Error as SerdeError, Serialize as Ser, Value};

/// Spill-format version; bumped whenever the entry layout changes. A
/// mismatched snapshot fails to deserialize and the importer starts cold.
const SNAPSHOT_VERSION: u64 = 1;

/// A serializable snapshot of the alignment memo cache (DESIGN.md §14).
///
/// Produced by [`crate::Gpu::export_memo`] and consumed by
/// [`crate::Gpu::import_memo`] to warm-start a fresh `Gpu` from a previous
/// run's cache. Snapshots are only meaningful for the *same* device
/// configuration and cost model: entries replay saved timing verbatim, so
/// callers (npar-serve's persistent cache) key spills by a device signature
/// and never mix configs.
///
/// Replayed entries are bit-identical to fresh alignment (the memo
/// differential suite proves memo-on == memo-off), and the snapshot encodes
/// every float by bit pattern, so a warm-started `Gpu` produces `Report`s
/// byte-identical to a cold one.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoSnapshot {
    warps: Vec<(u64, WarpEntry)>,
    blocks: Vec<(u64, BlockEntry)>,
}

impl MemoSnapshot {
    /// Number of warp-segment entries in the snapshot.
    pub fn warp_entries(&self) -> usize {
        self.warps.len()
    }

    /// Number of whole-block entries in the snapshot.
    pub fn block_entries(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the snapshot carries no entries at all.
    pub fn is_empty(&self) -> bool {
        self.warps.is_empty() && self.blocks.is_empty()
    }

    /// Fold another snapshot's entries into this one. Existing keys win
    /// (entries are content-addressed, so same key ⇒ same timing; first
    /// wins keeps the merge order-insensitive in effect), and sorted order
    /// is restored so a merged spill stays deterministic.
    pub fn merge(&mut self, other: &MemoSnapshot) {
        let mut have: Vec<u64> = self.warps.iter().map(|&(k, _)| k).collect();
        have.sort_unstable();
        for (k, e) in &other.warps {
            if have.binary_search(k).is_err() {
                self.warps.push((*k, e.clone()));
            }
        }
        let mut have: Vec<u64> = self.blocks.iter().map(|&(k, _)| k).collect();
        have.sort_unstable();
        for (k, e) in &other.blocks {
            if have.binary_search(k).is_err() {
                self.blocks.push((*k, e.clone()));
            }
        }
        self.warps.sort_unstable_by_key(|&(k, _)| k);
        self.blocks.sort_unstable_by_key(|&(k, _)| k);
    }
}

/// Bitwise metric equality: the derived `PartialEq` uses float `==`, which
/// is both too weak (NaN != NaN) and too strong (-0.0 == 0.0) for snapshot
/// round-trip checks.
fn metrics_bits_eq(a: &KernelMetrics, b: &KernelMetrics) -> bool {
    metrics_to_value(a) == metrics_to_value(b)
}

impl PartialEq for WarpEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cycles.to_bits() == other.cycles.to_bits()
            && metrics_bits_eq(&self.metrics, &other.metrics)
            && self.ops == other.ops
    }
}

impl PartialEq for BlockEntry {
    fn eq(&self, other: &Self) -> bool {
        self.outcome.warps == other.outcome.warps
            && self.outcome.replayed == other.outcome.replayed
            && self.outcome.segments.len() == other.outcome.segments.len()
            && self
                .outcome
                .segments
                .iter()
                .zip(&other.outcome.segments)
                .all(|(a, b)| {
                    a.span.to_bits() == b.span.to_bits()
                        && a.work.to_bits() == b.work.to_bits()
                        && a.wait_children == b.wait_children
                        && a.launches.len() == b.launches.len()
                        && a.launches
                            .iter()
                            .zip(&b.launches)
                            .all(|(x, y)| x.0 == y.0 && x.1.to_bits() == y.1.to_bits())
                })
            && metrics_bits_eq(&self.metrics, &other.metrics)
            && self.ops == other.ops
    }
}

/// Encode an f64 as its bit pattern (bitwise-exact across the JSON layer).
fn bits(f: f64) -> Value {
    f.to_bits().to_value()
}

/// Decode an f64 stored as a bit pattern.
fn unbits(v: &Value) -> Result<f64, SerdeError> {
    Ok(f64::from_bits(u64::from_value(v)?))
}

fn as_array(v: &Value, what: &str) -> Result<Vec<Value>, SerdeError> {
    match v {
        Value::Array(items) => Ok(items.clone()),
        other => Err(SerdeError(format!("{what}: expected array, got {other:?}"))),
    }
}

/// Flatten a [`KernelMetrics`] into a fixed 23-element array (counters as
/// integers, floats as bit patterns) — positional, compact, and exact.
fn metrics_to_value(m: &KernelMetrics) -> Value {
    Value::Array(vec![
        m.grids.to_value(),
        m.blocks.to_value(),
        m.threads.to_value(),
        bits(m.issue_slots),
        bits(m.active_slots),
        m.gld_requested_bytes.to_value(),
        m.gld_transactions.to_value(),
        m.gst_requested_bytes.to_value(),
        m.gst_transactions.to_value(),
        m.shared_accesses.to_value(),
        m.shared_replays.to_value(),
        m.atomics_global.to_value(),
        m.atomics_shared.to_value(),
        m.device_launches.to_value(),
        m.barriers.to_value(),
        bits(m.work_cycles),
        bits(m.stalls.compute),
        bits(m.stalls.divergence),
        bits(m.stalls.gmem),
        bits(m.stalls.shared),
        bits(m.stalls.atomic),
        bits(m.stalls.launch),
        bits(m.stalls.barrier),
    ])
}

fn metrics_from_value(v: &Value) -> Result<KernelMetrics, SerdeError> {
    let a = as_array(v, "metrics")?;
    if a.len() != 23 {
        return Err(SerdeError(format!(
            "metrics: expected 23 fields, got {}",
            a.len()
        )));
    }
    Ok(KernelMetrics {
        grids: u64::from_value(&a[0])?,
        blocks: u64::from_value(&a[1])?,
        threads: u64::from_value(&a[2])?,
        issue_slots: unbits(&a[3])?,
        active_slots: unbits(&a[4])?,
        gld_requested_bytes: u64::from_value(&a[5])?,
        gld_transactions: u64::from_value(&a[6])?,
        gst_requested_bytes: u64::from_value(&a[7])?,
        gst_transactions: u64::from_value(&a[8])?,
        shared_accesses: u64::from_value(&a[9])?,
        shared_replays: u64::from_value(&a[10])?,
        atomics_global: u64::from_value(&a[11])?,
        atomics_shared: u64::from_value(&a[12])?,
        device_launches: u64::from_value(&a[13])?,
        barriers: u64::from_value(&a[14])?,
        work_cycles: unbits(&a[15])?,
        stalls: crate::profiler::StallCycles {
            compute: unbits(&a[16])?,
            divergence: unbits(&a[17])?,
            gmem: unbits(&a[18])?,
            shared: unbits(&a[19])?,
            atomic: unbits(&a[20])?,
            launch: unbits(&a[21])?,
            barrier: unbits(&a[22])?,
        },
    })
}

impl Ser for MemoSnapshot {
    fn to_value(&self) -> Value {
        let warps = self
            .warps
            .iter()
            .map(|(key, e)| {
                Value::Array(vec![
                    key.to_value(),
                    bits(e.cycles),
                    e.ops.to_value(),
                    metrics_to_value(&e.metrics),
                ])
            })
            .collect();
        let blocks = self
            .blocks
            .iter()
            .map(|(key, e)| {
                let segments = e
                    .outcome
                    .segments
                    .iter()
                    .map(|s| {
                        let launches = s
                            .launches
                            .iter()
                            .map(|&(grid, off)| Value::Array(vec![grid.to_value(), bits(off)]))
                            .collect();
                        Value::Array(vec![
                            bits(s.span),
                            bits(s.work),
                            s.wait_children.to_value(),
                            Value::Array(launches),
                        ])
                    })
                    .collect();
                Value::Array(vec![
                    key.to_value(),
                    e.outcome.warps.to_value(),
                    e.ops.to_value(),
                    metrics_to_value(&e.metrics),
                    Value::Array(segments),
                ])
            })
            .collect();
        Value::Object(vec![
            ("version".into(), SNAPSHOT_VERSION.to_value()),
            ("warps".into(), Value::Array(warps)),
            ("blocks".into(), Value::Array(blocks)),
        ])
    }
}

impl De for MemoSnapshot {
    fn from_value(v: &Value) -> Result<Self, SerdeError> {
        let version = v
            .get("version")
            .ok_or_else(|| SerdeError("memo snapshot: missing version".into()))
            .and_then(u64::from_value)?;
        if version != SNAPSHOT_VERSION {
            return Err(SerdeError(format!(
                "memo snapshot: version {version} != supported {SNAPSHOT_VERSION}"
            )));
        }
        let mut warps = Vec::new();
        for rec in as_array(
            v.get("warps")
                .ok_or_else(|| SerdeError("memo snapshot: missing warps".into()))?,
            "warps",
        )? {
            let f = as_array(&rec, "warp entry")?;
            if f.len() != 4 {
                return Err(SerdeError("warp entry: expected 4 fields".into()));
            }
            warps.push((
                u64::from_value(&f[0])?,
                WarpEntry {
                    cycles: unbits(&f[1])?,
                    ops: u64::from_value(&f[2])?,
                    metrics: metrics_from_value(&f[3])?,
                },
            ));
        }
        let mut blocks = Vec::new();
        for rec in as_array(
            v.get("blocks")
                .ok_or_else(|| SerdeError("memo snapshot: missing blocks".into()))?,
            "blocks",
        )? {
            let f = as_array(&rec, "block entry")?;
            if f.len() != 5 {
                return Err(SerdeError("block entry: expected 5 fields".into()));
            }
            let mut segments = Vec::new();
            for seg in as_array(&f[4], "segments")? {
                let s = as_array(&seg, "segment")?;
                if s.len() != 4 {
                    return Err(SerdeError("segment: expected 4 fields".into()));
                }
                let mut launches = Vec::new();
                for l in as_array(&s[3], "launches")? {
                    let pair = as_array(&l, "launch")?;
                    if pair.len() != 2 {
                        return Err(SerdeError("launch: expected 2 fields".into()));
                    }
                    launches.push((u32::from_value(&pair[0])?, unbits(&pair[1])?));
                }
                segments.push(SegmentTask {
                    span: unbits(&s[0])?,
                    work: unbits(&s[1])?,
                    wait_children: bool::from_value(&s[2])?,
                    launches,
                });
            }
            if segments.is_empty() {
                return Err(SerdeError("block entry: no segments".into()));
            }
            blocks.push((
                u64::from_value(&f[0])?,
                BlockEntry {
                    outcome: BlockOutcome {
                        warps: u32::from_value(&f[1])?,
                        segments,
                        // Stored entries are never themselves replays; the
                        // flag is set on the clone handed to a hitting block.
                        replayed: false,
                    },
                    ops: u64::from_value(&f[2])?,
                    metrics: metrics_from_value(&f[3])?,
                },
            ));
        }
        Ok(MemoSnapshot { warps, blocks })
    }
}

impl MemoCache {
    /// Export every entry as a [`MemoSnapshot`], sorted by key so the spill
    /// bytes are deterministic regardless of map iteration order.
    pub(crate) fn export(&self) -> MemoSnapshot {
        let mut warps: Vec<(u64, WarpEntry)> =
            self.warps.iter().map(|(&k, e)| (k, e.clone())).collect();
        let mut blocks: Vec<(u64, BlockEntry)> =
            self.blocks.iter().map(|(&k, e)| (k, e.clone())).collect();
        warps.sort_unstable_by_key(|&(k, _)| k);
        blocks.sort_unstable_by_key(|&(k, _)| k);
        MemoSnapshot { warps, blocks }
    }

    /// Import a snapshot's entries, respecting the cache caps and skipping
    /// keys already present (live entries were derived in-process and win).
    /// Launch-bearing block entries are rejected defensively: grid ids are
    /// run-specific, and the cache never stores them to begin with. Returns
    /// the number of entries actually inserted.
    pub(crate) fn absorb(&mut self, snap: &MemoSnapshot) -> usize {
        let mut inserted = 0;
        for (key, entry) in &snap.warps {
            if self.warps_full() {
                break;
            }
            if !self.warps.contains_key(key) {
                self.warps.insert(*key, entry.clone());
                inserted += 1;
            }
        }
        for (key, entry) in &snap.blocks {
            if self.blocks_full() {
                break;
            }
            if entry
                .outcome
                .segments
                .iter()
                .any(|s| !s.launches.is_empty())
            {
                continue;
            }
            if !self.blocks.contains_key(key) {
                self.blocks.insert(*key, entry.clone());
                inserted += 1;
            }
        }
        inserted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roll(ops: &[Op], base: u64) -> Fingerprint {
        let mut fp = Fingerprint::default();
        for &op in ops {
            match op {
                Op::Compute(n) => fp.compute(n),
                other => fp.record(other, base),
            }
        }
        fp
    }

    #[test]
    fn rolling_matches_posthoc_hash() {
        // The rolling update is fed unfused compute calls; the post-hoc
        // hash sees the fused trace. Both must agree.
        let fused = vec![
            Op::Compute(3),
            Op::GlobalRead { addr: 256, size: 4 },
            Op::Compute(2),
            Op::Sync,
            Op::SharedWrite { addr: 8 },
            Op::Compute(5),
        ];
        let mut fp = Fingerprint::default();
        fp.compute(1);
        fp.compute(2); // fuses into Compute(3)
        fp.record(Op::GlobalRead { addr: 256, size: 4 }, 256);
        fp.compute(2);
        fp.record(Op::Sync, 256);
        fp.record(Op::SharedWrite { addr: 8 }, 256);
        fp.compute(4);
        fp.compute(1); // fuses into Compute(5)
        assert_eq!(fp.value(), hash_ops(&fused, 256).0);
    }

    #[test]
    fn canonicalization_is_shift_invariant_per_line() {
        // Same access pattern shifted by a line multiple: identical hash.
        let a = [
            Op::GlobalRead {
                addr: 0x1000,
                size: 4,
            },
            Op::GlobalWrite {
                addr: 0x1040,
                size: 4,
            },
        ];
        let b = [
            Op::GlobalRead {
                addr: 0x1000 + 384,
                size: 4,
            },
            Op::GlobalWrite {
                addr: 0x1040 + 384,
                size: 4,
            },
        ];
        let base_a = 0x1000;
        let base_b = 0x1000 + 384; // 384 = 3 * 128, line-aligned shift
        assert_eq!(hash_ops(&a, base_a).0, hash_ops(&b, base_b).0);
        // A shift that is NOT line-aligned leaves a different canonical
        // offset from the rounded-down base — it must miss.
        let c = [
            Op::GlobalRead {
                addr: 0x1000 + 64,
                size: 4,
            },
            Op::GlobalWrite {
                addr: 0x1040 + 64,
                size: 4,
            },
        ];
        let base_c = 0x1000; // 0x1040 rounded down to the 128-byte line
        assert_ne!(hash_ops(&a, base_a).0, hash_ops(&c, base_c).0);
    }

    #[test]
    fn coalescing_relevant_fields_do_not_collide() {
        // Same op kinds, different intra-line offsets: the aligner derives
        // different transaction counts from these, so they must not
        // collide on the fingerprint either.
        let strided = [
            Op::GlobalRead { addr: 0, size: 4 },
            Op::GlobalRead { addr: 4, size: 4 },
        ];
        let scattered = [
            Op::GlobalRead { addr: 0, size: 4 },
            Op::GlobalRead {
                addr: 4096,
                size: 4,
            },
        ];
        assert_ne!(hash_ops(&strided, 0).0, hash_ops(&scattered, 0).0);
        // Different access size, same address.
        let wide = [Op::GlobalRead { addr: 0, size: 8 }];
        let narrow = [Op::GlobalRead { addr: 0, size: 4 }];
        assert_ne!(hash_ops(&wide, 0).0, hash_ops(&narrow, 0).0);
        // Reads and writes of the same address are distinct kinds.
        let read = [Op::GlobalRead { addr: 0, size: 4 }];
        let write = [Op::GlobalWrite { addr: 0, size: 4 }];
        assert_ne!(hash_ops(&read, 0).0, hash_ops(&write, 0).0);
        // Shared offsets and bank structure.
        let bank0 = [Op::SharedRead { addr: 0 }];
        let bank1 = [Op::SharedRead { addr: 128 }];
        assert_ne!(hash_ops(&bank0, 0).0, hash_ops(&bank1, 0).0);
    }

    #[test]
    fn compute_runs_hash_by_total_not_call_count() {
        let mut a = Fingerprint::default();
        a.compute(5);
        let mut b = Fingerprint::default();
        for _ in 0..5 {
            b.compute(1);
        }
        assert_eq!(a.value(), b.value());
        let mut c = Fingerprint::default();
        c.compute(4);
        assert_ne!(a.value(), c.value());
    }

    #[test]
    fn launches_set_the_exclusion_flag_and_ignore_grid_ids() {
        let x = roll(&[Op::Launch { grid: 3 }], 0);
        let y = roll(&[Op::Launch { grid: 900 }], 0);
        assert!(x.has_launch && y.has_launch);
        // The id is run-specific and excluded from the hash.
        assert_eq!(x.value(), y.value());
        assert!(hash_ops(&[Op::Launch { grid: 7 }], 0).1);
        assert!(!hash_ops(&[Op::Sync], 0).1);
    }

    #[test]
    fn barrier_kinds_are_distinct() {
        assert_ne!(
            hash_ops(&[Op::Sync], 0).0,
            hash_ops(&[Op::SyncChildren], 0).0
        );
    }

    #[test]
    fn warp_key_is_order_and_count_sensitive() {
        assert_ne!(warp_key([1, 2]), warp_key([2, 1]));
        assert_ne!(warp_key([1, 2]), warp_key([1, 2, SEED]));
        assert_eq!(warp_key([1, 2]), warp_key([1, 2]));
    }

    #[test]
    fn block_key_depends_on_config() {
        let mut fps = BlockFps::default();
        fps.reset(4);
        let a = block_key(&fps, &LaunchConfig::new(2, 4));
        let b = block_key(&fps, &LaunchConfig::new(3, 4));
        let c = block_key(&fps, &LaunchConfig::with_shared(2, 4, 64));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, block_key(&fps, &LaunchConfig::new(2, 4)));
    }

    #[test]
    fn cache_caps_stop_inserting() {
        let mut cache = MemoCache::default();
        let entry = || WarpEntry {
            cycles: 1.0,
            metrics: KernelMetrics::default(),
            ops: 1,
        };
        cache.insert_warp(1, entry());
        cache.insert_warp(2, entry());
        assert_eq!(cache.warps.len(), 2);
        // The cap itself is large; just verify the guard logic compiles and
        // respects an existing entry refresh.
        cache.insert_warp(1, entry());
        assert_eq!(cache.warps.len(), 2);
    }

    #[test]
    fn class_stats_enable_and_demote() {
        let mut c = ClassStats::default();
        // Starts enabled: every block fingerprints, so a regular workload's
        // intra-grid block hits keep it on from the very first grid.
        assert!(c.enabled && c.fp_on(1_000_000));
        // A hot window (>= 50% block hits) keeps full fingerprinting on.
        for hit in [false, true, true, true] {
            c.probe(hit);
        }
        assert!(c.enabled);
        c.eval();
        assert!(c.enabled);
        // A cold run demotes *mid-grid*, as soon as the window is large
        // enough — the remaining blocks of a hostile grid trace bare.
        for _ in 0..EVAL_MIN {
            c.probe(false);
        }
        assert!(!c.enabled);
        assert!(c.fp_on(0) && c.fp_on(PROBE_BLOCKS - 1));
        assert!(!c.fp_on(PROBE_BLOCKS));
        // The boundary eval reaches the same verdict from the full window.
        c.eval();
        assert!(!c.enabled);
        // A recovered probe window (>= 50%) re-enables it — but only at the
        // grid boundary, since bypassed blocks never fingerprinted.
        for hit in [true, true, true, false] {
            c.probe(hit);
        }
        assert!(!c.enabled);
        c.eval();
        assert!(c.enabled);
        // Tiny windows (below EVAL_MIN) defer the decision.
        let mut d = ClassStats::default();
        for _ in 0..EVAL_MIN - 1 {
            d.probe(false);
        }
        assert!(d.enabled);
        d.eval();
        assert!(d.enabled && d.window_attempts == EVAL_MIN - 1);
    }

    #[test]
    fn snapshot_roundtrip_is_bitwise_exact() {
        // Build a cache with adversarial float values — negative zero,
        // subnormals, infinities, NaN — and prove export → Value → import
        // restores every bit. (The JSON text layer is exercised end-to-end
        // by crates/serve's persistence tests; here the Value layer, where
        // the bit encoding lives, is what matters.)
        let mut cache = MemoCache::default();
        let mut metrics = KernelMetrics {
            grids: 1,
            blocks: 2,
            threads: 64,
            issue_slots: f64::INFINITY,
            active_slots: -0.0,
            work_cycles: f64::from_bits(1), // smallest subnormal
            ..Default::default()
        };
        metrics.stalls.compute = f64::NAN;
        metrics.stalls.gmem = 1.0e-300;
        cache.insert_warp(
            7,
            WarpEntry {
                cycles: f64::NAN,
                metrics: metrics.clone(),
                ops: 42,
            },
        );
        cache.insert_block(
            9,
            BlockEntry {
                outcome: BlockOutcome {
                    warps: 3,
                    segments: vec![SegmentTask {
                        span: -0.0,
                        work: f64::MIN_POSITIVE / 2.0,
                        wait_children: true,
                        launches: vec![],
                    }],
                    replayed: false,
                },
                metrics,
                ops: 99,
            },
        );
        let snap = cache.export();
        let restored = MemoSnapshot::from_value(&snap.to_value()).expect("roundtrip");
        assert_eq!(snap, restored);
        assert_eq!(restored.warp_entries(), 1);
        assert_eq!(restored.block_entries(), 1);
        // Absorbing into a fresh cache re-exports the identical snapshot.
        let mut fresh = MemoCache::default();
        assert_eq!(fresh.absorb(&restored), 2);
        assert_eq!(fresh.export(), snap);
        // Absorb never overwrites live entries and is idempotent.
        assert_eq!(fresh.absorb(&restored), 0);
    }

    #[test]
    fn snapshot_rejects_bad_shapes() {
        use serde::Value;
        // Wrong version.
        let v = Value::Object(vec![
            ("version".into(), Value::Int(999)),
            ("warps".into(), Value::Array(vec![])),
            ("blocks".into(), Value::Array(vec![])),
        ]);
        assert!(MemoSnapshot::from_value(&v).is_err());
        // Missing fields.
        assert!(MemoSnapshot::from_value(&Value::Object(vec![])).is_err());
        // Malformed entry record.
        let v = Value::Object(vec![
            ("version".into(), Value::Int(1)),
            ("warps".into(), Value::Array(vec![Value::Array(vec![])])),
            ("blocks".into(), Value::Array(vec![])),
        ]);
        assert!(MemoSnapshot::from_value(&v).is_err());
        // Launch-bearing block entries are skipped on absorb (grid ids are
        // run-specific), not trusted.
        let mut snap = MemoSnapshot::default();
        snap.blocks.push((
            1,
            BlockEntry {
                outcome: BlockOutcome {
                    warps: 1,
                    segments: vec![SegmentTask {
                        span: 1.0,
                        work: 1.0,
                        wait_children: false,
                        launches: vec![(3, 0.5)],
                    }],
                    replayed: false,
                },
                metrics: KernelMetrics::default(),
                ops: 1,
            },
        ));
        let mut cache = MemoCache::default();
        assert_eq!(cache.absorb(&snap), 0);
        assert!(cache.blocks.is_empty());
    }

    #[test]
    fn block_fps_reset_clears_lanes() {
        let mut fps = BlockFps::default();
        fps.reset(2);
        fps.lanes[0].record(Op::Launch { grid: 1 }, 0);
        fps.base = Some(128);
        assert!(fps.any_launch());
        fps.reset(3);
        assert!(!fps.any_launch());
        assert_eq!(fps.base, None);
        assert_eq!(fps.lanes.len(), 3);
        assert_eq!(fps.lanes[0].value(), Fingerprint::default().value());
    }
}
