//! npar-prof: the timeline profiler.
//!
//! When enabled via [`crate::Gpu::with_profiler`], the event-driven
//! scheduler records the timeline it already computes — kernel
//! release/start/completion, per-SM block residency spans (with
//! memo-replayed blocks marked distinctly), and device-side child launches
//! linked to their parent block — into a [`Profile`]. The profile is
//! exported as Chrome-trace/Perfetto JSON ([`Profile::to_chrome_trace`],
//! loadable in `chrome://tracing` or <https://ui.perfetto.dev>) or a
//! plain-text summary ([`Profile::summary`]).
//!
//! Profiling is observational: it never feeds back into timing, and with it
//! disabled the simulator takes no profiling branches at all, so every
//! [`crate::Report`] is bit-identical with the profiler on or off
//! (`tests/profiler_differential.rs` pins this). All recorded times are
//! modeled device cycles, continuous across [`crate::Gpu::synchronize`]
//! batches until the profile is drained with [`crate::Gpu::take_profile`].
//!
//! The scheduler's fast paths (DESIGN.md §11) splice per-block spans into
//! intervals they fast-forward through: the wheel invokes the exact same
//! collector hooks, in the same order, at the same modeled times as the
//! event-by-event path, so exported Chrome traces are byte-identical with
//! fast paths on or off (`tests/sched_differential.rs` pins this too).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::config::DeviceConfig;
use crate::engine::{GridTask, Origin};

/// Lifetime of one grid on the modeled timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelSpan {
    /// Kernel name.
    pub name: String,
    /// Grid id, unique within the profile (monotonic across batches).
    pub grid: u32,
    /// For device-launched grids, the launching `(grid, block)`.
    pub parent: Option<(u32, u32)>,
    /// Cycle the grid became schedulable (host launch overhead or
    /// pending-launch-pool service completed).
    pub release: f64,
    /// Cycle the grid's first block was dispatched to an SM.
    pub start: f64,
    /// Cycle the grid (and all its joined children) completed.
    pub end: f64,
}

/// One contiguous residency of a block on an SM. A block that joins child
/// grids is swapped out while it waits, so it can contribute several spans
/// (the later ones flagged `resumed`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockSpan {
    /// Grid id (indexes the profile's kernel spans).
    pub grid: u32,
    /// Block index within the grid.
    pub block: u32,
    /// SM the block was resident on.
    pub sm: u32,
    /// Dispatch cycle.
    pub start: f64,
    /// Vacate cycle (segment work done, or swapped out to wait for
    /// children).
    pub end: f64,
    /// Whether this span is a swap-restore of a parent block that was
    /// waiting on children.
    pub resumed: bool,
    /// Whether the block's timing was replayed from the alignment memo
    /// cache rather than aligned live (see DESIGN.md §8).
    pub memo: bool,
}

/// A device-side (dynamic-parallelism) launch edge: parent block → child
/// grid. Rendered as a flow arrow in the Chrome-trace export.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaunchFlow {
    /// Launching grid.
    pub parent_grid: u32,
    /// Launching block within that grid.
    pub parent_block: u32,
    /// SM the launching block was resident on at the launch instruction.
    pub sm: u32,
    /// Launched grid.
    pub child_grid: u32,
    /// Cycle the launch instruction completed in the parent.
    pub launch: f64,
    /// Cycle the child's first block was dispatched.
    pub child_start: f64,
}

/// The recorded timeline of every batch since the profiler was enabled (or
/// last drained). Produced by [`crate::Gpu::take_profile`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Device name the timeline was recorded on.
    pub device: String,
    /// Device core clock in GHz (converts cycles to trace microseconds).
    pub clock_ghz: f64,
    /// One span per grid, in launch-registration order; `kernels[g].grid
    /// == g` by construction.
    pub kernels: Vec<KernelSpan>,
    /// Per-SM block residency spans, in completion order.
    pub blocks: Vec<BlockSpan>,
    /// Parent→child dynamic-parallelism launch edges.
    pub flows: Vec<LaunchFlow>,
}

impl Profile {
    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }

    /// Last recorded cycle across all spans.
    pub fn makespan_cycles(&self) -> f64 {
        self.kernels.iter().map(|k| k.end).fold(0.0, f64::max)
    }

    /// Kernel name of a grid id (empty string if unknown).
    pub fn kernel_name(&self, grid: u32) -> &str {
        self.kernels
            .get(grid as usize)
            .filter(|k| k.grid == grid)
            .map_or("", |k| k.name.as_str())
    }

    fn us(&self, cycles: f64) -> f64 {
        // cycles / (GHz * 1e9) seconds = cycles / (GHz * 1e3) microseconds.
        let ghz = if self.clock_ghz > 0.0 {
            self.clock_ghz
        } else {
            1.0
        };
        cycles / (ghz * 1e3)
    }

    /// Export the timeline in the Chrome trace-event JSON format, loadable
    /// in `chrome://tracing` or Perfetto. Process 0 holds one track per SM
    /// with the block residency spans (memo-replayed spans carry the
    /// `block,memo` category); process 1 holds one track per grid with the
    /// kernel spans; device-side launches are drawn as flow arrows from
    /// the launching block's track to the child grid's span. Timestamps
    /// are modeled microseconds at the device clock.
    pub fn to_chrome_trace(&self) -> String {
        let mut ev: Vec<String> =
            Vec::with_capacity(self.kernels.len() + self.blocks.len() + 2 * self.flows.len() + 16);
        ev.push(format!(
            r#"{{"ph":"M","name":"process_name","pid":0,"args":{{"name":"SMs ({})"}}}}"#,
            escape(&self.device)
        ));
        ev.push(r#"{"ph":"M","name":"process_name","pid":1,"args":{"name":"grids"}}"#.to_string());
        let max_sm = self.blocks.iter().map(|b| b.sm).max();
        if let Some(max_sm) = max_sm {
            for sm in 0..=max_sm {
                ev.push(format!(
                    r#"{{"ph":"M","name":"thread_name","pid":0,"tid":{sm},"args":{{"name":"SM {sm}"}}}}"#
                ));
            }
        }
        for k in &self.kernels {
            let origin = match k.parent {
                Some((g, b)) => format!(r#""device","parent_grid":{g},"parent_block":{b}"#),
                None => r#""host""#.to_string(),
            };
            ev.push(format!(
                r#"{{"name":"{}","cat":"grid","ph":"X","ts":{},"dur":{},"pid":1,"tid":{},"args":{{"grid":{},"release_us":{},"origin":{origin}}}}}"#,
                escape(&k.name),
                self.us(k.start),
                self.us(k.end - k.start),
                k.grid,
                k.grid,
                self.us(k.release),
            ));
        }
        for b in &self.blocks {
            let cat = if b.memo { "block,memo" } else { "block" };
            ev.push(format!(
                r#"{{"name":"{}","cat":"{cat}","ph":"X","ts":{},"dur":{},"pid":0,"tid":{},"args":{{"grid":{},"block":{},"resumed":{},"memo":{}}}}}"#,
                escape(self.kernel_name(b.grid)),
                self.us(b.start),
                self.us(b.end - b.start),
                b.sm,
                b.grid,
                b.block,
                b.resumed,
                b.memo,
            ));
        }
        for (i, f) in self.flows.iter().enumerate() {
            ev.push(format!(
                r#"{{"name":"launch","cat":"dp","ph":"s","id":{i},"pid":0,"tid":{},"ts":{}}}"#,
                f.sm,
                self.us(f.launch),
            ));
            ev.push(format!(
                r#"{{"name":"launch","cat":"dp","ph":"f","bp":"e","id":{i},"pid":1,"tid":{},"ts":{}}}"#,
                f.child_grid,
                self.us(f.child_start),
            ));
        }
        let mut out = String::with_capacity(ev.iter().map(|e| e.len() + 2).sum::<usize>() + 64);
        out.push_str("{\"traceEvents\":[\n");
        for (i, e) in ev.iter().enumerate() {
            out.push_str(e);
            if i + 1 < ev.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }

    /// Plain-text per-kernel summary of the timeline: grid/span counts and
    /// SM-resident time per kernel name.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "npar-prof: {} @ {:.3} GHz",
            if self.device.is_empty() {
                "(no device)"
            } else {
                &self.device
            },
            self.clock_ghz
        );
        let host = self.kernels.iter().filter(|k| k.parent.is_none()).count();
        let resumed = self.blocks.iter().filter(|b| b.resumed).count();
        let memo = self.blocks.iter().filter(|b| b.memo).count();
        let _ = writeln!(
            s,
            "  grids {} ({} host, {} device) | block spans {} ({} resumed, {} memo-replayed) \
             | flow arrows {} | makespan {:.0} cycles ({:.1} us)",
            self.kernels.len(),
            host,
            self.kernels.len() - host,
            self.blocks.len(),
            resumed,
            memo,
            self.flows.len(),
            self.makespan_cycles(),
            self.us(self.makespan_cycles()),
        );
        // Per-kernel aggregates.
        #[derive(Default)]
        struct Agg {
            grids: u64,
            spans: u64,
            resident: f64,
        }
        let mut per: BTreeMap<&str, Agg> = BTreeMap::new();
        for k in &self.kernels {
            per.entry(&k.name).or_default().grids += 1;
        }
        for b in &self.blocks {
            let a = per.entry(self.kernel_name(b.grid)).or_default();
            a.spans += 1;
            a.resident += b.end - b.start;
        }
        let _ = writeln!(
            s,
            "  {:<28} {:>6} {:>7} {:>12}",
            "kernel", "grids", "spans", "resident_us"
        );
        for (name, a) in &per {
            let _ = writeln!(
                s,
                "  {:<28} {:>6} {:>7} {:>12.1}",
                name,
                a.grids,
                a.spans,
                self.us(a.resident)
            );
        }
        s
    }
}

/// Minimal JSON string escaping for kernel/device names.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Batch-local event collector the scheduler feeds. Times are
/// batch-relative; [`Collector::finish`] rebases them onto the profile's
/// continuous clock and resolves grid ids to profile-global ids.
#[derive(Debug)]
pub(crate) struct Collector {
    release: Vec<f64>,
    start: Vec<f64>,
    end: Vec<f64>,
    open: BTreeMap<(usize, u32), (u32, f64, bool)>,
    spans: Vec<BlockSpan>,
    flows: Vec<LaunchFlow>,
}

impl Collector {
    pub(crate) fn new(num_grids: usize) -> Self {
        Collector {
            release: vec![f64::NAN; num_grids],
            start: vec![f64::NAN; num_grids],
            end: vec![f64::NAN; num_grids],
            open: BTreeMap::new(),
            spans: Vec::new(),
            flows: Vec::new(),
        }
    }

    pub(crate) fn on_release(&mut self, g: usize, t: f64) {
        self.release[g] = t;
    }

    pub(crate) fn on_grid_start(&mut self, g: usize, t: f64) {
        if self.start[g].is_nan() {
            self.start[g] = t;
        }
    }

    pub(crate) fn on_grid_done(&mut self, g: usize, t: f64) {
        self.end[g] = t;
    }

    pub(crate) fn on_block_start(&mut self, g: usize, b: u32, sm: usize, t: f64, resumed: bool) {
        self.open.insert((g, b), (sm as u32, t, resumed));
    }

    pub(crate) fn on_block_end(&mut self, g: usize, b: u32, t: f64) {
        if let Some((sm, start, resumed)) = self.open.remove(&(g, b)) {
            self.spans.push(BlockSpan {
                grid: g as u32,
                block: b,
                sm,
                start,
                end: t,
                resumed,
                memo: false, // filled in finish() from the block outcome
            });
        }
    }

    pub(crate) fn on_launch(&mut self, g: usize, b: u32, sm: usize, child: usize, t: f64) {
        self.flows.push(LaunchFlow {
            parent_grid: g as u32,
            parent_block: b,
            sm: sm as u32,
            child_grid: child as u32,
            launch: t,
            child_start: f64::NAN, // resolved in finish()
        });
    }

    /// Splice another collector's recordings into this one. Used by the
    /// domain-parallel timing pass (DESIGN.md §13), which records one
    /// collector per timing domain and concatenates them in domain commit
    /// order: per-grid release/start/end merge by presence (each grid
    /// belongs to exactly one domain), spans and flows append in call
    /// order. With domains strictly disjoint in simulated time the
    /// concatenation is exactly the serial collector's call order, so the
    /// merged profile is byte-identical to a single-threaded run.
    pub(crate) fn absorb(&mut self, other: Collector) {
        debug_assert!(
            other.open.is_empty(),
            "absorbing a collector with open block spans"
        );
        for (dst, src) in self.release.iter_mut().zip(&other.release) {
            if !src.is_nan() {
                *dst = *src;
            }
        }
        for (dst, src) in self.start.iter_mut().zip(&other.start) {
            if !src.is_nan() {
                *dst = *src;
            }
        }
        for (dst, src) in self.end.iter_mut().zip(&other.end) {
            if !src.is_nan() {
                *dst = *src;
            }
        }
        self.spans.extend(other.spans);
        self.flows.extend(other.flows);
    }

    /// Fold this batch into `out`: rebase times by `offset` cycles, shift
    /// grid ids past the profile's existing grids, resolve child start
    /// times and memo flags.
    pub(crate) fn finish(mut self, grids: &[GridTask], device: &DeviceConfig, out: &mut Profile) {
        debug_assert!(self.open.is_empty(), "blocks left open at batch end");
        if out.device.is_empty() {
            out.device.clone_from(&device.name);
            out.clock_ghz = device.clock_ghz;
        }
        let offset = out.makespan_cycles();
        let base = out.kernels.len() as u32;
        for (g, task) in grids.iter().enumerate() {
            let parent = match task.origin {
                Origin::Host { .. } => None,
                Origin::Device { parent, block, .. } => Some((base + parent as u32, block)),
            };
            out.kernels.push(KernelSpan {
                name: task.name.clone(),
                grid: base + g as u32,
                parent,
                release: self.release[g] + offset,
                start: self.start[g] + offset,
                end: self.end[g] + offset,
            });
        }
        for mut s in self.spans.drain(..) {
            s.memo = grids[s.grid as usize].blocks[s.block as usize].replayed;
            s.grid += base;
            s.start += offset;
            s.end += offset;
            out.blocks.push(s);
        }
        for mut f in self.flows.drain(..) {
            f.child_start = self.start[f.child_grid as usize] + offset;
            f.parent_grid += base;
            f.child_grid += base;
            f.launch += offset;
            out.flows.push(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Profile {
        Profile {
            device: "test-dev".into(),
            clock_ghz: 1.0,
            kernels: vec![
                KernelSpan {
                    name: "parent".into(),
                    grid: 0,
                    parent: None,
                    release: 10.0,
                    start: 12.0,
                    end: 100.0,
                },
                KernelSpan {
                    name: "child".into(),
                    grid: 1,
                    parent: Some((0, 0)),
                    release: 40.0,
                    start: 45.0,
                    end: 90.0,
                },
            ],
            blocks: vec![
                BlockSpan {
                    grid: 0,
                    block: 0,
                    sm: 0,
                    start: 12.0,
                    end: 40.0,
                    resumed: false,
                    memo: false,
                },
                BlockSpan {
                    grid: 1,
                    block: 0,
                    sm: 1,
                    start: 45.0,
                    end: 90.0,
                    resumed: false,
                    memo: true,
                },
                BlockSpan {
                    grid: 0,
                    block: 0,
                    sm: 0,
                    start: 92.0,
                    end: 100.0,
                    resumed: true,
                    memo: false,
                },
            ],
            flows: vec![LaunchFlow {
                parent_grid: 0,
                parent_block: 0,
                sm: 0,
                child_grid: 1,
                launch: 30.0,
                child_start: 45.0,
            }],
        }
    }

    #[test]
    fn chrome_trace_contains_spans_flows_and_metadata() {
        let p = sample();
        let t = p.to_chrome_trace();
        assert!(t.contains(r#""traceEvents""#));
        assert!(t.contains(r#""name":"SM 1""#));
        assert!(t.contains(r#""name":"parent","cat":"grid""#));
        assert!(t.contains(r#""cat":"block,memo""#));
        assert!(t.contains(r#""ph":"s""#));
        assert!(t.contains(r#""ph":"f","bp":"e""#));
        assert!(t.contains(r#""origin":"device","parent_grid":0"#));
    }

    #[test]
    fn summary_counts_spans() {
        let p = sample();
        let s = p.summary();
        assert!(s.contains("grids 2 (1 host, 1 device)"), "{s}");
        assert!(s.contains("block spans 3 (1 resumed, 1 memo-replayed)"));
        assert!(s.contains("flow arrows 1"));
        assert!(s.contains("parent"));
        assert!((p.makespan_cycles() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profile() {
        let p = Profile::default();
        assert!(p.is_empty());
        assert_eq!(p.makespan_cycles(), 0.0);
        assert!(p.to_chrome_trace().contains("traceEvents"));
        assert!(p.summary().contains("grids 0"));
        assert_eq!(p.kernel_name(5), "");
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("x\ny"), "x\\u000ay");
    }
}
