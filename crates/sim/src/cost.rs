//! Cost model: cycle prices for every event the simulator times.
//!
//! All constants live here and are **fixed across every experiment** in the
//! reproduction (see DESIGN.md §4). The template comparisons the paper makes
//! do not depend on the absolute values: divergence, coalescing, atomic
//! serialization, launch counts and scheduling all emerge from mechanism.
//! The constants only set the exchange rates between instruction classes and
//! between the GPU and CPU clocks.
//!
//! The timing pass treats every constant as an opaque `f64`: its fast
//! paths (DESIGN.md §11) compare and combine event times bitwise, never
//! assuming costs are integral, commensurable, or even distinct, so any
//! cost scaling (e.g. `ablation_dp_overhead`) preserves fast/slow-path
//! equivalence.

use serde::{Deserialize, Serialize};

/// How warp divergence is timed (ablation knob, DESIGN.md §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DivergenceModel {
    /// Lockstep alignment of lane traces: divergent kinds serialize,
    /// coalescing and conflicts are computed per issue group (the faithful
    /// SIMT model, and the default).
    #[default]
    Lockstep,
    /// Each lane costed independently, warp time = slowest lane; no
    /// divergence, coalescing or conflict effects. The naive model a
    /// simulator without SIMT awareness would use — kept as an ablation to
    /// show the lockstep machinery is what exposes the paper's phenomena.
    MaxLane,
}

/// Cycle prices for simulated GPU events plus the serial-CPU op model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cycles per warp-wide arithmetic instruction.
    pub alu_cycles: f64,
    /// Fixed issue + pipelined-latency share per global memory instruction.
    pub mem_base_cycles: f64,
    /// Cycles per 128-byte global-memory transaction. Uncoalesced accesses
    /// pay this once per distinct segment touched by the warp.
    pub mem_transaction_cycles: f64,
    /// Cycles per shared-memory access (multiplied by bank-conflict replays).
    pub shared_cycles: f64,
    /// Base cycles for a warp-wide atomic instruction.
    pub atomic_base_cycles: f64,
    /// Extra cycles per additional lane targeting the *same address* within
    /// one warp atomic (intra-warp serialization).
    pub atomic_conflict_cycles: f64,
    /// Cheaper serialization for shared-memory atomics.
    pub atomic_shared_conflict_cycles: f64,
    /// Cycles for a block-wide barrier (`__syncthreads`).
    pub sync_cycles: f64,
    /// Host-side kernel launch overhead (driver + dispatch), in GPU cycles.
    /// ~5 µs at the K20 clock.
    pub host_launch_cycles: f64,
    /// Device-side (dynamic parallelism) launch latency: delay between the
    /// launching instruction and the child grid becoming schedulable.
    /// Kepler-era measurements put this in the tens of microseconds when
    /// many launches queue up [Wang & Yalamanchili, IISWC'14]; the queuing
    /// component emerges from the scheduler, this is the per-launch floor.
    pub device_launch_latency_cycles: f64,
    /// Cycles spent *in the parent warp* per device-side launch (parameter
    /// marshalling into the pending-launch pool). Launches by multiple lanes
    /// of one warp serialize, so a warp where all 32 lanes launch pays 32x.
    pub device_launch_issue_cycles: f64,
    /// Device-wide pending-launch-pool service time: the Kepler runtime
    /// processes device-side launches through a single software-managed
    /// queue, so nested grids become schedulable at most one per this many
    /// cycles. This queueing collapse under thousands of small launches is
    /// the dominant dpar-naive pathology measured by Wang & Yalamanchili
    /// [IISWC'14] and observed in the paper's Figure 5.
    pub device_launch_service_cycles: f64,
    /// Service-time multiplier once the pending-launch backlog exceeds the
    /// device's fixed pool (`pending_launch_limit`): the Kepler runtime
    /// falls back to a slow, memory-virtualized pool. This overflow regime
    /// is what makes launch storms (dpar-naive, recursive BFS, simple
    /// quicksort) collapse on real hardware.
    pub pool_overflow_factor: f64,
    /// Cycles to restore a parent block that was swapped out while waiting
    /// for its children (Kepler virtualizes waiting parents; the save +
    /// restore round trip is a large part of why in-kernel synchronization
    /// after a nested launch is expensive).
    pub swap_restore_cycles: f64,
    /// Cost model for the serial CPU baselines.
    pub cpu: CpuCostModel,
    /// Divergence-timing ablation switch.
    pub divergence: DivergenceModel,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            alu_cycles: 1.0,
            mem_base_cycles: 8.0,
            mem_transaction_cycles: 12.0,
            shared_cycles: 2.0,
            atomic_base_cycles: 24.0,
            atomic_conflict_cycles: 20.0,
            atomic_shared_conflict_cycles: 4.0,
            sync_cycles: 12.0,
            host_launch_cycles: 3_500.0,
            device_launch_latency_cycles: 2_500.0,
            device_launch_issue_cycles: 180.0,
            device_launch_service_cycles: 2_000.0,
            pool_overflow_factor: 16.0,
            swap_restore_cycles: 800.0,
            cpu: CpuCostModel::default(),
            divergence: DivergenceModel::default(),
        }
    }
}

/// Cycle prices per operation class for the instrumented serial CPU
/// reference implementations (see [`crate::cpu::CpuCounter`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuCostModel {
    /// Arithmetic / logic op.
    pub alu_cycles: f64,
    /// Memory load, averaged over the cache hierarchy for the pointer-chasing
    /// access patterns of irregular codes.
    pub load_cycles: f64,
    /// Memory store.
    pub store_cycles: f64,
    /// Conditional branch (includes average misprediction share).
    pub branch_cycles: f64,
    /// Function-call overhead (used by the recursive CPU baselines).
    pub call_cycles: f64,
}

impl Default for CpuCostModel {
    fn default() -> Self {
        CpuCostModel {
            alu_cycles: 1.0,
            load_cycles: 4.0,
            store_cycles: 2.0,
            branch_cycles: 1.5,
            call_cycles: 10.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let c = CostModel::default();
        for v in [
            c.alu_cycles,
            c.mem_base_cycles,
            c.mem_transaction_cycles,
            c.shared_cycles,
            c.atomic_base_cycles,
            c.atomic_conflict_cycles,
            c.atomic_shared_conflict_cycles,
            c.sync_cycles,
            c.host_launch_cycles,
            c.device_launch_latency_cycles,
            c.device_launch_issue_cycles,
        ] {
            assert!(v > 0.0);
        }
    }

    #[test]
    fn launch_overheads_dominate_single_instructions() {
        // The pathology of dpar-naive rests on launches being orders of
        // magnitude pricier than ordinary instructions; pin that invariant.
        let c = CostModel::default();
        assert!(c.device_launch_issue_cycles > 10.0 * c.mem_transaction_cycles);
        assert!(c.host_launch_cycles > 10.0 * c.device_launch_issue_cycles);
    }

    #[test]
    fn serde_roundtrip() {
        let c = CostModel::default();
        let s = serde_json::to_string(&c).unwrap();
        let back: CostModel = serde_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }
}
