//! Block finalization: segment the block's thread traces at barriers and
//! derive per-segment timing via warp alignment.

use crate::config::DeviceConfig;
use crate::cost::CostModel;
use crate::memo::{block_key, hash_ops, warp_key, BlockEntry, BlockFps, BlockMemo, WarpEntry};
use crate::profiler::KernelMetrics;
use crate::trace::Op;
use crate::warp::{align_warp, AlignScratch};

/// Warp-cache access during block alignment. The serial path consults the
/// engine's cache directly ([`BlockMemo`]); the parallel path gives each
/// worker a frozen snapshot plus a private overlay whose inserts are
/// published in canonical block order at the merge
/// ([`crate::parallel::WorkerMemo`]). A warp replay merges the entry's
/// stored delta, which is bitwise identical to a live alignment of the same
/// trace, so *which* view served a hit never shows in the metrics — only in
/// the hit/miss statistics.
pub(crate) trait WarpMemoView {
    /// The block's fingerprints (warp keys + canonical address base).
    fn fps(&self) -> &BlockFps;
    /// Attempt to replay `key`: on a hit, merge the stored per-warp delta
    /// into `delta`, record the hit, and return the warp cycles.
    fn replay(&mut self, key: u64, delta: &mut KernelMetrics) -> Option<f64>;
    /// Record a cacheable miss.
    fn miss(&mut self);
    /// Whether the cache stopped accepting entries (skip the per-warp delta
    /// bookkeeping that only pays off if the entry could be stored).
    fn full(&self) -> bool;
    /// Store a freshly aligned warp.
    fn store(&mut self, key: u64, entry: WarpEntry);
}

impl WarpMemoView for BlockMemo<'_> {
    fn fps(&self) -> &BlockFps {
        self.fps
    }

    fn replay(&mut self, key: u64, delta: &mut KernelMetrics) -> Option<f64> {
        let e = self.cache.warps.get(&key)?;
        self.stats.warp_hits += 1;
        self.stats.ops_replayed += e.ops;
        delta.merge(&e.metrics);
        Some(e.cycles)
    }

    fn miss(&mut self) {
        self.stats.warp_misses += 1;
    }

    fn full(&self) -> bool {
        self.cache.warps_full()
    }

    fn store(&mut self, key: u64, entry: WarpEntry) {
        self.cache.insert_warp(key, entry);
    }
}

/// Timing of one barrier-delimited segment of a block.
#[derive(Debug, Clone, Default)]
pub(crate) struct SegmentTask {
    /// Critical-path cycles (max over the block's warps).
    pub span: f64,
    /// Total warp cycles (sum over warps) — the issue work the SM must
    /// deliver.
    pub work: f64,
    /// Whether the block must wait for all its previously launched child
    /// grids before this segment starts (`SyncChildren` boundary).
    pub wait_children: bool,
    /// Device launches performed in this segment: (grid id, cycle offset
    /// from segment start).
    pub launches: Vec<(u32, f64)>,
}

/// Timing summary of one executed block.
#[derive(Debug, Clone)]
pub(crate) struct BlockOutcome {
    /// Resident warps the block occupies.
    pub warps: u32,
    /// Barrier segments in execution order (at least one).
    pub segments: Vec<SegmentTask>,
    /// Whether this outcome was replayed from the block-level memo cache
    /// rather than aligned live. Purely observational — the timeline
    /// profiler marks replayed spans distinctly; nothing else reads it.
    pub replayed: bool,
}

impl BlockOutcome {
    /// Total work cycles across segments.
    #[cfg(test)]
    pub(crate) fn work(&self) -> f64 {
        self.segments.iter().map(|s| s.work).sum()
    }

    /// Whether this block is interchangeable with `other` for the timing
    /// pass: same resident-warp footprint and a single, launch-free,
    /// join-free segment with bitwise-identical span/work. Grids whose
    /// blocks are pairwise uniform qualify for the scheduler's
    /// homogeneous-grid fast-forward (DESIGN.md §11). Memo-replayed blocks
    /// of one grid are typically uniform by construction: replays of one
    /// cache entry are clones of the same stored outcome.
    pub(crate) fn timing_uniform_with(&self, other: &BlockOutcome) -> bool {
        fn simple(seg: &SegmentTask) -> bool {
            !seg.wait_children && seg.launches.is_empty()
        }
        self.warps == other.warps
            && self.segments.len() == 1
            && other.segments.len() == 1
            && simple(&self.segments[0])
            && simple(&other.segments[0])
            && self.segments[0].span.to_bits() == other.segments[0].span.to_bits()
            && self.segments[0].work.to_bits() == other.segments[0].work.to_bits()
    }
}

/// Align one warp's slices over one segment, consulting the memo cache.
///
/// `key` is `Some` when the warp is cacheable: memoization is on and no
/// lane of the warp (in this segment) launched a child grid. Launch-bearing
/// warps always align live — their recorded grid ids are run-specific.
/// Results accumulate into `delta` and `seg` exactly as a live alignment
/// would: `align_warp` adds each floating-point counter once at its end,
/// so replaying a stored per-warp delta is bitwise identical.
#[allow(clippy::too_many_arguments)]
fn run_warp<M: WarpMemoView>(
    slices: &[&[Op]],
    key: Option<u64>,
    ops: u64,
    device: &DeviceConfig,
    cost: &CostModel,
    delta: &mut KernelMetrics,
    scratch: &mut AlignScratch,
    memo: &mut Option<M>,
    seg: &mut SegmentTask,
) {
    if let (Some(m), Some(key)) = (memo.as_mut(), key) {
        if let Some(cycles) = m.replay(key, delta) {
            seg.span = seg.span.max(cycles);
            seg.work += cycles;
            return;
        }
        m.miss();
        if m.full() {
            // The entry could not be stored anyway: skip the per-warp delta
            // and align straight into the caller's accumulator. Identical
            // result — align_warp adds each counter exactly once either way.
            let outcome = align_warp(slices, device, cost, delta, scratch);
            debug_assert!(outcome.launches.is_empty(), "cacheable warps never launch");
            seg.span = seg.span.max(outcome.cycles);
            seg.work += outcome.cycles;
            return;
        }
        let mut wdelta = KernelMetrics::default();
        let outcome = align_warp(slices, device, cost, &mut wdelta, scratch);
        debug_assert!(outcome.launches.is_empty(), "cacheable warps never launch");
        delta.merge(&wdelta);
        seg.span = seg.span.max(outcome.cycles);
        seg.work += outcome.cycles;
        m.store(
            key,
            WarpEntry {
                cycles: outcome.cycles,
                metrics: wdelta,
                ops,
            },
        );
        return;
    }
    let outcome = align_warp(slices, device, cost, delta, scratch);
    seg.span = seg.span.max(outcome.cycles);
    seg.work += outcome.cycles;
    seg.launches
        .extend(outcome.launches.iter().map(|lp| (lp.grid, lp.offset)));
}

/// Segment, align and cost one block's traces.
///
/// Caller contract: traces must agree on their barrier sequence. The
/// engine runs [`crate::check::scan_block`] first, which reports divergent
/// barriers as structured diagnostics and sanitizes the traces (divergent
/// `__syncthreads` is undefined behaviour on real hardware); this function
/// only debug-asserts the invariant.
///
/// `memo` carries the engine's memoization cache plus this block's rolling
/// fingerprints (`None` disables caching — the hazard checker has already
/// run either way). A block-level hit short-circuits everything below;
/// otherwise individual warp segments still hit the warp-level cache.
pub(crate) fn finalize_block(
    traces: &[Vec<Op>],
    device: &DeviceConfig,
    cost: &CostModel,
    metrics: &mut KernelMetrics,
    scratch: &mut AlignScratch,
    mut memo: Option<BlockMemo<'_>>,
) -> BlockOutcome {
    // Block-level cache: when this exact block (by fingerprint + config)
    // was finalized before, replay its stored outcome and counter delta.
    // Blocks that launched children are excluded — their outcomes embed
    // run-specific grid ids.
    let mut bkey = None;
    if let Some(m) = memo.as_mut() {
        debug_assert_eq!(m.fps.lanes.len(), traces.len());
        if !m.fps.any_launch() {
            let key = block_key(m.fps, m.cfg);
            if let Some(e) = m.cache.blocks.get(&key) {
                m.stats.block_hits += 1;
                m.stats.ops_replayed += e.ops;
                metrics.merge(&e.metrics);
                let mut out = e.outcome.clone();
                out.replayed = true;
                return out;
            }
            m.stats.block_misses += 1;
            // A full block cache can't store the entry, so don't make
            // finish_block clone the outcome and delta for nothing.
            if !m.cache.blocks_full() {
                bkey = Some(key);
            }
        }
    }
    let total_ops: u64 = traces.iter().map(|t| t.len() as u64).sum();
    // Everything below accumulates into a block-local delta so a future
    // block-level hit replays the identical contribution.
    let mut delta = KernelMetrics::default();
    let out = align_block(traces, device, cost, scratch, &mut memo, &mut delta);
    finish_block(metrics, delta, memo, bkey, &out, total_ops);
    out
}

/// Segment and align one block's traces into `delta` (no block-level cache
/// consultation — the caller has already decided this block aligns live).
/// Generic over the warp-cache view so the serial path and the parallel
/// workers share the exact same alignment logic.
pub(crate) fn align_block<M: WarpMemoView>(
    traces: &[Vec<Op>],
    device: &DeviceConfig,
    cost: &CostModel,
    scratch: &mut AlignScratch,
    memo: &mut Option<M>,
    delta: &mut KernelMetrics,
) -> BlockOutcome {
    let nthreads = traces.len();
    assert!(nthreads > 0);
    let warp_size = device.warp_size as usize;
    let warps = nthreads.div_ceil(warp_size) as u32;

    // Reference delimiter sequence from lane 0; every lane must match.
    let delims: Vec<Op> = traces[0]
        .iter()
        .copied()
        .filter(|o| o.is_delimiter())
        .collect();
    if cfg!(debug_assertions) {
        for (l, t) in traces.iter().enumerate() {
            let mine = t.iter().copied().filter(|o| o.is_delimiter());
            assert!(
                mine.eq(delims.iter().copied()),
                "thread {l} diverged on barriers (caller must sanitize via check::scan_block)"
            );
        }
    }

    let nsegs = delims.len() + 1;
    const EMPTY: &[Op] = &[];

    // Fast path for barrier-free blocks (the overwhelmingly common case):
    // a single segment spanning every full trace, no range bookkeeping.
    if delims.is_empty() {
        let mut seg = SegmentTask::default();
        for (w, chunk) in traces.chunks(warp_size).enumerate() {
            // Idle warps (no instructions) cost nothing and are common in
            // wide grids whose blocks exit early.
            if chunk.iter().all(|t| t.is_empty()) {
                continue;
            }
            let mut slices: [&[Op]; 64] = [EMPTY; 64];
            debug_assert!(chunk.len() <= 64);
            for (i, t) in chunk.iter().enumerate() {
                slices[i] = t.as_slice();
            }
            // Warp key straight from the rolling fingerprints — no
            // re-hashing on the barrier-free path.
            let key = memo.as_ref().and_then(|m| {
                let lanes = &m.fps().lanes[w * warp_size..w * warp_size + chunk.len()];
                if lanes.iter().any(|f| f.has_launch) {
                    None
                } else {
                    Some(warp_key(lanes.iter().map(|f| f.value())))
                }
            });
            let ops = chunk.iter().map(|t| t.len() as u64).sum();
            run_warp(
                &slices[..chunk.len()],
                key,
                ops,
                device,
                cost,
                delta,
                scratch,
                memo,
                &mut seg,
            );
        }
        delta.blocks += 1;
        delta.threads += nthreads as u64;
        return BlockOutcome {
            warps,
            segments: vec![seg],
            replayed: false,
        };
    }

    // Per-lane segment ranges, flattened into one lane-major buffer.
    let mut ranges: Vec<(u32, u32)> = Vec::with_capacity(nthreads * nsegs);
    for t in traces {
        let mut start = 0u32;
        for (i, op) in t.iter().enumerate() {
            if op.is_delimiter() {
                ranges.push((start, i as u32));
                start = i as u32 + 1;
            }
        }
        ranges.push((start, t.len() as u32));
    }

    let mut segments = Vec::with_capacity(nsegs);
    for s in 0..nsegs {
        let mut seg = SegmentTask {
            wait_children: s > 0 && delims[s - 1] == Op::SyncChildren,
            ..Default::default()
        };
        for (w, chunk) in traces.chunks(warp_size).enumerate() {
            let mut slices: [&[Op]; 64] = [EMPTY; 64];
            debug_assert!(chunk.len() <= 64);
            let mut ops = 0u64;
            for (i, t) in chunk.iter().enumerate() {
                let (a, b) = ranges[(w * warp_size + i) * nsegs + s];
                slices[i] = &t[a as usize..b as usize];
                ops += u64::from(b - a);
            }
            // The rolling fingerprints cover whole traces; segmented
            // warps re-hash their per-segment slices (one cheap pass,
            // still far below alignment cost).
            let key = memo.as_ref().and_then(|m| {
                let base = m.fps().base.unwrap_or(0);
                let mut launch = false;
                let k = warp_key(slices[..chunk.len()].iter().map(|sl| {
                    let (h, l) = hash_ops(sl, base);
                    launch |= l;
                    h
                }));
                if launch {
                    None
                } else {
                    Some(k)
                }
            });
            run_warp(
                &slices[..chunk.len()],
                key,
                ops,
                device,
                cost,
                delta,
                scratch,
                memo,
                &mut seg,
            );
        }
        if s + 1 < nsegs {
            // Barrier cost charged at the end of the segment it closes.
            seg.span += cost.sync_cycles;
            seg.work += cost.sync_cycles * f64::from(warps);
            delta.barriers += 1;
            delta.stalls.barrier += cost.sync_cycles * f64::from(warps);
        }
        segments.push(seg);
    }

    delta.blocks += 1;
    delta.threads += nthreads as u64;
    BlockOutcome {
        warps,
        segments,
        replayed: false,
    }
}

/// Publish a freshly finalized block: insert it into the block-level cache
/// (when cacheable) and merge its counter delta into the caller's
/// accumulator — always via the same single merge, so memoized and live
/// runs sum the floating-point counters in the same order.
fn finish_block(
    metrics: &mut KernelMetrics,
    delta: KernelMetrics,
    mut memo: Option<BlockMemo<'_>>,
    bkey: Option<u64>,
    out: &BlockOutcome,
    total_ops: u64,
) {
    if let (Some(m), Some(key)) = (memo.as_mut(), bkey) {
        m.cache.insert_block(
            key,
            BlockEntry {
                outcome: out.clone(),
                metrics: delta.clone(),
                ops: total_ops,
            },
        );
    }
    metrics.merge(&delta);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finalize(traces: &[Vec<Op>]) -> (BlockOutcome, KernelMetrics) {
        let device = DeviceConfig::kepler_k20();
        let cost = CostModel::default();
        let mut metrics = KernelMetrics::default();
        let mut scratch = AlignScratch::default();
        let out = finalize_block(traces, &device, &cost, &mut metrics, &mut scratch, None);
        (out, metrics)
    }

    #[test]
    fn single_segment_no_barriers() {
        let traces: Vec<Vec<Op>> = (0..64).map(|_| vec![Op::Compute(2)]).collect();
        let (out, m) = finalize(&traces);
        assert_eq!(out.warps, 2);
        assert_eq!(out.segments.len(), 1);
        assert!((out.segments[0].span - 2.0).abs() < 1e-12);
        assert!((out.segments[0].work - 4.0).abs() < 1e-12);
        assert_eq!(m.barriers, 0);
        assert_eq!(m.blocks, 1);
        assert_eq!(m.threads, 64);
    }

    #[test]
    fn barrier_splits_segments() {
        let traces: Vec<Vec<Op>> = (0..32)
            .map(|_| vec![Op::Compute(1), Op::Sync, Op::Compute(3)])
            .collect();
        let (out, m) = finalize(&traces);
        assert_eq!(out.segments.len(), 2);
        assert!(!out.segments[1].wait_children);
        assert_eq!(m.barriers, 1);
        let cost = CostModel::default();
        assert!((out.segments[0].span - (1.0 + cost.sync_cycles)).abs() < 1e-12);
        assert!((out.segments[1].span - 3.0).abs() < 1e-12);
        assert!((out.work() - (1.0 + cost.sync_cycles + 3.0)).abs() < 1e-12);
        // One barrier over one warp: the barrier bucket gets exactly the
        // sync cost, and all buckets together cover work + barrier.
        assert!((m.stalls.barrier - cost.sync_cycles).abs() < 1e-12);
        assert!((m.stalls.total() - m.attributed_cycles()).abs() < 1e-9);
        assert!(!out.replayed);
    }

    #[test]
    fn sync_children_marks_wait() {
        let traces: Vec<Vec<Op>> = (0..32)
            .map(|_| vec![Op::Compute(1), Op::SyncChildren, Op::Compute(1)])
            .collect();
        let (out, _) = finalize(&traces);
        assert_eq!(out.segments.len(), 2);
        assert!(out.segments[1].wait_children);
    }

    #[test]
    fn span_is_max_over_warps() {
        // Warp 0 does 10 compute cycles, warp 1 does 2.
        let mut traces: Vec<Vec<Op>> = Vec::new();
        for _ in 0..32 {
            traces.push(vec![Op::Compute(10)]);
        }
        for _ in 0..32 {
            traces.push(vec![Op::Compute(2)]);
        }
        let (out, _) = finalize(&traces);
        assert!((out.segments[0].span - 10.0).abs() < 1e-12);
        assert!((out.segments[0].work - 12.0).abs() < 1e-12);
    }

    #[test]
    fn launches_carry_segment_offsets() {
        let mut traces: Vec<Vec<Op>> = (0..32).map(|_| vec![Op::Sync]).collect();
        traces[0] = vec![Op::Sync, Op::Launch { grid: 42 }];
        let (out, _) = finalize(&traces);
        assert!(out.segments[0].launches.is_empty());
        assert_eq!(out.segments[1].launches.len(), 1);
        assert_eq!(out.segments[1].launches[0].0, 42);
    }

    #[test]
    fn sanitized_divergent_traces_finalize() {
        // A divergent block is reported and sanitized by check::scan_block
        // before reaching finalize_block; the sanitized form (no
        // delimiters anywhere) must finalize cleanly.
        let mut traces: Vec<Vec<Op>> = (0..32).map(|_| vec![Op::Sync]).collect();
        traces[5] = vec![Op::Compute(1)];
        crate::check::synccheck::sanitize_divergent(&mut traces);
        let (out, _) = finalize(&traces);
        assert_eq!(out.segments.len(), 1);
    }

    #[test]
    fn empty_traces_yield_empty_segment() {
        let traces: Vec<Vec<Op>> = (0..32).map(|_| vec![]).collect();
        let (out, _) = finalize(&traces);
        assert_eq!(out.segments.len(), 1);
        assert_eq!(out.segments[0].span, 0.0);
    }
}
