//! Global-memory address handles.
//!
//! The simulator times memory behaviour from *addresses*, while the actual
//! data of an application lives in ordinary Rust containers owned by the
//! kernel (the simulator is functional + timing, not a byte-level machine).
//! [`GBuf`] hands out non-overlapping address ranges from a bump allocator so
//! that coalescing analysis sees a realistic address space: distinct arrays
//! never share a 128-byte segment, and element `i` of a `GBuf<T>` sits at
//! `base + i * size_of::<T>()` exactly as a `cudaMalloc`'d array would.

use std::marker::PhantomData;

/// Alignment for every allocation: one memory transaction segment, so two
/// buffers never straddle the same segment.
const ALLOC_ALIGN: u64 = 128;

/// Bump allocator for the simulated global address space.
#[derive(Debug, Default)]
pub struct GlobalAllocator {
    cursor: u64,
}

impl GlobalAllocator {
    /// Fresh allocator starting at a non-zero base (so address 0 never
    /// appears; helps catch uninitialized handles in tests).
    pub fn new() -> Self {
        GlobalAllocator {
            cursor: ALLOC_ALIGN,
        }
    }

    /// Allocate an address range for `len` elements of `T`.
    pub fn alloc<T>(&mut self, len: usize) -> GBuf<T> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        let base = self.cursor;
        self.cursor += bytes.div_ceil(ALLOC_ALIGN).max(1) * ALLOC_ALIGN;
        GBuf {
            base,
            len,
            _elem: PhantomData,
        }
    }

    /// Total bytes of address space handed out so far.
    pub fn used_bytes(&self) -> u64 {
        self.cursor - ALLOC_ALIGN
    }
}

/// An address range in simulated global memory holding `len` elements of
/// type `T`. Copyable — it is an address, not storage.
pub struct GBuf<T> {
    base: u64,
    len: usize,
    _elem: PhantomData<T>,
}

impl<T> Clone for GBuf<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for GBuf<T> {}

impl<T> std::fmt::Debug for GBuf<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GBuf(base={:#x}, len={})", self.base, self.len)
    }
}

impl<T> GBuf<T> {
    /// Number of elements in the range.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of one element in bytes.
    pub fn elem_bytes(&self) -> u8 {
        debug_assert!(std::mem::size_of::<T>() <= u8::MAX as usize);
        std::mem::size_of::<T>() as u8
    }

    /// Address of element `i`.
    ///
    /// Panics (debug) when out of range — an out-of-bounds simulated access
    /// is always a bug in a kernel.
    pub fn addr(&self, i: usize) -> u64 {
        debug_assert!(i < self.len, "GBuf access {i} out of range {}", self.len);
        self.base + (i * std::mem::size_of::<T>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_do_not_overlap() {
        let mut a = GlobalAllocator::new();
        let x = a.alloc::<f32>(100);
        let y = a.alloc::<u32>(7);
        let x_end = x.addr(99) + 4;
        assert!(y.addr(0) >= x_end);
        assert_eq!(y.addr(0) % ALLOC_ALIGN, 0);
    }

    #[test]
    fn addresses_are_contiguous() {
        let mut a = GlobalAllocator::new();
        let x = a.alloc::<u64>(16);
        for i in 0..15 {
            assert_eq!(x.addr(i + 1) - x.addr(i), 8);
        }
        assert_eq!(x.elem_bytes(), 8);
    }

    #[test]
    fn zero_len_alloc_still_unique() {
        let mut a = GlobalAllocator::new();
        let x = a.alloc::<u8>(0);
        let y = a.alloc::<u8>(1);
        assert!(x.is_empty());
        assert_ne!(
            // bases differ even though x is empty
            format!("{x:?}"),
            format!("{y:?}")
        );
    }

    #[test]
    fn used_bytes_tracks_cursor() {
        let mut a = GlobalAllocator::new();
        assert_eq!(a.used_bytes(), 0);
        a.alloc::<f64>(3); // 24 bytes -> one 128B slab
        assert_eq!(a.used_bytes(), 128);
    }
}
