//! The top-level [`Gpu`] handle: allocate address space, launch kernels,
//! synchronize, and collect reports.

use crate::check::{self, CheckLevel, CheckReport};
use crate::config::DeviceConfig;
use crate::cost::CostModel;
use crate::engine::{register_grid, Engine, Origin};
use crate::error::SimError;
use crate::handle::{GBuf, GlobalAllocator};
use crate::kernel::{KernelRef, LaunchConfig, Stream};
use crate::memo::MemoSnapshot;
use crate::prof::{Collector, Profile};
use crate::profiler::Report;
use crate::sched::simulate_full;

/// A simulated GPU.
///
/// Usage mirrors a CUDA host program:
///
/// ```
/// use std::sync::Arc;
/// use npar_sim::{Gpu, LaunchConfig, ThreadKernel, ThreadCtx};
///
/// struct Saxpy { n: usize, x: npar_sim::GBuf<f32>, y: npar_sim::GBuf<f32> }
/// impl ThreadKernel for Saxpy {
///     fn name(&self) -> &str { "saxpy" }
///     fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
///         let i = t.global_id();
///         if i < self.n {
///             t.ld(&self.x, i);
///             t.ld(&self.y, i);
///             t.compute(2);
///             t.st(&self.y, i);
///         }
///     }
/// }
///
/// let mut gpu = Gpu::k20();
/// let x = gpu.alloc::<f32>(1024);
/// let y = gpu.alloc::<f32>(1024);
/// gpu.launch(Arc::new(Saxpy { n: 1024, x, y }), LaunchConfig::cover(1024, 192, 1 << 20)).unwrap();
/// let report = gpu.synchronize();
/// assert!(report.cycles > 0.0);
/// assert!((report.total().warp_execution_efficiency() - 1.0).abs() < 1e-9);
/// ```
pub struct Gpu {
    engine: Engine,
    alloc: GlobalAllocator,
}

impl Gpu {
    /// New simulated GPU with the given device and cost models. Host
    /// execution defaults to one worker lane per available core (override
    /// with [`Gpu::set_threads`] or the `NPAR_THREADS` environment
    /// variable).
    pub fn new(device: DeviceConfig, cost: CostModel) -> Self {
        let mut engine = Engine::new(device, cost);
        engine.threads = default_threads();
        engine.device.timing_threads = default_timing_threads(engine.device.timing_threads);
        Gpu {
            engine,
            alloc: GlobalAllocator::new(),
        }
    }

    /// A Tesla K20 with default costs — the paper's testbed.
    pub fn k20() -> Self {
        Gpu::new(DeviceConfig::kepler_k20(), CostModel::default())
    }

    /// The tiny test device.
    pub fn tiny() -> Self {
        Gpu::new(DeviceConfig::tiny(), CostModel::default())
    }

    /// The device description.
    pub fn device(&self) -> &DeviceConfig {
        &self.engine.device
    }

    /// The cost model in force.
    pub fn cost(&self) -> &CostModel {
        &self.engine.cost
    }

    /// Set the hazard-checker severity (see [`crate::check`]).
    pub fn set_check(&mut self, level: CheckLevel) {
        self.engine.device.check = level;
        self.engine.check.level = level;
    }

    /// Builder-style [`Gpu::set_check`].
    #[must_use]
    pub fn with_check(mut self, level: CheckLevel) -> Self {
        self.set_check(level);
        self
    }

    /// Set the number of host worker lanes used to simulate each grid's
    /// blocks (see DESIGN.md §10). `1` selects the serial executor; any
    /// higher count fans block work out over a work-stealing pool. Reports
    /// are byte-for-byte identical at every thread count — the setting
    /// only changes host wall time. Values are clamped to at least 1; the
    /// pool is rebuilt lazily on the next launch.
    pub fn set_threads(&mut self, threads: usize) {
        let threads = threads.max(1);
        if threads != self.engine.threads {
            self.engine.threads = threads;
            self.engine.pool = None;
        }
    }

    /// Builder-style [`Gpu::set_threads`].
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }

    /// Current host worker-lane count.
    pub fn threads(&self) -> usize {
        self.engine.threads
    }

    /// Current hazard-checker severity.
    pub fn check_level(&self) -> CheckLevel {
        self.engine.check.level
    }

    /// Enable or disable alignment memoization (see DESIGN.md §8). On by
    /// default; the cache is a pure host-side speedup — reports are
    /// bit-identical with it on or off — so disabling it is only useful
    /// for differential testing and benchmarking. Disabling drops any
    /// accumulated cache entries.
    pub fn set_memo(&mut self, enabled: bool) {
        self.engine.device.memo = enabled;
        if enabled {
            if self.engine.memo.is_none() {
                self.engine.memo = Some(Default::default());
            }
        } else {
            self.engine.memo = None;
            // Adaptive per-kernel policy is meaningless without a cache and
            // must not leak stale decisions into a later re-enable.
            self.engine.memo_classes.clear();
        }
    }

    /// Builder-style [`Gpu::set_memo`].
    #[must_use]
    pub fn with_memo(mut self, enabled: bool) -> Self {
        self.set_memo(enabled);
        self
    }

    /// Whether alignment memoization is currently enabled.
    pub fn memo_enabled(&self) -> bool {
        self.engine.memo.is_some()
    }

    /// Export the current memo-cache contents as a serializable
    /// [`MemoSnapshot`] (DESIGN.md §14). Empty when memoization is
    /// disabled or nothing has been simulated yet. Entries are sorted by
    /// key, so the snapshot — and its serialized spill — is deterministic.
    pub fn export_memo(&self) -> MemoSnapshot {
        self.engine
            .memo
            .as_ref()
            .map(crate::memo::MemoCache::export)
            .unwrap_or_default()
    }

    /// Warm-start the memo cache from a previously exported snapshot.
    /// Returns the number of entries inserted (zero when memoization is
    /// disabled; existing in-process entries are never overwritten, and
    /// the DESIGN.md §8 cache caps still apply).
    ///
    /// Snapshots replay saved timing verbatim, so they must come from a
    /// `Gpu` with the same [`DeviceConfig`] and [`CostModel`] — callers
    /// key spills by a device signature. Replay is bit-identical to fresh
    /// alignment, so a warm-started `Gpu` produces the same `Report`s a
    /// cold one would.
    pub fn import_memo(&mut self, snap: &MemoSnapshot) -> usize {
        match self.engine.memo.as_mut() {
            Some(cache) => cache.absorb(snap),
            None => 0,
        }
    }

    /// Enable or disable the timing-pass fast paths — cohort event
    /// batching and homogeneous-grid fast-forward (see DESIGN.md §11). On
    /// by default; like memoization this is a pure host-side speedup —
    /// reports and profiler timelines are bit-identical either way — so
    /// disabling it is only useful for differential testing and ablation
    /// (`--fast-forward=off` on the bench binaries).
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.engine.device.fast_forward = enabled;
    }

    /// Builder-style [`Gpu::set_fast_forward`].
    #[must_use]
    pub fn with_fast_forward(mut self, enabled: bool) -> Self {
        self.set_fast_forward(enabled);
        self
    }

    /// Whether the timing-pass fast paths are currently enabled.
    pub fn fast_forward_enabled(&self) -> bool {
        self.engine.device.fast_forward
    }

    /// Set the timing-pass worker-lane count (see DESIGN.md §13). `1`
    /// (the default) runs the event loop serially; any higher count
    /// partitions each batch into independent timing domains simulated on
    /// separate calendar queues and merged back in exact serial event
    /// order — reports and profiler timelines are bit-identical at every
    /// setting (`--timing-threads=N` on the bench binaries). Values are
    /// clamped to at least 1; the pool is rebuilt lazily.
    pub fn set_timing_threads(&mut self, threads: usize) {
        let threads = threads.max(1);
        if threads != self.engine.device.timing_threads {
            self.engine.device.timing_threads = threads;
            self.engine.timing_pool = None;
        }
    }

    /// Builder-style [`Gpu::set_timing_threads`].
    #[must_use]
    pub fn with_timing_threads(mut self, threads: usize) -> Self {
        self.set_timing_threads(threads);
        self
    }

    /// Current timing-pass worker-lane count.
    pub fn timing_threads(&self) -> usize {
        self.engine.device.timing_threads
    }

    /// Enable or disable the analytic closed-form timing mode (see
    /// DESIGN.md §13). Off by default. When enabled, the timing pass may
    /// finish a timing-uniform grid by wave arithmetic instead of event
    /// dispatch whenever the analytic proof obligations hold; results are
    /// bit-identical to event replay whenever it engages (`--analytic` on
    /// the bench binaries, `--analytic=off` to disable).
    pub fn set_analytic(&mut self, enabled: bool) {
        self.engine.device.analytic = enabled;
    }

    /// Builder-style [`Gpu::set_analytic`].
    #[must_use]
    pub fn with_analytic(mut self, enabled: bool) -> Self {
        self.set_analytic(enabled);
        self
    }

    /// Whether the analytic timing mode is enabled.
    pub fn analytic_enabled(&self) -> bool {
        self.engine.device.analytic
    }

    /// Enable or disable proof-carrying scan elision (see
    /// [`crate::analyze`] and DESIGN.md §12). On by default; while the
    /// checker runs above [`CheckLevel::Off`], kernels npar-analyze has
    /// proven clean skip their per-block hazard scans. Elision only ever
    /// skips work the dynamic checker would have passed, so hazard counts
    /// and reports are identical either way — disabling it (`--no-elide`)
    /// is only useful for differential testing and timing audits.
    pub fn set_elide(&mut self, enabled: bool) {
        self.engine.device.elide = enabled;
    }

    /// Builder-style [`Gpu::set_elide`].
    #[must_use]
    pub fn with_elide(mut self, enabled: bool) -> Self {
        self.set_elide(enabled);
        self
    }

    /// Whether proof-carrying scan elision is enabled (it has effect only
    /// while the checker runs above [`CheckLevel::Off`]).
    pub fn elide_enabled(&self) -> bool {
        self.engine.device.elide
    }

    /// Enable or disable npar-analyze collection independently of elision
    /// (`--analyze`). Off by default — but an active eliding checker
    /// implies collection, so this flag only matters for reading
    /// [`Gpu::analysis`] with elision disabled or the checker off.
    pub fn set_analyze(&mut self, enabled: bool) {
        self.engine.device.analyze = enabled;
    }

    /// Builder-style [`Gpu::set_analyze`].
    #[must_use]
    pub fn with_analyze(mut self, enabled: bool) -> Self {
        self.set_analyze(enabled);
        self
    }

    /// Whether npar-analyze collection was explicitly requested.
    pub fn analyze_enabled(&self) -> bool {
        self.engine.device.analyze
    }

    /// The current npar-analyze report: one [`crate::analyze::KernelAnalysis`]
    /// per kernel class observed so far (empty unless analysis is active —
    /// i.e. [`Gpu::set_analyze`], or elision with the checker on).
    /// Analysis state accumulates across synchronizes, like the memo cache.
    pub fn analysis(&self) -> crate::analyze::AnalysisReport {
        self.engine.analyzer.report(&self.engine.device)
    }

    /// Enable or disable the timeline profiler (see [`crate::prof`]). Off
    /// by default. While enabled, every [`Gpu::synchronize`] appends the
    /// batch's timeline — kernel spans, per-SM block residency,
    /// parent→child launch flows — to an accumulating [`Profile`].
    /// Profiling is observational: [`Report`]s are bit-identical with it
    /// on or off. Disabling drops any accumulated profile.
    pub fn set_profiler(&mut self, enabled: bool) {
        self.engine.profiling = enabled;
        if !enabled {
            self.engine.profile = Profile::default();
        }
    }

    /// Builder-style [`Gpu::set_profiler`].
    ///
    /// ```
    /// use std::sync::Arc;
    /// use npar_sim::{Gpu, LaunchConfig, ThreadKernel, ThreadCtx};
    ///
    /// struct Ping;
    /// impl ThreadKernel for Ping {
    ///     fn name(&self) -> &str { "ping" }
    ///     fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) { t.compute(8); }
    /// }
    ///
    /// let mut gpu = Gpu::k20().with_profiler(true);
    /// gpu.launch(Arc::new(Ping), LaunchConfig::new(4, 64)).unwrap();
    /// let report = gpu.synchronize();
    /// let profile = gpu.take_profile();
    /// assert_eq!(profile.kernels.len(), 1);
    /// assert!(!profile.blocks.is_empty());
    /// assert!(profile.to_chrome_trace().contains("traceEvents"));
    /// println!("{}", report.stall_table());
    /// ```
    #[must_use]
    pub fn with_profiler(mut self, enabled: bool) -> Self {
        self.set_profiler(enabled);
        self
    }

    /// Whether the timeline profiler is currently enabled.
    pub fn profiler_enabled(&self) -> bool {
        self.engine.profiling
    }

    /// Drain the accumulated timeline [`Profile`]. The profile restarts
    /// empty (timeline cycle 0) afterwards. Returns an empty profile when
    /// the profiler is disabled or nothing has been synchronized.
    pub fn take_profile(&mut self) -> Profile {
        let mut p = std::mem::take(&mut self.engine.profile);
        if p.device.is_empty() {
            p.device.clone_from(&self.engine.device.name);
            p.clock_ghz = self.engine.device.clock_ghz;
        }
        p
    }

    /// Drain the hazards recorded since the last drain (or synchronize).
    /// Useful under [`CheckLevel::Warn`], where launches keep succeeding.
    pub fn take_check_report(&mut self) -> CheckReport {
        self.engine.analyzer.note_drained();
        self.engine.check.take_report()
    }

    /// Allocate simulated global memory for `len` elements of `T`.
    pub fn alloc<T>(&mut self, len: usize) -> GBuf<T> {
        self.alloc.alloc::<T>(len)
    }

    /// Launch a kernel into host stream 0.
    ///
    /// The kernel executes functionally before this returns (its effects on
    /// application state are visible immediately); its modeled *timing*
    /// accrues to the next [`Gpu::synchronize`].
    pub fn launch(&mut self, kernel: KernelRef, cfg: LaunchConfig) -> Result<(), SimError> {
        self.launch_in(kernel, cfg, Stream::Default)
    }

    /// Launch a kernel into a chosen host stream.
    ///
    /// The kernel (and any child grids it spawns) executes functionally
    /// before this returns, so the hazard checker has seen every trace:
    /// structural faults (divergent barriers, invalid device-side
    /// launches) fail the launch at any [`CheckLevel`], and under
    /// [`CheckLevel::Strict`] every recorded hazard does. The functional
    /// effects on application state have been applied either way.
    pub fn launch_in(
        &mut self,
        kernel: KernelRef,
        cfg: LaunchConfig,
        stream: Stream,
    ) -> Result<(), SimError> {
        self.engine.validate(&cfg)?;
        let stream = match stream {
            Stream::Default => 0,
            Stream::Slot(n) => n,
        };
        let seq = self.engine.host_seq;
        self.engine.host_seq += 1;
        let t0 = std::time::Instant::now();
        register_grid(&mut self.engine, &kernel, cfg, Origin::Host { seq, stream });
        check::resolve_lints(&mut self.engine);
        // Defense in depth for elision: attribute every hazard recorded
        // during this launch (including late-resolved lints) to its
        // kernel's analysis classes, permanently flagging them so no
        // future grid of a hazardous kernel elides a scan.
        self.engine.analyzer.sweep_hazards(&self.engine.check);
        self.engine.stats.wall_seconds += t0.elapsed().as_secs_f64();
        let st = &mut self.engine.check;
        if st.is_fatal() || (st.level == CheckLevel::Strict && st.has_hazards()) {
            self.engine.analyzer.note_drained();
            let st = &mut self.engine.check;
            return Err(SimError::Hazard(st.take_report()));
        }
        Ok(())
    }

    /// Finish the pending batch: run the timing simulation over everything
    /// launched since the previous synchronize and return its [`Report`].
    pub fn synchronize(&mut self) -> Report {
        let t0 = std::time::Instant::now();
        let mut prof = self
            .engine
            .profiling
            .then(|| Collector::new(self.engine.grids.len()));
        let t_sched = std::time::Instant::now();
        self.engine.ensure_timing_pool();
        let (timing, sched_stats) = simulate_full(
            &self.engine.grids,
            &self.engine.device,
            &self.engine.cost,
            prof.as_mut(),
            self.engine.timing_pool.as_ref(),
        );
        self.engine.stats.timing_pass_ns += t_sched.elapsed().as_nanos() as u64;
        self.engine.stats.timing_domains += sched_stats.domains;
        self.engine.stats.timing_domains_committed += sched_stats.domains_committed;
        self.engine.stats.timing_rollbacks += sched_stats.domains_rolled_back;
        self.engine.stats.analytic_grids += sched_stats.analytic_runs;
        if let Some(col) = prof {
            col.finish(
                &self.engine.grids,
                &self.engine.device,
                &mut self.engine.profile,
            );
        }
        self.engine.stats.wall_seconds += t0.elapsed().as_secs_f64();
        let host_launches = self
            .engine
            .grids
            .iter()
            .filter(|g| matches!(g.origin, Origin::Host { .. }))
            .count() as u64;
        let device_launches = self.engine.grids.len() as u64 - host_launches;
        let kernels = std::mem::take(&mut self.engine.metrics);
        self.engine.grids.clear();
        self.engine.host_seq = 0;
        let hazards = self.engine.check.batch_count();
        self.engine.check.reset_batch();
        Report {
            device: self.engine.device.name.clone(),
            cycles: timing.makespan,
            seconds: self.engine.device.cycles_to_seconds(timing.makespan),
            achieved_occupancy: timing.achieved_occupancy,
            host_launches,
            device_launches,
            overflow_launches: timing.overflow_launches,
            hazards,
            sim: std::mem::take(&mut self.engine.stats),
            kernels,
        }
    }
}

/// Default host worker-lane count: `NPAR_THREADS` when set to a positive
/// integer, otherwise the number of available cores, otherwise 1.
fn default_threads() -> usize {
    if let Ok(v) = std::env::var("NPAR_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Default timing-pass lane count: `NPAR_TIMING_THREADS` when set to a
/// positive integer, otherwise the [`DeviceConfig`] value (1 = the serial
/// event loop). Unlike host tracing threads, the timing pass does not
/// default to the core count — domain parallelism only pays off on
/// multi-stream batches, so it is opt-in (DESIGN.md §13).
fn default_timing_threads(fallback: usize) -> usize {
    if let Ok(v) = std::env::var("NPAR_TIMING_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    fallback
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::ThreadCtx;
    use crate::kernel::ThreadKernel;
    use crate::sync::SyncCell;
    use std::sync::Arc;

    struct CountKernel {
        n: usize,
        hits: Arc<SyncCell<Vec<u32>>>,
    }
    impl ThreadKernel for CountKernel {
        fn name(&self) -> &str {
            "count"
        }
        fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
            let stride = t.grid_threads();
            let mut i = t.global_id();
            while i < self.n {
                self.hits.borrow_mut()[i] += 1;
                t.compute(1);
                i += stride;
            }
        }
    }

    #[test]
    fn grid_stride_covers_every_item_once() {
        let mut gpu = Gpu::tiny();
        let n = 1000;
        let hits = Arc::new(SyncCell::new(vec![0u32; n]));
        let k = Arc::new(CountKernel {
            n,
            hits: hits.clone(),
        });
        gpu.launch(k, LaunchConfig::new(4, 64)).unwrap();
        let report = gpu.synchronize();
        assert!(hits.borrow().iter().all(|&h| h == 1));
        assert_eq!(report.host_launches, 1);
        assert_eq!(report.device_launches, 0);
        assert!(report.cycles > 0.0);
    }

    #[test]
    fn synchronize_resets_batch() {
        let mut gpu = Gpu::tiny();
        let hits = Arc::new(SyncCell::new(vec![0u32; 10]));
        let k = Arc::new(CountKernel {
            n: 10,
            hits: hits.clone(),
        });
        gpu.launch(k.clone(), LaunchConfig::new(1, 32)).unwrap();
        let r1 = gpu.synchronize();
        let r2 = gpu.synchronize();
        assert!(r1.cycles > 0.0);
        assert_eq!(r2.cycles, 0.0);
        assert_eq!(r2.host_launches, 0);
    }

    #[test]
    fn launch_rejects_oversized_block() {
        let mut gpu = Gpu::tiny();
        let hits = Arc::new(SyncCell::new(vec![0u32; 1]));
        let k = Arc::new(CountKernel { n: 1, hits });
        assert!(gpu.launch(k, LaunchConfig::new(1, 4096)).is_err());
    }

    #[test]
    fn reports_merge_across_batches() {
        let mut gpu = Gpu::tiny();
        let hits = Arc::new(SyncCell::new(vec![0u32; 64]));
        let k = Arc::new(CountKernel {
            n: 64,
            hits: hits.clone(),
        });
        gpu.launch(k.clone(), LaunchConfig::new(1, 64)).unwrap();
        let mut total = gpu.synchronize();
        gpu.launch(k, LaunchConfig::new(1, 64)).unwrap();
        let r2 = gpu.synchronize();
        let c1 = total.cycles;
        total.merge(&r2);
        assert!((total.cycles - (c1 + r2.cycles)).abs() < 1e-9);
        assert_eq!(total.host_launches, 2);
        assert_eq!(hits.borrow()[0], 2);
    }
}
