//! Kernel abstraction: launch configurations, streams, and the [`Kernel`]
//! trait implemented by every simulated GPU kernel.

use std::any::Any;
use std::sync::Arc;

use crate::ctx::BlockCtx;

/// A kernel launch configuration, the `<<<grid, block, smem, stream>>>` of
/// CUDA. Grids and blocks are one-dimensional: every code in the paper is a
/// 1-D mapping over loop iterations or graph/tree nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid. Must be >= 1.
    pub grid_dim: u32,
    /// Threads per block. Must be >= 1 and within the device limit.
    pub block_dim: u32,
    /// Dynamic shared memory per block, in bytes (in addition to whatever
    /// the cost model charges for accesses, this constrains occupancy).
    pub shared_mem_bytes: u32,
}

impl LaunchConfig {
    /// A grid of `grid_dim` blocks of `block_dim` threads, no dynamic
    /// shared memory.
    pub fn new(grid_dim: u32, block_dim: u32) -> Self {
        LaunchConfig {
            grid_dim,
            block_dim,
            shared_mem_bytes: 0,
        }
    }

    /// Like [`LaunchConfig::new`] with a dynamic shared-memory reservation.
    pub fn with_shared(grid_dim: u32, block_dim: u32, shared_mem_bytes: u32) -> Self {
        LaunchConfig {
            grid_dim,
            block_dim,
            shared_mem_bytes,
        }
    }

    /// The grid size that covers `items` work-items with `block_dim`-thread
    /// blocks, clamped to `max_grid` (the caller then uses a grid-stride
    /// loop, as the paper's thread-mapped kernels do).
    pub fn cover(items: usize, block_dim: u32, max_grid: u32) -> Self {
        let blocks = items.div_ceil(block_dim.max(1) as usize).max(1);
        LaunchConfig::new(blocks.min(max_grid as usize) as u32, block_dim)
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> u64 {
        u64::from(self.grid_dim) * u64::from(self.block_dim)
    }
}

/// Stream selector for a kernel launch.
///
/// Host launches go to numbered host streams; launches performed *inside* a
/// kernel (dynamic parallelism) go to per-block device streams. Grids in the
/// same stream execute in launch order; grids in different streams may
/// overlap. This mirrors the CUDA semantics the paper leans on: "concurrent
/// execution requires the use of CUDA streams" and its per-thread-block
/// extra streams in Section III.C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stream {
    /// The default stream of the launching scope. For host launches this is
    /// host stream 0; for device launches it is the launching block's
    /// default stream (device launches from one block serialize).
    Default,
    /// An explicitly numbered stream within the launching scope. On the
    /// host: host stream `n`. On the device: the launching block's `n`-th
    /// extra stream (the paper's "one additional stream per thread-block"
    /// variant launches alternately into slots 0 and 1).
    Slot(u32),
}

/// Type-erased per-block mutable state.
///
/// Kernels that stage data in shared memory (delayed-buffer templates) or
/// otherwise communicate between threads of one block across barriers create
/// their working state here; the simulator instantiates it once per block.
pub struct BlockState(Option<Box<dyn Any>>);

impl BlockState {
    /// No per-block state.
    pub fn none() -> Self {
        BlockState(None)
    }

    /// Wrap a concrete state value.
    pub fn new<T: 'static>(value: T) -> Self {
        BlockState(Some(Box::new(value)))
    }

    pub(crate) fn get_mut<T: 'static>(&mut self) -> Option<&mut T> {
        self.0.as_mut().and_then(|b| b.downcast_mut::<T>())
    }
}

/// A simulated GPU kernel.
///
/// `run_block` is invoked once per thread block and drives the block's
/// threads through [`BlockCtx::for_each_thread`]; block-wide barriers are
/// expressed with [`BlockCtx::sync`] *between* thread sweeps, which both
/// preserves the functional semantics of `__syncthreads` (all writes before
/// the barrier are visible after it) and records the barrier for timing.
///
/// Kernels that need no barrier typically implement [`ThreadKernel`] instead
/// and get this trait via the blanket impl.
///
/// A two-phase kernel with a block-wide barrier, launched like the
/// quickstart example:
///
/// ```
/// use std::sync::Arc;
/// use npar_sim::{BlockCtx, Gpu, Kernel, LaunchConfig};
///
/// /// Stage values into shared memory, barrier, then read them back.
/// struct StageAndSum;
/// impl Kernel for StageAndSum {
///     fn name(&self) -> &str { "stage-and-sum" }
///     fn run_block(&self, blk: &mut BlockCtx<'_>) {
///         blk.for_each_thread(|t| {
///             t.compute(1);
///             t.shared_st(t.thread_idx() * 4); // stage my slot
///         });
///         blk.sync(); // __syncthreads()
///         blk.for_each_thread(|t| {
///             t.shared_ld(((t.thread_idx() + 1) % t.block_dim()) * 4);
///             t.compute(1);
///         });
///     }
/// }
///
/// let mut gpu = Gpu::k20();
/// gpu.launch(Arc::new(StageAndSum), LaunchConfig::new(8, 64)).unwrap();
/// let report = gpu.synchronize();
/// assert_eq!(report.total().barriers, 8); // one per block
/// ```
pub trait Kernel: Send + Sync {
    /// Kernel name, used to key profiler metrics (like `nvprof` does).
    fn name(&self) -> &str;

    /// Create the per-block state for block `block_idx` (default: none).
    fn block_state(&self, _block_idx: u32) -> BlockState {
        BlockState::none()
    }

    /// Execute one thread block.
    fn run_block(&self, blk: &mut BlockCtx<'_>);

    /// Opt this kernel into concurrent block tracing.
    ///
    /// The simulator always *merges* per-block results in canonical block
    /// order, so timing reports are deterministic regardless of this flag.
    /// But functional execution itself mutates device memory, and by default
    /// the simulator traces blocks one at a time in block-id order so that a
    /// kernel may (deliberately or not) observe writes made by lower-numbered
    /// blocks. A kernel that returns `true` here promises its blocks are
    /// *order-independent between launch boundaries* — no block reads global
    /// data that another block of the same grid writes — which lets the
    /// parallel executor trace many blocks of the grid at once.
    ///
    /// Kernels that return `true` must not call
    /// [`BlockCtx::sync_children`]: joining a child grid mid-block imposes an
    /// execution-order dependency that concurrent tracing cannot honor, and
    /// the simulator panics on the combination. Fire-and-forget device
    /// launches (joined at parent-grid completion) are fine.
    fn parallel_trace(&self) -> bool {
        false
    }
}

/// Convenience trait for barrier-free kernels: implement a per-thread body
/// and get a [`Kernel`] via the blanket impl.
pub trait ThreadKernel: Send + Sync {
    /// Kernel name, used to key profiler metrics.
    fn name(&self) -> &str;

    /// Execute one thread.
    fn run_thread(&self, t: &mut crate::ctx::ThreadCtx<'_, '_>);

    /// See [`Kernel::parallel_trace`]; forwarded by the blanket impl.
    fn parallel_trace(&self) -> bool {
        false
    }
}

impl<K: ThreadKernel> Kernel for K {
    fn name(&self) -> &str {
        ThreadKernel::name(self)
    }

    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        blk.for_each_thread(|t| self.run_thread(t));
    }

    fn parallel_trace(&self) -> bool {
        ThreadKernel::parallel_trace(self)
    }
}

/// Shared-ownership handle to a kernel, as required for device-side
/// launches (a child kernel must outlive the launching scope) and for
/// multi-threaded host execution (workers trace blocks concurrently).
pub type KernelRef = Arc<dyn Kernel>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_rounds_up_and_clamps() {
        let c = LaunchConfig::cover(1000, 192, 1 << 20);
        assert_eq!(c.grid_dim, 6);
        assert_eq!(c.block_dim, 192);
        let clamped = LaunchConfig::cover(1 << 20, 32, 64);
        assert_eq!(clamped.grid_dim, 64);
        let tiny = LaunchConfig::cover(0, 128, 64);
        assert_eq!(tiny.grid_dim, 1);
    }

    #[test]
    fn total_threads() {
        assert_eq!(LaunchConfig::new(3, 192).total_threads(), 576);
    }

    #[test]
    fn block_state_downcast() {
        let mut s = BlockState::new(vec![1u32, 2, 3]);
        assert_eq!(s.get_mut::<Vec<u32>>().unwrap().len(), 3);
        assert!(s.get_mut::<u64>().is_none());
        let mut none = BlockState::none();
        assert!(none.get_mut::<u32>().is_none());
    }
}
