//! Simulator error types.

use std::fmt;

/// Errors surfaced by the simulator's host-side API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A launch configuration violates a device limit.
    InvalidLaunch(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidLaunch(msg) => write!(f, "invalid launch: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::InvalidLaunch("block too big".into());
        assert!(e.to_string().contains("block too big"));
    }
}
