//! Simulator error types.

use std::fmt;

use crate::check::CheckReport;

/// Errors surfaced by the simulator's host-side API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A launch configuration violates a device limit.
    InvalidLaunch(String),
    /// The hazard checker found problems in the launched kernels: always
    /// for structural faults (divergent barriers, invalid device-side
    /// launches), and for every recorded hazard under
    /// [`crate::check::CheckLevel::Strict`]. The kernels' functional
    /// effects were already applied when this is returned.
    Hazard(CheckReport),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidLaunch(msg) => write!(f, "invalid launch: {msg}"),
            SimError::Hazard(report) => write!(f, "hazards detected: {report}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::InvalidLaunch("block too big".into());
        assert!(e.to_string().contains("block too big"));
    }
}
