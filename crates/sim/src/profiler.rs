//! Profiling counters and reports, mirroring the `nvprof` metrics the paper
//! collects: warp execution efficiency, global load/store efficiency,
//! achieved occupancy, kernel-launch and atomic counts.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Per-kernel stall attribution: warp execution cycles split by what the
/// warp scheduler was doing, in the spirit of `nvprof`'s stall-reason
/// metrics.
///
/// The first six buckets partition [`KernelMetrics::work_cycles`]: every
/// issue-group cycle the warp aligner charges is split into the *busy*
/// share (active lanes ÷ warp width, attributed to the group's kind) and
/// the *idle* remainder (attributed to [`StallCycles::divergence`]).
/// Barrier cycles are charged by block finalization on top of `work_cycles`
/// and therefore live in their own bucket. All values are work cycles
/// (warp-cycles), not wall-clock span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StallCycles {
    /// Busy ALU cycles (active-lane share of compute issue groups).
    pub compute: f64,
    /// Idle-lane cycles: lanes masked off while their warp issues — the
    /// divergence cost of irregular inner loops and early-exiting lanes.
    pub divergence: f64,
    /// Busy global-memory cycles (loads and stores, incl. transaction
    /// serialization from uncoalesced access).
    pub gmem: f64,
    /// Busy shared-memory cycles (incl. bank-conflict replays).
    pub shared: f64,
    /// Busy atomic cycles (global + shared, incl. same-address
    /// serialization).
    pub atomic: f64,
    /// Device-side launch issue overhead. Launches serialize lane by lane,
    /// so the whole group duration is launch overhead rather than
    /// divergence.
    pub launch: f64,
    /// `__syncthreads` cost charged at each barrier (per resident warp).
    pub barrier: f64,
}

impl StallCycles {
    /// Sum of every bucket: total attributed warp cycles
    /// (`work_cycles + barrier`, within floating-point tolerance).
    pub fn total(&self) -> f64 {
        self.compute
            + self.divergence
            + self.gmem
            + self.shared
            + self.atomic
            + self.launch
            + self.barrier
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &StallCycles) {
        self.compute += other.compute;
        self.divergence += other.divergence;
        self.gmem += other.gmem;
        self.shared += other.shared;
        self.atomic += other.atomic;
        self.launch += other.launch;
        self.barrier += other.barrier;
    }

    /// The buckets as `(name, cycles)` pairs in display order.
    pub fn named(&self) -> [(&'static str, f64); 7] {
        [
            ("compute", self.compute),
            ("divergence", self.divergence),
            ("gmem", self.gmem),
            ("shared", self.shared),
            ("atomic", self.atomic),
            ("launch", self.launch),
            ("barrier", self.barrier),
        ]
    }
}

/// Counters accumulated for one kernel name across every grid, block and
/// warp that executed under it.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelMetrics {
    /// Grids launched under this kernel name.
    pub grids: u64,
    /// Thread blocks executed.
    pub blocks: u64,
    /// Threads executed.
    pub threads: u64,
    /// Warp-instruction issue slots: `warp_size ×` (weighted) instructions
    /// issued. Denominator of warp execution efficiency.
    pub issue_slots: f64,
    /// Active-lane slots actually used. Numerator of warp execution
    /// efficiency.
    pub active_slots: f64,
    /// Bytes requested by global loads.
    pub gld_requested_bytes: u64,
    /// Transactions performed for global loads.
    pub gld_transactions: u64,
    /// Bytes requested by global stores.
    pub gst_requested_bytes: u64,
    /// Transactions performed for global stores.
    pub gst_transactions: u64,
    /// Shared-memory accesses.
    pub shared_accesses: u64,
    /// Shared-memory replay transactions caused by bank conflicts.
    pub shared_replays: u64,
    /// Global-memory atomic operations (per lane).
    pub atomics_global: u64,
    /// Shared-memory atomic operations (per lane).
    pub atomics_shared: u64,
    /// Device-side (nested) kernel launches performed by this kernel.
    pub device_launches: u64,
    /// Block-wide barriers executed.
    pub barriers: u64,
    /// Total warp execution cycles (work, not span).
    pub work_cycles: f64,
    /// Stall attribution of the warp cycles (see [`StallCycles`]). The
    /// buckets are always computed — with or without the timeline profiler
    /// — so they ride through the memo cache and reports stay bit-identical
    /// across every mode.
    pub stalls: StallCycles,
}

impl KernelMetrics {
    /// `nvprof` `warp_execution_efficiency`: average fraction of active
    /// lanes per issued warp instruction. 1.0 when no divergence.
    pub fn warp_execution_efficiency(&self) -> f64 {
        if self.issue_slots == 0.0 {
            1.0
        } else {
            self.active_slots / self.issue_slots
        }
    }

    /// `nvprof` `gld_efficiency`: requested global-load throughput over
    /// required transaction throughput. Can exceed 1.0 for broadcast
    /// patterns (many lanes served by one transaction), as on hardware.
    pub fn gld_efficiency(&self) -> f64 {
        ratio_bytes(self.gld_requested_bytes, self.gld_transactions)
    }

    /// `nvprof` `gst_efficiency` for stores.
    pub fn gst_efficiency(&self) -> f64 {
        ratio_bytes(self.gst_requested_bytes, self.gst_transactions)
    }

    /// Total atomic operations (global + shared).
    pub fn atomics(&self) -> u64 {
        self.atomics_global + self.atomics_shared
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &KernelMetrics) {
        self.grids += other.grids;
        self.blocks += other.blocks;
        self.threads += other.threads;
        self.issue_slots += other.issue_slots;
        self.active_slots += other.active_slots;
        self.gld_requested_bytes += other.gld_requested_bytes;
        self.gld_transactions += other.gld_transactions;
        self.gst_requested_bytes += other.gst_requested_bytes;
        self.gst_transactions += other.gst_transactions;
        self.shared_accesses += other.shared_accesses;
        self.shared_replays += other.shared_replays;
        self.atomics_global += other.atomics_global;
        self.atomics_shared += other.atomics_shared;
        self.device_launches += other.device_launches;
        self.barriers += other.barriers;
        self.work_cycles += other.work_cycles;
        self.stalls.merge(&other.stalls);
    }

    /// Total warp cycles the stall buckets should account for:
    /// `work_cycles` plus the barrier cost block finalization charges on
    /// top of it. [`StallCycles::total`] equals this within floating-point
    /// tolerance.
    pub fn attributed_cycles(&self) -> f64 {
        self.work_cycles + self.stalls.barrier
    }
}

fn ratio_bytes(requested: u64, transactions: u64) -> f64 {
    if transactions == 0 {
        1.0
    } else {
        requested as f64 / (transactions as f64 * 128.0)
    }
}

/// Simulator-side (host) execution statistics for one batch: wall time and
/// alignment-memoization behaviour (see DESIGN.md §8). Purely
/// observational — two runs that differ only in this section model
/// identical GPU executions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Host wall-clock seconds spent executing and timing the batch.
    pub wall_seconds: f64,
    /// Host nanoseconds spent inside the event-driven timing pass
    /// (`sched::simulate`) alone — the serial Amdahl floor the DESIGN.md
    /// §11 fast paths attack. A subset of `wall_seconds`.
    pub timing_pass_ns: u64,
    /// Warp-segment alignments served from the memo cache.
    pub warp_hits: u64,
    /// Warp-segment alignments computed from scratch (cacheable misses).
    pub warp_misses: u64,
    /// Whole blocks short-circuited by the block-level cache.
    pub block_hits: u64,
    /// Blocks that went through full finalization (cacheable misses).
    pub block_misses: u64,
    /// Ops recorded into traces by functional execution.
    pub ops_traced: u64,
    /// Ops whose timing was replayed from the cache instead of aligned.
    pub ops_replayed: u64,
    /// Blocks whose per-block hazard scans npar-analyze statically elided
    /// (see [`crate::analyze`]). Host-side observational counter: elision
    /// never changes what the checker reports.
    pub elided: u64,
    /// Timing domains discovered by the partitioned timing pass
    /// (DESIGN.md §13); zero while `timing_threads` is 1 or a batch is
    /// too small to partition.
    pub timing_domains: u64,
    /// Timing domains whose optimistic parallel runs were committed.
    pub timing_domains_committed: u64,
    /// Timing domains replayed serially after a time-window conflict.
    pub timing_rollbacks: u64,
    /// Grids the analytic mode finished in closed form (see
    /// [`crate::Gpu::set_analytic`]).
    pub analytic_grids: u64,
}

impl SimStats {
    /// Merge another batch's statistics into this one.
    pub fn merge(&mut self, other: &SimStats) {
        self.wall_seconds += other.wall_seconds;
        self.timing_pass_ns += other.timing_pass_ns;
        self.warp_hits += other.warp_hits;
        self.warp_misses += other.warp_misses;
        self.block_hits += other.block_hits;
        self.block_misses += other.block_misses;
        self.ops_traced += other.ops_traced;
        self.ops_replayed += other.ops_replayed;
        self.elided += other.elided;
        self.timing_domains += other.timing_domains;
        self.timing_domains_committed += other.timing_domains_committed;
        self.timing_rollbacks += other.timing_rollbacks;
        self.analytic_grids += other.analytic_grids;
    }

    /// Share of host wall time spent inside the event-driven timing pass
    /// (0.0 when no wall time was recorded).
    pub fn timing_share(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            (self.timing_pass_ns as f64 * 1e-9 / self.wall_seconds).min(1.0)
        } else {
            0.0
        }
    }

    /// Fraction of ops whose timing came from the cache.
    pub fn replay_fraction(&self) -> f64 {
        let total = self.ops_traced;
        if total == 0 {
            0.0
        } else {
            self.ops_replayed as f64 / total as f64
        }
    }
}

/// Execution report for one synchronized batch of kernel launches:
/// wall-clock model plus per-kernel profiling counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Device name.
    pub device: String,
    /// Modeled elapsed GPU cycles (makespan of the batch).
    pub cycles: f64,
    /// Modeled elapsed seconds.
    pub seconds: f64,
    /// Time-averaged resident warps over `num_sms × max_warps_per_sm`
    /// (`nvprof` "achieved occupancy"), averaged over the busy makespan.
    pub achieved_occupancy: f64,
    /// Kernels launched from the host.
    pub host_launches: u64,
    /// Kernels launched from the device (dynamic parallelism), total.
    pub device_launches: u64,
    /// Device launches that overflowed the fixed pending-launch pool into
    /// the slow virtualized pool.
    pub overflow_launches: u64,
    /// Hazards the checker detected in this batch (including suppressed
    /// ones beyond the recording cap); see [`crate::check`]. Always zero
    /// at [`crate::check::CheckLevel::Off`]. Independent of static scan
    /// elision by construction — elision only skips scans a promoted probe
    /// proved would pass; [`crate::Gpu::take_check_report`] breaks the
    /// batch down into scanned vs elided blocks for auditing.
    pub hazards: u64,
    /// Host-side simulator statistics (wall time, memo-cache behaviour).
    /// Observational only: everything above is independent of it.
    pub sim: SimStats,
    /// Per-kernel-name metrics.
    pub kernels: BTreeMap<String, KernelMetrics>,
}

impl Report {
    /// Aggregate the per-kernel counters into one [`KernelMetrics`].
    pub fn total(&self) -> KernelMetrics {
        self.total_where(|_| true)
    }

    /// Aggregate the counters of the kernels whose name satisfies the
    /// predicate — e.g. profiling only an algorithm's irregular kernels
    /// like the paper's per-kernel nvprof tables do.
    pub fn total_where(&self, mut keep: impl FnMut(&str) -> bool) -> KernelMetrics {
        let mut acc = KernelMetrics::default();
        for (name, m) in &self.kernels {
            if keep(name) {
                acc.merge(m);
            }
        }
        acc
    }

    /// Aggregate warp execution efficiency across all kernels.
    pub fn warp_execution_efficiency(&self) -> f64 {
        self.total().warp_execution_efficiency()
    }

    /// Merge another report (summing times and counters) — used by hosts
    /// that synchronize several batches and want one figure.
    pub fn merge(&mut self, other: &Report) {
        if self.device.is_empty() {
            self.device.clone_from(&other.device);
        }
        // Occupancy averages weighted by elapsed cycles.
        let total_cycles = self.cycles + other.cycles;
        if total_cycles > 0.0 {
            self.achieved_occupancy = (self.achieved_occupancy * self.cycles
                + other.achieved_occupancy * other.cycles)
                / total_cycles;
        }
        self.cycles = total_cycles;
        self.seconds += other.seconds;
        self.host_launches += other.host_launches;
        self.device_launches += other.device_launches;
        self.overflow_launches += other.overflow_launches;
        self.hazards += other.hazards;
        self.sim.merge(&other.sim);
        for (name, m) in &other.kernels {
            self.kernels.entry(name.clone()).or_default().merge(m);
        }
    }

    /// Render an `nvprof --metrics`-style table: one row per kernel with
    /// warp execution efficiency, global load/store efficiency and the
    /// [`StallCycles`] buckets as shares of each kernel's attributed
    /// cycles. The report-wide achieved occupancy heads the table.
    pub fn stall_table(&self) -> String {
        use fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "== stall attribution ({}) ==   achieved_occupancy {:5.1}%",
            self.device,
            self.achieved_occupancy * 100.0
        );
        let _ = writeln!(
            s,
            "{:<28} {:>8} {:>8} {:>12} | {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "kernel",
            "warp_eff",
            "gld_eff",
            "cycles",
            "compute",
            "diverge",
            "gmem",
            "shared",
            "atomic",
            "launch",
            "barrier"
        );
        for (name, m) in &self.kernels {
            let total = m.attributed_cycles();
            let share = |c: f64| if total > 0.0 { c / total * 100.0 } else { 0.0 };
            let _ = writeln!(
                s,
                "{:<28} {:>7.1}% {:>7.1}% {:>12.0} | {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
                name,
                m.warp_execution_efficiency() * 100.0,
                m.gld_efficiency() * 100.0,
                total,
                share(m.stalls.compute),
                share(m.stalls.divergence),
                share(m.stalls.gmem),
                share(m.stalls.shared),
                share(m.stalls.atomic),
                share(m.stalls.launch),
                share(m.stalls.barrier),
            );
        }
        s
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.device)?;
        writeln!(
            f,
            "elapsed: {:.3} ms ({:.0} cycles)   achieved occupancy: {:5.1}%",
            self.seconds * 1e3,
            self.cycles,
            self.achieved_occupancy * 100.0
        )?;
        writeln!(
            f,
            "launches: {} host, {} device",
            self.host_launches, self.device_launches
        )?;
        if self.hazards > 0 {
            writeln!(f, "hazards: {} (see the check report)", self.hazards)?;
        }
        if self.sim.ops_traced > 0 {
            writeln!(
                f,
                "sim: {:.1} ms host ({:.1} ms / {:.0}% timing pass) | {} ops \
                 traced, {} replayed from cache ({:.1}%) | warp cache {}/{} \
                 | block cache {}/{}",
                self.sim.wall_seconds * 1e3,
                self.sim.timing_pass_ns as f64 * 1e-6,
                self.sim.timing_share() * 100.0,
                self.sim.ops_traced,
                self.sim.ops_replayed,
                self.sim.replay_fraction() * 100.0,
                self.sim.warp_hits,
                self.sim.warp_hits + self.sim.warp_misses,
                self.sim.block_hits,
                self.sim.block_hits + self.sim.block_misses,
            )?;
        }
        writeln!(
            f,
            "{:<28} {:>7} {:>9} {:>9} {:>9} {:>10} {:>8}",
            "kernel", "grids", "warp_eff", "gld_eff", "gst_eff", "atomics", "dlaunch"
        )?;
        for (name, m) in &self.kernels {
            writeln!(
                f,
                "{:<28} {:>7} {:>8.1}% {:>8.1}% {:>8.1}% {:>10} {:>8}",
                name,
                m.grids,
                m.warp_execution_efficiency() * 100.0,
                m.gld_efficiency() * 100.0,
                m.gst_efficiency() * 100.0,
                m.atomics(),
                m.device_launches,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_bounds() {
        let mut m = KernelMetrics::default();
        assert_eq!(m.warp_execution_efficiency(), 1.0);
        m.issue_slots = 64.0;
        m.active_slots = 16.0;
        assert!((m.warp_execution_efficiency() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn gld_efficiency_scattered_vs_coalesced() {
        let mut m = KernelMetrics {
            gld_requested_bytes: 128,
            gld_transactions: 1,
            ..Default::default()
        };
        assert!((m.gld_efficiency() - 1.0).abs() < 1e-12);
        m.gld_transactions = 32;
        assert!((m.gld_efficiency() - 0.03125).abs() < 1e-12);
    }

    #[test]
    fn merge_adds() {
        let mut a = KernelMetrics {
            grids: 1,
            atomics_global: 5,
            issue_slots: 32.0,
            active_slots: 32.0,
            ..Default::default()
        };
        let b = KernelMetrics {
            grids: 2,
            atomics_shared: 3,
            issue_slots: 32.0,
            active_slots: 16.0,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.grids, 3);
        assert_eq!(a.atomics(), 8);
        assert!((a.warp_execution_efficiency() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn report_merge_weights_occupancy() {
        let mut a = Report {
            cycles: 100.0,
            achieved_occupancy: 0.5,
            ..Default::default()
        };
        let b = Report {
            cycles: 300.0,
            achieved_occupancy: 0.9,
            ..Default::default()
        };
        a.merge(&b);
        assert!((a.achieved_occupancy - 0.8).abs() < 1e-12);
        assert_eq!(a.cycles, 400.0);
    }

    #[test]
    fn sim_stats_merge_and_display() {
        let mut a = SimStats {
            wall_seconds: 0.5,
            timing_pass_ns: 100_000_000,
            warp_hits: 3,
            warp_misses: 1,
            block_hits: 2,
            block_misses: 2,
            ops_traced: 100,
            ops_replayed: 60,
            elided: 4,
            timing_domains: 5,
            timing_domains_committed: 4,
            timing_rollbacks: 1,
            analytic_grids: 2,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.warp_hits, 6);
        assert_eq!(a.ops_traced, 200);
        assert!((a.wall_seconds - 1.0).abs() < 1e-12);
        assert_eq!(a.timing_pass_ns, 200_000_000);
        assert!((a.timing_share() - 0.2).abs() < 1e-12);
        assert!((a.replay_fraction() - 0.6).abs() < 1e-12);
        assert_eq!(SimStats::default().replay_fraction(), 0.0);
        assert_eq!(SimStats::default().timing_share(), 0.0);

        let r = Report {
            sim: a,
            ..Default::default()
        };
        let s = r.to_string();
        assert!(s.contains("replayed from cache"));
        assert!(s.contains("timing pass"));
        assert!(s.contains("warp cache 6/8"));
        // A report with no traced ops keeps the sim line out entirely.
        assert!(!Report::default().to_string().contains("replayed"));
    }

    #[test]
    fn stall_cycles_merge_and_total() {
        let mut a = StallCycles {
            compute: 10.0,
            divergence: 5.0,
            gmem: 3.0,
            ..Default::default()
        };
        let b = StallCycles {
            compute: 1.0,
            barrier: 2.0,
            launch: 4.0,
            ..Default::default()
        };
        a.merge(&b);
        assert!((a.compute - 11.0).abs() < 1e-12);
        assert!((a.total() - 25.0).abs() < 1e-12);
        let named = a.named();
        assert_eq!(named[0].0, "compute");
        assert!((named.iter().map(|(_, c)| c).sum::<f64>() - a.total()).abs() < 1e-12);
    }

    #[test]
    fn metrics_merge_includes_stalls() {
        let mut a = KernelMetrics {
            work_cycles: 10.0,
            stalls: StallCycles {
                compute: 6.0,
                divergence: 4.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let b = KernelMetrics {
            work_cycles: 2.0,
            stalls: StallCycles {
                gmem: 2.0,
                barrier: 1.0,
                ..Default::default()
            },
            ..Default::default()
        };
        a.merge(&b);
        assert!((a.stalls.total() - 13.0).abs() < 1e-12);
        assert!((a.attributed_cycles() - 13.0).abs() < 1e-12);
    }

    #[test]
    fn stall_table_renders_shares() {
        let mut r = Report {
            device: "test".into(),
            achieved_occupancy: 0.5,
            ..Default::default()
        };
        r.kernels.insert(
            "k".into(),
            KernelMetrics {
                work_cycles: 80.0,
                stalls: StallCycles {
                    compute: 40.0,
                    divergence: 40.0,
                    barrier: 20.0,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let t = r.stall_table();
        assert!(t.contains("stall attribution"));
        assert!(t.contains("diverge"));
        assert!(t.contains("40.0%"), "table: {t}");
        // An all-zero kernel renders 0% shares without dividing by zero.
        r.kernels.insert("empty".into(), KernelMetrics::default());
        assert!(r.stall_table().contains("empty"));
    }

    #[test]
    fn display_contains_kernel_rows() {
        let mut r = Report {
            device: "test".into(),
            ..Default::default()
        };
        r.kernels.insert("spmv".into(), KernelMetrics::default());
        let s = r.to_string();
        assert!(s.contains("spmv"));
        assert!(s.contains("warp_eff"));
    }
}
