//! [`SyncCell`]: a tiny `RwLock`-backed cell with the ergonomics of
//! `RefCell`/`Cell`.
//!
//! Kernels must be `Send + Sync` so the parallel host executor can trace
//! blocks of a grid on several worker threads at once (see
//! [`crate::Gpu::with_threads`]). Kernel state that used to live in
//! `Rc<RefCell<T>>` or `Cell<T>` migrates to `Arc<SyncCell<T>>` /
//! `SyncCell<T>` with no changes at the use sites: `borrow()`,
//! `borrow_mut()`, `get()` and `set()` keep their spelling, they just take a
//! reader/writer lock instead of bumping a borrow flag.
//!
//! The backing lock is an `RwLock` rather than a `Mutex` so that every
//! *legal* `RefCell` pattern keeps working — in particular two shared
//! `borrow()`s alive in one expression (`cell.borrow().a + cell.borrow().b`),
//! which a mutex would self-deadlock on. Patterns `RefCell` panics on (a
//! `borrow_mut` overlapping any other borrow on one thread) deadlock here
//! instead; such code cannot exist in a previously passing test suite.
//!
//! Like `RefCell`, a `SyncCell` is *not* a synchronization strategy — it is
//! an interior-mutability primitive. Kernels that trace concurrently
//! ([`crate::Kernel::parallel_trace`]) must still be order-independent
//! between launch boundaries; the lock only makes access data-race-free, it
//! does not make racy algorithms deterministic.

use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A `Send + Sync` cell wrapping an [`RwLock`], with `RefCell`/`Cell`-style
/// methods.
///
/// Concurrent shared `borrow()`s — from one thread or many — proceed in
/// parallel, exactly like `RefCell`'s shared borrows. Overlapping
/// `borrow_mut()` calls from *different* threads block instead of panicking;
/// a `borrow_mut` overlapping another borrow on the *same* thread deadlocks,
/// exactly the shapes `RefCell` would have panicked on.
///
/// ```
/// use npar_sim::SyncCell;
///
/// let hits = SyncCell::new(0u32);
/// hits.set(hits.get() + 1);
/// *hits.borrow_mut() += 1;
/// assert_eq!(*hits.borrow(), 2);
/// ```
#[derive(Debug, Default)]
pub struct SyncCell<T>(RwLock<T>);

impl<T> SyncCell<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        SyncCell(RwLock::new(value))
    }

    /// Take the read lock and return a shared view of the value
    /// (`RefCell::borrow`). Multiple shared borrows may be alive at once.
    pub fn borrow(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Take the write lock and return a mutable view of the value
    /// (`RefCell::borrow_mut`).
    pub fn borrow_mut(&self) -> RwLockWriteGuard<'_, T> {
        self.write()
    }

    /// Replace the value, returning the old one.
    pub fn replace(&self, value: T) -> T {
        std::mem::replace(&mut *self.write(), value)
    }

    /// Swap the contents of two cells (`RefCell::swap`). Locks in address
    /// order so two threads swapping the same pair with the arguments
    /// reversed cannot deadlock.
    pub fn swap(&self, other: &SyncCell<T>) {
        if std::ptr::eq(self, other) {
            return;
        }
        let (a, b) = if (self as *const Self) < (other as *const Self) {
            (self, other)
        } else {
            (other, self)
        };
        let mut ga = a.write();
        let mut gb = b.write();
        std::mem::swap(&mut *ga, &mut *gb);
    }

    /// Consume the cell and return the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, T> {
        // Worker panics are captured and re-raised by the pool after the
        // scope drains; a poisoned lock carries no extra information here.
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Copy> SyncCell<T> {
    /// Copy the value out (`Cell::get`).
    pub fn get(&self) -> T {
        *self.borrow()
    }
}

impl<T> SyncCell<T> {
    /// Store a new value (`Cell::set`).
    pub fn set(&self, value: T) {
        *self.write() = value;
    }
}

impl<T: Default> SyncCell<T> {
    /// Take the value, leaving `T::default()` behind (`Cell::take`).
    pub fn take(&self) -> T {
        std::mem::take(&mut *self.write())
    }
}

impl<T: Clone> Clone for SyncCell<T> {
    fn clone(&self) -> Self {
        SyncCell::new(self.borrow().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn cell_style_get_set() {
        let c = SyncCell::new(7u32);
        assert_eq!(c.get(), 7);
        c.set(9);
        assert_eq!(c.get(), 9);
        assert_eq!(c.replace(11), 9);
        assert_eq!(c.take(), 11);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn refcell_style_borrows() {
        let c = SyncCell::new(vec![1u32, 2]);
        c.borrow_mut().push(3);
        assert_eq!(c.borrow().len(), 3);
        assert_eq!(c.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn overlapping_shared_borrows_do_not_deadlock() {
        struct Pair {
            a: u32,
            b: u32,
        }
        let c = SyncCell::new(Pair { a: 3, b: 4 });
        // Two read guards alive in one expression — legal for RefCell, and
        // must stay legal here (the migration guarantee).
        assert_eq!(c.borrow().a + c.borrow().b, 7);
        let (x, y) = (c.borrow(), c.borrow());
        assert_eq!(x.a, 3);
        assert_eq!(y.b, 4);
    }

    #[test]
    fn shared_across_threads() {
        let c = Arc::new(SyncCell::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let v = *c.borrow();
                    *c.borrow_mut() = v + 1;
                    c.set(c.get()); // exercise the Copy path too
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.get() >= 100); // racy increments, but data-race-free
    }
}
