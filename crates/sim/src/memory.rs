//! Memory-system models: global-memory coalescing and shared-memory bank
//! conflicts.
//!
//! Coalescing follows the Kepler L1 model the paper profiles against: a warp
//! memory instruction is serviced in units of `mem_transaction_bytes`
//! (128-byte cache lines); the number of *distinct* lines touched by the
//! active lanes is the transaction count. `nvprof`'s `gld_efficiency` /
//! `gst_efficiency` are then requested bytes over transferred bytes —
//! fully-coalesced 4-byte accesses hit 100 %, a fully scattered warp hits
//! 32 lanes × 4 B / 32 lines × 128 B ≈ 3.1 %, which is exactly the range
//! Table I of the paper reports.

/// Result of coalescing analysis for one warp memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Coalesce {
    /// Bytes the lanes actually asked for.
    pub requested_bytes: u64,
    /// Distinct transactions (cache lines) needed to service them.
    pub transactions: u64,
}

/// Analyze one warp-wide global access. `accesses` holds `(addr, size)` for
/// each active lane. Scratch is caller-provided to avoid per-step allocation.
pub(crate) fn coalesce(
    accesses: &[(u64, u8)],
    line_bytes: u32,
    scratch: &mut Vec<u64>,
) -> Coalesce {
    debug_assert!(line_bytes.is_power_of_two());
    let shift = line_bytes.trailing_zeros();
    scratch.clear();
    let mut requested = 0u64;
    for &(addr, size) in accesses {
        requested += u64::from(size);
        let first = addr >> shift;
        // A single lane access can straddle a line boundary.
        let last = (addr + u64::from(size).max(1) - 1) >> shift;
        for line in first..=last {
            scratch.push(line);
        }
    }
    scratch.sort_unstable();
    scratch.dedup();
    Coalesce {
        requested_bytes: requested,
        transactions: scratch.len() as u64,
    }
}

/// Number of shared-memory replays for one warp access: the maximum number
/// of active lanes hitting the same bank (banks are 4-byte interleaved).
/// A conflict-free access replays once.
pub(crate) fn bank_replays(addrs: &[u32], banks: u32, scratch: &mut Vec<u32>) -> u64 {
    if addrs.is_empty() {
        return 0;
    }
    scratch.clear();
    scratch.extend(addrs.iter().map(|a| (a / 4) % banks));
    scratch.sort_unstable();
    let mut max_mult = 1u64;
    let mut run = 1u64;
    for w in scratch.windows(2) {
        if w[0] == w[1] {
            run += 1;
            max_mult = max_mult.max(run);
        } else {
            run = 1;
        }
    }
    max_mult
}

/// Maximum number of entries sharing one value — used for atomic-conflict
/// serialization (lanes atomically updating the same address serialize).
pub(crate) fn max_multiplicity(addrs: &mut [u64]) -> u64 {
    if addrs.is_empty() {
        return 0;
    }
    addrs.sort_unstable();
    let mut max_mult = 1u64;
    let mut run = 1u64;
    for i in 1..addrs.len() {
        if addrs[i] == addrs[i - 1] {
            run += 1;
            max_mult = max_mult.max(run);
        } else {
            run = 1;
        }
    }
    max_mult
}

#[cfg(test)]
mod tests {
    use super::*;

    fn co(accesses: &[(u64, u8)]) -> Coalesce {
        let mut scratch = Vec::new();
        coalesce(accesses, 128, &mut scratch)
    }

    #[test]
    fn fully_coalesced_warp_is_one_transaction() {
        let accesses: Vec<(u64, u8)> = (0..32).map(|i| (i * 4, 4)).collect();
        let c = co(&accesses);
        assert_eq!(c.transactions, 1);
        assert_eq!(c.requested_bytes, 128);
    }

    #[test]
    fn scattered_warp_is_one_transaction_per_lane() {
        let accesses: Vec<(u64, u8)> = (0..32).map(|i| (i * 4096, 4)).collect();
        let c = co(&accesses);
        assert_eq!(c.transactions, 32);
        assert_eq!(c.requested_bytes, 128);
    }

    #[test]
    fn straddling_access_counts_both_lines() {
        let c = co(&[(126, 4)]);
        assert_eq!(c.transactions, 2);
    }

    #[test]
    fn duplicate_addresses_coalesce() {
        let accesses: Vec<(u64, u8)> = (0..32).map(|_| (256, 4)).collect();
        let c = co(&accesses);
        assert_eq!(c.transactions, 1);
    }

    #[test]
    fn empty_access_list() {
        let c = co(&[]);
        assert_eq!(c.transactions, 0);
        assert_eq!(c.requested_bytes, 0);
    }

    #[test]
    fn bank_conflicts() {
        let mut s = Vec::new();
        // 32 lanes, consecutive words: conflict-free.
        let free: Vec<u32> = (0..32).map(|i| i * 4).collect();
        assert_eq!(bank_replays(&free, 32, &mut s), 1);
        // All lanes to the same bank (stride 32 words): 32-way conflict.
        let bad: Vec<u32> = (0..32).map(|i| i * 32 * 4).collect();
        assert_eq!(bank_replays(&bad, 32, &mut s), 32);
        // Stride-2 words: 2-way conflict.
        let two: Vec<u32> = (0..32).map(|i| i * 8).collect();
        assert_eq!(bank_replays(&two, 32, &mut s), 2);
        assert_eq!(bank_replays(&[], 32, &mut s), 0);
    }

    #[test]
    fn multiplicity() {
        assert_eq!(max_multiplicity(&mut []), 0);
        assert_eq!(max_multiplicity(&mut [1, 2, 3]), 1);
        assert_eq!(max_multiplicity(&mut [5, 5, 5, 2, 2]), 3);
        assert_eq!(max_multiplicity(&mut vec![7; 32]), 32);
    }
}
