//! Execution contexts handed to kernels: [`BlockCtx`] drives one thread
//! block, [`ThreadCtx`] records one thread's instruction stream.
//!
//! Functional semantics: threads of a block run sequentially inside each
//! [`BlockCtx::for_each_thread`] sweep, and barriers are expressed *between*
//! sweeps — so everything written before a [`BlockCtx::sync`] is visible to
//! every thread after it, exactly the guarantee `__syncthreads` gives.
//! Timing semantics come from the recorded traces, not execution order.
//!
//! Tracing runs against one of two hosts (see [`TraceHost`]): the serial
//! engine-backed host, where device launches register immediately and
//! `sync_children` recurses into child execution, or the worker-local host
//! used when a [`crate::Kernel::parallel_trace`] kernel's blocks are traced
//! concurrently — launches and hazards are collected locally and spliced
//! into the engine in canonical block order afterwards.

use crate::check::{CheckLevel, CheckState};
use crate::config::DeviceConfig;
use crate::engine::{register_grid, run_subtree, validate_cfg, Engine, Origin};
use crate::handle::GBuf;
use crate::kernel::{BlockState, Kernel, KernelRef, LaunchConfig, Stream};
use crate::memo::{BlockFps, Fingerprint};
use crate::trace::Op;

/// A device launch recorded by a concurrently traced block, pending
/// canonical registration on the main thread. The matching
/// [`Op::Launch`] in the trace carries the launch's *index in this list*
/// as a placeholder grid id until the merge step patches the real one in.
pub(crate) struct ParLaunch {
    pub kernel: KernelRef,
    pub cfg: LaunchConfig,
    pub stream_slot: u32,
}

/// Worker-local tracing backend for one concurrently traced block.
pub(crate) struct ParTrace<'e> {
    pub device: &'e DeviceConfig,
    pub grid_name: &'e str,
    pub grid_id: usize,
    /// Local hazard state (invalid-launch diagnostics recorded mid-trace),
    /// absorbed into the engine's state in block order at the merge.
    pub check: CheckState,
    /// Launches in issue order (thread order within the block).
    pub launches: Vec<ParLaunch>,
}

/// What a [`BlockCtx`] traces against.
pub(crate) enum TraceHost<'e> {
    /// Single-threaded tracing with full engine access.
    Serial(&'e mut Engine),
    /// Concurrent tracing of a [`crate::Kernel::parallel_trace`] kernel on
    /// a pool worker (or the main thread helping the pool).
    Par(ParTrace<'e>),
}

impl TraceHost<'_> {
    fn device(&self) -> &DeviceConfig {
        match self {
            TraceHost::Serial(e) => &e.device,
            TraceHost::Par(p) => p.device,
        }
    }
}

/// Context for one thread block of a running kernel.
pub struct BlockCtx<'e> {
    host: TraceHost<'e>,
    grid_id: usize,
    block_idx: u32,
    cfg: LaunchConfig,
    traces: Vec<Vec<Op>>,
    /// Rolling per-thread trace fingerprints (see [`crate::memo`]),
    /// maintained alongside the traces so memoization keys cost one hash
    /// step per recorded op instead of a post-hoc pass.
    fps: BlockFps,
    /// Whether fingerprints roll at all for this block — off when
    /// memoization is disabled or the kernel's fingerprint class is
    /// adaptively bypassed (see [`crate::memo::ClassStats`]).
    fp_on: bool,
    /// The kernel opted into concurrent tracing ([`Kernel::parallel_trace`])
    /// and therefore must not join children mid-block.
    par_kernel: bool,
    state: BlockState,
    /// Child grids launched by this block and not yet joined (serial host
    /// only; the parallel host defers registration itself).
    pending: Vec<usize>,
}

impl<'e> BlockCtx<'e> {
    #[allow(clippy::too_many_arguments)] // crate-internal; both executors thread the same set
    pub(crate) fn new(
        host: TraceHost<'e>,
        kernel: &dyn Kernel,
        grid_id: usize,
        block_idx: u32,
        cfg: LaunchConfig,
        mut traces: Vec<Vec<Op>>,
        mut fps: BlockFps,
        fp_on: bool,
    ) -> Self {
        for t in &mut traces {
            t.clear();
        }
        traces.resize_with(cfg.block_dim as usize, Vec::new);
        traces.truncate(cfg.block_dim as usize);
        fps.reset(cfg.block_dim as usize);
        BlockCtx {
            host,
            grid_id,
            block_idx,
            cfg,
            traces,
            fps,
            fp_on,
            par_kernel: kernel.parallel_trace(),
            state: kernel.block_state(block_idx),
            pending: Vec::new(),
        }
    }

    pub(crate) fn into_parts(self) -> (Vec<Vec<Op>>, BlockFps, Vec<usize>, TraceHost<'e>) {
        (self.traces, self.fps, self.pending, self.host)
    }

    /// Index of this block within its grid.
    pub fn block_idx(&self) -> u32 {
        self.block_idx
    }

    /// Threads per block.
    pub fn block_dim(&self) -> u32 {
        self.cfg.block_dim
    }

    /// Blocks in the grid.
    pub fn grid_dim(&self) -> u32 {
        self.cfg.grid_dim
    }

    /// Run `f` once for every thread of the block, in thread order.
    ///
    /// Call it several times with [`BlockCtx::sync`] in between to express
    /// barrier-separated phases.
    pub fn for_each_thread(&mut self, mut f: impl FnMut(&mut ThreadCtx<'_, '_>)) {
        let BlockFps { lanes, base } = &mut self.fps;
        for t in 0..self.cfg.block_dim {
            let mut ctx = ThreadCtx {
                host: &mut self.host,
                trace: &mut self.traces[t as usize],
                fp: &mut lanes[t as usize],
                canon: &mut *base,
                fp_on: self.fp_on,
                state: &mut self.state,
                pending: &mut self.pending,
                grid_id: self.grid_id,
                block_idx: self.block_idx,
                thread_idx: t,
                block_dim: self.cfg.block_dim,
                grid_dim: self.cfg.grid_dim,
                _lifetime: std::marker::PhantomData,
            };
            f(&mut ctx);
        }
    }

    /// Run `f` for the block leader (thread 0) only. Equivalent to a
    /// `for_each_thread` whose closure is guarded by `is_leader()`, but
    /// without touching the other threads — the fast path for the
    /// leader-launches / leader-combines idioms.
    pub fn leader(&mut self, f: impl FnOnce(&mut ThreadCtx<'_, '_>)) {
        let mut ctx = ThreadCtx {
            host: &mut self.host,
            trace: &mut self.traces[0],
            fp: &mut self.fps.lanes[0],
            canon: &mut self.fps.base,
            fp_on: self.fp_on,
            state: &mut self.state,
            pending: &mut self.pending,
            grid_id: self.grid_id,
            block_idx: self.block_idx,
            thread_idx: 0,
            block_dim: self.cfg.block_dim,
            grid_dim: self.cfg.grid_dim,
            _lifetime: std::marker::PhantomData,
        };
        f(&mut ctx);
    }

    /// Block-wide barrier (`__syncthreads`).
    pub fn sync(&mut self) {
        for t in &mut self.traces {
            t.push(Op::Sync);
        }
        if self.fp_on {
            for fp in &mut self.fps.lanes {
                fp.record(Op::Sync, 0);
            }
        }
    }

    /// Block-wide barrier that additionally waits for every child grid this
    /// block launched so far (the parent/child join of CUDA dynamic
    /// parallelism). On the simulated device the waiting block is swapped
    /// out and pays a restore penalty when it resumes — the Kepler
    /// behaviour that makes in-kernel synchronization expensive.
    ///
    /// Panics when the kernel opted into [`Kernel::parallel_trace`]:
    /// joining a child mid-block imposes an execution-order dependency that
    /// concurrent tracing cannot honor (the panic fires at any thread
    /// count, so the contract violation cannot hide on a serial run).
    pub fn sync_children(&mut self) {
        assert!(
            !self.par_kernel,
            "parallel_trace kernels must not call sync_children: the mid-block \
             join imposes an execution-order dependency concurrent tracing \
             cannot honor (drop the parallel_trace opt-in or the join)"
        );
        match &mut self.host {
            TraceHost::Serial(engine) => {
                // Functional join: drain the block's launched children (and
                // their descendants) so their results are visible after the
                // barrier.
                let pending = std::mem::take(&mut self.pending);
                if !pending.is_empty() {
                    // Publish any alignment work the chunked parallel
                    // executor deferred, so the child grids observe exactly
                    // the cache/metrics state the serial engine would have
                    // at this point (no-op on the serial path).
                    crate::parallel::flush_chunks(engine);
                    for child in pending {
                        run_subtree(engine, child);
                    }
                }
            }
            TraceHost::Par(_) => unreachable!("par host implies parallel_trace"),
        }
        for t in &mut self.traces {
            t.push(Op::SyncChildren);
        }
        if self.fp_on {
            for fp in &mut self.fps.lanes {
                fp.record(Op::SyncChildren, 0);
            }
        }
    }

    /// Access the block state created by [`Kernel::block_state`].
    ///
    /// Panics if the block has no state of type `T`.
    pub fn state<T: 'static>(&mut self) -> &mut T {
        self.state
            .get_mut::<T>()
            .expect("block state missing or of unexpected type")
    }
}

/// Context for one thread: indices plus the instruction-recording API.
pub struct ThreadCtx<'b, 'e> {
    host: &'b mut TraceHost<'e>,
    trace: &'b mut Vec<Op>,
    fp: &'b mut Fingerprint,
    /// The block's canonical global-address base (shared by all threads;
    /// set by the block's first global access). See [`crate::memo`].
    canon: &'b mut Option<u64>,
    fp_on: bool,
    state: &'b mut BlockState,
    pending: &'b mut Vec<usize>,
    grid_id: usize,
    block_idx: u32,
    thread_idx: u32,
    block_dim: u32,
    grid_dim: u32,
    #[allow(dead_code)]
    _lifetime: std::marker::PhantomData<&'e ()>,
}

impl<'b, 'e> ThreadCtx<'b, 'e> {
    /// `threadIdx.x`.
    pub fn thread_idx(&self) -> u32 {
        self.thread_idx
    }

    /// `blockIdx.x`.
    pub fn block_idx(&self) -> u32 {
        self.block_idx
    }

    /// `blockDim.x`.
    pub fn block_dim(&self) -> u32 {
        self.block_dim
    }

    /// `gridDim.x`.
    pub fn grid_dim(&self) -> u32 {
        self.grid_dim
    }

    /// Global linear thread id (`blockIdx.x * blockDim.x + threadIdx.x`).
    pub fn global_id(&self) -> usize {
        self.block_idx as usize * self.block_dim as usize + self.thread_idx as usize
    }

    /// Total threads in the grid (grid-stride loop stride).
    pub fn grid_threads(&self) -> usize {
        self.grid_dim as usize * self.block_dim as usize
    }

    /// Whether this thread is the block leader (thread 0).
    pub fn is_leader(&self) -> bool {
        self.thread_idx == 0
    }

    /// Record `n` arithmetic instructions. Consecutive calls fuse.
    pub fn compute(&mut self, n: u32) {
        if n == 0 {
            return;
        }
        if self.fp_on {
            self.fp.compute(n);
        }
        if let Some(Op::Compute(last)) = self.trace.last_mut() {
            *last += n;
        } else {
            self.trace.push(Op::Compute(n));
        }
    }

    /// Canonical base for fingerprinting global addresses: the block's
    /// first global access, rounded down to the transaction line. Timing is
    /// invariant under line-aligned shifts of the block's whole access set,
    /// so structurally identical blocks at shifted addresses share keys.
    #[inline]
    fn canon_base(&mut self, addr: u64) -> u64 {
        let line = u64::from(self.host.device().mem_transaction_bytes);
        *self.canon.get_or_insert(addr & !(line - 1))
    }

    /// Record a global-memory load of element `i` of `buf`.
    pub fn ld<T>(&mut self, buf: &GBuf<T>, i: usize) {
        let op = Op::GlobalRead {
            addr: buf.addr(i),
            size: buf.elem_bytes(),
        };
        if self.fp_on {
            let base = self.canon_base(buf.addr(i));
            self.fp.record(op, base);
        }
        self.trace.push(op);
    }

    /// Record a global-memory store to element `i` of `buf`.
    pub fn st<T>(&mut self, buf: &GBuf<T>, i: usize) {
        let op = Op::GlobalWrite {
            addr: buf.addr(i),
            size: buf.elem_bytes(),
        };
        if self.fp_on {
            let base = self.canon_base(buf.addr(i));
            self.fp.record(op, base);
        }
        self.trace.push(op);
    }

    /// Record a global-memory atomic on element `i` of `buf`.
    pub fn atomic<T>(&mut self, buf: &GBuf<T>, i: usize) {
        let op = Op::AtomicGlobal { addr: buf.addr(i) };
        if self.fp_on {
            let base = self.canon_base(buf.addr(i));
            self.fp.record(op, base);
        }
        self.trace.push(op);
    }

    /// Record a shared-memory load at byte offset `addr`.
    pub fn shared_ld(&mut self, addr: u32) {
        if self.fp_on {
            self.fp.record(Op::SharedRead { addr }, 0);
        }
        self.trace.push(Op::SharedRead { addr });
    }

    /// Record a shared-memory store at byte offset `addr`.
    pub fn shared_st(&mut self, addr: u32) {
        if self.fp_on {
            self.fp.record(Op::SharedWrite { addr }, 0);
        }
        self.trace.push(Op::SharedWrite { addr });
    }

    /// Record a shared-memory atomic at byte offset `addr`.
    pub fn shared_atomic(&mut self, addr: u32) {
        if self.fp_on {
            self.fp.record(Op::AtomicShared { addr }, 0);
        }
        self.trace.push(Op::AtomicShared { addr });
    }

    /// Launch a child grid (CUDA dynamic parallelism) into `stream`.
    ///
    /// Like on hardware, the child does not run at the launch point: its
    /// functional execution is deferred until the launching block joins it
    /// ([`BlockCtx::sync_children`]) or the parent grid completes.
    /// Templates that skip the join get fire-and-forget semantics and must
    /// not read child results before then. The modeled *timing* is
    /// scheduled from the launch point plus the device launch latency and
    /// pending-pool service time.
    ///
    /// A launch configuration the device cannot accept is recorded as an
    /// [`crate::HazardKind::InvalidChildLaunch`] diagnostic and the child
    /// is skipped (the CUDA device runtime likewise drops the grid and
    /// sets an error). Under [`crate::CheckLevel::Warn`] execution
    /// continues; otherwise the hosting [`crate::Gpu::launch`] fails.
    pub fn launch(&mut self, kernel: &KernelRef, cfg: LaunchConfig, stream: Stream) {
        let slot = match stream {
            Stream::Default => 0,
            Stream::Slot(n) => n,
        };
        let grid = match &mut *self.host {
            TraceHost::Serial(engine) => {
                if let Err(err) = validate_cfg(&engine.device, &cfg) {
                    let hazard = crate::check::memcheck::invalid_child_launch(
                        &engine.grids[self.grid_id].name,
                        self.grid_id,
                        self.block_idx,
                        self.thread_idx,
                        &cfg,
                        &err,
                    );
                    if engine.check.level == CheckLevel::Warn {
                        engine.check.record(hazard);
                    } else {
                        engine.check.record_fatal(hazard);
                    }
                    return;
                }
                let child = register_grid(
                    engine,
                    kernel,
                    cfg,
                    Origin::Device {
                        parent: self.grid_id,
                        block: self.block_idx,
                        stream_slot: slot,
                    },
                );
                self.pending.push(child);
                u32::try_from(child).expect("grid id overflow")
            }
            TraceHost::Par(p) => {
                if let Err(err) = validate_cfg(p.device, &cfg) {
                    let hazard = crate::check::memcheck::invalid_child_launch(
                        p.grid_name,
                        p.grid_id,
                        self.block_idx,
                        self.thread_idx,
                        &cfg,
                        &err,
                    );
                    if p.check.level == CheckLevel::Warn {
                        p.check.record(hazard);
                    } else {
                        p.check.record_fatal(hazard);
                    }
                    return;
                }
                // Placeholder id (index into the block's launch list); the
                // canonical merge registers the grid and patches the trace.
                let placeholder = u32::try_from(p.launches.len()).expect("launch overflow");
                p.launches.push(ParLaunch {
                    kernel: std::sync::Arc::clone(kernel),
                    cfg,
                    stream_slot: slot,
                });
                placeholder
            }
        };
        let op = Op::Launch { grid };
        // Recorded only for launches that actually happen: a rejected
        // launch leaves neither a trace op nor a fingerprint mark. The
        // fingerprint fold ignores the grid id (run-specific), so the
        // placeholder patching never invalidates a rolled fingerprint.
        if self.fp_on {
            self.fp.record(op, 0);
        }
        self.trace.push(op);
    }

    /// Access the block state created by [`Kernel::block_state`].
    pub fn state<T: 'static>(&mut self) -> &mut T {
        self.state
            .get_mut::<T>()
            .expect("block state missing or of unexpected type")
    }
}
