//! Event-driven device scheduler.
//!
//! Takes the grid tasks produced by functional execution and plays them
//! against the device model: thread blocks are dispatched to SMs under the
//! occupancy limits, SM issue bandwidth is shared between resident blocks,
//! grids in one stream serialize, child grids become schedulable a launch
//! latency after their launching instruction, and parent blocks that join
//! their children (`SyncChildren`) are swapped out while they wait — the
//! Kepler dynamic-parallelism behaviour whose overhead the paper measures.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::config::DeviceConfig;
use crate::cost::CostModel;
use crate::engine::{GridTask, Origin};
use crate::prof::Collector;

/// Hardware work-queue window: how many grids the dispatcher considers
/// concurrently when the head grid cannot place a block (HyperQ depth).
const DISPATCH_WINDOW: usize = 32;

/// Result of timing simulation for one batch of grids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct TimingResult {
    /// Batch makespan in device cycles.
    pub makespan: f64,
    /// Time-averaged resident warps / device warp capacity.
    pub achieved_occupancy: f64,
    /// Device launches serviced in the slow virtualized-pool regime.
    pub overflow_launches: u64,
}

/// Total order on event times (f64) for the heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TimeKey(f64);
impl Eq for TimeKey {}
impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// Grid became schedulable (launch latency elapsed).
    Release(usize),
    /// Block finished its current segment.
    SegDone(usize, u32),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SKey {
    Host(u32),
    Dev {
        parent: usize,
        block: u32,
        slot: u32,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BState {
    NotStarted,
    Running,
    /// Waiting for children, swapped off the SM.
    Swapped,
    Done,
}

#[derive(Debug, Clone)]
struct BlockRt {
    state: BState,
    /// Current (or, when swapped, next) segment index.
    seg: usize,
    sm: usize,
    unfinished_children: u32,
}

#[derive(Debug)]
struct GridRt {
    released: bool,
    started: bool,
    done: bool,
    /// Device-launched grids pass once through the pending-launch-pool
    /// service queue before release.
    launch_serviced: bool,
    next_block: usize,
    blocks_left: usize,
    children_left: usize,
}

#[derive(Debug, Clone)]
struct Sm {
    free_blocks: u32,
    free_threads: u32,
    free_warps: u32,
    free_smem: u32,
    free_regs: u32,
}

struct Sim<'a> {
    grids: &'a [GridTask],
    device: &'a DeviceConfig,
    cost: &'a CostModel,
    heap: BinaryHeap<Reverse<(TimeKey, u64, Ev)>>,
    seq: u64,
    grt: Vec<GridRt>,
    brt: Vec<Vec<BlockRt>>,
    sms: Vec<Sm>,
    resident_warps: u64,
    /// Grids with blocks still to dispatch, in activation order.
    admit_queue: Vec<usize>,
    /// Swapped-out blocks whose children completed, awaiting re-admission.
    resume_queue: VecDeque<(usize, u32)>,
    /// Stream id -> (grid ids in launch order, head index).
    streams: HashMap<SKey, (Vec<usize>, usize)>,
    stream_of: Vec<SKey>,
    now: f64,
    warp_integral: f64,
    makespan: f64,
    /// Next time the device-side pending-launch pool is free.
    launch_pool_free: f64,
    /// Launches serviced in the overflow (virtualized-pool) regime.
    overflow_launches: u64,
    /// Timeline-profiler event sink (see [`crate::prof`]); `None` keeps
    /// the scheduler on the exact pre-profiler paths.
    prof: Option<&'a mut Collector>,
}

/// Simulate the timing of a batch of executed grids, optionally recording
/// the timeline into a profiler [`Collector`].
pub(crate) fn simulate(
    grids: &[GridTask],
    device: &DeviceConfig,
    cost: &CostModel,
    prof: Option<&mut Collector>,
) -> TimingResult {
    if grids.is_empty() {
        return TimingResult {
            makespan: 0.0,
            achieved_occupancy: 0.0,
            overflow_launches: 0,
        };
    }
    let mut sim = Sim::new(grids, device, cost, prof);
    sim.run();
    let capacity = f64::from(device.num_sms) * f64::from(device.max_warps_per_sm);
    let occ = if sim.makespan > 0.0 {
        sim.warp_integral / (sim.makespan * capacity)
    } else {
        0.0
    };
    TimingResult {
        makespan: sim.makespan,
        achieved_occupancy: occ,
        overflow_launches: sim.overflow_launches,
    }
}

impl<'a> Sim<'a> {
    fn new(
        grids: &'a [GridTask],
        device: &'a DeviceConfig,
        cost: &'a CostModel,
        prof: Option<&'a mut Collector>,
    ) -> Self {
        let mut streams: HashMap<SKey, (Vec<usize>, usize)> = HashMap::new();
        let mut stream_of = Vec::with_capacity(grids.len());
        let mut grt = Vec::with_capacity(grids.len());
        let mut brt = Vec::with_capacity(grids.len());
        for (g, task) in grids.iter().enumerate() {
            let key = match task.origin {
                Origin::Host { stream, .. } => SKey::Host(stream),
                Origin::Device {
                    parent,
                    block,
                    stream_slot,
                } => SKey::Dev {
                    parent,
                    block,
                    slot: stream_slot,
                },
            };
            streams.entry(key).or_default().0.push(g);
            stream_of.push(key);
            grt.push(GridRt {
                released: false,
                started: false,
                done: false,
                launch_serviced: matches!(task.origin, Origin::Host { .. }),
                next_block: 0,
                blocks_left: task.blocks.len(),
                children_left: task.children.len(),
            });
            brt.push(vec![
                BlockRt {
                    state: BState::NotStarted,
                    seg: 0,
                    sm: usize::MAX,
                    unfinished_children: 0,
                };
                task.blocks.len()
            ]);
        }
        let sm = Sm {
            free_blocks: device.max_blocks_per_sm,
            free_threads: device.max_threads_per_sm,
            free_warps: device.max_warps_per_sm,
            free_smem: device.shared_mem_per_sm,
            free_regs: device.registers_per_sm,
        };
        let mut sim = Sim {
            grids,
            device,
            cost,
            heap: BinaryHeap::new(),
            seq: 0,
            grt,
            brt,
            sms: vec![sm; device.num_sms as usize],
            resident_warps: 0,
            admit_queue: Vec::new(),
            resume_queue: VecDeque::new(),
            streams,
            stream_of,
            now: 0.0,
            warp_integral: 0.0,
            makespan: 0.0,
            launch_pool_free: 0.0,
            overflow_launches: 0,
            prof,
        };
        // Host launches serialize on the host thread: the i-th host launch
        // becomes schedulable after i+1 launch overheads.
        for (g, task) in grids.iter().enumerate() {
            if let Origin::Host { seq, .. } = task.origin {
                let t = f64::from(seq + 1) * cost.host_launch_cycles;
                sim.push(t, Ev::Release(g));
            }
        }
        sim
    }

    fn push(&mut self, t: f64, ev: Ev) {
        self.seq += 1;
        self.heap.push(Reverse((TimeKey(t), self.seq, ev)));
    }

    fn run(&mut self) {
        while let Some(Reverse((TimeKey(t), _, ev))) = self.heap.pop() {
            debug_assert!(t >= self.now - 1e-9);
            self.warp_integral += self.resident_warps as f64 * (t - self.now);
            self.now = t;
            self.makespan = self.makespan.max(t);
            match ev {
                Ev::Release(g) => {
                    if self.grt[g].launch_serviced {
                        self.grt[g].released = true;
                        if let Some(p) = self.prof.as_deref_mut() {
                            p.on_release(g, t);
                        }
                        self.maybe_activate(g);
                    } else {
                        // Pending-launch pool: device launches are serviced
                        // one at a time by the runtime. A backlog beyond the
                        // fixed pool spills to the slow virtualized pool.
                        let service = self.cost.device_launch_service_cycles;
                        let backlog = (self.launch_pool_free - t).max(0.0) / service;
                        let cost = if backlog > f64::from(self.device.pending_launch_limit) {
                            self.overflow_launches += 1;
                            service * self.cost.pool_overflow_factor
                        } else {
                            service
                        };
                        let done = self.launch_pool_free.max(t) + cost;
                        self.launch_pool_free = done;
                        self.grt[g].launch_serviced = true;
                        self.push(done, Ev::Release(g));
                    }
                }
                Ev::SegDone(g, b) => self.segment_done(g, b),
            }
        }
        debug_assert!(
            self.grt.iter().all(|g| g.done),
            "scheduler finished with unfinished grids (deadlock?)"
        );
    }

    fn is_stream_head(&self, g: usize) -> bool {
        let (order, head) = &self.streams[&self.stream_of[g]];
        *head < order.len() && order[*head] == g
    }

    fn maybe_activate(&mut self, g: usize) {
        let rt = &self.grt[g];
        if rt.started || !rt.released || !self.is_stream_head(g) {
            return;
        }
        self.grt[g].started = true;
        self.admit_queue.push(g);
        self.try_admit();
    }

    fn block_fits(&self, sm: &Sm, g: usize) -> bool {
        let cfg = &self.grids[g].cfg;
        let warps = cfg.block_dim.div_ceil(self.device.warp_size);
        sm.free_blocks >= 1
            && sm.free_threads >= cfg.block_dim
            && sm.free_warps >= warps
            && sm.free_smem >= cfg.shared_mem_bytes
            && sm.free_regs >= cfg.block_dim * self.device.registers_per_thread
    }

    /// Pick the SM with the most free warps that fits a block of grid `g`.
    fn pick_sm(&self, g: usize) -> Option<usize> {
        let mut best: Option<(u32, usize)> = None;
        for (i, sm) in self.sms.iter().enumerate() {
            if self.block_fits(sm, g) {
                let key = sm.free_warps;
                if best.is_none_or(|(bw, _)| key > bw) {
                    best = Some((key, i));
                }
            }
        }
        best.map(|(_, i)| i)
    }

    fn occupy(&mut self, sm: usize, g: usize) {
        let cfg = &self.grids[g].cfg;
        let warps = cfg.block_dim.div_ceil(self.device.warp_size);
        let s = &mut self.sms[sm];
        s.free_blocks -= 1;
        s.free_threads -= cfg.block_dim;
        s.free_warps -= warps;
        s.free_smem -= cfg.shared_mem_bytes;
        s.free_regs -= cfg.block_dim * self.device.registers_per_thread;
        self.resident_warps += u64::from(warps);
    }

    fn vacate(&mut self, sm: usize, g: usize) {
        let cfg = &self.grids[g].cfg;
        let warps = cfg.block_dim.div_ceil(self.device.warp_size);
        let s = &mut self.sms[sm];
        s.free_blocks += 1;
        s.free_threads += cfg.block_dim;
        s.free_warps += warps;
        s.free_smem += cfg.shared_mem_bytes;
        s.free_regs += cfg.block_dim * self.device.registers_per_thread;
        self.resident_warps -= u64::from(warps);
    }

    fn try_admit(&mut self) {
        loop {
            let mut progressed = false;
            // Swapped-out parents whose children finished resume first.
            let mut i = 0;
            while i < self.resume_queue.len() {
                let (g, b) = self.resume_queue[i];
                if let Some(sm) = self.pick_sm(g) {
                    self.resume_queue.remove(i);
                    self.occupy(sm, g);
                    self.brt[g][b as usize].sm = sm;
                    let seg = self.brt[g][b as usize].seg;
                    if let Some(p) = self.prof.as_deref_mut() {
                        p.on_block_start(g, b, sm, self.now, true);
                    }
                    self.start_segment(g, b, seg, true);
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            // Fresh blocks from active grids, HyperQ-window deep.
            let mut exhausted: Vec<usize> = Vec::new();
            for qi in 0..self.admit_queue.len().min(DISPATCH_WINDOW) {
                let g = self.admit_queue[qi];
                loop {
                    if self.grt[g].next_block >= self.grids[g].blocks.len() {
                        exhausted.push(qi);
                        break;
                    }
                    let Some(sm) = self.pick_sm(g) else { break };
                    let b = self.grt[g].next_block as u32;
                    self.grt[g].next_block += 1;
                    self.occupy(sm, g);
                    let rt = &mut self.brt[g][b as usize];
                    rt.state = BState::Running;
                    rt.sm = sm;
                    if let Some(p) = self.prof.as_deref_mut() {
                        if b == 0 {
                            p.on_grid_start(g, self.now);
                        }
                        p.on_block_start(g, b, sm, self.now, false);
                    }
                    self.start_segment(g, b, 0, false);
                    progressed = true;
                }
            }
            for &qi in exhausted.iter().rev() {
                self.admit_queue.remove(qi);
            }
            if !progressed {
                break;
            }
        }
    }

    fn start_segment(&mut self, g: usize, b: u32, seg: usize, resumed: bool) {
        let block = &self.grids[g].blocks[b as usize];
        let task = &block.segments[seg];
        let sm_idx = self.brt[g][b as usize].sm;
        let resident: u32 = self.device.max_warps_per_sm - self.sms[sm_idx].free_warps;
        let w = f64::from(block.warps);
        let rate = (self.device.issue_width() * w / f64::from(resident.max(1))).min(w);
        let mut dur = task.span.max(task.work / rate);
        if resumed {
            dur += self.cost.swap_restore_cycles;
        }
        self.brt[g][b as usize].state = BState::Running;
        self.brt[g][b as usize].seg = seg;
        let start = self.now;
        for &(child, offset) in &task.launches {
            self.brt[g][b as usize].unfinished_children += 1;
            if let Some(p) = self.prof.as_deref_mut() {
                p.on_launch(g, b, sm_idx, child as usize, start + offset);
            }
            self.push(
                start + offset + self.cost.device_launch_latency_cycles,
                Ev::Release(child as usize),
            );
        }
        self.push(start + dur, Ev::SegDone(g, b));
    }

    fn segment_done(&mut self, g: usize, b: u32) {
        let nsegs = self.grids[g].blocks[b as usize].segments.len();
        let cur = self.brt[g][b as usize].seg;
        if cur + 1 < nsegs {
            let next = cur + 1;
            let must_wait = self.grids[g].blocks[b as usize].segments[next].wait_children
                && self.brt[g][b as usize].unfinished_children > 0;
            if must_wait {
                // Swap the parent block out while it waits for children.
                let sm = self.brt[g][b as usize].sm;
                if let Some(p) = self.prof.as_deref_mut() {
                    p.on_block_end(g, b, self.now);
                }
                self.vacate(sm, g);
                let rt = &mut self.brt[g][b as usize];
                rt.state = BState::Swapped;
                rt.seg = next;
                rt.sm = usize::MAX;
                self.try_admit();
            } else {
                self.start_segment(g, b, next, false);
            }
        } else {
            let sm = self.brt[g][b as usize].sm;
            if let Some(p) = self.prof.as_deref_mut() {
                p.on_block_end(g, b, self.now);
            }
            self.vacate(sm, g);
            self.brt[g][b as usize].state = BState::Done;
            self.grt[g].blocks_left -= 1;
            self.check_grid_done(g);
            self.try_admit();
        }
    }

    fn check_grid_done(&mut self, g: usize) {
        let rt = &self.grt[g];
        if rt.done || rt.blocks_left > 0 || rt.children_left > 0 || !rt.started {
            return;
        }
        self.grt[g].done = true;
        if let Some(p) = self.prof.as_deref_mut() {
            p.on_grid_done(g, self.now);
        }
        // Advance this grid's stream.
        let key = self.stream_of[g];
        let next = {
            let (order, head) = self.streams.get_mut(&key).expect("stream exists");
            debug_assert_eq!(order[*head], g);
            *head += 1;
            order.get(*head).copied()
        };
        if let Some(n) = next {
            // Host grids carry their serialized driver release from init;
            // start = max(release, predecessor finish) falls out of the
            // released/stream-head conjunction.
            self.maybe_activate(n);
        }
        // Notify the parent block and grid.
        if let Origin::Device { parent, block, .. } = self.grids[g].origin {
            self.grt[parent].children_left -= 1;
            let prt = &mut self.brt[parent][block as usize];
            prt.unfinished_children -= 1;
            if prt.state == BState::Swapped && prt.unfinished_children == 0 {
                self.resume_queue.push_back((parent, block));
                self.try_admit();
            }
            self.check_grid_done(parent);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockOutcome, SegmentTask};
    use crate::kernel::LaunchConfig;

    fn seg(span: f64, work: f64) -> SegmentTask {
        SegmentTask {
            span,
            work,
            wait_children: false,
            launches: vec![],
        }
    }

    fn grid(
        origin: Origin,
        cfg: LaunchConfig,
        blocks: Vec<BlockOutcome>,
        children: Vec<usize>,
    ) -> GridTask {
        GridTask {
            name: "k".into(),
            cfg,
            origin,
            blocks,
            children,
            kernel: None,
        }
    }

    fn block(warps: u32, segments: Vec<SegmentTask>) -> BlockOutcome {
        BlockOutcome {
            warps,
            segments,
            replayed: false,
        }
    }

    fn host(seq: u32) -> Origin {
        Origin::Host { seq, stream: 0 }
    }

    #[test]
    fn empty_batch() {
        let r = simulate(&[], &DeviceConfig::tiny(), &CostModel::default(), None);
        assert_eq!(r.makespan, 0.0);
    }

    #[test]
    fn single_block_runs_span() {
        let d = DeviceConfig::tiny();
        let c = CostModel::default();
        let g = grid(
            host(0),
            LaunchConfig::new(1, 32),
            vec![block(1, vec![seg(100.0, 100.0)])],
            vec![],
        );
        let r = simulate(&[g], &d, &c, None);
        assert!((r.makespan - (c.host_launch_cycles + 100.0)).abs() < 1e-6);
        assert!(r.achieved_occupancy > 0.0);
    }

    #[test]
    fn blocks_beyond_capacity_run_in_waves() {
        let d = DeviceConfig::tiny(); // 2 SMs x 4 blocks = 8 resident
        let c = CostModel::default();
        // 16 identical blocks of 100 span / 100 work: two waves. With 4
        // resident single-warp blocks per SM and issue width 2, each block
        // progresses at rate 0.5 -> 200 cycles per wave.
        let blocks: Vec<BlockOutcome> =
            (0..16).map(|_| block(1, vec![seg(100.0, 100.0)])).collect();
        let g = grid(host(0), LaunchConfig::new(16, 32), blocks, vec![]);
        let r = simulate(&[g], &d, &c, None);
        let expect = c.host_launch_cycles + 400.0;
        assert!(
            (r.makespan - expect).abs() < 1e-6,
            "makespan {} != {}",
            r.makespan,
            expect
        );
    }

    #[test]
    fn same_stream_grids_serialize() {
        let d = DeviceConfig::tiny();
        let c = CostModel::default();
        let g0 = grid(
            host(0),
            LaunchConfig::new(1, 32),
            vec![block(1, vec![seg(50.0, 50.0)])],
            vec![],
        );
        let g1 = grid(
            host(1),
            LaunchConfig::new(1, 32),
            vec![block(1, vec![seg(50.0, 50.0)])],
            vec![],
        );
        let r = simulate(&[g0, g1], &d, &c, None);
        // g0 starts after one launch overhead and runs 50 cycles; g1's
        // driver release lands at two launch overheads, after which it runs.
        let expect = 2.0 * c.host_launch_cycles + 50.0;
        assert!(
            (r.makespan - expect).abs() < 1e-6,
            "makespan {}",
            r.makespan
        );
    }

    #[test]
    fn different_host_streams_overlap() {
        let d = DeviceConfig::tiny();
        let c = CostModel::default();
        let mk = |seq, stream| {
            grid(
                Origin::Host { seq, stream },
                LaunchConfig::new(1, 32),
                vec![block(1, vec![seg(100_000.0, 100_000.0)])],
                vec![],
            )
        };
        let serial = simulate(&[mk(0, 0), mk(1, 0)], &d, &c, None).makespan;
        let overlap = simulate(&[mk(0, 0), mk(1, 1)], &d, &c, None).makespan;
        assert!(overlap < serial);
    }

    #[test]
    fn child_grid_released_after_parent_launch_point() {
        let d = DeviceConfig::tiny();
        let c = CostModel::default();
        // Parent: one block, launches child at offset 10 in its only segment.
        let parent = grid(
            host(0),
            LaunchConfig::new(1, 32),
            vec![block(
                1,
                vec![SegmentTask {
                    span: 40.0,
                    work: 40.0,
                    wait_children: false,
                    launches: vec![(1, 10.0)],
                }],
            )],
            vec![1],
        );
        let child = grid(
            Origin::Device {
                parent: 0,
                block: 0,
                stream_slot: 0,
            },
            LaunchConfig::new(1, 32),
            vec![block(1, vec![seg(500.0, 500.0)])],
            vec![],
        );
        let r = simulate(&[parent, child], &d, &c, None);
        let child_start = c.host_launch_cycles
            + 10.0
            + c.device_launch_latency_cycles
            + c.device_launch_service_cycles;
        assert!(
            (r.makespan - (child_start + 500.0)).abs() < 1e-6,
            "makespan {}",
            r.makespan
        );
    }

    #[test]
    fn parent_waits_for_children_with_swap() {
        let d = DeviceConfig::tiny();
        let c = CostModel::default();
        let parent = grid(
            host(0),
            LaunchConfig::new(1, 32),
            vec![BlockOutcome {
                warps: 1,
                segments: vec![
                    SegmentTask {
                        span: 20.0,
                        work: 20.0,
                        wait_children: false,
                        launches: vec![(1, 5.0)],
                    },
                    SegmentTask {
                        span: 30.0,
                        work: 30.0,
                        wait_children: true,
                        launches: vec![],
                    },
                ],
                replayed: false,
            }],
            vec![1],
        );
        let child = grid(
            Origin::Device {
                parent: 0,
                block: 0,
                stream_slot: 0,
            },
            LaunchConfig::new(1, 32),
            vec![block(1, vec![seg(1000.0, 1000.0)])],
            vec![],
        );
        let r = simulate(&[parent, child], &d, &c, None);
        let child_done = c.host_launch_cycles
            + 5.0
            + c.device_launch_latency_cycles
            + c.device_launch_service_cycles
            + 1000.0;
        let expect = child_done + c.swap_restore_cycles + 30.0;
        assert!(
            (r.makespan - expect).abs() < 1e-6,
            "makespan {} != {}",
            r.makespan,
            expect
        );
    }

    #[test]
    fn device_stream_serializes_children() {
        let d = DeviceConfig::tiny();
        let c = CostModel::default();
        // Parent launches two children into the same device stream slot.
        let parent = grid(
            host(0),
            LaunchConfig::new(1, 32),
            vec![block(
                1,
                vec![SegmentTask {
                    span: 10.0,
                    work: 10.0,
                    wait_children: false,
                    launches: vec![(1, 1.0), (2, 2.0)],
                }],
            )],
            vec![1, 2],
        );
        // Children must outlast the launch-pool service gap for stream
        // overlap to be observable.
        let mk_child = |slot| {
            grid(
                Origin::Device {
                    parent: 0,
                    block: 0,
                    stream_slot: slot,
                },
                LaunchConfig::new(1, 32),
                vec![block(1, vec![seg(50_000.0, 50_000.0)])],
                vec![],
            )
        };
        let serial = simulate(
            &[parent.clone_for_test(), mk_child(0), mk_child(0)],
            &d,
            &c,
            None,
        );
        let parallel = simulate(&[parent, mk_child(0), mk_child(1)], &d, &c, None);
        assert!(parallel.makespan < serial.makespan);
    }

    impl GridTask {
        fn clone_for_test(&self) -> GridTask {
            GridTask {
                name: self.name.clone(),
                cfg: self.cfg,
                origin: self.origin,
                blocks: self.blocks.clone(),
                children: self.children.clone(),
                kernel: None,
            }
        }
    }

    #[test]
    fn launch_pool_overflow_kicks_in_beyond_the_limit() {
        let d = DeviceConfig::tiny(); // pending_launch_limit = 64
        let c = CostModel::default();
        // One parent block that fires 200 children at the same instant.
        let n_children = 200u32;
        let launches: Vec<(u32, f64)> = (1..=n_children).map(|i| (i, 1.0)).collect();
        let mut grids = vec![grid(
            host(0),
            LaunchConfig::new(1, 32),
            vec![BlockOutcome {
                warps: 1,
                segments: vec![SegmentTask {
                    span: 10.0,
                    work: 10.0,
                    wait_children: false,
                    launches,
                }],
                replayed: false,
            }],
            (1..=n_children as usize).collect(),
        )];
        for i in 0..n_children {
            grids.push(grid(
                Origin::Device {
                    parent: 0,
                    block: 0,
                    stream_slot: i, // all independent streams
                },
                LaunchConfig::new(1, 32),
                vec![block(1, vec![seg(1.0, 1.0)])],
                vec![],
            ));
        }
        let r = simulate(&grids, &d, &c, None);
        assert!(r.overflow_launches > 0, "backlog beyond 64 must overflow");
        assert!(r.overflow_launches < u64::from(n_children));
        // Makespan is dominated by pool service incl. the overflow tail.
        let fast = 65.0 * c.device_launch_service_cycles;
        assert!(r.makespan > fast, "makespan {} too small", r.makespan);
    }

    #[test]
    fn collector_records_spans_flows_and_swaps() {
        let d = DeviceConfig::tiny();
        let c = CostModel::default();
        // Parent launches a child at offset 5, then joins it: the timeline
        // must show two parent block spans (the second resumed), a child
        // span, and one flow arrow.
        let parent = grid(
            host(0),
            LaunchConfig::new(1, 32),
            vec![BlockOutcome {
                warps: 1,
                segments: vec![
                    SegmentTask {
                        span: 20.0,
                        work: 20.0,
                        wait_children: false,
                        launches: vec![(1, 5.0)],
                    },
                    SegmentTask {
                        span: 30.0,
                        work: 30.0,
                        wait_children: true,
                        launches: vec![],
                    },
                ],
                replayed: false,
            }],
            vec![1],
        );
        let child = grid(
            Origin::Device {
                parent: 0,
                block: 0,
                stream_slot: 0,
            },
            LaunchConfig::new(1, 32),
            vec![block(1, vec![seg(1000.0, 1000.0)])],
            vec![],
        );
        let grids = [parent, child];
        let mut col = Collector::new(grids.len());
        let r = simulate(&grids, &d, &c, Some(&mut col));
        let mut profile = crate::prof::Profile::default();
        col.finish(&grids, &d, &mut profile);
        assert_eq!(profile.kernels.len(), 2);
        assert_eq!(profile.kernels[1].parent, Some((0, 0)));
        assert!(profile.kernels[0].release <= profile.kernels[0].start);
        assert!((profile.kernels[0].end - r.makespan).abs() < 1e-9);
        // Parent runs, swaps out, resumes: 3 block spans total.
        assert_eq!(profile.blocks.len(), 3);
        let resumed: Vec<_> = profile.blocks.iter().filter(|b| b.resumed).collect();
        assert_eq!(resumed.len(), 1);
        assert_eq!(resumed[0].grid, 0);
        assert_eq!(profile.flows.len(), 1);
        let f = &profile.flows[0];
        assert_eq!((f.parent_grid, f.child_grid), (0, 1));
        assert!(f.launch < f.child_start);
        assert!((f.child_start - profile.kernels[1].start).abs() < 1e-12);
        // Every block span nests inside its grid's kernel span.
        for b in &profile.blocks {
            let k = &profile.kernels[b.grid as usize];
            assert!(b.start >= k.start - 1e-9 && b.end <= k.end + 1e-9);
        }
    }

    #[test]
    fn profiling_does_not_change_timing() {
        let d = DeviceConfig::tiny();
        let c = CostModel::default();
        let mk = || {
            let blocks: Vec<BlockOutcome> =
                (0..16).map(|_| block(1, vec![seg(100.0, 100.0)])).collect();
            grid(host(0), LaunchConfig::new(16, 32), blocks, vec![])
        };
        let plain = simulate(&[mk()], &d, &c, None);
        let mut col = Collector::new(1);
        let profiled = simulate(&[mk()], &d, &c, Some(&mut col));
        assert_eq!(plain, profiled);
    }

    #[test]
    fn work_bound_blocks_take_longer_than_span() {
        let d = DeviceConfig::tiny(); // issue width 2
        let c = CostModel::default();
        // 8 warps of 100 cycles each: span 100, work 800. Alone on an SM
        // the block can issue 2 warp-cycles per cycle -> 400 cycles.
        let g = grid(
            host(0),
            LaunchConfig::new(1, 256),
            vec![block(8, vec![seg(100.0, 800.0)])],
            vec![],
        );
        let r = simulate(&[g], &d, &c, None);
        assert!((r.makespan - (c.host_launch_cycles + 400.0)).abs() < 1e-6);
    }
}
