//! Event-driven device scheduler.
//!
//! Takes the grid tasks produced by functional execution and plays them
//! against the device model: thread blocks are dispatched to SMs under the
//! occupancy limits, SM issue bandwidth is shared between resident blocks,
//! grids in one stream serialize, child grids become schedulable a launch
//! latency after their launching instruction, and parent blocks that join
//! their children (`SyncChildren`) are swapped out while they wait — the
//! Kepler dynamic-parallelism behaviour whose overhead the paper measures.
//!
//! The timing pass carries three fast paths (DESIGN.md §11), all bound by
//! the determinism contract — reports and profiler timelines are
//! byte-identical with them on or off (`tests/sched_differential.rs`):
//!
//! 1. **Calendar queue** ([`CalendarQueue`]): the event queue is bucketed
//!    by time instead of heap-ordered, with the same `(time, seq)` total
//!    order, so enqueue/dequeue are O(1) amortized under dynamic-parallelism
//!    event storms. Always on — it is a drop-in container.
//! 2. **Cohort batching**: consecutive same-time final-segment completions
//!    of one grid collapse into a single [`Ev::SegDoneN`] event whose
//!    teardown is fanned out arithmetically when no other work is runnable.
//! 3. **Homogeneous-grid fast-forward**: when the only runnable grid's
//!    blocks are pairwise timing-uniform and every queued event belongs to
//!    it (plus provably inert releases), the remaining dispatch rounds are
//!    played out in one tight loop over a sorted wheel, bypassing the
//!    queue; per-block profiler spans are still emitted (PROFILING.md).
//!
//! (2) and (3) are gated by [`DeviceConfig::fast_forward`]
//! (`--fast-forward=off` on the bench binaries). The `try_admit` placement
//! scan additionally memoizes failed launch configurations per scan and
//! skips entirely when nothing changed since the last exhaustive scan
//! (`fit_epoch`), which is exact because placement failures are monotone
//! while SM resources only shrink.

use std::cmp::Ordering;
use std::collections::VecDeque;

use crate::config::DeviceConfig;
use crate::cost::CostModel;
use crate::engine::{GridTask, Origin};
use crate::occupancy;
use crate::prof::Collector;

/// Hardware work-queue window: how many grids the dispatcher considers
/// concurrently when the head grid cannot place a block (HyperQ depth).
const DISPATCH_WINDOW: usize = 32;

/// Fast-forward entry gives up rather than scan more pending release
/// events than this (keeps the entry check O(1)-ish per event).
const MAX_FF_RELEASE_SCAN: usize = 64;

/// Result of timing simulation for one batch of grids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct TimingResult {
    /// Batch makespan in device cycles.
    pub makespan: f64,
    /// Time-averaged resident warps / device warp capacity.
    pub achieved_occupancy: f64,
    /// Device launches serviced in the slow virtualized-pool regime.
    pub overflow_launches: u64,
}

/// Diagnostics of one timing pass, surfaced as
/// [`crate::profiler::SimStats`] counters. Deliberately *not* part of
/// [`TimingResult`]: the differential suites compare results across thread
/// counts and modes, while these counters describe which machinery ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SchedStats {
    /// Timing domains discovered by the partitioner (0 when the pass ran
    /// serially without partitioning).
    pub domains: u64,
    /// Domains whose optimistic parallel runs were committed as-is.
    pub domains_committed: u64,
    /// Domains replayed serially after a time-window conflict.
    pub domains_rolled_back: u64,
    /// Grids completed in closed form by the analytic mode.
    pub analytic_runs: u64,
}

#[allow(clippy::disallowed_methods)] // derived PartialOrd: integer fields, total order
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// Grid became schedulable (launch latency elapsed).
    Release(usize),
    /// Block finished its current segment.
    SegDone(usize, u32),
    /// Cohort: blocks `first..first + n` of the grid all finished their
    /// final segment at this exact time with consecutive sequence numbers
    /// (`seq..seq + n`). Processed as `n` back-to-back teardowns.
    SegDoneN(usize, u32, u32),
}

/// A cohort of final-segment completions being accumulated before it is
/// pushed: grid `g`, blocks `first..first + n`, all ending at bitwise time
/// `t`, holding sequence numbers `seq0..seq0 + n`.
#[derive(Debug, Clone, Copy)]
struct PendingCohort {
    t: f64,
    seq0: u64,
    g: usize,
    first: u32,
    n: u32,
}

/// Event replayed inside the fast-forward wheel.
#[derive(Debug, Clone, Copy)]
enum WheelEv {
    /// Final-segment completion of the fast-forwarded grid's block.
    Seg(u32),
    /// Inert release of another grid (serviced, not a stream head).
    Release(usize),
}

// ---------------------------------------------------------------------------
// Calendar queue
// ---------------------------------------------------------------------------

/// A calendar queue (R. Brown, CACM 1988): events are hashed into
/// fixed-width time buckets ("days" on a circular "year" of buckets) and
/// popped by scanning the current day forward. Pop order is exactly the
/// minimum by `(f64::total_cmp, seq)` — identical to the
/// `BinaryHeap<Reverse<(TimeKey, u64, Ev)>>` it replaced; the bucket
/// geometry (width, count) affects only cost, never order, which
/// `calendar_matches_binary_heap_pop_order` pins including seq tie-breaks.
///
/// Each bucket is kept sorted descending by `(t, seq)`, so its tail is the
/// bucket minimum. A bucket holds days congruent to its index mod the year
/// length, and later years strictly dominate earlier ones in time, so the
/// tail belongs to the earliest populated day of the bucket: one tail
/// inspection decides a day probe (O(1)), and pushes pay a binary-search
/// insert into a short bucket. Under the DP-heavy event storms this beats
/// both the unsorted-bucket scan (linear in bucket population per pop) and
/// the global heap (log n with poor locality).
///
/// Invariant: `day <= floor(t / width)` for every queued entry, so the
/// forward scan cannot step past a pending event. Pushes pull `day` back
/// when needed; when a whole year is empty the pop falls back to a global
/// minimum scan over the bucket tails and re-anchors `day` there.
#[derive(Debug)]
struct CalendarQueue {
    buckets: Vec<Vec<(f64, u64, Ev)>>,
    /// `buckets.len() - 1`; the bucket count is a power of two.
    mask: usize,
    width: f64,
    inv_width: f64,
    /// Current scan day (`floor(t / width)` cursor).
    day: u64,
    len: usize,
}

fn lex_lt(t: f64, s: u64, bt: f64, bs: u64) -> bool {
    match t.total_cmp(&bt) {
        Ordering::Less => true,
        Ordering::Equal => s < bs,
        Ordering::Greater => false,
    }
}

impl CalendarQueue {
    fn new() -> Self {
        // Initial width of one host-launch overhead order of magnitude;
        // resizes re-estimate from observed event spacing.
        Self::with_geometry(16, 512.0)
    }

    fn with_geometry(nbuckets: usize, width: f64) -> Self {
        debug_assert!(nbuckets.is_power_of_two() && width > 0.0);
        CalendarQueue {
            buckets: vec![Vec::new(); nbuckets],
            mask: nbuckets - 1,
            width,
            inv_width: 1.0 / width,
            day: 0,
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn day_of(&self, t: f64) -> u64 {
        // Saturating cast; event times are finite and non-negative.
        (t * self.inv_width) as u64
    }

    fn push(&mut self, t: f64, seq: u64, ev: Ev) {
        if self.len >= self.buckets.len() * 4 && self.buckets.len() < (1 << 20) {
            self.resize();
        }
        let d = self.day_of(t);
        if d < self.day {
            self.day = d;
        }
        let bucket = &mut self.buckets[(d as usize) & self.mask];
        // Keep the bucket sorted descending by (t, seq): skip the prefix of
        // entries that dominate the new one.
        let pos = bucket.partition_point(|&(bt, bs, _)| !lex_lt(bt, bs, t, seq));
        bucket.insert(pos, (t, seq, ev));
        self.len += 1;
    }

    fn pop(&mut self) -> Option<(f64, u64, Ev)> {
        if self.len == 0 {
            return None;
        }
        if self.buckets.len() > 16 && self.len < self.buckets.len() / 8 {
            // Occupancy collapsed (e.g. after a launch storm drained): give
            // the year back and re-estimate the day width from the
            // survivors, or pops degrade to long empty-day scans. The 8x
            // under-occupancy trigger against the 4x grow trigger leaves
            // hysteresis, so grow/shrink cannot thrash.
            self.rebuild(self.len.max(16).next_power_of_two());
        }
        let years = self.buckets.len() as u64;
        for day in self.day..=self.day + years {
            let b = (day as usize) & self.mask;
            if let Some(&(t, _, _)) = self.buckets[b].last() {
                // The tail is the bucket minimum; its day is the earliest
                // populated day of the bucket (later years strictly
                // dominate in time), so a mismatch means this day is empty.
                if self.day_of(t) == day {
                    self.day = day;
                    self.len -= 1;
                    return self.buckets[b].pop();
                }
            }
        }
        // Sparse year: jump straight to the global minimum over the bucket
        // tails (each tail is its bucket's minimum).
        let mut best: Option<(usize, f64, u64)> = None;
        for (bi, bucket) in self.buckets.iter().enumerate() {
            if let Some(&(t, s, _)) = bucket.last() {
                if best.is_none_or(|(_, bt, bs)| lex_lt(t, s, bt, bs)) {
                    best = Some((bi, t, s));
                }
            }
        }
        let (bi, t, _) = best.expect("len > 0 but no entry found");
        self.day = self.day_of(t);
        self.len -= 1;
        self.buckets[bi].pop()
    }

    /// Iterate the queued entries in arbitrary order (fast-forward entry
    /// check only — never used for anything order-sensitive).
    fn entries(&self) -> impl Iterator<Item = &(f64, u64, Ev)> {
        self.buckets.iter().flatten()
    }

    /// Grow the year and re-estimate the day width from the spacing of a
    /// sample of queued events, then redistribute. Order is untouched:
    /// membership of a day is always recomputed from `(t, width)`.
    fn resize(&mut self) {
        self.rebuild(self.len.max(16).next_power_of_two().min(1 << 20));
    }

    /// Rebuild the ring at `nbuckets` days (grow or shrink), re-estimating
    /// the day width from the spacing of a sample of the queued events.
    /// Pure geometry: pop order is unaffected, which
    /// `calendar_pop_order_survives_grow_shrink_cycle` pins.
    fn rebuild(&mut self, nbuckets: usize) {
        let mut sample: Vec<f64> = self.entries().map(|e| e.0).take(64).collect();
        #[allow(clippy::disallowed_methods)] // total_cmp comparator
        sample.sort_unstable_by(f64::total_cmp);
        let spread = match (sample.first(), sample.last()) {
            (Some(a), Some(b)) => b - a,
            _ => 0.0,
        };
        let width = if spread > 0.0 {
            // Aim for a handful of events per day.
            (spread / sample.len() as f64) * 4.0
        } else {
            self.width
        }
        .max(1e-6);
        let entries: Vec<(f64, u64, Ev)> =
            self.buckets.iter_mut().flat_map(std::mem::take).collect();
        self.buckets = vec![Vec::new(); nbuckets];
        self.mask = nbuckets - 1;
        self.width = width;
        self.inv_width = 1.0 / width;
        self.day = u64::MAX;
        for &(t, s, e) in &entries {
            let d = self.day_of(t);
            if d < self.day {
                self.day = d;
            }
            let b = (d as usize) & self.mask;
            self.buckets[b].push((t, s, e));
        }
        // Restore the descending (t, seq) order within each bucket.
        for bucket in &mut self.buckets {
            #[allow(clippy::disallowed_methods)] // total_cmp comparator
            bucket.sort_unstable_by(|a, b| match b.0.total_cmp(&a.0) {
                Ordering::Equal => b.1.cmp(&a.1),
                o => o,
            });
        }
        if entries.is_empty() {
            self.day = 0;
        }
    }
}

// ---------------------------------------------------------------------------
// Scheduler state
// ---------------------------------------------------------------------------

#[allow(clippy::disallowed_methods)] // derived PartialOrd: integer fields, total order
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum SKey {
    Host(u32),
    Dev {
        parent: usize,
        block: u32,
        slot: u32,
    },
}

/// Per-grid placement footprint, precomputed once at construction so the
/// hot `block_fits`/`occupy`/`vacate` paths never recompute the warp
/// rounding or the register product.
#[derive(Debug, Clone, Copy)]
struct Need {
    threads: u32,
    warps: u32,
    smem: u32,
    regs: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BState {
    NotStarted,
    Running,
    /// Waiting for children, swapped off the SM.
    Swapped,
    Done,
}

#[derive(Debug, Clone)]
struct BlockRt {
    state: BState,
    /// Current (or, when swapped, next) segment index.
    seg: usize,
    sm: usize,
    /// Cycle this residency began (dispatch or swap-restore). The warp
    /// integral accrues per block at vacate — `warps * (now - occupy_t)` —
    /// rather than per event, so each term is independent of interleaved
    /// events and the domain-parallel merge can refold the terms in serial
    /// order (DESIGN.md §13).
    occupy_t: f64,
    unfinished_children: u32,
}

#[derive(Debug)]
struct GridRt {
    released: bool,
    started: bool,
    done: bool,
    /// Device-launched grids pass once through the pending-launch-pool
    /// service queue before release.
    launch_serviced: bool,
    next_block: usize,
    blocks_left: usize,
    children_left: usize,
}

#[derive(Debug, Clone)]
struct Sm {
    free_blocks: u32,
    free_threads: u32,
    free_warps: u32,
    free_smem: u32,
    free_regs: u32,
}

/// Tri-state cache of per-grid timing uniformity (see
/// [`crate::block::BlockOutcome::timing_uniform_with`]).
const UNIFORM_UNKNOWN: u8 = 0;
const UNIFORM_YES: u8 = 1;
const UNIFORM_NO: u8 = 2;

struct Sim<'a> {
    grids: &'a [GridTask],
    device: &'a DeviceConfig,
    cost: &'a CostModel,
    queue: CalendarQueue,
    seq: u64,
    grt: Vec<GridRt>,
    /// Per-block runtime state, flattened across grids (`boff[g] + b`).
    brt: Vec<BlockRt>,
    /// Start offset of grid `g`'s blocks within `brt`.
    boff: Vec<u32>,
    /// Precomputed per-grid placement footprints.
    need: Vec<Need>,
    sms: Vec<Sm>,
    /// Grids with blocks still to dispatch, in activation order.
    admit_queue: Vec<usize>,
    /// Swapped-out blocks whose children completed, awaiting re-admission.
    resume_queue: VecDeque<(usize, u32)>,
    /// Grid ids grouped by stream (launch order within each group);
    /// stream `s` owns `stream_items[stream_start[s]..stream_start[s+1]]`.
    stream_items: Vec<u32>,
    stream_start: Vec<u32>,
    /// Head offset of each stream, relative to its `stream_start`.
    stream_head: Vec<u32>,
    /// Dense stream id per grid (index into `stream_start`/`stream_head`).
    stream_of: Vec<u32>,
    now: f64,
    warp_integral: f64,
    makespan: f64,
    /// Next time the device-side pending-launch pool is free.
    launch_pool_free: f64,
    /// Launches serviced in the overflow (virtualized-pool) regime.
    overflow_launches: u64,
    /// Timeline-profiler event sink (see [`crate::prof`]); `None` keeps
    /// the scheduler on the exact pre-profiler paths.
    prof: Option<&'a mut Collector>,
    /// Whether cohort batching and fast-forward are enabled
    /// ([`DeviceConfig::fast_forward`]). The calendar queue and the
    /// `try_admit` scan memos are exact containers/caches and stay on.
    fast: bool,
    /// Whether the closed-form analytic mode may finish uniform grids
    /// ([`DeviceConfig::analytic`], DESIGN.md §13).
    analytic: bool,
    /// Timing-domain membership filter: `(rank, lo, hi)` restricts this
    /// run to grids whose domain rank is in `lo..hi` — only their host
    /// releases are seeded, so execution never leaves the window. `None`
    /// simulates the whole batch.
    filter: Option<(&'a [u32], u32, u32)>,
    /// Per-block warp-integral terms in vacate order, recorded only for
    /// filtered (domain) runs; the merge refolds them across domains in
    /// serial event order so the sum is bit-identical to a serial run.
    integral_terms: Vec<f64>,
    /// Cohort being accumulated; flushed before any other push or pop so
    /// member sequence numbers stay consecutive.
    pending: Option<PendingCohort>,
    /// Queued `Ev::Release` entries.
    release_entries: usize,
    /// Queued `SegDone`/`SegDoneN` entries per grid (a cohort counts once).
    segdone_entries: Vec<u32>,
    /// Per-grid uniformity cache (`UNIFORM_*`).
    uniform: Vec<u8>,
    /// Bumped whenever placement could newly succeed: an SM was vacated, a
    /// candidate joined `admit_queue`/`resume_queue`, or window membership
    /// changed. `occupy` never bumps — shrinking resources cannot turn a
    /// failed placement into a success.
    fit_epoch: u64,
    /// `fit_epoch` value at the end of the last exhaustive `try_admit`
    /// scan; when equal to `fit_epoch` the scan is provably fruitless and
    /// is skipped. `u64::MAX` = dirty.
    scanned_epoch: u64,
    /// Reusable fast-forward wheel buffer.
    wheel: Vec<(f64, u64, WheelEv)>,
    /// Reusable analytic-mode drain buffer (raw queue entries, so a failed
    /// wave-synchrony check can restore the queue untouched).
    wheel_raw: Vec<(f64, u64, Ev)>,
    /// Reusable `try_admit` scratch (failed placement signatures).
    scratch_failed: Vec<(u32, u32)>,
    /// Reusable `try_admit` scratch (exhausted window slots).
    scratch_exhausted: Vec<usize>,
    /// Diagnostics (tests assert the fast paths actually engage — the
    /// differential suite would otherwise pass vacuously if an entry
    /// condition quietly never held).
    stat_wheel_runs: u64,
    stat_cohort_fanouts: u64,
    stat_analytic_runs: u64,
}

/// Simulate the timing of a batch of executed grids, optionally recording
/// the timeline into a profiler [`Collector`]. Honors
/// [`DeviceConfig::timing_threads`] by partitioning into timing domains,
/// but runs them on the calling thread; [`simulate_full`] additionally
/// takes the worker pool and returns the pass diagnostics. (Test-only
/// convenience since the engine switched to `simulate_full`.)
#[cfg(test)]
fn simulate(
    grids: &[GridTask],
    device: &DeviceConfig,
    cost: &CostModel,
    prof: Option<&mut Collector>,
) -> TimingResult {
    simulate_full(grids, device, cost, prof, None).0
}

fn to_result(
    makespan: f64,
    warp_integral: f64,
    overflow_launches: u64,
    device: &DeviceConfig,
) -> TimingResult {
    let capacity = f64::from(device.num_sms) * f64::from(device.max_warps_per_sm);
    let occ = if makespan > 0.0 {
        warp_integral / (makespan * capacity)
    } else {
        0.0
    };
    TimingResult {
        makespan,
        achieved_occupancy: occ,
        overflow_launches,
    }
}

/// Everything the deterministic merge needs from one timing-domain run.
struct DomainOut {
    makespan: f64,
    overflow: u64,
    terms: Vec<f64>,
    collector: Option<Collector>,
    analytic_runs: u64,
}

/// Run the grids whose domain rank falls in `lo..hi` as one isolated
/// simulation (own calendar queue, own collector).
fn run_domain(
    grids: &[GridTask],
    device: &DeviceConfig,
    cost: &CostModel,
    want_prof: bool,
    rank: &[u32],
    lo: u32,
    hi: u32,
) -> DomainOut {
    let mut col = want_prof.then(|| Collector::new(grids.len()));
    let mut sim = Sim::new_filtered(grids, device, cost, col.as_mut(), Some((rank, lo, hi)));
    sim.run();
    let makespan = sim.makespan;
    let overflow = sim.overflow_launches;
    let terms = std::mem::take(&mut sim.integral_terms);
    let analytic_runs = sim.stat_analytic_runs;
    drop(sim);
    DomainOut {
        makespan,
        overflow,
        terms,
        collector: col,
        analytic_runs,
    }
}

/// Partition grids into *timing domains*: connected components of the
/// coupling graph whose edges are same-stream membership and parent→child
/// launches. Grids in different domains share no ordering constraint —
/// only device resources, which the optimistic commit check in
/// [`simulate_full`] covers. Returns each grid's domain rank (domains
/// numbered in ascending order of their earliest host release — host
/// launch seqs are unique, so the order is total), the domain count, and
/// each rank's earliest release time.
fn domain_ranks(grids: &[GridTask], cost: &CostModel) -> (Vec<u32>, usize, Vec<f64>) {
    fn find(uf: &mut [u32], mut x: u32) -> u32 {
        while uf[x as usize] != x {
            uf[x as usize] = uf[uf[x as usize] as usize];
            x = uf[x as usize];
        }
        x
    }
    let n = grids.len();
    let mut uf: Vec<u32> = (0..n as u32).collect();
    let union = |uf: &mut Vec<u32>, a: u32, b: u32| {
        let (ra, rb) = (find(uf, a), find(uf, b));
        if ra != rb {
            uf[ra as usize] = rb;
        }
    };
    // Stream edges: grids in one stream serialize, so they couple.
    let mut keyed: Vec<(SKey, u32)> = Vec::with_capacity(n);
    for (g, task) in grids.iter().enumerate() {
        let key = match task.origin {
            Origin::Host { stream, .. } => SKey::Host(stream),
            Origin::Device {
                parent,
                block,
                stream_slot,
            } => SKey::Dev {
                parent,
                block,
                slot: stream_slot,
            },
        };
        keyed.push((key, g as u32));
    }
    keyed.sort_unstable();
    for pair in keyed.windows(2) {
        if pair[0].0 == pair[1].0 {
            union(&mut uf, pair[0].1, pair[1].1);
        }
    }
    // Launch-DAG edges: a child grid couples to its launching parent.
    for (g, task) in grids.iter().enumerate() {
        if let Origin::Device { parent, .. } = task.origin {
            union(&mut uf, g as u32, parent as u32);
        }
    }
    let root_of: Vec<u32> = (0..n as u32).map(|g| find(&mut uf, g)).collect();
    // Earliest host launch seq per component. Every component has one:
    // device-launched grids chain up to a host launch through the DAG
    // edges.
    let mut min_seq: Vec<u32> = vec![u32::MAX; n];
    for (g, task) in grids.iter().enumerate() {
        if let Origin::Host { seq, .. } = task.origin {
            let r = root_of[g] as usize;
            min_seq[r] = min_seq[r].min(seq);
        }
    }
    let mut roots: Vec<(u32, u32)> = Vec::new();
    for g in 0..n {
        if root_of[g] as usize == g {
            debug_assert!(
                min_seq[g] != u32::MAX,
                "timing domain without a host launch"
            );
            roots.push((min_seq[g], g as u32));
        }
    }
    roots.sort_unstable();
    let mut rank_of_root: Vec<u32> = vec![0; n];
    let mut first_release: Vec<f64> = Vec::with_capacity(roots.len());
    for (i, &(ms, r)) in roots.iter().enumerate() {
        rank_of_root[r as usize] = i as u32;
        // Same arithmetic as the host-release seeding in `Sim::new`, so
        // this is bitwise the domain's first event time.
        first_release.push(f64::from(ms + 1) * cost.host_launch_cycles);
    }
    let rank: Vec<u32> = root_of.iter().map(|&r| rank_of_root[r as usize]).collect();
    (rank, roots.len(), first_release)
}

/// The full timing pass (DESIGN.md §13): partition the batch into timing
/// domains, simulate each on its own calendar queue (on `pool` when
/// given), and deterministically merge. Commit is *optimistic with a
/// rollback horizon*: domains are considered in first-release order and
/// committed while each one's event window starts strictly after every
/// committed window has ended — strictly, because equal-time events
/// across domains have no defined seq order. The first conflict rolls the
/// entire suffix back into one serial replay from that horizon, which is
/// exact because the suffix's earliest event provably postdates every
/// committed event. The merge replays completions in the exact
/// `(total_cmp, seq)` order the serial queue would have produced, so
/// reports and profiler timelines are byte-identical at any
/// `timing_threads` setting.
pub(crate) fn simulate_full(
    grids: &[GridTask],
    device: &DeviceConfig,
    cost: &CostModel,
    mut prof: Option<&mut Collector>,
    pool: Option<&npar_par::Pool<()>>,
) -> (TimingResult, SchedStats) {
    let mut stats = SchedStats::default();
    if grids.is_empty() {
        return (to_result(0.0, 0.0, 0, device), stats);
    }
    if device.timing_threads <= 1 || grids.len() < 2 {
        let mut sim = Sim::new(grids, device, cost, prof);
        sim.run();
        stats.analytic_runs = sim.stat_analytic_runs;
        return (
            to_result(
                sim.makespan,
                sim.warp_integral,
                sim.overflow_launches,
                device,
            ),
            stats,
        );
    }
    let (rank, ndom, first_release) = domain_ranks(grids, cost);
    stats.domains = ndom as u64;
    if ndom <= 1 {
        let mut sim = Sim::new(grids, device, cost, prof);
        sim.run();
        stats.analytic_runs = sim.stat_analytic_runs;
        return (
            to_result(
                sim.makespan,
                sim.warp_integral,
                sim.overflow_launches,
                device,
            ),
            stats,
        );
    }
    let want_prof = prof.is_some();
    let mut slots: Vec<(u32, Option<DomainOut>)> = (0..ndom as u32).map(|i| (i, None)).collect();
    let run_one = |_s: &npar_par::Scope<'_, ()>,
                   _w: &mut (),
                   _i: usize,
                   slot: &mut (u32, Option<DomainOut>)| {
        let i = slot.0;
        slot.1 = Some(run_domain(grids, device, cost, want_prof, &rank, i, i + 1));
    };
    match pool {
        Some(p) => {
            p.scope(|scope, w| crate::parallel::split_tasks(scope, w, 0, &mut slots, &run_one));
        }
        None => {
            let scope_less = |slot: &mut (u32, Option<DomainOut>)| {
                let i = slot.0;
                slot.1 = Some(run_domain(grids, device, cost, want_prof, &rank, i, i + 1));
            };
            slots.iter_mut().for_each(scope_less);
        }
    }
    let outs: Vec<DomainOut> = slots
        .into_iter()
        .map(|(_, o)| o.expect("domain run missing"))
        .collect();
    // Optimistic time-window commit (see the doc comment above). A split
    // at `k` is valid iff domain `k`'s first release lands strictly after
    // every committed makespan — the same check that admitted each prefix
    // domain, so the chain both proves the prefix pairwise disjoint and
    // the suffix safely separable. On the first violation the violating
    // domain overlaps the *last committed* window, so that domain rolls
    // back into the suffix too and the split moves one left, where the
    // check is known to hold.
    let mut committed = 0usize;
    let mut end = f64::NEG_INFINITY;
    while committed < ndom {
        if first_release[committed] > end {
            end = end.max(outs[committed].makespan);
            committed += 1;
        } else {
            committed = committed.saturating_sub(1);
            break;
        }
    }
    stats.domains_committed = committed as u64;
    let mut merged: Vec<DomainOut> = outs.into_iter().take(committed).collect();
    if committed < ndom {
        stats.domains_rolled_back = (ndom - committed) as u64;
        merged.push(run_domain(
            grids,
            device,
            cost,
            want_prof,
            &rank,
            committed as u32,
            ndom as u32,
        ));
    }
    // Deterministic merge in domain order: committed windows are pairwise
    // disjoint in simulated time, so concatenation *is* the serial event
    // order. The warp-integral terms refold in that order (bitwise the
    // serial sum), makespan is an order-insensitive max, and the profiler
    // collectors splice span-for-span.
    let mut makespan = 0.0f64;
    let mut warp_integral = 0.0f64;
    let mut overflow = 0u64;
    for out in merged {
        makespan = makespan.max(out.makespan);
        for &term in &out.terms {
            warp_integral += term;
        }
        overflow += out.overflow;
        stats.analytic_runs += out.analytic_runs;
        if let Some(col) = out.collector {
            if let Some(p) = prof.as_deref_mut() {
                p.absorb(col);
            }
        }
    }
    (to_result(makespan, warp_integral, overflow, device), stats)
}

impl<'a> Sim<'a> {
    fn new(
        grids: &'a [GridTask],
        device: &'a DeviceConfig,
        cost: &'a CostModel,
        prof: Option<&'a mut Collector>,
    ) -> Self {
        Self::new_filtered(grids, device, cost, prof, None)
    }

    fn new_filtered(
        grids: &'a [GridTask],
        device: &'a DeviceConfig,
        cost: &'a CostModel,
        prof: Option<&'a mut Collector>,
        filter: Option<(&'a [u32], u32, u32)>,
    ) -> Self {
        // Stream membership, resolved to dense ids up front: grids sorted
        // by (stream key, launch order) group each stream contiguously, so
        // the hot head checks are plain array reads with no hashing.
        let mut keyed: Vec<(SKey, u32)> = Vec::with_capacity(grids.len());
        let mut grt = Vec::with_capacity(grids.len());
        let mut need = Vec::with_capacity(grids.len());
        let mut boff = Vec::with_capacity(grids.len());
        let mut total_blocks: u32 = 0;
        for (g, task) in grids.iter().enumerate() {
            let key = match task.origin {
                Origin::Host { stream, .. } => SKey::Host(stream),
                Origin::Device {
                    parent,
                    block,
                    stream_slot,
                } => SKey::Dev {
                    parent,
                    block,
                    slot: stream_slot,
                },
            };
            keyed.push((key, g as u32));
            grt.push(GridRt {
                released: false,
                started: false,
                done: false,
                launch_serviced: matches!(task.origin, Origin::Host { .. }),
                next_block: 0,
                blocks_left: task.blocks.len(),
                children_left: task.children.len(),
            });
            let cfg = &task.cfg;
            need.push(Need {
                threads: cfg.block_dim,
                warps: cfg.block_dim.div_ceil(device.warp_size),
                smem: cfg.shared_mem_bytes,
                regs: cfg.block_dim * device.registers_per_thread,
            });
            boff.push(total_blocks);
            total_blocks += task.blocks.len() as u32;
        }
        let brt = vec![
            BlockRt {
                state: BState::NotStarted,
                seg: 0,
                sm: usize::MAX,
                occupy_t: 0.0,
                unfinished_children: 0,
            };
            total_blocks as usize
        ];
        // Within a stream the launch order is the grid-id order (grids are
        // registered as they launch), so sorting by (key, g) yields each
        // stream's grids contiguously and in order.
        keyed.sort_unstable();
        let mut stream_of = vec![0u32; grids.len()];
        let mut stream_items = Vec::with_capacity(grids.len());
        let mut stream_start: Vec<u32> = vec![0];
        for (i, &(key, g)) in keyed.iter().enumerate() {
            if i > 0 && keyed[i - 1].0 != key {
                stream_start.push(i as u32);
            }
            stream_of[g as usize] = (stream_start.len() - 1) as u32;
            stream_items.push(g);
        }
        stream_start.push(grids.len() as u32);
        let stream_head = vec![0u32; stream_start.len() - 1];
        let sm = Sm {
            free_blocks: device.max_blocks_per_sm,
            free_threads: device.max_threads_per_sm,
            free_warps: device.max_warps_per_sm,
            free_smem: device.shared_mem_per_sm,
            free_regs: device.registers_per_sm,
        };
        let mut sim = Sim {
            grids,
            device,
            cost,
            queue: CalendarQueue::new(),
            seq: 0,
            grt,
            brt,
            boff,
            need,
            sms: vec![sm; device.num_sms as usize],
            admit_queue: Vec::new(),
            resume_queue: VecDeque::new(),
            stream_items,
            stream_start,
            stream_head,
            stream_of,
            now: 0.0,
            warp_integral: 0.0,
            makespan: 0.0,
            launch_pool_free: 0.0,
            overflow_launches: 0,
            prof,
            fast: device.fast_forward,
            analytic: device.analytic,
            filter,
            integral_terms: Vec::new(),
            pending: None,
            release_entries: 0,
            segdone_entries: vec![0; grids.len()],
            uniform: vec![UNIFORM_UNKNOWN; grids.len()],
            fit_epoch: 0,
            scanned_epoch: u64::MAX,
            wheel: Vec::new(),
            wheel_raw: Vec::new(),
            scratch_failed: Vec::new(),
            scratch_exhausted: Vec::new(),
            stat_wheel_runs: 0,
            stat_cohort_fanouts: 0,
            stat_analytic_runs: 0,
        };
        // Host launches serialize on the host thread: the i-th host launch
        // becomes schedulable after i+1 launch overheads. A domain filter
        // seeds only member releases — the absolute times are unchanged
        // (the host seq spacing already accounts for the other domains'
        // launches), so a filtered run is the serial run with non-member
        // events deleted, which touches nothing a member observes.
        for (g, task) in grids.iter().enumerate() {
            if !sim.is_member(g) {
                continue;
            }
            if let Origin::Host { seq, .. } = task.origin {
                let t = f64::from(seq + 1) * cost.host_launch_cycles;
                sim.push(t, Ev::Release(g));
            }
        }
        sim
    }

    /// Whether grid `g` belongs to this run's timing-domain window.
    #[inline]
    fn is_member(&self, g: usize) -> bool {
        match self.filter {
            None => true,
            Some((rank, lo, hi)) => (lo..hi).contains(&rank[g]),
        }
    }

    /// Push an event, first flushing any pending cohort so that cohort
    /// member sequence numbers stay consecutive (required for the fan-out
    /// to preserve pop order relative to interleaved events).
    fn push(&mut self, t: f64, ev: Ev) {
        self.flush_cohort();
        self.seq += 1;
        match ev {
            Ev::Release(_) => self.release_entries += 1,
            Ev::SegDone(g, _) => self.segdone_entries[g] += 1,
            Ev::SegDoneN(..) => unreachable!("cohorts are pushed by flush_cohort"),
        }
        self.queue.push(t, self.seq, ev);
    }

    fn flush_cohort(&mut self) {
        if let Some(c) = self.pending.take() {
            self.segdone_entries[c.g] += 1;
            let ev = if c.n == 1 {
                Ev::SegDone(c.g, c.first)
            } else {
                Ev::SegDoneN(c.g, c.first, c.n)
            };
            self.queue.push(c.t, c.seq0, ev);
        }
    }

    /// Push a final-segment completion, batching it into the pending
    /// cohort when it extends the current run of same-grid, same-time,
    /// id-contiguous completions. `cohortable` is false for non-final or
    /// launch-bearing segments (and whenever fast paths are disabled),
    /// which forces the plain per-block event.
    fn push_segdone(&mut self, t: f64, g: usize, b: u32, cohortable: bool) {
        if self.fast && cohortable {
            if let Some(c) = &mut self.pending {
                if c.g == g && c.first + c.n == b && c.t.to_bits() == t.to_bits() {
                    c.n += 1;
                    self.seq += 1;
                    return;
                }
            }
            self.flush_cohort();
            self.seq += 1;
            self.pending = Some(PendingCohort {
                t,
                seq0: self.seq,
                g,
                first: b,
                n: 1,
            });
        } else {
            self.push(t, Ev::SegDone(g, b));
        }
    }

    #[inline]
    fn blk(&self, g: usize, b: u32) -> &BlockRt {
        &self.brt[(self.boff[g] + b) as usize]
    }

    #[inline]
    fn blk_mut(&mut self, g: usize, b: u32) -> &mut BlockRt {
        &mut self.brt[(self.boff[g] + b) as usize]
    }

    fn run(&mut self) {
        loop {
            self.flush_cohort();
            let Some((t, _, ev)) = self.queue.pop() else {
                break;
            };
            debug_assert!(t >= self.now - 1e-9);
            self.now = t;
            self.makespan = self.makespan.max(t);
            let hint = match ev {
                Ev::Release(g) => {
                    self.release_entries -= 1;
                    if self.grt[g].launch_serviced {
                        self.grt[g].released = true;
                        if let Some(p) = self.prof.as_deref_mut() {
                            p.on_release(g, t);
                        }
                        self.maybe_activate(g);
                        self.grt[g].started.then_some(g)
                    } else {
                        // Pending-launch pool: device launches are serviced
                        // one at a time by the runtime. A backlog beyond the
                        // fixed pool spills to the slow virtualized pool.
                        let service = self.cost.device_launch_service_cycles;
                        let backlog = (self.launch_pool_free - t).max(0.0) / service;
                        let cost = if backlog > f64::from(self.device.pending_launch_limit) {
                            self.overflow_launches += 1;
                            service * self.cost.pool_overflow_factor
                        } else {
                            service
                        };
                        let done = self.launch_pool_free.max(t) + cost;
                        self.launch_pool_free = done;
                        self.grt[g].launch_serviced = true;
                        self.push(done, Ev::Release(g));
                        None
                    }
                }
                Ev::SegDone(g, b) => {
                    self.segdone_entries[g] -= 1;
                    self.segment_done(g, b);
                    Some(g)
                }
                Ev::SegDoneN(g, first, n) => {
                    self.segdone_entries[g] -= 1;
                    self.cohort_done(g, first, n);
                    Some(g)
                }
            };
            if self.fast || self.analytic {
                self.maybe_fast_forward(hint);
            }
        }
        debug_assert!(
            (0..self.grt.len()).all(|g| self.grt[g].done || !self.is_member(g)),
            "scheduler finished with unfinished grids (deadlock?)"
        );
    }

    /// Process a cohort of final-segment completions. When nothing else is
    /// runnable (both admission queues empty) the per-member
    /// `check_grid_done`/`try_admit` calls are no-ops for all but the last
    /// member, so the teardowns are fanned out arithmetically; otherwise
    /// fall back to the member-by-member slow path, which is exact by
    /// construction.
    fn cohort_done(&mut self, g: usize, first: u32, n: u32) {
        if self.admit_queue.is_empty() && self.resume_queue.is_empty() {
            self.stat_cohort_fanouts += 1;
            for b in first..first + n {
                if let Some(p) = self.prof.as_deref_mut() {
                    p.on_block_end(g, b, self.now);
                }
                let sm = self.blk(g, b).sm;
                self.vacate(sm, g, b);
                self.blk_mut(g, b).state = BState::Done;
            }
            self.grt[g].blocks_left -= n as usize;
            self.check_grid_done(g);
            self.try_admit();
        } else {
            for b in first..first + n {
                self.segment_done(g, b);
            }
        }
    }

    fn is_stream_head(&self, g: usize) -> bool {
        let s = self.stream_of[g] as usize;
        let h = self.stream_start[s] + self.stream_head[s];
        h < self.stream_start[s + 1] && self.stream_items[h as usize] as usize == g
    }

    fn maybe_activate(&mut self, g: usize) {
        let rt = &self.grt[g];
        if rt.started || !rt.released || !self.is_stream_head(g) {
            return;
        }
        self.grt[g].started = true;
        self.admit_queue.push(g);
        self.fit_epoch += 1;
        self.try_admit();
    }

    fn block_fits(sm: &Sm, need: &Need) -> bool {
        sm.free_blocks >= 1
            && sm.free_threads >= need.threads
            && sm.free_warps >= need.warps
            && sm.free_smem >= need.smem
            && sm.free_regs >= need.regs
    }

    /// Pick the SM with the most free warps that fits a block of grid `g`.
    fn pick_sm(&self, g: usize) -> Option<usize> {
        let need = &self.need[g];
        let mut best: Option<(u32, usize)> = None;
        for (i, sm) in self.sms.iter().enumerate() {
            if Self::block_fits(sm, need) {
                let key = sm.free_warps;
                if best.is_none_or(|(bw, _)| key > bw) {
                    best = Some((key, i));
                }
            }
        }
        best.map(|(_, i)| i)
    }

    fn occupy(&mut self, sm: usize, g: usize) {
        let need = self.need[g];
        let s = &mut self.sms[sm];
        s.free_blocks -= 1;
        s.free_threads -= need.threads;
        s.free_warps -= need.warps;
        s.free_smem -= need.smem;
        s.free_regs -= need.regs;
    }

    /// Release block `b`'s SM resources and accrue its warp-integral term
    /// `warps * (now - occupy_t)` — the per-block formulation of the
    /// time-averaged occupancy numerator, recorded per residency interval
    /// so the domain-parallel merge can refold the terms in serial event
    /// order (DESIGN.md §13).
    fn vacate(&mut self, sm: usize, g: usize, b: u32) {
        let need = self.need[g];
        let s = &mut self.sms[sm];
        s.free_blocks += 1;
        s.free_threads += need.threads;
        s.free_warps += need.warps;
        s.free_smem += need.smem;
        s.free_regs += need.regs;
        let term = f64::from(need.warps) * (self.now - self.blk(g, b).occupy_t);
        self.warp_integral += term;
        if self.filter.is_some() {
            self.integral_terms.push(term);
        }
        self.fit_epoch += 1;
    }

    /// Placement signature of a grid's launch configuration: `block_fits`
    /// depends only on these two fields (plus device constants), so one
    /// failed placement condemns every same-signature candidate for the
    /// rest of the scan.
    fn cfg_sig(&self, g: usize) -> (u32, u32) {
        let need = &self.need[g];
        (need.threads, need.smem)
    }

    fn try_admit(&mut self) {
        if self.scanned_epoch == self.fit_epoch {
            // Nothing that could enable a placement changed since the last
            // exhaustive scan concluded nothing fits.
            return;
        }
        // Launch-config signatures that failed placement during this call.
        // SM resources only shrink within one call (occupy, never vacate),
        // so failures are monotone and the memo is exact. Buffers are
        // reused across calls to keep the hot scans allocation-free.
        let mut failed = std::mem::take(&mut self.scratch_failed);
        let mut exhausted = std::mem::take(&mut self.scratch_exhausted);
        loop {
            let mut progressed = false;
            // Swapped-out parents whose children finished resume first.
            let mut i = 0;
            while i < self.resume_queue.len() {
                let (g, b) = self.resume_queue[i];
                if failed.contains(&self.cfg_sig(g)) {
                    i += 1;
                    continue;
                }
                if let Some(sm) = self.pick_sm(g) {
                    self.resume_queue.remove(i);
                    self.occupy(sm, g);
                    let now = self.now;
                    {
                        let rt = self.blk_mut(g, b);
                        rt.sm = sm;
                        rt.occupy_t = now;
                    }
                    let seg = self.blk(g, b).seg;
                    if let Some(p) = self.prof.as_deref_mut() {
                        p.on_block_start(g, b, sm, self.now, true);
                    }
                    self.start_segment(g, b, seg, true);
                    progressed = true;
                } else {
                    failed.push(self.cfg_sig(g));
                    i += 1;
                }
            }
            // Fresh blocks from active grids, HyperQ-window deep.
            exhausted.clear();
            for qi in 0..self.admit_queue.len().min(DISPATCH_WINDOW) {
                let g = self.admit_queue[qi];
                loop {
                    if self.grt[g].next_block >= self.grids[g].blocks.len() {
                        exhausted.push(qi);
                        break;
                    }
                    if failed.contains(&self.cfg_sig(g)) {
                        break;
                    }
                    let Some(sm) = self.pick_sm(g) else {
                        failed.push(self.cfg_sig(g));
                        break;
                    };
                    let b = self.grt[g].next_block as u32;
                    self.grt[g].next_block += 1;
                    self.occupy(sm, g);
                    let now = self.now;
                    let rt = self.blk_mut(g, b);
                    rt.state = BState::Running;
                    rt.sm = sm;
                    rt.occupy_t = now;
                    if let Some(p) = self.prof.as_deref_mut() {
                        if b == 0 {
                            p.on_grid_start(g, self.now);
                        }
                        p.on_block_start(g, b, sm, self.now, false);
                    }
                    self.start_segment(g, b, 0, false);
                    progressed = true;
                }
            }
            if !exhausted.is_empty() {
                let prelen = self.admit_queue.len();
                for &qi in exhausted.iter().rev() {
                    self.admit_queue.remove(qi);
                }
                if prelen > DISPATCH_WINDOW {
                    // Removals pulled previously out-of-window grids into
                    // the window: a fresh scan could now place their blocks.
                    self.fit_epoch += 1;
                }
            }
            if !progressed {
                break;
            }
        }
        failed.clear();
        exhausted.clear();
        self.scratch_failed = failed;
        self.scratch_exhausted = exhausted;
        self.scanned_epoch = self.fit_epoch;
    }

    fn start_segment(&mut self, g: usize, b: u32, seg: usize, resumed: bool) {
        let block = &self.grids[g].blocks[b as usize];
        let task = &block.segments[seg];
        let sm_idx = self.blk(g, b).sm;
        let resident: u32 = self.device.max_warps_per_sm - self.sms[sm_idx].free_warps;
        let w = f64::from(block.warps);
        let rate = (self.device.issue_width() * w / f64::from(resident.max(1))).min(w);
        let mut dur = task.span.max(task.work / rate);
        if resumed {
            dur += self.cost.swap_restore_cycles;
        }
        {
            let rt = self.blk_mut(g, b);
            rt.state = BState::Running;
            rt.seg = seg;
        }
        let start = self.now;
        for &(child, offset) in &task.launches {
            self.blk_mut(g, b).unfinished_children += 1;
            if let Some(p) = self.prof.as_deref_mut() {
                p.on_launch(g, b, sm_idx, child as usize, start + offset);
            }
            self.push(
                start + offset + self.cost.device_launch_latency_cycles,
                Ev::Release(child as usize),
            );
        }
        let cohortable = seg + 1 == block.segments.len() && task.launches.is_empty();
        self.push_segdone(start + dur, g, b, cohortable);
    }

    fn segment_done(&mut self, g: usize, b: u32) {
        let nsegs = self.grids[g].blocks[b as usize].segments.len();
        let cur = self.blk(g, b).seg;
        if cur + 1 < nsegs {
            let next = cur + 1;
            let must_wait = self.grids[g].blocks[b as usize].segments[next].wait_children
                && self.blk(g, b).unfinished_children > 0;
            if must_wait {
                // Swap the parent block out while it waits for children.
                let sm = self.blk(g, b).sm;
                if let Some(p) = self.prof.as_deref_mut() {
                    p.on_block_end(g, b, self.now);
                }
                self.vacate(sm, g, b);
                let rt = self.blk_mut(g, b);
                rt.state = BState::Swapped;
                rt.seg = next;
                rt.sm = usize::MAX;
                self.try_admit();
            } else {
                self.start_segment(g, b, next, false);
            }
        } else {
            let sm = self.blk(g, b).sm;
            if let Some(p) = self.prof.as_deref_mut() {
                p.on_block_end(g, b, self.now);
            }
            self.vacate(sm, g, b);
            self.blk_mut(g, b).state = BState::Done;
            self.grt[g].blocks_left -= 1;
            self.check_grid_done(g);
            self.try_admit();
        }
    }

    fn check_grid_done(&mut self, g: usize) {
        let rt = &self.grt[g];
        if rt.done || rt.blocks_left > 0 || rt.children_left > 0 || !rt.started {
            return;
        }
        self.grt[g].done = true;
        if let Some(p) = self.prof.as_deref_mut() {
            p.on_grid_done(g, self.now);
        }
        // Advance this grid's stream.
        let s = self.stream_of[g] as usize;
        let next = {
            let h = self.stream_start[s] + self.stream_head[s];
            debug_assert_eq!(self.stream_items[h as usize] as usize, g);
            self.stream_head[s] += 1;
            if h + 1 < self.stream_start[s + 1] {
                Some(self.stream_items[(h + 1) as usize] as usize)
            } else {
                None
            }
        };
        if let Some(n) = next {
            // Host grids carry their serialized driver release from init;
            // start = max(release, predecessor finish) falls out of the
            // released/stream-head conjunction.
            self.maybe_activate(n);
        }
        // Notify the parent block and grid.
        if let Origin::Device { parent, block, .. } = self.grids[g].origin {
            self.grt[parent].children_left -= 1;
            let prt = self.blk_mut(parent, block);
            prt.unfinished_children -= 1;
            if prt.state == BState::Swapped && prt.unfinished_children == 0 {
                self.resume_queue.push_back((parent, block));
                self.fit_epoch += 1;
                self.try_admit();
            }
            self.check_grid_done(parent);
        }
    }

    // -----------------------------------------------------------------
    // Homogeneous-grid fast-forward
    // -----------------------------------------------------------------

    /// Whether every block of grid `g` is pairwise timing-uniform (single
    /// launch-free segment, bitwise-identical span/work, same warps).
    /// Cached per grid; O(blocks) on first query with early exit.
    fn grid_uniform(&mut self, g: usize) -> bool {
        match self.uniform[g] {
            UNIFORM_YES => true,
            UNIFORM_NO => false,
            _ => {
                let blocks = &self.grids[g].blocks;
                let ok =
                    !blocks.is_empty() && blocks.iter().all(|b| b.timing_uniform_with(&blocks[0]));
                self.uniform[g] = if ok { UNIFORM_YES } else { UNIFORM_NO };
                ok
            }
        }
    }

    /// Fast-forward entry check (DESIGN.md §11). Preconditions, verified
    /// here, under which the wheel replays the slow path exactly:
    ///
    /// - no resumable parents and at most grid `g` awaiting dispatch, so
    ///   `try_admit` degenerates to replacement dispatch of `g`'s blocks;
    /// - every queued event is a `SegDone` of `g` or a *provably inert*
    ///   release (already pool-serviced, not its stream's head — stream
    ///   heads cannot advance while `g` is the only runnable grid, so the
    ///   pop only sets the released flag);
    /// - `g` has no children and is timing-uniform, so replacement
    ///   durations depend only on the target SM's residency at dispatch —
    ///   exactly what the wheel recomputes with the live `pick_sm`.
    fn maybe_fast_forward(&mut self, hint: Option<usize>) {
        if !self.resume_queue.is_empty() {
            return;
        }
        let g = match self.admit_queue.len() {
            0 => match hint {
                Some(g) => g,
                None => return,
            },
            1 => self.admit_queue[0],
            _ => return,
        };
        self.flush_cohort();
        if self.segdone_entries[g] == 0
            || self.grt[g].children_left != 0
            || self.segdone_entries[g] as usize + self.release_entries != self.queue.len()
            || self.release_entries > MAX_FF_RELEASE_SCAN
            || !self.grid_uniform(g)
        {
            return;
        }
        if self.release_entries > 0 {
            for &(_, _, ev) in self.queue.entries() {
                if let Ev::Release(r) = ev {
                    if !self.grt[r].launch_serviced || self.is_stream_head(r) {
                        return;
                    }
                }
            }
        }
        if self.analytic && self.try_analytic(g) {
            return;
        }
        if self.fast {
            self.fast_forward(g);
        }
    }

    /// Closed-form analytic completion of the sole runnable grid `g`
    /// (DESIGN.md §13). Entry shares `maybe_fast_forward`'s preconditions;
    /// on top of those, three proof obligations decide whether the closed
    /// form is *exact*:
    ///
    /// 1. **Span-bound at depth**: at the deepest residency any SM can
    ///    reach for this configuration (the occupancy-calculator block
    ///    ceiling), the rate model still satisfies `work / rate <= span`,
    ///    so every remaining segment duration is bitwise `span` no matter
    ///    how blocks are placed.
    /// 2. **Replacement locality**: while undispatched blocks remain, no
    ///    SM currently fits one — each teardown's replacement can then
    ///    only land on the SM just vacated, so placement is forced and
    ///    `pick_sm` is deterministic per member.
    /// 3. **Wave synchrony**: every queued completion of `g` carries one
    ///    bitwise-identical time — the remaining schedule is a sequence of
    ///    aligned waves spaced exactly `span` apart.
    ///
    /// Under 1–3 event dispatch is redundant: each wave's completions pop
    /// in member seq order, replacements inherit the vacated SMs, and the
    /// next wave ends at `t + span` — which is exactly what this replay
    /// performs, wave by wave, with the slow path's per-member operations
    /// (profiler spans, seq assignment, teardown order) but no queue
    /// traffic. Returns `false` without observable effect when any
    /// obligation fails, falling back to the wheel or the event loop.
    fn try_analytic(&mut self, g: usize) -> bool {
        let total = self.grids[g].blocks.len();
        let need = self.need[g];
        let b0 = &self.grids[g].blocks[0];
        let (span, work, w) = (
            b0.segments[0].span,
            b0.segments[0].work,
            f64::from(b0.warps),
        );
        let iw = self.device.issue_width();
        // Obligation 1: span-bound at the deepest reachable residency.
        let cap_blocks = occupancy::block_residency_limit(self.device, need.threads, need.smem);
        let cap = cap_blocks
            .saturating_mul(need.warps)
            .min(self.device.max_warps_per_sm)
            .max(1);
        let rate_full = (iw * w / f64::from(cap)).min(w);
        // NaN fails closed: `!(x <= span)` rejects an unrepresentable
        // ratio, which the sign-flipped `x > span` would silently accept.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(work / rate_full <= span) {
            return false;
        }
        // Obligation 2: replacement placement is forced-local. (try_admit
        // ran before this, so a fitting SM with blocks left should be
        // impossible; checked anyway since the proof leans on it.)
        if self.grt[g].next_block < total && self.pick_sm(g).is_some() {
            return false;
        }
        // Obligation 3: the queued completions form one synchronized wave.
        let mut raw = std::mem::take(&mut self.wheel_raw);
        raw.clear();
        while let Some(e) = self.queue.pop() {
            raw.push(e);
        }
        let mut t0 = f64::NAN;
        let mut sync = true;
        for &(t, _, ev) in &raw {
            if !matches!(ev, Ev::Release(_)) {
                if t0.is_nan() {
                    t0 = t;
                } else if t.to_bits() != t0.to_bits() {
                    sync = false;
                    break;
                }
            }
        }
        if !sync {
            // Restore the queue untouched; original seqs keep the order.
            for &(t, s, ev) in &raw {
                self.queue.push(t, s, ev);
            }
            self.wheel_raw = raw;
            return false;
        }
        self.stat_analytic_runs += 1;
        self.release_entries = 0;
        self.segdone_entries[g] = 0;
        // Pop order within the wave is seq order; inert releases are
        // separated out and handled against the finish point below.
        let mut cur: Vec<(u64, u32)> = Vec::new();
        let mut rels: Vec<(f64, u64, usize)> = Vec::new();
        for &(t, seq, ev) in &raw {
            match ev {
                Ev::Release(r) => rels.push((t, seq, r)),
                Ev::SegDone(gg, b) => {
                    debug_assert_eq!(gg, g);
                    cur.push((seq, b));
                }
                Ev::SegDoneN(gg, first, n) => {
                    debug_assert_eq!(gg, g);
                    for i in 0..n {
                        cur.push((seq + u64::from(i), first + i));
                    }
                }
            }
        }
        raw.clear();
        self.wheel_raw = raw;
        debug_assert!(!cur.is_empty());
        let mut t = t0;
        let mut last_seq = 0u64;
        let mut next: Vec<(u64, u32)> = Vec::new();
        loop {
            self.now = t;
            self.makespan = self.makespan.max(t);
            for &(seq, b) in &cur {
                last_seq = seq;
                if let Some(p) = self.prof.as_deref_mut() {
                    p.on_block_end(g, b, t);
                }
                let sm = self.blk(g, b).sm;
                self.vacate(sm, g, b);
                self.blk_mut(g, b).state = BState::Done;
                self.grt[g].blocks_left -= 1;
                // Forced-local replacement dispatch (obligation 2): the
                // slow path's try_admit restricted to window [g].
                while self.grt[g].next_block < total {
                    let Some(sm2) = self.pick_sm(g) else { break };
                    let nb = self.grt[g].next_block as u32;
                    self.grt[g].next_block += 1;
                    self.occupy(sm2, g);
                    let rt = self.blk_mut(g, nb);
                    rt.state = BState::Running;
                    rt.sm = sm2;
                    rt.occupy_t = t;
                    if let Some(p) = self.prof.as_deref_mut() {
                        p.on_block_start(g, nb, sm2, t, false);
                    }
                    // Duration is bitwise `span` (obligation 1), so the
                    // member joins the next wave; seq assigned exactly as
                    // the slow path's push would have.
                    self.seq += 1;
                    next.push((self.seq, nb));
                }
            }
            std::mem::swap(&mut cur, &mut next);
            next.clear();
            if cur.is_empty() {
                break;
            }
            t += span;
        }
        // Inert releases that would have popped before the grid's final
        // completion `(t, last_seq)` are serviced inline (released flag +
        // profiler timestamp — both order-insensitive); later ones go back
        // on the queue for the main loop, original seqs intact.
        for &(rt_, rs, r) in &rels {
            if lex_lt(rt_, rs, t, last_seq) {
                self.grt[r].released = true;
                if let Some(p) = self.prof.as_deref_mut() {
                    p.on_release(r, rt_);
                }
            } else {
                self.release_entries += 1;
                self.queue.push(rt_, rs, Ev::Release(r));
            }
        }
        // Mirror the slow path's teardown tail at the completion time.
        self.admit_queue.clear();
        self.scanned_epoch = u64::MAX;
        self.check_grid_done(g);
        self.try_admit();
        true
    }

    /// Play the remaining events of the only runnable grid `g` on a sorted
    /// wheel: teardown + replacement dispatch per completion, inert
    /// releases in their exact time slots, profiler spans emitted
    /// per-block as usual. The wheel mirrors the slow path operation for
    /// operation (same `pick_sm`, same rate/duration arithmetic, same
    /// call order), it merely bypasses the queue and the admission scans
    /// that are no-ops under the entry preconditions.
    fn fast_forward(&mut self, g: usize) {
        self.stat_wheel_runs += 1;
        let mut wheel = std::mem::take(&mut self.wheel);
        wheel.clear();
        while let Some((t, seq, ev)) = self.queue.pop() {
            match ev {
                Ev::Release(r) => wheel.push((t, seq, WheelEv::Release(r))),
                Ev::SegDone(gg, b) => {
                    debug_assert_eq!(gg, g);
                    wheel.push((t, seq, WheelEv::Seg(b)));
                }
                Ev::SegDoneN(gg, first, n) => {
                    debug_assert_eq!(gg, g);
                    for i in 0..n {
                        wheel.push((t, seq + u64::from(i), WheelEv::Seg(first + i)));
                    }
                }
            }
        }
        self.release_entries = 0;
        self.segdone_entries[g] = 0;
        let total = self.grids[g].blocks.len();
        let b0 = &self.grids[g].blocks[0];
        let (span, work, w) = (
            b0.segments[0].span,
            b0.segments[0].work,
            f64::from(b0.warps),
        );
        let iw = self.device.issue_width();
        let max_warps = self.device.max_warps_per_sm;
        let mut head = 0;
        let mut finished = false;
        while head < wheel.len() {
            let (t, _, ev) = wheel[head];
            head += 1;
            self.now = t;
            self.makespan = self.makespan.max(t);
            match ev {
                WheelEv::Release(r) => {
                    self.grt[r].released = true;
                    if let Some(p) = self.prof.as_deref_mut() {
                        p.on_release(r, t);
                    }
                    // maybe_activate(r) is a no-op by the entry check: r is
                    // not its stream's head and heads are frozen until g
                    // completes.
                }
                WheelEv::Seg(b) => {
                    if let Some(p) = self.prof.as_deref_mut() {
                        p.on_block_end(g, b, t);
                    }
                    let sm = self.blk(g, b).sm;
                    self.vacate(sm, g, b);
                    self.blk_mut(g, b).state = BState::Done;
                    self.grt[g].blocks_left -= 1;
                    // Replacement dispatch — the slow path's try_admit
                    // restricted to window [g] with an empty resume queue.
                    while self.grt[g].next_block < total {
                        let Some(sm2) = self.pick_sm(g) else { break };
                        let nb = self.grt[g].next_block as u32;
                        self.grt[g].next_block += 1;
                        self.occupy(sm2, g);
                        let rt = self.blk_mut(g, nb);
                        rt.state = BState::Running;
                        rt.sm = sm2;
                        rt.occupy_t = t;
                        if let Some(p) = self.prof.as_deref_mut() {
                            p.on_block_start(g, nb, sm2, t, false);
                        }
                        let resident = max_warps - self.sms[sm2].free_warps;
                        let rate = (iw * w / f64::from(resident.max(1))).min(w);
                        let dur = span.max(work / rate);
                        self.seq += 1;
                        let entry = (t + dur, self.seq, WheelEv::Seg(nb));
                        let pos = wheel[head..]
                            .partition_point(|&(et, _, _)| et.total_cmp(&entry.0).is_le());
                        wheel.insert(head + pos, entry);
                    }
                    if self.grt[g].blocks_left == 0 {
                        finished = true;
                        break;
                    }
                }
            }
        }
        debug_assert!(finished || self.grt[g].blocks_left == 0);
        // Re-queue whatever the early exit left (only releases due after
        // the grid's completion); their original seqs keep the order.
        while head < wheel.len() {
            let (t, seq, ev) = wheel[head];
            head += 1;
            match ev {
                WheelEv::Release(r) => {
                    self.release_entries += 1;
                    self.queue.push(t, seq, Ev::Release(r));
                }
                WheelEv::Seg(_) => unreachable!("segdones outliving their grid"),
            }
        }
        self.wheel = wheel;
        // Mirror the slow path's final teardown tail: by now the slow path
        // would have dropped the exhausted grid from the admit queue, then
        // run check_grid_done + try_admit at the completion time.
        self.admit_queue.clear();
        self.scanned_epoch = u64::MAX;
        self.check_grid_done(g);
        self.try_admit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{BlockOutcome, SegmentTask};
    use crate::kernel::LaunchConfig;
    use crate::prof::Profile;

    fn seg(span: f64, work: f64) -> SegmentTask {
        SegmentTask {
            span,
            work,
            wait_children: false,
            launches: vec![],
        }
    }

    fn grid(
        origin: Origin,
        cfg: LaunchConfig,
        blocks: Vec<BlockOutcome>,
        children: Vec<usize>,
    ) -> GridTask {
        GridTask {
            name: "k".into(),
            cfg,
            origin,
            depth: 0,
            blocks,
            children,
            kernel: None,
        }
    }

    fn block(warps: u32, segments: Vec<SegmentTask>) -> BlockOutcome {
        BlockOutcome {
            warps,
            segments,
            replayed: false,
        }
    }

    fn host(seq: u32) -> Origin {
        Origin::Host { seq, stream: 0 }
    }

    /// Run the same batch with fast paths on and off (collector attached)
    /// and require bitwise-identical timing and profiler output.
    fn assert_ff_exact(build: impl Fn() -> Vec<GridTask>) -> TimingResult {
        let run = |ff: bool| {
            let mut d = DeviceConfig::tiny();
            d.fast_forward = ff;
            let c = CostModel::default();
            let grids = build();
            let mut col = Collector::new(grids.len());
            let r = simulate(&grids, &d, &c, Some(&mut col));
            let mut p = Profile::default();
            col.finish(&grids, &d, &mut p);
            (r, p)
        };
        let (r_on, p_on) = run(true);
        let (r_off, p_off) = run(false);
        assert_eq!(r_on, r_off, "timing diverges between fast and slow path");
        assert_eq!(p_on, p_off, "profile diverges between fast and slow path");
        r_on
    }

    #[test]
    fn empty_batch() {
        let r = simulate(&[], &DeviceConfig::tiny(), &CostModel::default(), None);
        assert_eq!(r.makespan, 0.0);
    }

    #[test]
    fn single_block_runs_span() {
        let d = DeviceConfig::tiny();
        let c = CostModel::default();
        let g = grid(
            host(0),
            LaunchConfig::new(1, 32),
            vec![block(1, vec![seg(100.0, 100.0)])],
            vec![],
        );
        let r = simulate(&[g], &d, &c, None);
        assert!((r.makespan - (c.host_launch_cycles + 100.0)).abs() < 1e-6);
        assert!(r.achieved_occupancy > 0.0);
    }

    #[test]
    fn blocks_beyond_capacity_run_in_waves() {
        let d = DeviceConfig::tiny(); // 2 SMs x 4 blocks = 8 resident
        let c = CostModel::default();
        // 16 identical blocks of 100 span / 100 work: two waves. With 4
        // resident single-warp blocks per SM and issue width 2, each block
        // progresses at rate 0.5 -> 200 cycles per wave.
        let blocks: Vec<BlockOutcome> =
            (0..16).map(|_| block(1, vec![seg(100.0, 100.0)])).collect();
        let g = grid(host(0), LaunchConfig::new(16, 32), blocks, vec![]);
        let r = simulate(&[g], &d, &c, None);
        let expect = c.host_launch_cycles + 400.0;
        assert!(
            (r.makespan - expect).abs() < 1e-6,
            "makespan {} != {}",
            r.makespan,
            expect
        );
    }

    #[test]
    fn same_stream_grids_serialize() {
        let d = DeviceConfig::tiny();
        let c = CostModel::default();
        let g0 = grid(
            host(0),
            LaunchConfig::new(1, 32),
            vec![block(1, vec![seg(50.0, 50.0)])],
            vec![],
        );
        let g1 = grid(
            host(1),
            LaunchConfig::new(1, 32),
            vec![block(1, vec![seg(50.0, 50.0)])],
            vec![],
        );
        let r = simulate(&[g0, g1], &d, &c, None);
        // g0 starts after one launch overhead and runs 50 cycles; g1's
        // driver release lands at two launch overheads, after which it runs.
        let expect = 2.0 * c.host_launch_cycles + 50.0;
        assert!(
            (r.makespan - expect).abs() < 1e-6,
            "makespan {}",
            r.makespan
        );
    }

    #[test]
    fn different_host_streams_overlap() {
        let d = DeviceConfig::tiny();
        let c = CostModel::default();
        let mk = |seq, stream| {
            grid(
                Origin::Host { seq, stream },
                LaunchConfig::new(1, 32),
                vec![block(1, vec![seg(100_000.0, 100_000.0)])],
                vec![],
            )
        };
        let serial = simulate(&[mk(0, 0), mk(1, 0)], &d, &c, None).makespan;
        let overlap = simulate(&[mk(0, 0), mk(1, 1)], &d, &c, None).makespan;
        assert!(overlap < serial);
    }

    #[test]
    fn child_grid_released_after_parent_launch_point() {
        let d = DeviceConfig::tiny();
        let c = CostModel::default();
        // Parent: one block, launches child at offset 10 in its only segment.
        let parent = grid(
            host(0),
            LaunchConfig::new(1, 32),
            vec![block(
                1,
                vec![SegmentTask {
                    span: 40.0,
                    work: 40.0,
                    wait_children: false,
                    launches: vec![(1, 10.0)],
                }],
            )],
            vec![1],
        );
        let child = grid(
            Origin::Device {
                parent: 0,
                block: 0,
                stream_slot: 0,
            },
            LaunchConfig::new(1, 32),
            vec![block(1, vec![seg(500.0, 500.0)])],
            vec![],
        );
        let r = simulate(&[parent, child], &d, &c, None);
        let child_start = c.host_launch_cycles
            + 10.0
            + c.device_launch_latency_cycles
            + c.device_launch_service_cycles;
        assert!(
            (r.makespan - (child_start + 500.0)).abs() < 1e-6,
            "makespan {}",
            r.makespan
        );
    }

    #[test]
    fn parent_waits_for_children_with_swap() {
        let d = DeviceConfig::tiny();
        let c = CostModel::default();
        let parent = grid(
            host(0),
            LaunchConfig::new(1, 32),
            vec![BlockOutcome {
                warps: 1,
                segments: vec![
                    SegmentTask {
                        span: 20.0,
                        work: 20.0,
                        wait_children: false,
                        launches: vec![(1, 5.0)],
                    },
                    SegmentTask {
                        span: 30.0,
                        work: 30.0,
                        wait_children: true,
                        launches: vec![],
                    },
                ],
                replayed: false,
            }],
            vec![1],
        );
        let child = grid(
            Origin::Device {
                parent: 0,
                block: 0,
                stream_slot: 0,
            },
            LaunchConfig::new(1, 32),
            vec![block(1, vec![seg(1000.0, 1000.0)])],
            vec![],
        );
        let r = simulate(&[parent, child], &d, &c, None);
        let child_done = c.host_launch_cycles
            + 5.0
            + c.device_launch_latency_cycles
            + c.device_launch_service_cycles
            + 1000.0;
        let expect = child_done + c.swap_restore_cycles + 30.0;
        assert!(
            (r.makespan - expect).abs() < 1e-6,
            "makespan {} != {}",
            r.makespan,
            expect
        );
    }

    #[test]
    fn device_stream_serializes_children() {
        let d = DeviceConfig::tiny();
        let c = CostModel::default();
        // Parent launches two children into the same device stream slot.
        let parent = grid(
            host(0),
            LaunchConfig::new(1, 32),
            vec![block(
                1,
                vec![SegmentTask {
                    span: 10.0,
                    work: 10.0,
                    wait_children: false,
                    launches: vec![(1, 1.0), (2, 2.0)],
                }],
            )],
            vec![1, 2],
        );
        // Children must outlast the launch-pool service gap for stream
        // overlap to be observable.
        let mk_child = |slot| {
            grid(
                Origin::Device {
                    parent: 0,
                    block: 0,
                    stream_slot: slot,
                },
                LaunchConfig::new(1, 32),
                vec![block(1, vec![seg(50_000.0, 50_000.0)])],
                vec![],
            )
        };
        let serial = simulate(
            &[parent.clone_for_test(), mk_child(0), mk_child(0)],
            &d,
            &c,
            None,
        );
        let parallel = simulate(&[parent, mk_child(0), mk_child(1)], &d, &c, None);
        assert!(parallel.makespan < serial.makespan);
    }

    impl GridTask {
        fn clone_for_test(&self) -> GridTask {
            GridTask {
                name: self.name.clone(),
                cfg: self.cfg,
                origin: self.origin,
                depth: self.depth,
                blocks: self.blocks.clone(),
                children: self.children.clone(),
                kernel: None,
            }
        }
    }

    #[test]
    fn launch_pool_overflow_kicks_in_beyond_the_limit() {
        let d = DeviceConfig::tiny(); // pending_launch_limit = 64
        let c = CostModel::default();
        // One parent block that fires 200 children at the same instant.
        let n_children = 200u32;
        let launches: Vec<(u32, f64)> = (1..=n_children).map(|i| (i, 1.0)).collect();
        let mut grids = vec![grid(
            host(0),
            LaunchConfig::new(1, 32),
            vec![BlockOutcome {
                warps: 1,
                segments: vec![SegmentTask {
                    span: 10.0,
                    work: 10.0,
                    wait_children: false,
                    launches,
                }],
                replayed: false,
            }],
            (1..=n_children as usize).collect(),
        )];
        for i in 0..n_children {
            grids.push(grid(
                Origin::Device {
                    parent: 0,
                    block: 0,
                    stream_slot: i, // all independent streams
                },
                LaunchConfig::new(1, 32),
                vec![block(1, vec![seg(1.0, 1.0)])],
                vec![],
            ));
        }
        let r = simulate(&grids, &d, &c, None);
        assert!(r.overflow_launches > 0, "backlog beyond 64 must overflow");
        assert!(r.overflow_launches < u64::from(n_children));
        // Makespan is dominated by pool service incl. the overflow tail.
        let fast = 65.0 * c.device_launch_service_cycles;
        assert!(r.makespan > fast, "makespan {} too small", r.makespan);
    }

    #[test]
    fn collector_records_spans_flows_and_swaps() {
        let d = DeviceConfig::tiny();
        let c = CostModel::default();
        // Parent launches a child at offset 5, then joins it: the timeline
        // must show two parent block spans (the second resumed), a child
        // span, and one flow arrow.
        let parent = grid(
            host(0),
            LaunchConfig::new(1, 32),
            vec![BlockOutcome {
                warps: 1,
                segments: vec![
                    SegmentTask {
                        span: 20.0,
                        work: 20.0,
                        wait_children: false,
                        launches: vec![(1, 5.0)],
                    },
                    SegmentTask {
                        span: 30.0,
                        work: 30.0,
                        wait_children: true,
                        launches: vec![],
                    },
                ],
                replayed: false,
            }],
            vec![1],
        );
        let child = grid(
            Origin::Device {
                parent: 0,
                block: 0,
                stream_slot: 0,
            },
            LaunchConfig::new(1, 32),
            vec![block(1, vec![seg(1000.0, 1000.0)])],
            vec![],
        );
        let grids = [parent, child];
        let mut col = Collector::new(grids.len());
        let r = simulate(&grids, &d, &c, Some(&mut col));
        let mut profile = crate::prof::Profile::default();
        col.finish(&grids, &d, &mut profile);
        assert_eq!(profile.kernels.len(), 2);
        assert_eq!(profile.kernels[1].parent, Some((0, 0)));
        assert!(profile.kernels[0].release <= profile.kernels[0].start);
        assert!((profile.kernels[0].end - r.makespan).abs() < 1e-9);
        // Parent runs, swaps out, resumes: 3 block spans total.
        assert_eq!(profile.blocks.len(), 3);
        let resumed: Vec<_> = profile.blocks.iter().filter(|b| b.resumed).collect();
        assert_eq!(resumed.len(), 1);
        assert_eq!(resumed[0].grid, 0);
        assert_eq!(profile.flows.len(), 1);
        let f = &profile.flows[0];
        assert_eq!((f.parent_grid, f.child_grid), (0, 1));
        assert!(f.launch < f.child_start);
        assert!((f.child_start - profile.kernels[1].start).abs() < 1e-12);
        // Every block span nests inside its grid's kernel span.
        for b in &profile.blocks {
            let k = &profile.kernels[b.grid as usize];
            assert!(b.start >= k.start - 1e-9 && b.end <= k.end + 1e-9);
        }
    }

    #[test]
    fn profiling_does_not_change_timing() {
        let d = DeviceConfig::tiny();
        let c = CostModel::default();
        let mk = || {
            let blocks: Vec<BlockOutcome> =
                (0..16).map(|_| block(1, vec![seg(100.0, 100.0)])).collect();
            grid(host(0), LaunchConfig::new(16, 32), blocks, vec![])
        };
        let plain = simulate(&[mk()], &d, &c, None);
        let mut col = Collector::new(1);
        let profiled = simulate(&[mk()], &d, &c, Some(&mut col));
        assert_eq!(plain, profiled);
    }

    #[test]
    fn work_bound_blocks_take_longer_than_span() {
        let d = DeviceConfig::tiny(); // issue width 2
        let c = CostModel::default();
        // 8 warps of 100 cycles each: span 100, work 800. Alone on an SM
        // the block can issue 2 warp-cycles per cycle -> 400 cycles.
        let g = grid(
            host(0),
            LaunchConfig::new(1, 256),
            vec![block(8, vec![seg(100.0, 800.0)])],
            vec![],
        );
        let r = simulate(&[g], &d, &c, None);
        assert!((r.makespan - (c.host_launch_cycles + 400.0)).abs() < 1e-6);
    }

    // -- fast-path equivalence ------------------------------------------

    #[test]
    fn fast_forward_matches_slow_path_on_uniform_waves() {
        // Far more blocks than the device holds: the wheel replays many
        // replacement-dispatch rounds, including the residency ramp where
        // durations differ block to block.
        for blocks in [1usize, 7, 16, 97] {
            let r = assert_ff_exact(|| {
                let bl: Vec<BlockOutcome> = (0..blocks)
                    .map(|_| block(1, vec![seg(100.0, 400.0)]))
                    .collect();
                vec![grid(
                    host(0),
                    LaunchConfig::new(blocks as u32, 32),
                    bl,
                    vec![],
                )]
            });
            assert!(r.makespan > 0.0);
        }
    }

    #[test]
    fn fast_forward_matches_slow_path_with_trailing_releases() {
        // Same-stream successors release while the first grid is being
        // fast-forwarded (and after it finishes): the wheel must process
        // mid-flight releases inertly and re-queue trailing ones.
        assert_ff_exact(|| {
            (0..4u32)
                .map(|i| {
                    let bl: Vec<BlockOutcome> =
                        (0..24).map(|_| block(1, vec![seg(150.0, 600.0)])).collect();
                    grid(host(i), LaunchConfig::new(24, 32), bl, vec![])
                })
                .collect()
        });
    }

    #[test]
    fn fast_forward_respects_second_stream_heads() {
        // A second host stream's head releases mid-run: the wheel must not
        // engage across that activation (or must reproduce it exactly).
        assert_ff_exact(|| {
            let big = |seq, stream| {
                let bl: Vec<BlockOutcome> = (0..32)
                    .map(|_| block(1, vec![seg(500.0, 2000.0)]))
                    .collect();
                grid(
                    Origin::Host { seq, stream },
                    LaunchConfig::new(32, 32),
                    bl,
                    vec![],
                )
            };
            vec![big(0, 0), big(1, 1)]
        });
    }

    #[test]
    fn cohorts_match_slow_path_on_heterogeneous_blocks() {
        // Mixed span/work defeats uniformity (no wheel) but still forms
        // partial cohorts where end times coincide.
        assert_ff_exact(|| {
            let bl: Vec<BlockOutcome> = (0..24)
                .map(|i| block(1, vec![seg(100.0 + (i % 3) as f64 * 50.0, 300.0)]))
                .collect();
            vec![grid(host(0), LaunchConfig::new(24, 32), bl, vec![])]
        });
    }

    #[test]
    fn fast_paths_match_slow_path_on_dp_storm() {
        // Launch storm through the pending-launch pool incl. overflow:
        // exercises unserviced releases, device streams, and child grids
        // that are themselves wheel-eligible.
        assert_ff_exact(|| {
            let n_children = 96u32;
            let launches: Vec<(u32, f64)> = (1..=n_children).map(|i| (i, 1.0)).collect();
            let mut grids = vec![grid(
                host(0),
                LaunchConfig::new(1, 32),
                vec![BlockOutcome {
                    warps: 1,
                    segments: vec![SegmentTask {
                        span: 10.0,
                        work: 10.0,
                        wait_children: false,
                        launches,
                    }],
                    replayed: false,
                }],
                (1..=n_children as usize).collect(),
            )];
            for i in 0..n_children {
                grids.push(grid(
                    Origin::Device {
                        parent: 0,
                        block: 0,
                        stream_slot: i,
                    },
                    LaunchConfig::new(4, 64),
                    (0..4).map(|_| block(2, vec![seg(40.0, 80.0)])).collect(),
                    vec![],
                ));
            }
            grids
        });
    }

    #[test]
    fn fast_paths_match_slow_path_with_swapping_parents() {
        // Parent joins its child (swap + resume) while a sibling uniform
        // grid is wheel-eligible: resume_queue traffic must block the
        // wheel without changing results.
        assert_ff_exact(|| {
            let parent = grid(
                host(0),
                LaunchConfig::new(1, 32),
                vec![BlockOutcome {
                    warps: 1,
                    segments: vec![
                        SegmentTask {
                            span: 20.0,
                            work: 20.0,
                            wait_children: false,
                            launches: vec![(2, 5.0)],
                        },
                        SegmentTask {
                            span: 30.0,
                            work: 30.0,
                            wait_children: true,
                            launches: vec![],
                        },
                    ],
                    replayed: false,
                }],
                vec![2],
            );
            let sibling = {
                let bl: Vec<BlockOutcome> =
                    (0..20).map(|_| block(1, vec![seg(300.0, 900.0)])).collect();
                grid(
                    Origin::Host { seq: 1, stream: 1 },
                    LaunchConfig::new(20, 32),
                    bl,
                    vec![],
                )
            };
            let child = grid(
                Origin::Device {
                    parent: 0,
                    block: 0,
                    stream_slot: 0,
                },
                LaunchConfig::new(8, 32),
                (0..8).map(|_| block(1, vec![seg(700.0, 700.0)])).collect(),
                vec![],
            );
            vec![parent, sibling, child]
        });
    }

    // -- calendar queue -------------------------------------------------

    /// Total order on event times (f64) for the reference heap.
    #[derive(Debug, Clone, Copy, PartialEq)]
    struct TimeKey(f64);
    impl Eq for TimeKey {}
    impl PartialOrd for TimeKey {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for TimeKey {
        fn cmp(&self, other: &Self) -> Ordering {
            self.0.total_cmp(&other.0)
        }
    }

    #[test]
    fn calendar_matches_binary_heap_pop_order() {
        use rand::{Rng, SeedableRng};
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        for seed in 0..4u64 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut cal = CalendarQueue::new();
            let mut heap: BinaryHeap<Reverse<(TimeKey, u64, Ev)>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut now = 0.0f64;
            // An event storm with heavy ties (quantized times), bursts,
            // sparse jumps, and interleaved pops — including runs of pops
            // that drain the queue completely.
            for _ in 0..2_000 {
                let burst = rng.gen_range(0usize..8);
                for _ in 0..burst {
                    let dt = match rng.gen_range(0u32..10) {
                        0..=5 => f64::from(rng.gen_range(0u32..40)) * 25.0,
                        6..=8 => f64::from(rng.gen_range(0u32..1_000)),
                        _ => f64::from(rng.gen_range(0u32..100)) * 10_000.0,
                    };
                    let t = now + dt;
                    seq += 1;
                    let ev = if rng.gen_bool(0.3) {
                        Ev::Release(rng.gen_range(0usize..64))
                    } else {
                        Ev::SegDone(rng.gen_range(0usize..64), rng.gen_range(0u32..256))
                    };
                    cal.push(t, seq, ev);
                    heap.push(Reverse((TimeKey(t), seq, ev)));
                }
                let pops = rng.gen_range(0usize..10);
                for _ in 0..pops {
                    let want = heap.pop();
                    let got = cal.pop();
                    match (want, got) {
                        (None, None) => break,
                        (Some(Reverse((TimeKey(t), s, ev))), Some((ct, cs, cev))) => {
                            assert_eq!(t.to_bits(), ct.to_bits(), "time order diverged");
                            assert_eq!(s, cs, "seq tie-break diverged at t={t}");
                            assert_eq!(ev, cev);
                            now = t;
                        }
                        (w, g) => panic!("length diverged: heap={w:?} cal={g:?}"),
                    }
                }
            }
            // Drain both completely.
            while let Some(Reverse((TimeKey(t), s, ev))) = heap.pop() {
                let (ct, cs, cev) = cal.pop().expect("calendar drained early");
                assert_eq!((t.to_bits(), s, ev), (ct.to_bits(), cs, cev));
            }
            assert!(cal.pop().is_none());
            assert_eq!(cal.len(), 0);
        }
    }

    #[test]
    fn fast_paths_actually_engage() {
        // Guard against the equivalence tests passing vacuously because an
        // entry condition quietly never holds.
        let d = DeviceConfig::tiny();
        let c = CostModel::default();

        // A lone uniform grid must hit the wheel.
        let bl: Vec<BlockOutcome> = (0..48).map(|_| block(1, vec![seg(100.0, 400.0)])).collect();
        let grids = vec![grid(host(0), LaunchConfig::new(48, 32), bl, vec![])];
        let mut sim = Sim::new(&grids, &d, &c, None);
        sim.run();
        assert!(sim.stat_wheel_runs > 0, "wheel never engaged");

        // A two-phase grid (not pairwise uniform, so no wheel) whose final
        // wave ends in lockstep must tear down through a cohort fan-out.
        let bl: Vec<BlockOutcome> = (0..16)
            .map(|i| {
                let span = if i < 8 { 100.0 } else { 250.0 };
                block(1, vec![seg(span, span)])
            })
            .collect();
        let grids = vec![grid(host(0), LaunchConfig::new(16, 32), bl, vec![])];
        let mut sim = Sim::new(&grids, &d, &c, None);
        sim.run();
        assert_eq!(sim.stat_wheel_runs, 0, "mixed-span grid must not wheel");
        assert!(sim.stat_cohort_fanouts > 0, "cohort fan-out never engaged");
    }

    /// Manual timing-pass microbenchmark (`cargo test --release -p npar-sim
    /// -- --ignored bench_timing_pass --nocapture`): K20-scale batches
    /// mirroring simbench's regular and dp-heavy mixes, fast paths off vs
    /// on. Not a correctness test — the equivalence suite covers that.
    #[test]
    #[ignore = "manual perf measurement"]
    fn bench_timing_pass() {
        let c = CostModel::default();
        let regular = || {
            let bl: Vec<BlockOutcome> = (0..128)
                .map(|_| block(8, vec![seg(500.0, 4000.0)]))
                .collect();
            (0..6u32)
                .map(|i| grid(host(i), LaunchConfig::new(128, 256), bl.clone(), vec![]))
                .collect::<Vec<_>>()
        };
        let dp_storm = || {
            let mut grids = Vec::new();
            for l in 0..6u32 {
                let parent_id = grids.len();
                let nchildren = 64usize;
                let first_child = parent_id + 1;
                let blocks: Vec<BlockOutcome> = (0..nchildren)
                    .map(|b| {
                        block(
                            2,
                            vec![SegmentTask {
                                span: 50.0,
                                work: 100.0,
                                wait_children: false,
                                launches: vec![((first_child + b) as u32, 10.0)],
                            }],
                        )
                    })
                    .collect();
                grids.push(grid(
                    host(l),
                    LaunchConfig::new(nchildren as u32, 64),
                    blocks,
                    (first_child..first_child + nchildren).collect(),
                ));
                for b in 0..nchildren {
                    grids.push(grid(
                        Origin::Device {
                            parent: parent_id,
                            block: b as u32,
                            stream_slot: 0,
                        },
                        LaunchConfig::new(4, 64),
                        (0..4).map(|_| block(2, vec![seg(40.0, 80.0)])).collect(),
                        vec![],
                    ));
                }
            }
            grids
        };
        for (name, build) in [
            ("regular", regular as fn() -> Vec<GridTask>),
            ("dp-storm", dp_storm as fn() -> Vec<GridTask>),
        ] {
            let grids = build();
            let mut times = [0.0f64; 2];
            for (slot, ff) in [(0usize, false), (1, true)] {
                let mut d = DeviceConfig::kepler_k20();
                d.fast_forward = ff;
                let iters = 200;
                let mut best = f64::INFINITY;
                for _ in 0..5 {
                    let t0 = std::time::Instant::now();
                    for _ in 0..iters {
                        std::hint::black_box(simulate(&grids, &d, &c, None));
                    }
                    best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
                }
                times[slot] = best;
            }
            println!(
                "{name:>9}: off {:>8.1}us  on {:>8.1}us  gain {:.2}x",
                times[0] * 1e6,
                times[1] * 1e6,
                times[0] / times[1]
            );
        }
    }

    #[test]
    fn calendar_handles_identical_times_by_seq() {
        let mut cal = CalendarQueue::with_geometry(16, 64.0);
        for s in (1..=100u64).rev() {
            cal.push(1234.5, s, Ev::Release(s as usize));
        }
        for s in 1..=100u64 {
            let (t, cs, _) = cal.pop().unwrap();
            assert_eq!((t, cs), (1234.5, s));
        }
    }

    #[test]
    fn calendar_pop_order_survives_grow_shrink_cycle() {
        use rand::{Rng, SeedableRng};
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let mut cal = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<(TimeKey, u64, Ev)>> = BinaryHeap::new();
        // Storm: force several 4x-occupancy grows.
        for s in 1..=20_000u64 {
            let t = f64::from(rng.gen_range(0u32..500_000));
            cal.push(t, s, Ev::Release(0));
            heap.push(Reverse((TimeKey(t), s, Ev::Release(0))));
        }
        let grown = cal.buckets.len();
        assert!(grown > 16, "storm never grew the ring");
        // Drain below the 1/8 occupancy floor: the ring must give days
        // back, and pop order must stay the exact (total_cmp, seq) merge
        // throughout the grow→shrink cycle.
        let mut popped = 0usize;
        while let Some(Reverse((TimeKey(t), s, ev))) = heap.pop() {
            let (ct, cs, cev) = cal.pop().expect("calendar drained early");
            assert_eq!((t.to_bits(), s, ev), (ct.to_bits(), cs, cev));
            popped += 1;
            if popped == 19_990 {
                assert!(
                    cal.buckets.len() < grown,
                    "ring still {} buckets with {} events left",
                    cal.buckets.len(),
                    cal.len()
                );
            }
        }
        assert!(cal.pop().is_none());
    }

    // -- timing domains and analytic mode --------------------------------

    /// Run a batch serially and with domain partitioning (no pool — the
    /// sequential domain path is bitwise the threaded one) and require
    /// identical results and profiles; returns the partitioned pass stats.
    fn assert_domains_exact(threads: usize, build: impl Fn() -> Vec<GridTask>) -> SchedStats {
        let run = |tt: usize| {
            let mut d = DeviceConfig::tiny();
            d.timing_threads = tt;
            let c = CostModel::default();
            let grids = build();
            let mut col = Collector::new(grids.len());
            let (r, s) = simulate_full(&grids, &d, &c, Some(&mut col), None);
            let mut p = Profile::default();
            col.finish(&grids, &d, &mut p);
            (r, s, p)
        };
        let (r1, _, p1) = run(1);
        let (rn, stats, pn) = run(threads);
        assert_eq!(r1, rn, "timing diverges across timing_threads");
        assert_eq!(p1, pn, "profile diverges across timing_threads");
        stats
    }

    #[test]
    fn disjoint_streams_commit_as_parallel_domains() {
        // Four single-block streams with tiny spans: each domain's window
        // ends long before the next host release (3500 cycles apart), so
        // every domain commits optimistically.
        let stats = assert_domains_exact(4, || {
            (0..4u32)
                .map(|i| {
                    grid(
                        Origin::Host { seq: i, stream: i },
                        LaunchConfig::new(1, 32),
                        vec![block(1, vec![seg(100.0, 40.0)])],
                        vec![],
                    )
                })
                .collect()
        });
        assert_eq!(stats.domains, 4);
        assert_eq!(stats.domains_committed, 4);
        assert_eq!(stats.domains_rolled_back, 0);
    }

    #[test]
    fn overlapping_streams_roll_back_to_serial() {
        // Long-running streams whose windows overlap: the optimistic runs
        // cannot commit and the whole batch replays serially — results
        // must still be bitwise those of the serial pass.
        let stats = assert_domains_exact(4, || {
            (0..4u32)
                .map(|i| {
                    grid(
                        Origin::Host { seq: i, stream: i },
                        LaunchConfig::new(1, 32),
                        vec![block(1, vec![seg(100_000.0, 40.0)])],
                        vec![],
                    )
                })
                .collect()
        });
        assert_eq!(stats.domains, 4);
        assert_eq!(stats.domains_committed, 0);
        assert_eq!(stats.domains_rolled_back, 4);
    }

    #[test]
    fn mixed_windows_commit_prefix_and_roll_back_suffix() {
        // Stream 0 is short (commits), streams 1-2 overlap each other.
        // The violating domain must also pull its committed neighbor back
        // into the serial suffix (the split moves one left).
        let stats = assert_domains_exact(4, || {
            let mk = |i: u32, span: f64| {
                grid(
                    Origin::Host { seq: i, stream: i },
                    LaunchConfig::new(1, 32),
                    vec![block(1, vec![seg(span, 40.0)])],
                    vec![],
                )
            };
            vec![mk(0, 100.0), mk(1, 100_000.0), mk(2, 100_000.0)]
        });
        assert_eq!(stats.domains, 3);
        assert_eq!(stats.domains_committed, 1);
        assert_eq!(stats.domains_rolled_back, 2);
    }

    #[test]
    fn device_children_join_their_parent_domain() {
        // A parent with device children in one stream plus an unrelated
        // stream: the launch DAG must glue parent+child into one domain.
        let stats = assert_domains_exact(2, || {
            let parent = grid(
                Origin::Host { seq: 0, stream: 0 },
                LaunchConfig::new(1, 32),
                vec![block(
                    1,
                    vec![
                        SegmentTask {
                            span: 50.0,
                            work: 20.0,
                            wait_children: false,
                            launches: vec![(2, 10.0)],
                        },
                        SegmentTask {
                            span: 30.0,
                            work: 10.0,
                            wait_children: true,
                            launches: vec![],
                        },
                    ],
                )],
                vec![2],
            );
            let other = grid(
                Origin::Host { seq: 1, stream: 9 },
                LaunchConfig::new(1, 32),
                vec![block(1, vec![seg(60.0, 20.0)])],
                vec![],
            );
            let child = grid(
                Origin::Device {
                    parent: 0,
                    block: 0,
                    stream_slot: 0,
                },
                LaunchConfig::new(2, 32),
                (0..2).map(|_| block(1, vec![seg(40.0, 10.0)])).collect(),
                vec![],
            );
            vec![parent, other, child]
        });
        assert_eq!(stats.domains, 2, "parent+child must share a domain");
    }

    /// Run a batch with the analytic mode off and on (fast paths in the
    /// given state, collector attached) and require bitwise-identical
    /// timing and profiler output; returns the analytic-run count.
    fn assert_analytic_exact(fast: bool, build: impl Fn() -> Vec<GridTask>) -> u64 {
        let run = |analytic: bool| {
            let mut d = DeviceConfig::tiny();
            d.fast_forward = fast;
            d.analytic = analytic;
            let c = CostModel::default();
            let grids = build();
            let mut col = Collector::new(grids.len());
            let (r, s) = simulate_full(&grids, &d, &c, Some(&mut col), None);
            let mut p = Profile::default();
            col.finish(&grids, &d, &mut p);
            (r, s, p)
        };
        let (r_off, _, p_off) = run(false);
        let (r_on, stats, p_on) = run(true);
        assert_eq!(
            r_on, r_off,
            "timing diverges between analytic and event mode"
        );
        assert_eq!(
            p_on, p_off,
            "profile diverges between analytic and event mode"
        );
        stats.analytic_runs
    }

    /// Span-bound uniform batch: 48 single-warp blocks on tiny (8 resident
    /// across 2 SMs) is 6 waves; work 40 at the 4-blocks-per-SM residency
    /// ceiling needs 80 cycles < the 100-cycle span, so every duration is
    /// bitwise the span and the analytic obligations hold.
    fn span_bound_batch() -> Vec<GridTask> {
        let bl: Vec<BlockOutcome> = (0..48).map(|_| block(1, vec![seg(100.0, 40.0)])).collect();
        vec![grid(host(0), LaunchConfig::new(48, 32), bl, vec![])]
    }

    #[test]
    fn analytic_matches_event_mode_on_uniform_waves() {
        for fast in [false, true] {
            let runs = assert_analytic_exact(fast, span_bound_batch);
            assert!(runs > 0, "analytic mode never engaged (fast={fast})");
        }
    }

    #[test]
    fn analytic_falls_back_on_work_bound_grids() {
        // work 400 at depth needs 800 cycles > the 100-cycle span:
        // durations depend on residency, obligation 1 fails, and the event
        // path must run — with identical results either way.
        for fast in [false, true] {
            let runs = assert_analytic_exact(fast, || {
                let bl: Vec<BlockOutcome> =
                    (0..48).map(|_| block(1, vec![seg(100.0, 400.0)])).collect();
                vec![grid(host(0), LaunchConfig::new(48, 32), bl, vec![])]
            });
            assert_eq!(runs, 0, "work-bound grid must not run analytically");
        }
    }

    #[test]
    fn analytic_handles_queued_releases_and_streams() {
        // Span-bound grid plus later same-stream and other-stream grids:
        // inert releases sit in the queue across the analytic replay and
        // stream handoff happens at the analytic finish time.
        for fast in [false, true] {
            let runs = assert_analytic_exact(fast, || {
                let bl: Vec<BlockOutcome> =
                    (0..48).map(|_| block(1, vec![seg(100.0, 40.0)])).collect();
                vec![
                    grid(host(0), LaunchConfig::new(48, 32), bl.clone(), vec![]),
                    grid(host(1), LaunchConfig::new(48, 32), bl.clone(), vec![]),
                    grid(
                        Origin::Host { seq: 2, stream: 1 },
                        LaunchConfig::new(48, 32),
                        bl,
                        vec![],
                    ),
                ]
            });
            assert!(runs > 0, "analytic mode never engaged (fast={fast})");
        }
    }

    #[test]
    fn analytic_composes_with_timing_domains() {
        // Domain-partitioned pass with analytic mode on in every domain
        // run: still bitwise the plain serial event pass.
        let run = |tt: usize, analytic: bool| {
            let mut d = DeviceConfig::tiny();
            d.timing_threads = tt;
            d.analytic = analytic;
            let c = CostModel::default();
            let grids: Vec<GridTask> = (0..3u32)
                .map(|i| {
                    let bl: Vec<BlockOutcome> =
                        (0..16).map(|_| block(1, vec![seg(100.0, 40.0)])).collect();
                    grid(
                        Origin::Host { seq: i, stream: i },
                        LaunchConfig::new(16, 32),
                        bl,
                        vec![],
                    )
                })
                .collect();
            let mut col = Collector::new(grids.len());
            let (r, s) = simulate_full(&grids, &d, &c, Some(&mut col), None);
            let mut p = Profile::default();
            col.finish(&grids, &d, &mut p);
            (r, s, p)
        };
        let (r_serial, _, p_serial) = run(1, false);
        let (r_both, stats, p_both) = run(4, true);
        assert_eq!(r_serial, r_both);
        assert_eq!(p_serial, p_both);
        assert!(stats.domains_committed > 0);
        assert!(stats.analytic_runs > 0);
    }
}
