//! Sparse matrix–vector multiplication (CSR), the paper's SpMV benchmark
//! [Greathouse & Daga, SC'14 baseline]. `y = A·x` where the inner loop over
//! a row's nonzeros is irregular whenever the matrix is.

use npar_sim::SyncCell;
use std::sync::Arc;

use npar_core::{run_loop, IrregularLoop, LoopParams, LoopTemplate};
use npar_graph::Csr;
use npar_sim::{CpuCounter, GBuf, Gpu, Report, ThreadCtx};

use crate::common::CsrBufs;

/// GPU SpMV result.
#[derive(Debug)]
pub struct SpmvResult {
    /// The product vector.
    pub y: Vec<f32>,
    /// Profiled execution report.
    pub report: Report,
}

struct SpmvLoop {
    a: Csr,
    x: Vec<f32>,
    y: SyncCell<Vec<f32>>,
    bufs: CsrBufs,
    x_buf: GBuf<f32>,
    y_buf: GBuf<f32>,
}

impl IrregularLoop for SpmvLoop {
    fn name(&self) -> &str {
        "spmv"
    }
    fn outer_len(&self) -> usize {
        self.a.num_nodes()
    }
    fn inner_len(&self, i: usize) -> usize {
        self.a.degree(i)
    }
    fn inner_len_cost(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.ld(&self.bufs.row_offsets, i);
        t.ld(&self.bufs.row_offsets, i + 1);
    }
    fn outer_begin(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.ld(&self.bufs.row_offsets, i);
        t.ld(&self.bufs.row_offsets, i + 1);
    }
    fn body(&self, t: &mut ThreadCtx<'_, '_>, i: usize, j: usize) {
        let e = self.a.row_start(i) + j;
        let col = self.a.col_indices_raw()[e] as usize;
        let aij = self.a.weights_raw().map_or(1.0, |w| w[e]);
        self.y.borrow_mut()[i] += aij * self.x[col];
        t.ld(&self.bufs.col_indices, e);
        t.ld(&self.bufs.weights, e);
        t.ld(&self.x_buf, col);
        t.compute(2);
    }
    fn outer_end(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.st(&self.y_buf, i);
    }
    fn has_reduction(&self) -> bool {
        true
    }
    fn combine_atomic(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.atomic(&self.y_buf, i);
    }
}

/// Run SpMV on the simulated GPU under `template`.
pub fn spmv_gpu(
    gpu: &mut Gpu,
    a: &Csr,
    x: &[f32],
    template: LoopTemplate,
    params: &LoopParams,
) -> SpmvResult {
    assert_eq!(x.len(), a.num_nodes(), "x must match the matrix dimension");
    let bufs = CsrBufs::alloc(gpu, a);
    let x_buf = gpu.alloc::<f32>(x.len().max(1));
    let y_buf = gpu.alloc::<f32>(a.num_nodes().max(1));
    let app = Arc::new(SpmvLoop {
        a: a.clone(),
        x: x.to_vec(),
        y: SyncCell::new(vec![0.0; a.num_nodes()]),
        bufs,
        x_buf,
        y_buf,
    });
    let report = run_loop(gpu, app.clone(), template, params);
    let y = app.y.borrow().clone();
    SpmvResult { y, report }
}

/// Serial CPU SpMV with operation counting.
pub fn spmv_cpu(a: &Csr, x: &[f32]) -> (Vec<f32>, CpuCounter) {
    assert_eq!(x.len(), a.num_nodes());
    let mut counter = CpuCounter::default();
    let mut y = vec![0.0f32; a.num_nodes()];
    for (i, out) in y.iter_mut().enumerate() {
        counter.load(2); // row bounds
        counter.branch(1);
        let mut acc = 0.0f32;
        let start = a.row_start(i);
        for (j, &col) in a.neighbors(i).iter().enumerate() {
            let aij = a.weights_raw().map_or(1.0, |w| w[start + j]);
            acc += aij * x[col as usize];
            counter.load(3); // col, value, x[col]
            counter.compute(2); // mul + add
            counter.branch(1);
        }
        *out = acc;
        counter.store(1);
    }
    (y, counter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use npar_graph::{uniform_random, with_random_weights};

    fn close(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-3)
    }

    #[test]
    fn gpu_matches_cpu_for_every_template() {
        let g = with_random_weights(&uniform_random(300, 0, 40, 11), 9, 5);
        let x: Vec<f32> = (0..300).map(|i| (i % 7) as f32 * 0.5).collect();
        let (y_cpu, counter) = spmv_cpu(&g, &x);
        assert!(counter.loads > 0);
        for template in LoopTemplate::ALL {
            let mut gpu = Gpu::k20();
            let r = spmv_gpu(&mut gpu, &g, &x, template, &LoopParams::default());
            assert!(close(&r.y, &y_cpu), "{template} diverged from CPU");
        }
    }

    #[test]
    fn unweighted_matrix_uses_unit_values() {
        let g = uniform_random(50, 1, 3, 2);
        let x = vec![1.0f32; 50];
        let (y, _) = spmv_cpu(&g, &x);
        for (i, &yi) in y.iter().enumerate() {
            assert!((yi - g.degree(i) as f32).abs() < 1e-6);
        }
    }

    #[test]
    fn report_carries_profile() {
        let g = uniform_random(200, 0, 64, 3);
        let x = vec![1.0f32; 200];
        let mut gpu = Gpu::k20();
        let r = spmv_gpu(
            &mut gpu,
            &g,
            &x,
            LoopTemplate::ThreadMapped,
            &LoopParams::default(),
        );
        let m = r.report.total();
        assert!(m.gld_transactions > 0);
        assert!(m.gst_transactions > 0);
        // Irregular degrees must show up as divergence.
        assert!(m.warp_execution_efficiency() < 0.95);
    }
}
