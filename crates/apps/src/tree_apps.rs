//! Tree Descendants and Tree Heights — the paper's recursive tree-traversal
//! benchmarks (Figures 7 and 8), expressed as [`TreeReduce`] problems and
//! run through the flat / rec-naive / rec-hier templates, plus the serial
//! CPU references (recursive and iterative) the speedups normalize against.

use npar_sim::SyncCell;
use std::sync::Arc;

use npar_core::{run_recursive, RecParams, RecTemplate, TreeReduce};
use npar_sim::{CpuCounter, GBuf, Gpu, Report};
use npar_tree::{Tree, NO_PARENT};

/// Which tree metric to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeMetric {
    /// Number of descendants of every node (a node is its own descendant).
    Descendants,
    /// Height of every node (leaves have height 1).
    Heights,
}

impl TreeMetric {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            TreeMetric::Descendants => "tree-descendants",
            TreeMetric::Heights => "tree-heights",
        }
    }
}

/// GPU tree-reduction result.
#[derive(Debug)]
pub struct TreeResult {
    /// Per-node values.
    pub values: Vec<u64>,
    /// Profiled execution report.
    pub report: Report,
}

struct TreeApp {
    metric: TreeMetric,
    tree: Tree,
    vals: SyncCell<Vec<u64>>,
    values: GBuf<u64>,
    parents: GBuf<u32>,
    offsets: GBuf<u32>,
    children: GBuf<u32>,
}

impl TreeReduce for TreeApp {
    fn name(&self) -> &str {
        self.metric.label()
    }
    fn tree(&self) -> &Tree {
        &self.tree
    }
    fn values_buf(&self) -> GBuf<u64> {
        self.values
    }
    fn parent_buf(&self) -> GBuf<u32> {
        self.parents
    }
    fn child_offsets_buf(&self) -> GBuf<u32> {
        self.offsets
    }
    fn children_buf(&self) -> GBuf<u32> {
        self.children
    }
    fn combine(&self, parent: usize, child: usize) {
        let c = self.vals.borrow()[child];
        let mut v = self.vals.borrow_mut();
        match self.metric {
            TreeMetric::Descendants => v[parent] += c,
            TreeMetric::Heights => v[parent] = v[parent].max(c + 1),
        }
    }
    fn flat_update(&self, node: usize, ancestor: usize) {
        let mut v = self.vals.borrow_mut();
        match self.metric {
            TreeMetric::Descendants => v[ancestor] += 1,
            TreeMetric::Heights => {
                let h = u64::from(self.tree.level(node) - self.tree.level(ancestor)) + 1;
                v[ancestor] = v[ancestor].max(h);
            }
        }
    }
}

/// Run a tree metric on the simulated GPU under `template`.
pub fn tree_gpu(
    gpu: &mut Gpu,
    tree: &Tree,
    metric: TreeMetric,
    template: RecTemplate,
    params: &RecParams,
) -> TreeResult {
    let n = tree.num_nodes();
    let app = Arc::new(TreeApp {
        metric,
        vals: SyncCell::new(vec![1; n]),
        values: gpu.alloc::<u64>(n),
        parents: gpu.alloc::<u32>(n),
        offsets: gpu.alloc::<u32>(n + 1),
        children: gpu.alloc::<u32>(n.saturating_sub(1).max(1)),
        tree: tree.clone(),
    });
    let report = run_recursive(gpu, app.clone(), template, params);
    let values = app.vals.borrow().clone();
    TreeResult { values, report }
}

/// Serial recursive CPU reference (the paper's Figure 3(a)) with operation
/// counting. Uses an explicit frame stack so deep trees cannot overflow the
/// native stack; each frame push models one recursive call.
pub fn tree_cpu_recursive(tree: &Tree, metric: TreeMetric) -> (Vec<u64>, CpuCounter) {
    let n = tree.num_nodes();
    let mut counter = CpuCounter::default();
    let mut vals = vec![1u64; n];
    // Post-order: (node, child cursor).
    let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
    counter.call(1);
    while let Some((v, cursor)) = stack.pop() {
        let kids = tree.children(v as usize);
        if cursor < kids.len() {
            stack.push((v, cursor + 1));
            stack.push((kids[cursor], 0));
            counter.call(1);
            counter.load(1);
            counter.branch(1);
        } else {
            // All children done: fold them.
            for &c in kids {
                counter.load(2);
                counter.compute(1);
                counter.store(1);
                match metric {
                    TreeMetric::Descendants => vals[v as usize] += vals[c as usize],
                    TreeMetric::Heights => {
                        vals[v as usize] = vals[v as usize].max(vals[c as usize] + 1)
                    }
                }
            }
            counter.branch(1);
        }
    }
    (vals, counter)
}

/// Serial iterative CPU reference (recursion eliminated: reverse level
/// order) with operation counting — the paper's Figure 3(b).
pub fn tree_cpu_iterative(tree: &Tree, metric: TreeMetric) -> (Vec<u64>, CpuCounter) {
    let n = tree.num_nodes();
    let mut counter = CpuCounter::default();
    let mut vals = vec![1u64; n];
    counter.store(n as u64);
    // Level-order ids: children always have larger ids than parents.
    for v in (1..n).rev() {
        let p = tree.parent(v);
        debug_assert_ne!(p, NO_PARENT);
        counter.load(3);
        counter.compute(1);
        counter.store(1);
        counter.branch(1);
        match metric {
            TreeMetric::Descendants => vals[p as usize] += vals[v],
            TreeMetric::Heights => vals[p as usize] = vals[p as usize].max(vals[v] + 1),
        }
    }
    (vals, counter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use npar_tree::TreeGen;

    fn tree(depth: u32, outdegree: u32, sparsity: u32) -> Tree {
        TreeGen {
            depth,
            outdegree,
            sparsity,
            seed: 13,
        }
        .generate()
    }

    #[test]
    fn cpu_variants_agree() {
        for metric in [TreeMetric::Descendants, TreeMetric::Heights] {
            for t in [tree(4, 5, 0), tree(5, 3, 1), tree(3, 9, 2), tree(1, 4, 0)] {
                let (a, _) = tree_cpu_recursive(&t, metric);
                let (b, _) = tree_cpu_iterative(&t, metric);
                assert_eq!(a, b, "{metric:?}");
            }
        }
    }

    #[test]
    fn descendants_of_regular_tree_are_closed_form() {
        let t = tree(4, 3, 0);
        let (v, _) = tree_cpu_recursive(&t, TreeMetric::Descendants);
        // Root counts every node.
        assert_eq!(v[0], t.num_nodes() as u64);
        // Leaves count themselves.
        let (a, b) = t.level_range(3);
        for leaf in a..b {
            assert_eq!(v[leaf as usize], 1);
        }
    }

    #[test]
    fn heights_of_regular_tree() {
        let t = tree(4, 3, 0);
        let (v, _) = tree_cpu_recursive(&t, TreeMetric::Heights);
        assert_eq!(v[0], 4);
        let (a, _) = t.level_range(1);
        assert_eq!(v[a as usize], 3);
    }

    #[test]
    fn gpu_templates_match_cpu() {
        for metric in [TreeMetric::Descendants, TreeMetric::Heights] {
            for t in [tree(4, 6, 0), tree(4, 8, 1), tree(2, 12, 0)] {
                let (cpu, _) = tree_cpu_recursive(&t, metric);
                for template in RecTemplate::ALL {
                    let mut gpu = Gpu::k20();
                    let r = tree_gpu(&mut gpu, &t, metric, template, &RecParams::default());
                    assert_eq!(r.values, cpu, "{metric:?} {template}");
                }
            }
        }
    }

    #[test]
    fn single_node_tree() {
        let t = tree(1, 4, 0);
        for metric in [TreeMetric::Descendants, TreeMetric::Heights] {
            for template in RecTemplate::ALL {
                let mut gpu = Gpu::k20();
                let r = tree_gpu(&mut gpu, &t, metric, template, &RecParams::default());
                assert_eq!(r.values, vec![1]);
            }
        }
    }
}
