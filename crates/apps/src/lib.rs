//! # npar-apps — the paper's benchmark applications
//!
//! Every workload from the ICPP'15 evaluation, each with (a) serial CPU
//! reference implementation(s) instrumented with operation counters and (b)
//! a GPU formulation that runs under the npar-core parallelization
//! templates on the npar-sim simulator:
//!
//! * irregular nested loops — [`spmv`], [`sssp`], [`bc`], [`pagerank`];
//! * recursive computations — [`tree_apps`] (descendants & heights) and
//!   [`bfs`] (flat + recursive variants);
//! * the Figure 2 sorting case study — [`sort`].

#![warn(missing_docs)]

pub mod bc;
pub mod bfs;
pub mod common;
pub mod pagerank;
pub mod sort;
pub mod spmv;
pub mod sssp;
pub mod tree_apps;
