//! Betweenness Centrality on unweighted graphs, after the GPU formulation
//! of Sarıyüce et al. [GPGPU-6] the paper builds on: per source, a
//! level-synchronous BFS builds the shortest-path DAG (σ counts), then a
//! backward sweep accumulates dependencies. Both phases are irregular
//! nested loops and run under any of the paper's templates.
//!
//! Exact BC iterates all sources; like most GPU evaluations on small-world
//! graphs we default to a deterministic source sample (`sources`) — the
//! template comparison is a ratio and unaffected (DESIGN.md §1).

use npar_sim::SyncCell;
use std::sync::Arc;

use npar_core::{run_loop, IrregularLoop, LoopParams, LoopTemplate};
use npar_graph::Csr;
use npar_sim::{CpuCounter, GBuf, Gpu, Report, ThreadCtx};

use crate::common::{CsrBufs, ReportAcc};

/// Unvisited level marker.
const UNSEEN: i32 = -1;

/// GPU BC result.
#[derive(Debug)]
pub struct BcResult {
    /// Centrality scores (summed over the sampled sources).
    pub bc: Vec<f64>,
    /// Profiled execution report across all sources and phases.
    pub report: Report,
}

struct BcState {
    level: SyncCell<Vec<i32>>,
    sigma: SyncCell<Vec<f64>>,
    delta: SyncCell<Vec<f64>>,
    bc: SyncCell<Vec<f64>>,
    cur: SyncCell<i32>,
    frontier_grew: SyncCell<bool>,
    src: SyncCell<usize>,
}

struct BcBufs {
    csr: CsrBufs,
    level: GBuf<i32>,
    sigma: GBuf<f32>,
    delta: GBuf<f32>,
    bc: GBuf<f32>,
}

/// Forward phase: nodes on the current level expand their neighbors,
/// discovering the next level and accumulating shortest-path counts.
struct ForwardLoop {
    g: Csr,
    st: Arc<BcState>,
    bufs: Arc<BcBufs>,
}

impl IrregularLoop for ForwardLoop {
    fn name(&self) -> &str {
        "bc-forward"
    }
    fn outer_len(&self) -> usize {
        self.g.num_nodes()
    }
    fn inner_len(&self, i: usize) -> usize {
        if self.st.level.borrow()[i] == self.st.cur.get() {
            self.g.degree(i)
        } else {
            0
        }
    }
    fn inner_len_cost(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.ld(&self.bufs.level, i);
        if self.st.level.borrow()[i] == self.st.cur.get() {
            t.ld(&self.bufs.csr.row_offsets, i);
            t.ld(&self.bufs.csr.row_offsets, i + 1);
        }
    }
    fn outer_begin(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.ld(&self.bufs.level, i);
        if self.st.level.borrow()[i] == self.st.cur.get() {
            t.ld(&self.bufs.sigma, i);
            t.ld(&self.bufs.csr.row_offsets, i);
            t.ld(&self.bufs.csr.row_offsets, i + 1);
        }
    }
    fn body(&self, t: &mut ThreadCtx<'_, '_>, i: usize, j: usize) {
        let e = self.g.row_start(i) + j;
        let w = self.g.col_indices_raw()[e] as usize;
        let cur = self.st.cur.get();
        t.ld(&self.bufs.csr.col_indices, e);
        t.ld(&self.bufs.level, w);
        t.compute(1);
        let mut level = self.st.level.borrow_mut();
        if level[w] == UNSEEN {
            level[w] = cur + 1;
            self.st.frontier_grew.set(true);
            t.atomic(&self.bufs.level, w); // discovery CAS
        }
        if level[w] == cur + 1 {
            let add = self.st.sigma.borrow()[i];
            self.st.sigma.borrow_mut()[w] += add;
            t.atomic(&self.bufs.sigma, w);
        }
    }
}

/// Backward phase: nodes on level `cur` pull dependency from their
/// successors on level `cur + 1` (a per-node reduction).
struct BackwardLoop {
    g: Csr,
    st: Arc<BcState>,
    bufs: Arc<BcBufs>,
}

impl IrregularLoop for BackwardLoop {
    fn name(&self) -> &str {
        "bc-backward"
    }
    fn outer_len(&self) -> usize {
        self.g.num_nodes()
    }
    fn inner_len(&self, i: usize) -> usize {
        if self.st.level.borrow()[i] == self.st.cur.get() {
            self.g.degree(i)
        } else {
            0
        }
    }
    fn inner_len_cost(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.ld(&self.bufs.level, i);
        if self.st.level.borrow()[i] == self.st.cur.get() {
            t.ld(&self.bufs.csr.row_offsets, i);
            t.ld(&self.bufs.csr.row_offsets, i + 1);
        }
    }
    fn outer_begin(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.ld(&self.bufs.level, i);
        if self.st.level.borrow()[i] == self.st.cur.get() {
            t.ld(&self.bufs.sigma, i);
            t.ld(&self.bufs.csr.row_offsets, i);
            t.ld(&self.bufs.csr.row_offsets, i + 1);
        }
    }
    fn body(&self, t: &mut ThreadCtx<'_, '_>, i: usize, j: usize) {
        let e = self.g.row_start(i) + j;
        let w = self.g.col_indices_raw()[e] as usize;
        t.ld(&self.bufs.csr.col_indices, e);
        t.ld(&self.bufs.level, w);
        t.compute(1);
        if self.st.level.borrow()[w] == self.st.cur.get() + 1 {
            t.ld(&self.bufs.sigma, w);
            t.ld(&self.bufs.delta, w);
            t.compute(3);
            let sigma = self.st.sigma.borrow();
            let contrib = sigma[i] / sigma[w] * (1.0 + self.st.delta.borrow()[w]);
            self.st.delta.borrow_mut()[i] += contrib;
        }
    }
    fn outer_end(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        if self.st.level.borrow()[i] == self.st.cur.get() && i != self.st.src.get() {
            t.st(&self.bufs.delta, i);
            t.ld(&self.bufs.bc, i);
            t.compute(1);
            t.st(&self.bufs.bc, i);
            let d = self.st.delta.borrow()[i];
            self.st.bc.borrow_mut()[i] += d;
        }
    }
    fn has_reduction(&self) -> bool {
        true
    }
    fn combine_atomic(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.atomic(&self.bufs.delta, i);
    }
}

/// Run BC from the given `sources` under `template`.
pub fn bc_gpu(
    gpu: &mut Gpu,
    g: &Csr,
    sources: &[usize],
    template: LoopTemplate,
    params: &LoopParams,
) -> BcResult {
    let n = g.num_nodes();
    let bufs = Arc::new(BcBufs {
        csr: CsrBufs::alloc(gpu, g),
        level: gpu.alloc::<i32>(n.max(1)),
        sigma: gpu.alloc::<f32>(n.max(1)),
        delta: gpu.alloc::<f32>(n.max(1)),
        bc: gpu.alloc::<f32>(n.max(1)),
    });
    let st = Arc::new(BcState {
        level: SyncCell::new(vec![UNSEEN; n]),
        sigma: SyncCell::new(vec![0.0; n]),
        delta: SyncCell::new(vec![0.0; n]),
        bc: SyncCell::new(vec![0.0; n]),
        cur: SyncCell::new(0),
        frontier_grew: SyncCell::new(false),
        src: SyncCell::new(0),
    });
    let fwd = Arc::new(ForwardLoop {
        g: g.clone(),
        st: Arc::clone(&st),
        bufs: Arc::clone(&bufs),
    });
    let bwd = Arc::new(BackwardLoop {
        g: g.clone(),
        st: Arc::clone(&st),
        bufs: Arc::clone(&bufs),
    });

    let mut acc = ReportAcc::default();
    for &s in sources {
        assert!(s < n, "source {s} out of range");
        st.level.borrow_mut().iter_mut().for_each(|l| *l = UNSEEN);
        st.sigma.borrow_mut().iter_mut().for_each(|x| *x = 0.0);
        st.delta.borrow_mut().iter_mut().for_each(|x| *x = 0.0);
        st.level.borrow_mut()[s] = 0;
        st.sigma.borrow_mut()[s] = 1.0;
        st.src.set(s);

        // Forward BFS, level by level.
        let mut depth = 0i32;
        loop {
            st.cur.set(depth);
            st.frontier_grew.set(false);
            acc.push(&run_loop(gpu, fwd.clone(), template, params));
            if !st.frontier_grew.get() {
                break;
            }
            depth += 1;
        }
        // Backward dependency accumulation from the deepest level.
        for lvl in (0..depth).rev() {
            st.cur.set(lvl);
            acc.push(&run_loop(gpu, bwd.clone(), template, params));
        }
    }
    let bc = st.bc.borrow().clone();
    BcResult {
        bc,
        report: acc.finish(),
    }
}

/// Deterministic source sample: `k` nodes with non-zero out-degree, evenly
/// strided through the id space.
pub fn sample_sources(g: &Csr, k: usize) -> Vec<usize> {
    let n = g.num_nodes();
    let mut sources = Vec::with_capacity(k);
    if n == 0 {
        return sources;
    }
    let mut v = 0usize;
    let stride = (n / k.max(1)).max(1);
    while sources.len() < k && v < n {
        if g.degree(v) > 0 {
            sources.push(v);
        }
        v += stride;
    }
    sources
}

/// Serial CPU Brandes BC (restricted to the same `sources`) with operation
/// counting.
pub fn bc_cpu(g: &Csr, sources: &[usize]) -> (Vec<f64>, CpuCounter) {
    let n = g.num_nodes();
    let mut counter = CpuCounter::default();
    let mut bc = vec![0.0f64; n];
    for &s in sources {
        let mut level = vec![UNSEEN; n];
        let mut sigma = vec![0.0f64; n];
        let mut delta = vec![0.0f64; n];
        let mut order: Vec<u32> = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::new();
        level[s] = 0;
        sigma[s] = 1.0;
        queue.push_back(s as u32);
        counter.store(3);
        while let Some(v) = queue.pop_front() {
            counter.load(1);
            order.push(v);
            let v = v as usize;
            for &w in g.neighbors(v) {
                let w = w as usize;
                counter.load(2);
                counter.branch(2);
                if level[w] == UNSEEN {
                    level[w] = level[v] + 1;
                    counter.store(1);
                    queue.push_back(w as u32);
                }
                if level[w] == level[v] + 1 {
                    sigma[w] += sigma[v];
                    counter.load(1);
                    counter.compute(1);
                    counter.store(1);
                }
            }
        }
        for &v in order.iter().rev() {
            let v = v as usize;
            for &w in g.neighbors(v) {
                let w = w as usize;
                counter.load(2);
                counter.branch(1);
                if level[w] == level[v] + 1 {
                    delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
                    counter.load(3);
                    counter.compute(3);
                    counter.store(1);
                }
            }
            if v != s {
                bc[v] += delta[v];
                counter.compute(1);
                counter.store(1);
            }
        }
    }
    (bc, counter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use npar_graph::uniform_random;

    fn agree(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-6)
    }

    #[test]
    fn gpu_matches_cpu_for_every_template() {
        let g = uniform_random(120, 1, 8, 17);
        let sources = sample_sources(&g, 4);
        let (cpu, _) = bc_cpu(&g, &sources);
        for template in LoopTemplate::ALL {
            let mut gpu = Gpu::k20();
            let r = bc_gpu(&mut gpu, &g, &sources, template, &LoopParams::default());
            assert!(agree(&r.bc, &cpu), "{template} BC diverged");
        }
    }

    #[test]
    fn path_graph_bc_is_known() {
        // 0 -> 1 -> 2 -> 3: node 1 lies on paths 0->2, 0->3; node 2 on
        // 0->3, 1->3.
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let (bc, _) = bc_cpu(&g, &[0, 1, 2, 3]);
        assert_eq!(bc, vec![0.0, 2.0, 2.0, 0.0]);
    }

    #[test]
    fn sample_sources_respects_degree() {
        let g = Csr::from_edges(10, &[(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)]);
        let s = sample_sources(&g, 3);
        assert!(!s.is_empty());
        assert!(s.iter().all(|&v| g.degree(v) > 0));
    }
}
