//! PageRank, after the GPU implementation of Duong et al. the paper
//! references: pull-style iteration — each node gathers the ranks of its
//! in-neighbors (an irregular nested loop over the transpose graph).

use npar_sim::SyncCell;
use std::sync::Arc;

use npar_core::{run_loop, IrregularLoop, LoopParams, LoopTemplate};
use npar_graph::Csr;
use npar_sim::{CpuCounter, GBuf, Gpu, Report, ThreadCtx};

use crate::common::{CsrBufs, ReportAcc};

/// Damping factor used throughout (the standard 0.85).
pub const DAMPING: f64 = 0.85;

/// GPU PageRank result.
#[derive(Debug)]
pub struct PageRankResult {
    /// Final ranks (sums to ~1).
    pub ranks: Vec<f64>,
    /// Profiled execution report across all iterations.
    pub report: Report,
}

struct PrLoop {
    /// Transpose graph: outer loop over nodes, inner loop over in-edges.
    rev: Csr,
    /// Out-degrees in the original orientation.
    outdeg: Vec<u32>,
    rank: SyncCell<Vec<f64>>,
    next: SyncCell<Vec<f64>>,
    bufs: CsrBufs,
    rank_buf: GBuf<f32>,
    next_buf: GBuf<f32>,
    outdeg_buf: GBuf<u32>,
}

impl IrregularLoop for PrLoop {
    fn name(&self) -> &str {
        "pagerank"
    }
    fn outer_len(&self) -> usize {
        self.rev.num_nodes()
    }
    fn inner_len(&self, i: usize) -> usize {
        self.rev.degree(i)
    }
    fn inner_len_cost(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.ld(&self.bufs.row_offsets, i);
        t.ld(&self.bufs.row_offsets, i + 1);
    }
    fn outer_begin(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.ld(&self.bufs.row_offsets, i);
        t.ld(&self.bufs.row_offsets, i + 1);
    }
    fn body(&self, t: &mut ThreadCtx<'_, '_>, i: usize, j: usize) {
        let e = self.rev.row_start(i) + j;
        let src = self.rev.col_indices_raw()[e] as usize;
        t.ld(&self.bufs.col_indices, e);
        t.ld(&self.rank_buf, src);
        t.ld(&self.outdeg_buf, src);
        t.compute(2);
        let share = self.rank.borrow()[src] / f64::from(self.outdeg[src].max(1));
        self.next.borrow_mut()[i] += share;
    }
    fn outer_end(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.compute(2);
        t.st(&self.next_buf, i);
        let n = self.rev.num_nodes() as f64;
        let mut next = self.next.borrow_mut();
        next[i] = (1.0 - DAMPING) / n + DAMPING * next[i];
    }
    fn has_reduction(&self) -> bool {
        true
    }
    fn combine_atomic(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.atomic(&self.next_buf, i);
    }
}

/// Run `iterations` of pull PageRank on the simulated GPU under `template`.
pub fn pagerank_gpu(
    gpu: &mut Gpu,
    g: &Csr,
    iterations: u32,
    template: LoopTemplate,
    params: &LoopParams,
) -> PageRankResult {
    let n = g.num_nodes();
    let rev = g.reverse();
    let outdeg: Vec<u32> = (0..n).map(|v| g.degree(v) as u32).collect();
    let bufs = CsrBufs::alloc(gpu, &rev);
    let rank_buf = gpu.alloc::<f32>(n.max(1));
    let next_buf = gpu.alloc::<f32>(n.max(1));
    let outdeg_buf = gpu.alloc::<u32>(n.max(1));
    let app = Arc::new(PrLoop {
        rev,
        outdeg,
        rank: SyncCell::new(vec![1.0 / n.max(1) as f64; n]),
        next: SyncCell::new(vec![0.0; n]),
        bufs,
        rank_buf,
        next_buf,
        outdeg_buf,
    });

    let mut acc = ReportAcc::default();
    for _ in 0..iterations {
        app.next.borrow_mut().iter_mut().for_each(|x| *x = 0.0);
        acc.push(&run_loop(gpu, app.clone(), template, params));
        app.rank.swap(&app.next);
    }
    let ranks = app.rank.borrow().clone();
    PageRankResult {
        ranks,
        report: acc.finish(),
    }
}

/// Serial CPU PageRank with operation counting.
pub fn pagerank_cpu(g: &Csr, iterations: u32) -> (Vec<f64>, CpuCounter) {
    let n = g.num_nodes();
    let rev = g.reverse();
    let outdeg: Vec<u32> = (0..n).map(|v| g.degree(v) as u32).collect();
    let mut counter = CpuCounter::default();
    let mut rank = vec![1.0 / n.max(1) as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        for (i, slot) in next.iter_mut().enumerate() {
            counter.load(2);
            let mut acc = 0.0;
            for &src in rev.neighbors(i) {
                let src = src as usize;
                acc += rank[src] / f64::from(outdeg[src].max(1));
                counter.load(3);
                counter.compute(2);
                counter.branch(1);
            }
            *slot = (1.0 - DAMPING) / n as f64 + DAMPING * acc;
            counter.compute(2);
            counter.store(1);
        }
        std::mem::swap(&mut rank, &mut next);
    }
    (rank, counter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use npar_graph::uniform_random;

    fn agree(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
    }

    #[test]
    fn gpu_matches_cpu_for_every_template() {
        let g = uniform_random(200, 1, 20, 31);
        let (cpu, _) = pagerank_cpu(&g, 3);
        for template in LoopTemplate::ALL {
            let mut gpu = Gpu::k20();
            let r = pagerank_gpu(&mut gpu, &g, 3, template, &LoopParams::default());
            assert!(agree(&r.ranks, &cpu), "{template} ranks diverged");
        }
    }

    #[test]
    fn ranks_sum_to_one_without_dangling_nodes() {
        let g = uniform_random(100, 1, 6, 8);
        let (r, _) = pagerank_cpu(&g, 10);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
    }

    #[test]
    fn hub_gets_more_rank() {
        // Everyone points at node 0; node 0 points at node 1.
        let g = Csr::from_edges(4, &[(1, 0), (2, 0), (3, 0), (0, 1)]);
        let (r, _) = pagerank_cpu(&g, 20);
        assert!(r[0] > r[2]);
        assert!(r[1] > r[2]);
    }
}
