//! Single-Source Shortest Path, after the thread-mapped implementation of
//! Harish & Narayanan [HiPC'07] the paper uses as its baseline: an
//! iterative relaxation with a frontier mask, a relax kernel (the irregular
//! nested loop) and an update kernel, repeated until no distance improves.

use npar_sim::SyncCell;
use std::sync::Arc;

use npar_core::{run_loop, IrregularLoop, LoopParams, LoopTemplate};
use npar_graph::Csr;
use npar_sim::{CpuCounter, GBuf, Gpu, LaunchConfig, Report, ThreadCtx, ThreadKernel};

use crate::common::{CsrBufs, ReportAcc};

/// Distance value representing "unreached".
pub const INF: f32 = f32::INFINITY;

/// GPU SSSP result.
#[derive(Debug)]
pub struct SsspResult {
    /// Final distances from the source.
    pub dist: Vec<f32>,
    /// Relaxation rounds executed.
    pub iterations: u32,
    /// Profiled execution report (all rounds merged).
    pub report: Report,
}

struct SsspState {
    dist: SyncCell<Vec<f32>>,
    up: SyncCell<Vec<f32>>,
    mask: SyncCell<Vec<bool>>,
    changed: SyncCell<bool>,
}

struct RelaxLoop {
    g: Csr,
    st: Arc<SsspState>,
    bufs: CsrBufs,
    dist_buf: GBuf<f32>,
    up_buf: GBuf<f32>,
    mask_buf: GBuf<u32>,
}

impl IrregularLoop for RelaxLoop {
    fn name(&self) -> &str {
        "sssp-relax"
    }
    fn outer_len(&self) -> usize {
        self.g.num_nodes()
    }
    fn inner_len(&self, i: usize) -> usize {
        if self.st.mask.borrow()[i] {
            self.g.degree(i)
        } else {
            0
        }
    }
    fn inner_len_cost(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.ld(&self.mask_buf, i);
        if self.st.mask.borrow()[i] {
            t.ld(&self.bufs.row_offsets, i);
            t.ld(&self.bufs.row_offsets, i + 1);
        }
    }
    fn outer_begin(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.ld(&self.mask_buf, i);
        if self.st.mask.borrow()[i] {
            t.ld(&self.dist_buf, i);
            t.ld(&self.bufs.row_offsets, i);
            t.ld(&self.bufs.row_offsets, i + 1);
        }
    }
    fn body(&self, t: &mut ThreadCtx<'_, '_>, i: usize, j: usize) {
        let e = self.g.row_start(i) + j;
        let nbr = self.g.col_indices_raw()[e] as usize;
        let w = self.g.weights_raw().map_or(1.0, |ws| ws[e]);
        t.ld(&self.bufs.col_indices, e);
        t.ld(&self.bufs.weights, e);
        t.ld(&self.up_buf, nbr);
        t.compute(2);
        let cand = self.st.dist.borrow()[i] + w;
        let mut up = self.st.up.borrow_mut();
        if cand < up[nbr] {
            up[nbr] = cand;
            // Harish-Narayanan relax the update array with an atomicMin:
            // concurrent relaxations of the same neighbor from different
            // blocks must not lose improvements (a plain store here is the
            // write/write race npar-check flags).
            t.atomic(&self.up_buf, nbr);
        }
    }
}

/// The per-round update kernel: promote improved tentative distances and
/// rebuild the frontier mask (regular, fully coalesced — launched outside
/// the templates like in the reference implementation).
struct UpdateKernel {
    st: Arc<SsspState>,
    n: usize,
    dist_buf: GBuf<f32>,
    up_buf: GBuf<f32>,
    mask_buf: GBuf<u32>,
}

impl ThreadKernel for UpdateKernel {
    fn name(&self) -> &str {
        "sssp-update"
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let stride = t.grid_threads();
        let mut i = t.global_id();
        while i < self.n {
            t.ld(&self.dist_buf, i);
            t.ld(&self.up_buf, i);
            t.compute(1);
            let up = self.st.up.borrow()[i];
            let improved = up < self.st.dist.borrow()[i];
            if improved {
                self.st.dist.borrow_mut()[i] = up;
                self.st.changed.set(true);
                t.st(&self.dist_buf, i);
            }
            self.st.mask.borrow_mut()[i] = improved;
            t.st(&self.mask_buf, i);
            i += stride;
        }
    }
}

/// Run SSSP from `src` under `template`. Unweighted graphs use unit edge
/// weights.
pub fn sssp_gpu(
    gpu: &mut Gpu,
    g: &Csr,
    src: usize,
    template: LoopTemplate,
    params: &LoopParams,
) -> SsspResult {
    let n = g.num_nodes();
    assert!(src < n, "source out of range");
    let bufs = CsrBufs::alloc(gpu, g);
    let dist_buf = gpu.alloc::<f32>(n);
    let up_buf = gpu.alloc::<f32>(n);
    let mask_buf = gpu.alloc::<u32>(n);
    let st = Arc::new(SsspState {
        dist: SyncCell::new(vec![INF; n]),
        up: SyncCell::new(vec![INF; n]),
        mask: SyncCell::new(vec![false; n]),
        changed: SyncCell::new(false),
    });
    st.dist.borrow_mut()[src] = 0.0;
    st.up.borrow_mut()[src] = 0.0;
    st.mask.borrow_mut()[src] = true;

    let relax = Arc::new(RelaxLoop {
        g: g.clone(),
        st: Arc::clone(&st),
        bufs,
        dist_buf,
        up_buf,
        mask_buf,
    });
    let update = Arc::new(UpdateKernel {
        st: Arc::clone(&st),
        n,
        dist_buf,
        up_buf,
        mask_buf,
    });

    let mut acc = ReportAcc::default();
    let mut iterations = 0u32;
    // Each round relaxes the frontier then rebuilds it; the frontier mask
    // can only stay non-empty while distances keep improving, and each
    // improvement lowers a distance along a simple path, so n rounds bound
    // termination.
    for _ in 0..n.max(1) {
        iterations += 1;
        acc.push(&run_loop(gpu, relax.clone(), template, params));
        st.changed.set(false);
        gpu.launch(
            update.clone(),
            LaunchConfig::cover(n, params.thread_block, params.max_grid),
        )
        .expect("sssp update launch");
        acc.push(&gpu.synchronize());
        if !st.changed.get() {
            break;
        }
    }
    let dist = st.dist.borrow().clone();
    SsspResult {
        dist,
        iterations,
        report: acc.finish(),
    }
}

/// Serial CPU SSSP (Dijkstra with a binary heap) with operation counting.
pub fn sssp_cpu(g: &Csr, src: usize) -> (Vec<f32>, CpuCounter) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = g.num_nodes();
    let mut counter = CpuCounter::default();
    let mut dist = vec![INF; n];
    dist[src] = 0.0;
    let mut heap: BinaryHeap<Reverse<(ordered::F32, u32)>> = BinaryHeap::new();
    heap.push(Reverse((ordered::F32(0.0), src as u32)));
    counter.store(1);
    while let Some(Reverse((ordered::F32(d), v))) = heap.pop() {
        counter.load(2);
        counter.branch(1);
        counter.compute((n as f64).log2().max(1.0) as u64); // heap sift
        let v = v as usize;
        if d > dist[v] {
            continue;
        }
        let start = g.row_start(v);
        counter.load(2);
        for (j, &w) in g.neighbors(v).iter().enumerate() {
            let wt = g.weights_raw().map_or(1.0, |ws| ws[start + j]);
            counter.load(3);
            counter.compute(1);
            counter.branch(1);
            let cand = d + wt;
            let w = w as usize;
            if cand < dist[w] {
                dist[w] = cand;
                counter.store(1);
                counter.compute((n as f64).log2().max(1.0) as u64);
                heap.push(Reverse((ordered::F32(cand), w as u32)));
            }
        }
    }
    (dist, counter)
}

/// Minimal total-ordered f32 wrapper for the Dijkstra heap (distances are
/// never NaN).
mod ordered {
    #[derive(Clone, Copy, PartialEq)]
    pub struct F32(pub f32);
    impl Eq for F32 {}
    impl PartialOrd for F32 {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for F32 {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npar_graph::{uniform_random, with_random_weights};

    fn agree(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| (x.is_infinite() && y.is_infinite()) || (x - y).abs() < 1e-3)
    }

    #[test]
    fn gpu_matches_dijkstra_for_every_template() {
        let g = with_random_weights(&uniform_random(250, 1, 12, 21), 9, 4);
        let (cpu, _) = sssp_cpu(&g, 0);
        for template in LoopTemplate::ALL {
            let mut gpu = Gpu::k20();
            let r = sssp_gpu(&mut gpu, &g, 0, template, &LoopParams::default());
            assert!(agree(&r.dist, &cpu), "{template} distances diverged");
            assert!(r.iterations >= 2);
        }
    }

    #[test]
    fn unreachable_nodes_stay_infinite() {
        // Node 2 has no in-edges.
        let g = Csr::from_weighted_edges(3, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let mut gpu = Gpu::k20();
        let r = sssp_gpu(
            &mut gpu,
            &g,
            0,
            LoopTemplate::ThreadMapped,
            &LoopParams::default(),
        );
        assert_eq!(r.dist[0], 0.0);
        assert_eq!(r.dist[1], 1.0);
        assert!(r.dist[2].is_infinite());
    }

    #[test]
    fn unweighted_graph_gives_hop_counts() {
        let g = Csr::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let (d, _) = sssp_cpu(&g, 0);
        assert_eq!(d, vec![0.0, 1.0, 2.0, 3.0]);
        let mut gpu = Gpu::k20();
        let r = sssp_gpu(
            &mut gpu,
            &g,
            0,
            LoopTemplate::DbufShared,
            &LoopParams::default(),
        );
        assert!(agree(&r.dist, &d));
    }
}
