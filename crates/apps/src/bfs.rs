//! Breadth-First Search: the paper's recursive case study on graphs
//! (Section III.C, Figure 9).
//!
//! Three GPU variants:
//! * **flat** — the Harish & Narayanan level-synchronous traversal, a
//!   thread-mapped irregular loop per level, work-efficient, atomic-free;
//! * **rec-naive** — unordered recursive traversal: visiting a node spawns
//!   a single-block child grid over its neighborhood; a node is re-expanded
//!   whenever its level decreases (not work-efficient, needs atomics);
//! * **rec-hier** — block per neighbor, threads over the two-hop
//!   neighborhood, one nested launch per improved neighbor.
//!
//! Serial CPU references: the classic queue BFS and the recursive
//! depth-first-ordered variant the paper normalizes Figure 9 against.

use npar_sim::SyncCell;
use std::sync::Arc;

use npar_core::{run_loop, IrregularLoop, LoopParams, LoopTemplate};
use npar_graph::Csr;
use npar_sim::{
    BlockCtx, CpuCounter, GBuf, Gpu, Kernel, KernelRef, LaunchConfig, Report, Stream, ThreadCtx,
};

use crate::common::{CsrBufs, ReportAcc};

/// Level marker for unreached nodes.
pub const UNREACHED: u32 = u32::MAX;

/// GPU BFS result.
#[derive(Debug)]
pub struct BfsResult {
    /// BFS level per node (`UNREACHED` if not reachable).
    pub level: Vec<u32>,
    /// Profiled execution report.
    pub report: Report,
}

// ---------------------------------------------------------------------------
// Flat (level-synchronous) variant.
// ---------------------------------------------------------------------------

struct FlatBfsState {
    level: SyncCell<Vec<u32>>,
    cur: npar_sim::SyncCell<u32>,
    grew: npar_sim::SyncCell<bool>,
}

struct FlatBfsLoop {
    g: Csr,
    st: Arc<FlatBfsState>,
    bufs: CsrBufs,
    level_buf: GBuf<u32>,
}

impl IrregularLoop for FlatBfsLoop {
    fn name(&self) -> &str {
        "bfs-flat"
    }
    fn outer_len(&self) -> usize {
        self.g.num_nodes()
    }
    fn inner_len(&self, i: usize) -> usize {
        if self.st.level.borrow()[i] == self.st.cur.get() {
            self.g.degree(i)
        } else {
            0
        }
    }
    fn inner_len_cost(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.ld(&self.level_buf, i);
        if self.st.level.borrow()[i] == self.st.cur.get() {
            t.ld(&self.bufs.row_offsets, i);
            t.ld(&self.bufs.row_offsets, i + 1);
        }
    }
    fn outer_begin(&self, t: &mut ThreadCtx<'_, '_>, i: usize) {
        t.ld(&self.level_buf, i);
        if self.st.level.borrow()[i] == self.st.cur.get() {
            t.ld(&self.bufs.row_offsets, i);
            t.ld(&self.bufs.row_offsets, i + 1);
        }
    }
    fn body(&self, t: &mut ThreadCtx<'_, '_>, i: usize, j: usize) {
        let e = self.g.row_start(i) + j;
        let w = self.g.col_indices_raw()[e] as usize;
        t.ld(&self.bufs.col_indices, e);
        t.ld(&self.level_buf, w);
        t.compute(1);
        let mut level = self.st.level.borrow_mut();
        let cur = self.st.cur.get();
        if level[w] == UNREACHED {
            // Discovery is an atomicCAS: every writer stores cur + 1, but
            // concurrent discoveries of `w` from different blocks would be
            // a write/write race as plain stores (npar-check flags them).
            level[w] = cur + 1;
            self.st.grew.set(true);
            t.atomic(&self.level_buf, w);
        }
    }
}

/// Level-synchronous BFS under any loop template (the paper's flat variant
/// uses [`LoopTemplate::ThreadMapped`]).
pub fn bfs_flat_gpu(
    gpu: &mut Gpu,
    g: &Csr,
    src: usize,
    template: LoopTemplate,
    params: &LoopParams,
) -> BfsResult {
    let n = g.num_nodes();
    assert!(src < n);
    let bufs = CsrBufs::alloc(gpu, g);
    let level_buf = gpu.alloc::<u32>(n);
    let st = Arc::new(FlatBfsState {
        level: SyncCell::new(vec![UNREACHED; n]),
        cur: npar_sim::SyncCell::new(0),
        grew: npar_sim::SyncCell::new(false),
    });
    st.level.borrow_mut()[src] = 0;
    let app = Arc::new(FlatBfsLoop {
        g: g.clone(),
        st: Arc::clone(&st),
        bufs,
        level_buf,
    });
    let mut acc = ReportAcc::default();
    let mut lvl = 0;
    loop {
        st.cur.set(lvl);
        st.grew.set(false);
        acc.push(&run_loop(gpu, app.clone(), template, params));
        if !st.grew.get() {
            break;
        }
        lvl += 1;
    }
    let level = st.level.borrow().clone();
    BfsResult {
        level,
        report: acc.finish(),
    }
}

// ---------------------------------------------------------------------------
// Recursive variants (unordered, Hassaan/Burtscher/Pingali taxonomy).
// ---------------------------------------------------------------------------

struct RecBfsShared {
    g: Csr,
    level: SyncCell<Vec<u32>>,
    bufs: CsrBufs,
    level_buf: GBuf<u32>,
    streams: u32,
    max_threads: u32,
}

impl RecBfsShared {
    /// Try to improve `w` to `cand`; true when the level decreased.
    fn relax(&self, w: usize, cand: u32) -> bool {
        let mut level = self.level.borrow_mut();
        if cand < level[w] {
            level[w] = cand;
            true
        } else {
            false
        }
    }
}

/// Naive recursive BFS kernel: one block over `node`'s neighbors; every
/// thread that improves its neighbor launches a child grid for it.
struct RecBfsNaiveKernel {
    sh: Arc<RecBfsShared>,
    node: usize,
    node_level: u32,
}

impl Kernel for RecBfsNaiveKernel {
    fn name(&self) -> &str {
        "bfs-rec-naive"
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let sh = &self.sh;
        let nbrs: Vec<u32> = sh.g.neighbors(self.node).to_vec();
        let start = sh.g.row_start(self.node);
        let bd = blk.block_dim() as usize;
        let cand = self.node_level + 1;
        blk.for_each_thread(|t| {
            let mut idx = t.thread_idx() as usize;
            while idx < nbrs.len() {
                let w = nbrs[idx] as usize;
                t.ld(&sh.bufs.col_indices, start + idx);
                t.ld(&sh.level_buf, w);
                t.compute(1);
                if sh.relax(w, cand) {
                    t.atomic(&sh.level_buf, w);
                    if sh.g.degree(w) > 0 {
                        let child: KernelRef = Arc::new(RecBfsNaiveKernel {
                            sh: Arc::clone(sh),
                            node: w,
                            node_level: cand,
                        });
                        let cfg = LaunchConfig::new(1, block_for(sh.g.degree(w), sh.max_threads));
                        t.launch(&child, cfg, Stream::Slot(idx as u32 % sh.streams));
                    }
                }
                idx += bd;
            }
        });
    }
}

/// Hierarchical recursive BFS kernel: one block per neighbor; the block
/// leader relaxes its neighbor while the threads peek at the two-hop
/// neighborhood; improved neighbors are expanded with one nested launch
/// per block.
struct RecBfsHierKernel {
    sh: Arc<RecBfsShared>,
    node: usize,
    node_level: u32,
}

impl RecBfsHierKernel {
    fn config_for(sh: &RecBfsShared, node: usize) -> LaunchConfig {
        let widest =
            sh.g.neighbors(node)
                .iter()
                .map(|&w| sh.g.degree(w as usize))
                .max()
                .unwrap_or(0);
        LaunchConfig::new(
            sh.g.degree(node).max(1) as u32,
            block_for(widest, sh.max_threads.min(256)),
        )
    }
}

impl Kernel for RecBfsHierKernel {
    fn name(&self) -> &str {
        "bfs-rec-hier"
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let sh = &self.sh;
        let nbrs = sh.g.neighbors(self.node);
        let k = blk.block_idx() as usize;
        if k >= nbrs.len() {
            return;
        }
        let w = nbrs[k] as usize;
        let start = sh.g.row_start(self.node);
        let cand = self.node_level + 1;
        let improved = sh.relax(w, cand);
        blk.leader(|t| {
            t.ld(&sh.bufs.col_indices, start + k);
            t.ld(&sh.level_buf, w);
            t.compute(1);
            if improved {
                t.atomic(&sh.level_buf, w);
            }
        });
        if !improved {
            return;
        }
        // Thread-level peek over the grandchild frontier.
        let w_start = sh.g.row_start(w);
        let w_deg = sh.g.degree(w);
        let bd = blk.block_dim() as usize;
        blk.for_each_thread(|t| {
            let mut idx = t.thread_idx() as usize;
            while idx < w_deg {
                let gc = sh.g.col_indices_raw()[w_start + idx] as usize;
                t.ld(&sh.bufs.col_indices, w_start + idx);
                t.ld(&sh.level_buf, gc);
                idx += bd;
            }
        });
        if w_deg > 0 {
            let child: KernelRef = Arc::new(RecBfsHierKernel {
                sh: Arc::clone(sh),
                node: w,
                node_level: cand,
            });
            let cfg = Self::config_for(sh, w);
            let slot = k as u32 % sh.streams;
            blk.leader(|t| t.launch(&child, cfg, Stream::Slot(slot)));
        }
    }
}

fn block_for(n: usize, max_threads: u32) -> u32 {
    (n.max(1) as u32)
        .div_ceil(32)
        .saturating_mul(32)
        .clamp(32, max_threads)
}

/// Which recursive GPU variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecBfsVariant {
    /// Thread-level nested launches (Figure 3(d) style).
    Naive,
    /// Block-level nested launches (Figure 3(e) style).
    Hier,
}

/// Unordered recursive BFS on the simulated GPU. `streams` is the number
/// of device streams per block (1 = CUDA default; 2 = the paper's "one
/// additional stream per thread-block").
pub fn bfs_recursive_gpu(
    gpu: &mut Gpu,
    g: &Csr,
    src: usize,
    variant: RecBfsVariant,
    streams: u32,
) -> BfsResult {
    let n = g.num_nodes();
    assert!(src < n);
    let bufs = CsrBufs::alloc(gpu, g);
    let level_buf = gpu.alloc::<u32>(n);
    let sh = Arc::new(RecBfsShared {
        g: g.clone(),
        level: SyncCell::new(vec![UNREACHED; n]),
        bufs,
        level_buf,
        streams: streams.max(1),
        max_threads: gpu.device().max_threads_per_block,
    });
    sh.level.borrow_mut()[src] = 0;
    if sh.g.degree(src) > 0 {
        match variant {
            RecBfsVariant::Naive => {
                let k = Arc::new(RecBfsNaiveKernel {
                    sh: Arc::clone(&sh),
                    node: src,
                    node_level: 0,
                });
                let cfg = LaunchConfig::new(1, block_for(g.degree(src), sh.max_threads));
                gpu.launch(k, cfg).expect("rec bfs launch");
            }
            RecBfsVariant::Hier => {
                let cfg = RecBfsHierKernel::config_for(&sh, src);
                let k = Arc::new(RecBfsHierKernel {
                    sh: Arc::clone(&sh),
                    node: src,
                    node_level: 0,
                });
                gpu.launch(k, cfg).expect("rec bfs launch");
            }
        }
    }
    let report = gpu.synchronize();
    let level = sh.level.borrow().clone();
    BfsResult { level, report }
}

// ---------------------------------------------------------------------------
// CPU references.
// ---------------------------------------------------------------------------

/// Serial iterative (queue) BFS with operation counting.
pub fn bfs_cpu_iterative(g: &Csr, src: usize) -> (Vec<u32>, CpuCounter) {
    let n = g.num_nodes();
    let mut counter = CpuCounter::default();
    let mut level = vec![UNREACHED; n];
    level[src] = 0;
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(src as u32);
    counter.store(2);
    while let Some(v) = queue.pop_front() {
        let v = v as usize;
        counter.load(1);
        for &w in g.neighbors(v) {
            let w = w as usize;
            counter.load(2);
            counter.branch(1);
            if level[w] == UNREACHED {
                level[w] = level[v] + 1;
                counter.store(2);
                queue.push_back(w as u32);
            }
        }
    }
    (level, counter)
}

/// Serial recursive BFS with operation counting: the unordered recursive
/// traversal the paper uses as the Figure 9 normalizer. Each call relaxes
/// *all* of the node's improvable neighbors first and then recurses into
/// them (the structure of Figure 3(a) applied to graphs); a node is
/// re-expanded whenever its level has decreased since it was queued, so
/// the traversal is not work-efficient, but the mark-before-recurse order
/// keeps revisits moderate — consistent with the paper's observation that
/// this variant is competitive with the iterative one on the CPU.
pub fn bfs_cpu_recursive(g: &Csr, src: usize) -> (Vec<u32>, CpuCounter) {
    let n = g.num_nodes();
    let mut counter = CpuCounter::default();
    let mut level = vec![UNREACHED; n];
    level[src] = 0;
    counter.store(1);
    // Explicit stack to survive deep recursions; each frame models one
    // recursive call, tagged with the level it was queued at.
    let mut stack = vec![(src as u32, 0u32)];
    while let Some((v, l)) = stack.pop() {
        let v = v as usize;
        counter.call(1);
        counter.load(1);
        counter.branch(1);
        if level[v] < l {
            // The node improved again after this frame was queued; a
            // fresher frame covers it.
            continue;
        }
        let mark = stack.len();
        for &w in g.neighbors(v) {
            let w = w as usize;
            counter.load(2);
            counter.branch(1);
            if l + 1 < level[w] {
                level[w] = l + 1;
                counter.store(1);
                stack.push((w as u32, l + 1));
            }
        }
        // Recursion happens child-by-child in neighbor order; reversing
        // the newly pushed frames makes the explicit stack pop them in the
        // same order the recursive code would descend.
        stack[mark..].reverse();
    }
    (level, counter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use npar_graph::uniform_random;

    #[test]
    fn flat_matches_cpu_for_every_template() {
        let g = uniform_random(200, 1, 10, 23);
        let (cpu, _) = bfs_cpu_iterative(&g, 0);
        for template in LoopTemplate::ALL {
            let mut gpu = Gpu::k20();
            let r = bfs_flat_gpu(&mut gpu, &g, 0, template, &LoopParams::default());
            assert_eq!(r.level, cpu, "{template} BFS levels diverged");
        }
    }

    #[test]
    fn recursive_cpu_matches_iterative_levels() {
        let g = uniform_random(300, 0, 6, 29);
        let (a, _) = bfs_cpu_iterative(&g, 0);
        let (b, rec_counter) = bfs_cpu_recursive(&g, 0);
        assert_eq!(a, b);
        assert!(rec_counter.calls > 0);
    }

    #[test]
    fn recursive_gpu_variants_match_cpu() {
        let g = uniform_random(120, 1, 6, 31);
        let (cpu, _) = bfs_cpu_iterative(&g, 0);
        for variant in [RecBfsVariant::Naive, RecBfsVariant::Hier] {
            for streams in [1, 2] {
                let mut gpu = Gpu::k20();
                let r = bfs_recursive_gpu(&mut gpu, &g, 0, variant, streams);
                assert_eq!(r.level, cpu, "{variant:?}/{streams} levels diverged");
                assert!(r.report.device_launches > 0);
            }
        }
    }

    #[test]
    fn disconnected_nodes_stay_unreached() {
        let g = Csr::from_edges(5, &[(0, 1), (1, 2)]);
        let mut gpu = Gpu::k20();
        let r = bfs_flat_gpu(
            &mut gpu,
            &g,
            0,
            LoopTemplate::ThreadMapped,
            &LoopParams::default(),
        );
        assert_eq!(r.level[..3], [0, 1, 2]);
        assert_eq!(r.level[3], UNREACHED);
        assert_eq!(r.level[4], UNREACHED);
    }

    #[test]
    fn flat_is_work_efficient_recursive_is_not() {
        // On a graph with many cross edges the recursive variant revisits.
        let g = uniform_random(400, 4, 12, 37);
        let (_, it) = bfs_cpu_iterative(&g, 0);
        let (_, rec) = bfs_cpu_recursive(&g, 0);
        assert!(rec.loads >= it.loads);
    }
}
