//! Shared plumbing for the benchmark applications: simulated-address
//! mirrors of CSR arrays and report bookkeeping.

use npar_graph::Csr;
use npar_sim::{GBuf, Gpu, Report};

/// Simulated global-memory addresses of a CSR graph's arrays. The actual
/// data stays in the [`Csr`]; kernels use these handles to record realistic
/// memory traffic (row offsets are read coalesced, adjacency is streamed,
/// per-node arrays are scattered — exactly the access mix the paper
/// profiles).
#[derive(Debug, Clone, Copy)]
pub struct CsrBufs {
    /// `row_offsets` (length `n + 1`).
    pub row_offsets: GBuf<u32>,
    /// `col_indices` (length `m`).
    pub col_indices: GBuf<u32>,
    /// Edge weights (length `m`), allocated even for unweighted graphs so
    /// weighted and unweighted kernels share code paths.
    pub weights: GBuf<f32>,
}

impl CsrBufs {
    /// Allocate simulated addresses mirroring `g`.
    pub fn alloc(gpu: &mut Gpu, g: &Csr) -> CsrBufs {
        CsrBufs {
            row_offsets: gpu.alloc::<u32>(g.num_nodes() + 1),
            col_indices: gpu.alloc::<u32>(g.num_edges().max(1)),
            weights: gpu.alloc::<f32>(g.num_edges().max(1)),
        }
    }
}

/// Accumulate per-iteration reports of an iterative algorithm into one.
#[derive(Debug, Default)]
pub struct ReportAcc {
    merged: Report,
}

impl ReportAcc {
    /// Fold one batch report in.
    pub fn push(&mut self, r: &Report) {
        self.merged.merge(r);
    }

    /// The combined report.
    pub fn finish(self) -> Report {
        self.merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npar_graph::uniform_random;

    #[test]
    fn csr_bufs_sizes_match_graph() {
        let g = uniform_random(100, 1, 5, 1);
        let mut gpu = Gpu::k20();
        let bufs = CsrBufs::alloc(&mut gpu, &g);
        assert_eq!(bufs.row_offsets.len(), 101);
        assert_eq!(bufs.col_indices.len(), g.num_edges());
        assert_eq!(bufs.weights.len(), g.num_edges());
    }

    #[test]
    fn report_acc_merges() {
        let mut acc = ReportAcc::default();
        let r = Report {
            cycles: 10.0,
            host_launches: 1,
            ..Default::default()
        };
        acc.push(&r);
        acc.push(&r);
        let total = acc.finish();
        assert_eq!(total.cycles, 20.0);
        assert_eq!(total.host_launches, 2);
    }
}
