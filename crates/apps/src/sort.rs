//! The sorting case study of the paper's Figure 2: the CUDA SDK's two
//! dynamic-parallelism QuickSorts against a flat (non-recursive) MergeSort.
//!
//! * **Simple QuickSort** — each segment is a `<<<1,1>>>` kernel: a single
//!   thread partitions serially, launches two children into separate
//!   streams, and falls back to selection sort at the depth/size limit.
//! * **Advanced QuickSort** — a 128-thread block partitions each segment in
//!   parallel; the fallback is a block-wide bitonic sort.
//! * **MergeSort (flat)** — log₂ n host-launched passes; each pass merges
//!   run pairs with one thread per element (binary-search rank).

use npar_sim::SyncCell;
use std::sync::Arc;

use npar_sim::{
    BlockCtx, GBuf, Gpu, Kernel, KernelRef, LaunchConfig, Report, Stream, ThreadCtx, ThreadKernel,
};

/// Which sort implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortAlgo {
    /// CUDA-SDK-style simple quicksort (dynamic parallelism, serial
    /// partition, selection-sort fallback).
    QuickSimple,
    /// CUDA-SDK-style advanced quicksort (dynamic parallelism, parallel
    /// partition, bitonic fallback).
    QuickAdvanced,
    /// Flat multi-pass mergesort (no dynamic parallelism).
    MergeFlat,
}

impl SortAlgo {
    /// Display label matching the paper's Figure 2 legend.
    pub fn label(&self) -> &'static str {
        match self {
            SortAlgo::QuickSimple => "simple-quicksort",
            SortAlgo::QuickAdvanced => "advanced-quicksort",
            SortAlgo::MergeFlat => "mergesort",
        }
    }
}

/// Tunables for the recursive sorts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortParams {
    /// Maximum dynamic-parallelism depth before falling back to the flat
    /// sort (the knob the paper discusses trading launch overhead against
    /// load balancing).
    pub max_depth: u32,
    /// Segment size below which simple quicksort selection-sorts.
    pub simple_threshold: usize,
    /// Segment size below which advanced quicksort bitonic-sorts.
    pub advanced_threshold: usize,
}

impl Default for SortParams {
    fn default() -> Self {
        SortParams {
            max_depth: 16,
            simple_threshold: 32,
            advanced_threshold: 1024,
        }
    }
}

/// GPU sort result.
#[derive(Debug)]
pub struct SortResult {
    /// The sorted data.
    pub data: Vec<u32>,
    /// Profiled execution report.
    pub report: Report,
}

struct SortState {
    data: SyncCell<Vec<u32>>,
    buf: GBuf<u32>,
    scratch: GBuf<u32>,
}

/// Sort `input` on the simulated GPU with `algo`.
pub fn sort_gpu(gpu: &mut Gpu, input: &[u32], algo: SortAlgo, params: &SortParams) -> SortResult {
    let n = input.len();
    let st = Arc::new(SortState {
        data: SyncCell::new(input.to_vec()),
        buf: gpu.alloc::<u32>(n.max(1)),
        scratch: gpu.alloc::<u32>(n.max(1)),
    });
    match algo {
        SortAlgo::MergeFlat => merge_flat(gpu, &st),
        SortAlgo::QuickSimple => {
            if n > 1 {
                let k = Arc::new(SimpleQsortKernel {
                    st: Arc::clone(&st),
                    lo: 0,
                    hi: n,
                    depth: 0,
                    params: *params,
                });
                gpu.launch(k, LaunchConfig::new(1, 1))
                    .expect("qsort launch");
            }
        }
        SortAlgo::QuickAdvanced => {
            if n > 1 {
                let k = Arc::new(AdvancedQsortKernel {
                    st: Arc::clone(&st),
                    lo: 0,
                    hi: n,
                    depth: 0,
                    params: *params,
                });
                let shared = advanced_shared(n, 0, params);
                gpu.launch(k, LaunchConfig::with_shared(1, 128, shared))
                    .expect("qsort launch");
            }
        }
    }
    let report = gpu.synchronize();
    let data = st.data.borrow().clone();
    SortResult { data, report }
}

// ---------------------------------------------------------------------------
// Flat mergesort.
// ---------------------------------------------------------------------------

struct MergePassKernel {
    st: Arc<SortState>,
    /// Snapshot of the pass input (so every thread ranks against the same
    /// data while the output vector is rebuilt).
    src: Vec<u32>,
    width: usize,
}

impl ThreadKernel for MergePassKernel {
    fn name(&self) -> &str {
        "mergesort-pass"
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let n = self.src.len();
        let stride = t.grid_threads();
        let mut k = t.global_id();
        while k < n {
            let width = self.width;
            let pair_base = k / (2 * width) * (2 * width);
            let in_first = k < pair_base + width;
            let (sib_lo, sib_hi) = if in_first {
                ((pair_base + width).min(n), (pair_base + 2 * width).min(n))
            } else {
                (pair_base, pair_base + width)
            };
            let x = self.src[k];
            t.ld(&self.st.buf, k);
            // Binary-search rank in the sibling run (stable merge).
            let sib = &self.src[sib_lo..sib_hi];
            let rank = if in_first {
                sib.partition_point(|&y| y < x)
            } else {
                sib.partition_point(|&y| y <= x)
            };
            let steps = (sib.len().max(1) as f64).log2().ceil() as u32 + 1;
            for probe in 0..steps {
                let mid =
                    sib_lo + (sib.len() >> 1).min(sib.len().saturating_sub(1)) + probe as usize % 2;
                t.ld(&self.st.buf, mid.min(n - 1));
            }
            t.compute(steps);
            let offset_in_run = if in_first {
                k - pair_base
            } else {
                k - (pair_base + width)
            };
            let dst = pair_base + offset_in_run + rank;
            self.st.data.borrow_mut()[dst] = x;
            t.st(&self.st.scratch, dst);
            k += stride;
        }
    }
}

fn merge_flat(gpu: &mut Gpu, st: &Arc<SortState>) {
    let n = st.data.borrow().len();
    if n <= 1 {
        return;
    }
    let mut width = 1usize;
    while width < n {
        let src = st.data.borrow().clone();
        let k = Arc::new(MergePassKernel {
            st: Arc::clone(st),
            src,
            width,
        });
        gpu.launch(k, LaunchConfig::cover(n, 256, 1 << 20))
            .expect("merge pass launch");
        width *= 2;
    }
}

// ---------------------------------------------------------------------------
// Simple quicksort (dynamic parallelism, <<<1,1>>> kernels).
// ---------------------------------------------------------------------------

struct SimpleQsortKernel {
    st: Arc<SortState>,
    lo: usize,
    hi: usize,
    depth: u32,
    params: SortParams,
}

impl ThreadKernel for SimpleQsortKernel {
    fn name(&self) -> &str {
        "simple-quicksort"
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let (lo, hi) = (self.lo, self.hi);
        let len = hi - lo;
        if len <= 1 {
            return;
        }
        if len <= self.params.simple_threshold || self.depth >= self.params.max_depth {
            emit_selection_sort(t, &self.st, lo, len);
            self.st.data.borrow_mut()[lo..hi].sort_unstable();
            return;
        }
        // Serial Lomuto partition around the last element.
        let mid = {
            let mut data = self.st.data.borrow_mut();
            let pivot = data[hi - 1];
            t.ld(&self.st.buf, hi - 1);
            let mut store = lo;
            for k in lo..hi - 1 {
                t.ld(&self.st.buf, k);
                t.compute(1);
                if data[k] < pivot {
                    data.swap(k, store);
                    t.st(&self.st.buf, k);
                    t.st(&self.st.buf, store);
                    store += 1;
                }
            }
            data.swap(store, hi - 1);
            t.st(&self.st.buf, store);
            t.st(&self.st.buf, hi - 1);
            store
        };
        // Recurse on both halves in separate streams (as the SDK sample
        // does, so siblings can run concurrently).
        if mid > lo + 1 {
            let left: KernelRef = Arc::new(SimpleQsortKernel {
                st: Arc::clone(&self.st),
                lo,
                hi: mid,
                depth: self.depth + 1,
                params: self.params,
            });
            t.launch(&left, LaunchConfig::new(1, 1), Stream::Slot(0));
        }
        if hi > mid + 2 {
            let right: KernelRef = Arc::new(SimpleQsortKernel {
                st: Arc::clone(&self.st),
                lo: mid + 1,
                hi,
                depth: self.depth + 1,
                params: self.params,
            });
            t.launch(&right, LaunchConfig::new(1, 1), Stream::Slot(1));
        }
    }
}

/// Emit the instruction pattern of a serial selection sort over
/// `[lo, lo + len)` (the functional sort happens separately).
fn emit_selection_sort(t: &mut ThreadCtx<'_, '_>, st: &SortState, lo: usize, len: usize) {
    for i in 0..len {
        for k in i..len {
            t.ld(&st.buf, lo + k);
        }
        t.compute(len as u32 - i as u32);
        t.st(&st.buf, lo + i);
    }
}

// ---------------------------------------------------------------------------
// Advanced quicksort (dynamic parallelism, block-parallel partition).
// ---------------------------------------------------------------------------

/// Largest segment the bitonic fallback stages in shared memory at once:
/// 48 KB of `u32` keys. Longer segments (possible when the depth limit cuts
/// recursion short) are sorted tile by tile.
const BITONIC_TILE: usize = 12 * 1024;

/// Dynamic shared memory an advanced-quicksort launch over `len` elements
/// at `depth` needs: the staging area of the bitonic fallback when the
/// segment will bitonic-sort, otherwise the two partition counters.
fn advanced_shared(len: usize, depth: u32, params: &SortParams) -> u32 {
    if len <= params.advanced_threshold || depth >= params.max_depth {
        (len.min(BITONIC_TILE) * 4).max(8) as u32
    } else {
        8
    }
}

struct AdvancedQsortKernel {
    st: Arc<SortState>,
    lo: usize,
    hi: usize,
    depth: u32,
    params: SortParams,
}

impl Kernel for AdvancedQsortKernel {
    fn name(&self) -> &str {
        "advanced-quicksort"
    }
    fn run_block(&self, blk: &mut BlockCtx<'_>) {
        let (lo, hi) = (self.lo, self.hi);
        let len = hi - lo;
        if len <= 1 {
            return;
        }
        if len <= self.params.advanced_threshold || self.depth >= self.params.max_depth {
            emit_bitonic_sort(blk, &self.st, lo, len);
            self.st.data.borrow_mut()[lo..hi].sort_unstable();
            return;
        }
        let bd = blk.block_dim() as usize;
        let pivot = {
            let data = self.st.data.borrow();
            // Median of three.
            let (a, b, c) = (data[lo], data[lo + len / 2], data[hi - 1]);
            a.max(b).min(a.min(b).max(c))
        };
        // Pass 1: count elements below the pivot (shared-memory counter).
        blk.for_each_thread(|t| {
            if t.is_leader() {
                t.ld(&self.st.buf, lo);
                t.ld(&self.st.buf, lo + len / 2);
                t.ld(&self.st.buf, hi - 1);
                t.compute(3);
            }
            let mut k = lo + t.thread_idx() as usize;
            while k < hi {
                t.ld(&self.st.buf, k);
                t.compute(1);
                t.shared_atomic(0);
                k += bd;
            }
        });
        blk.sync();
        // Pass 2: scatter into the scratch array, then copy back.
        blk.for_each_thread(|t| {
            let mut k = lo + t.thread_idx() as usize;
            while k < hi {
                t.ld(&self.st.buf, k);
                t.shared_atomic(if self.st.data.borrow()[k] < pivot {
                    0
                } else {
                    4
                });
                t.st(&self.st.scratch, k);
                k += bd;
            }
        });
        blk.sync();
        blk.for_each_thread(|t| {
            let mut k = lo + t.thread_idx() as usize;
            while k < hi {
                t.ld(&self.st.scratch, k);
                t.st(&self.st.buf, k);
                k += bd;
            }
        });
        // Functional three-way partition (pivot duplicates stay in the
        // middle so recursion always shrinks).
        let (mid_lo, mid_hi) = {
            let mut data = self.st.data.borrow_mut();
            let seg = &mut data[lo..hi];
            let mut below: Vec<u32> = Vec::with_capacity(seg.len());
            let mut equal: Vec<u32> = Vec::new();
            let mut above: Vec<u32> = Vec::with_capacity(seg.len());
            for &x in seg.iter() {
                if x < pivot {
                    below.push(x);
                } else if x == pivot {
                    equal.push(x);
                } else {
                    above.push(x);
                }
            }
            let mid_lo = lo + below.len();
            let mid_hi = mid_lo + equal.len();
            seg[..below.len()].copy_from_slice(&below);
            seg[below.len()..below.len() + equal.len()].copy_from_slice(&equal);
            seg[below.len() + equal.len()..].copy_from_slice(&above);
            (mid_lo, mid_hi)
        };
        // Leader launches both halves into separate streams, each with the
        // shared-memory declaration its segment length calls for.
        let mut children: Vec<(KernelRef, LaunchConfig, Stream)> = Vec::new();
        if mid_lo > lo + 1 {
            let shared = advanced_shared(mid_lo - lo, self.depth + 1, &self.params);
            children.push((
                Arc::new(AdvancedQsortKernel {
                    st: Arc::clone(&self.st),
                    lo,
                    hi: mid_lo,
                    depth: self.depth + 1,
                    params: self.params,
                }) as KernelRef,
                LaunchConfig::with_shared(1, 128, shared),
                Stream::Slot(0),
            ));
        }
        if hi > mid_hi + 1 {
            let shared = advanced_shared(hi - mid_hi, self.depth + 1, &self.params);
            children.push((
                Arc::new(AdvancedQsortKernel {
                    st: Arc::clone(&self.st),
                    lo: mid_hi,
                    hi,
                    depth: self.depth + 1,
                    params: self.params,
                }) as KernelRef,
                LaunchConfig::with_shared(1, 128, shared),
                Stream::Slot(1),
            ));
        }
        blk.for_each_thread(|t| {
            if t.is_leader() {
                for (k, cfg, s) in &children {
                    t.launch(k, *cfg, *s);
                }
            }
        });
    }
}

/// Emit the instruction pattern of a block-wide bitonic sort over
/// `[lo, lo + len)` staged in shared memory. Segments longer than
/// [`BITONIC_TILE`] (possible when the depth limit cuts recursion short)
/// are processed tile by tile so the staging never outgrows the block's
/// shared-memory declaration.
fn emit_bitonic_sort(blk: &mut BlockCtx<'_>, st: &SortState, lo: usize, len: usize) {
    let bd = blk.block_dim() as usize;
    let mut tile_lo = 0usize;
    while tile_lo < len {
        let tl = (len - tile_lo).min(BITONIC_TILE);
        let base = lo + tile_lo;
        if tile_lo > 0 {
            // The previous tile's write-back read the staging area this
            // tile is about to overwrite.
            blk.sync();
        }
        // Stage into shared memory.
        blk.for_each_thread(|t| {
            let mut k = t.thread_idx() as usize;
            while k < tl {
                t.ld(&st.buf, base + k);
                t.shared_st((k * 4) as u32);
                k += bd;
            }
        });
        blk.sync();
        let np2 = tl.next_power_of_two();
        let mut size = 2usize;
        while size <= np2 {
            let mut stride = size / 2;
            while stride > 0 {
                blk.for_each_thread(|t| {
                    let mut pair = t.thread_idx() as usize;
                    while pair < np2 / 2 {
                        let a = 2 * pair - (pair & (stride - 1));
                        let b = a + stride;
                        if b < tl {
                            t.shared_ld((a * 4) as u32);
                            t.shared_ld((b * 4) as u32);
                            t.compute(1);
                            t.shared_st((a * 4) as u32);
                            t.shared_st((b * 4) as u32);
                        }
                        pair += bd;
                    }
                });
                blk.sync();
                stride /= 2;
            }
            size *= 2;
        }
        // Write back.
        blk.for_each_thread(|t| {
            let mut k = t.thread_idx() as usize;
            while k < tl {
                t.shared_ld((k * 4) as u32);
                t.st(&st.buf, base + k);
                k += bd;
            }
        });
        tile_lo += tl;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_data(n: usize, seed: u64) -> Vec<u32> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen_range(0..1_000_000)).collect()
    }

    #[test]
    fn all_algorithms_sort_correctly() {
        for n in [0usize, 1, 2, 63, 500, 3000] {
            let data = random_data(n, n as u64 + 1);
            let mut expect = data.clone();
            expect.sort_unstable();
            for algo in [
                SortAlgo::MergeFlat,
                SortAlgo::QuickSimple,
                SortAlgo::QuickAdvanced,
            ] {
                let mut gpu = Gpu::k20();
                let r = sort_gpu(&mut gpu, &data, algo, &SortParams::default());
                assert_eq!(r.data, expect, "{} failed on n={n}", algo.label());
            }
        }
    }

    #[test]
    fn already_sorted_and_reverse_inputs() {
        let sorted: Vec<u32> = (0..800).collect();
        let reversed: Vec<u32> = (0..800).rev().collect();
        for input in [sorted.clone(), reversed] {
            for algo in [SortAlgo::MergeFlat, SortAlgo::QuickAdvanced] {
                let mut gpu = Gpu::k20();
                let r = sort_gpu(&mut gpu, &input, algo, &SortParams::default());
                assert_eq!(r.data, sorted, "{}", algo.label());
            }
        }
    }

    #[test]
    fn duplicates_are_handled() {
        let data = vec![5u32; 300];
        for algo in [
            SortAlgo::MergeFlat,
            SortAlgo::QuickSimple,
            SortAlgo::QuickAdvanced,
        ] {
            let mut gpu = Gpu::k20();
            let r = sort_gpu(&mut gpu, &data, algo, &SortParams::default());
            assert_eq!(r.data, data, "{}", algo.label());
        }
    }

    #[test]
    fn quicksorts_use_dynamic_parallelism_mergesort_does_not() {
        let data = random_data(5000, 9);
        let mut gpu = Gpu::k20();
        let merge = sort_gpu(&mut gpu, &data, SortAlgo::MergeFlat, &SortParams::default());
        assert_eq!(merge.report.device_launches, 0);
        assert!(merge.report.host_launches >= 12); // log2(5000) ~ 13 passes

        let mut gpu = Gpu::k20();
        let simple = sort_gpu(
            &mut gpu,
            &data,
            SortAlgo::QuickSimple,
            &SortParams::default(),
        );
        assert!(simple.report.device_launches > 100);
    }

    #[test]
    fn depth_limit_caps_recursion() {
        let data = random_data(4000, 3);
        let mut gpu = Gpu::k20();
        let shallow = sort_gpu(
            &mut gpu,
            &data,
            SortAlgo::QuickSimple,
            &SortParams {
                max_depth: 2,
                ..Default::default()
            },
        );
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(shallow.data, expect);
        // Depth 2 allows at most 1 + 2 + 4 = 7 kernels.
        assert!(shallow.report.device_launches <= 6);
    }
}
