//! Cross-template/app consistency checks beyond the per-module unit tests:
//! results must be invariant across templates, thresholds, block sizes and
//! stream counts, and the apps must compose with the dataset parsers.

use npar_apps::{bc, bfs, pagerank, sort, spmv, sssp, tree_apps};
use npar_core::{LoopParams, LoopTemplate, RecParams, RecTemplate};
use npar_graph::{io, uniform_random, wiki_vote_like, with_random_weights};
use npar_sim::Gpu;
use npar_tree::TreeGen;

fn close(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x.is_infinite() && y.is_infinite()) || (x - y).abs() <= tol)
}

#[test]
fn sssp_through_the_dimacs_parser() {
    // Build a DIMACS file in memory, parse it, and solve on the GPU.
    let mut text = String::from("c synthetic\np sp 60 180\n");
    let g0 = with_random_weights(&uniform_random(60, 3, 3, 5), 9, 6);
    for u in 0..60 {
        for (j, &v) in g0.neighbors(u).iter().enumerate() {
            let w = g0.weights_of(u).unwrap()[j];
            text.push_str(&format!("a {} {} {}\n", u + 1, v + 1, w));
        }
    }
    let g = io::parse_dimacs(text.as_bytes()).unwrap();
    assert_eq!(g.num_edges(), g0.num_edges());
    let (cpu, _) = sssp::sssp_cpu(&g, 0);
    let mut gpu = Gpu::k20();
    let r = sssp::sssp_gpu(
        &mut gpu,
        &g,
        0,
        LoopTemplate::DualQueue,
        &LoopParams::default(),
    );
    assert!(close(&r.dist, &cpu, 1e-3));
}

#[test]
fn spmv_through_matrix_market() {
    let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                4 4 5\n\
                1 1 2.0\n\
                2 1 1.0\n\
                3 2 4.0\n\
                4 3 0.5\n\
                4 4 1.5\n";
    let a = io::parse_matrix_market(text.as_bytes()).unwrap();
    let x = vec![1.0f32, 2.0, 3.0, 4.0];
    let (y_cpu, _) = spmv::spmv_cpu(&a, &x);
    // Row 0: 2*x0 + 1*x1 (mirrored) = 4; row 1: 1*x0 + 4*x2 = 13.
    assert!((y_cpu[0] - 4.0).abs() < 1e-6);
    assert!((y_cpu[1] - 13.0).abs() < 1e-6);
    for template in [LoopTemplate::ThreadMapped, LoopTemplate::BlockMapped] {
        let mut gpu = Gpu::k20();
        let r = spmv::spmv_gpu(&mut gpu, &a, &x, template, &LoopParams::default());
        assert!(close(&r.y, &y_cpu, 1e-4));
    }
}

#[test]
fn every_template_and_threshold_agrees_on_sssp() {
    let g = with_random_weights(&uniform_random(150, 1, 20, 77), 9, 78);
    let (cpu, _) = sssp::sssp_cpu(&g, 3);
    for template in LoopTemplate::ALL {
        for lb in [8usize, 32, 512] {
            let mut gpu = Gpu::k20();
            let r = sssp::sssp_gpu(&mut gpu, &g, 3, template, &LoopParams::with_lb_thres(lb));
            assert!(close(&r.dist, &cpu, 1e-3), "{template} lb={lb}");
        }
    }
}

#[test]
fn block_sizes_do_not_change_results() {
    let g = uniform_random(200, 0, 30, 11);
    let x = vec![1.5f32; 200];
    let (y_cpu, _) = spmv::spmv_cpu(&g, &x);
    for bs in [32u32, 64, 256, 1024] {
        let params = LoopParams {
            block_block: bs,
            ..Default::default()
        };
        let mut gpu = Gpu::k20();
        let r = spmv::spmv_gpu(&mut gpu, &g, &x, LoopTemplate::DbufGlobal, &params);
        assert!(close(&r.y, &y_cpu, 1e-3), "block size {bs}");
    }
}

#[test]
fn stream_counts_do_not_change_results() {
    let g = uniform_random(300, 1, 10, 13);
    let (cpu, _) = bfs::bfs_cpu_iterative(&g, 0);
    for streams in [1u32, 2, 3, 8] {
        let mut gpu = Gpu::k20();
        let r = bfs::bfs_recursive_gpu(&mut gpu, &g, 0, bfs::RecBfsVariant::Hier, streams);
        assert_eq!(r.level, cpu, "streams={streams}");
    }
    // Host stream-mapped loop template as well.
    for host_streams in [1u32, 3, 7] {
        let params = LoopParams {
            host_streams,
            ..Default::default()
        };
        let mut gpu = Gpu::k20();
        let r = bfs::bfs_flat_gpu(&mut gpu, &g, 0, LoopTemplate::StreamMapped, &params);
        assert_eq!(r.level, cpu, "host_streams={host_streams}");
    }
}

#[test]
fn bc_is_deterministic_and_source_additive() {
    let g = wiki_vote_like(3);
    let s1 = bc::sample_sources(&g, 2);
    let (a, _) = bc::bc_cpu(&g, &s1);
    let (b, _) = bc::bc_cpu(&g, &s1);
    assert_eq!(a, b);
    // BC over a source set equals the sum of per-source BC.
    let (all, _) = bc::bc_cpu(&g, &s1);
    let (p1, _) = bc::bc_cpu(&g, &s1[..1]);
    let (p2, _) = bc::bc_cpu(&g, &s1[1..]);
    for i in 0..g.num_nodes() {
        assert!((all[i] - (p1[i] + p2[i])).abs() < 1e-9);
    }
}

#[test]
fn tree_apps_profile_counts_scale_with_shape() {
    // Flat atomics equal the sum of node depths; hier launches equal the
    // internal nodes with grandchildren (+1 host launch).
    let tree = TreeGen {
        depth: 4,
        outdegree: 5,
        sparsity: 0,
        seed: 9,
    }
    .generate();
    let mut gpu = Gpu::k20();
    let flat = tree_apps::tree_gpu(
        &mut gpu,
        &tree,
        tree_apps::TreeMetric::Descendants,
        RecTemplate::Flat,
        &RecParams::default(),
    );
    let depth_sum: u64 = (0..tree.num_nodes())
        .map(|v| u64::from(tree.level(v)))
        .sum();
    assert_eq!(flat.report.total().atomics(), depth_sum);

    let mut gpu = Gpu::k20();
    let hier = tree_apps::tree_gpu(
        &mut gpu,
        &tree,
        tree_apps::TreeMetric::Heights,
        RecTemplate::RecHier,
        &RecParams::default(),
    );
    // Depth-4 regular tree: nested launches = level-1 nodes.
    assert_eq!(hier.report.device_launches, 5);
}

#[test]
fn sort_reports_scale_monotonically() {
    // More elements => more modeled time, for every algorithm.
    let mk = |n: usize| -> Vec<u32> { (0..n as u32).map(|x| x.wrapping_mul(0x9E3779B9)).collect() };
    for algo in [
        sort::SortAlgo::MergeFlat,
        sort::SortAlgo::QuickAdvanced,
        sort::SortAlgo::QuickSimple,
    ] {
        let mut prev = 0.0;
        for n in [1000usize, 4000, 16000] {
            let mut gpu = Gpu::k20();
            let r = sort::sort_gpu(&mut gpu, &mk(n), algo, &sort::SortParams::default());
            assert!(
                r.report.seconds > prev,
                "{} not monotone at n={n}",
                algo.label()
            );
            prev = r.report.seconds;
        }
    }
}

#[test]
fn pagerank_iterations_converge() {
    let g = uniform_random(150, 1, 8, 17);
    let (r5, _) = pagerank::pagerank_cpu(&g, 5);
    let (r30, _) = pagerank::pagerank_cpu(&g, 30);
    let (r31, _) = pagerank::pagerank_cpu(&g, 31);
    // Successive iterates converge; 30 vs 31 closer than 5 vs 30.
    let d_a: f64 = r5.iter().zip(&r30).map(|(a, b)| (a - b).abs()).sum();
    let d_b: f64 = r30.iter().zip(&r31).map(|(a, b)| (a - b).abs()).sum();
    assert!(d_b < d_a);
    assert!(d_b < 1e-6);
}
