//! Offline stand-in for the `serde_json` crate: renders the serde shim's
//! [`Value`] data model as JSON text and parses JSON text back into it.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

pub use serde::Error;

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value)
}

fn render(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    let pad = |out: &mut String, d: usize| {
        if let Some(n) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(n * d));
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                render(item, out, indent, depth + 1);
            }
            pad(out, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, out, indent, depth + 1);
            }
            pad(out, depth);
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of JSON".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(Error(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.peek()?;
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes[self.pos] == b'-' {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(-3)),
            ("b".into(), Value::Float(1.5)),
            (
                "c".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("d".into(), Value::Str("x \"y\"\n".into())),
            ("e".into(), Value::UInt(u64::MAX)),
        ]);
        let text = {
            let mut s = String::new();
            render(&v, &mut s, None, 0);
            s
        };
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn pretty_parses_back() {
        let v = Value::Array(vec![
            Value::Object(vec![("k".into(), Value::Int(1))]),
            Value::Array(vec![]),
        ]);
        let mut s = String::new();
        render(&v, &mut s, Some(2), 0);
        assert!(s.contains('\n'));
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn whole_float_keeps_decimal_point() {
        let mut s = String::new();
        render(&Value::Float(2.0), &mut s, None, 0);
        assert_eq!(s, "2.0");
    }

    #[test]
    fn typed_roundtrip() {
        let xs = vec![1u32, 2, 3];
        let text = to_string(&xs).unwrap();
        assert_eq!(text, "[1,2,3]");
        let back: Vec<u32> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }
}
