//! Derive macros for the in-tree `serde` shim.
//!
//! Hand-rolled token parsing (the environment has no `syn`/`quote`):
//! supports exactly the shapes this workspace declares — structs with named
//! fields and enums with unit variants, no generics. Anything else panics
//! at compile time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a derive input parsed into.
enum Item {
    /// Struct name + named field identifiers.
    Struct(String, Vec<String>),
    /// Enum name + unit variant identifiers.
    Enum(String, Vec<String>),
}

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(crate)`), then
/// expect `struct`/`enum` keyword, the item name, and the body group.
fn parse(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let mut kind = None;
    let mut name = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                match s.as_str() {
                    "pub" => {
                        if let Some(TokenTree::Group(g)) = iter.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                iter.next();
                            }
                        }
                    }
                    "struct" | "enum" => kind = Some(s),
                    _ if kind.is_some() && name.is_none() => name = Some(s),
                    _ => {}
                }
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let kind = kind.expect("derive: no struct/enum keyword");
                let name = name.expect("derive: unnamed item");
                let names = field_names(g.stream());
                return if kind == "struct" {
                    Item::Struct(name, names)
                } else {
                    Item::Enum(name, names)
                };
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("serde shim derive: generics are not supported")
            }
            _ => {}
        }
    }
    panic!("serde shim derive: tuple structs / unit structs are not supported")
}

/// First identifier of each top-level comma-separated chunk, skipping
/// attributes and visibility — the field name for structs, the variant name
/// for unit enums.
fn field_names(body: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut want_name = true;
    // Angle-bracket nesting depth: commas inside `Vec<(A, B)>`-style type
    // arguments are not field separators ('<'/'>' are plain puncts, not
    // token groups).
    let mut depth = 0i32;
    let mut iter = body.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // attribute group
            }
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => want_name = true,
            TokenTree::Ident(id) if want_name => {
                let s = id.to_string();
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                } else {
                    names.push(s);
                    want_name = false;
                }
            }
            _ => {}
        }
    }
    names
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse(input) {
        Item::Struct(name, fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => ::serde::Value::Str({v:?}.to_string()),\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde shim derive: generated code")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse(input) {
        Item::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get({f:?})\
                         .ok_or_else(|| ::serde::Error(format!(\"missing field {f}\")))?)?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\
                                 other => Err(::serde::Error(format!(\"unknown variant {{other}}\"))),\n\
                             }},\n\
                             other => Err(::serde::Error(format!(\"expected string, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde shim derive: generated code")
}
