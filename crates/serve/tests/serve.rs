//! Integration tests for the serving layer (ISSUE 8 satellite coverage):
//! persistence round-trip with byte-identical reports, graceful handling of
//! corrupt/truncated spills, and dedupe correctness under concurrent
//! identical submissions at 1/2/8 worker shards.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use npar_serve::{
    cache, workload::Dataset, Request, Response, ServeConfig, Service, Source, SubmitError,
};
use npar_sim::DeviceConfig;

/// Fresh unique temp dir per test case (tests run concurrently in one
/// process; the dir is removed best-effort at the end of each test).
fn tmp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "npar-serve-test-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small request on the tiny device so each test job is cheap.
fn tiny_request(kernel: &str, salt: u64) -> Request {
    Request {
        kernel: kernel.into(),
        device: DeviceConfig::tiny(),
        dataset: Dataset {
            n: 512,
            grid: 2,
            block: 64,
            launches: 2,
            streams: 2,
            salt,
        },
    }
}

fn report_bytes(resp: &Response) -> String {
    match resp {
        Response::Done { report, .. } => {
            serde_json::to_string(&**report).expect("report serializes")
        }
        other => panic!("expected Done, got {other:?}"),
    }
}

fn source_of(resp: &Response) -> Source {
    match resp {
        Response::Done { source, .. } => *source,
        other => panic!("expected Done, got {other:?}"),
    }
}

#[test]
fn persistence_round_trip_is_byte_identical() {
    let dir = tmp_dir("roundtrip");
    let cfg = || ServeConfig {
        shards: 2,
        queue_cap: 64,
        timeout: None,
        cache_dir: Some(dir.clone()),
        cold: false,
        gpu_threads: 1,
    };
    let requests: Vec<Request> = vec![
        tiny_request("regular-wave", 0),
        tiny_request("divergent", 3),
        tiny_request("dp-storm", 1),
        tiny_request("stream-storm", 0),
        tiny_request("monte-carlo", 9),
    ];

    // Cold run: everything simulated fresh; join spills the cache.
    let service = Service::start(cfg());
    let mut cold_bytes = Vec::new();
    for req in &requests {
        let resp = service.submit(req).unwrap().wait();
        assert_eq!(source_of(&resp), Source::Fresh);
        cold_bytes.push(report_bytes(&resp));
    }
    let cold_stats = service.join();
    assert_eq!(cold_stats.served, requests.len() as u64);

    // The spill exists and holds every result plus memo groups.
    let spill = cache::load(&dir).expect("spill written on join");
    assert_eq!(spill.results.len(), requests.len());
    assert!(
        !spill.memo.is_empty(),
        "worker memo caches spill alongside results"
    );

    // Warm restart: every repeat request is answered from the restored
    // cache, byte-identical to the cold run.
    let service = Service::start(cfg());
    for (req, cold) in requests.iter().zip(&cold_bytes) {
        let resp = service.submit(req).unwrap().wait();
        assert_eq!(source_of(&resp), Source::Cache);
        assert_eq!(&report_bytes(&resp), cold, "{}: warm != cold", req.kernel);
    }
    let warm_stats = service.join();
    assert_eq!(warm_stats.served, 0, "no re-simulation on the warm path");
    assert_eq!(warm_stats.cache_hit, requests.len() as u64);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_memo_serves_novel_requests_fresh_and_identical() {
    // A warm boot must not change what a *novel* request reports: memo
    // replay is bit-identical to fresh alignment, so a salt never seen by
    // the first service run reports the same bytes cold and warm.
    let dir = tmp_dir("warm-novel");
    let cfg = |cache_dir: Option<PathBuf>, cold: bool| ServeConfig {
        shards: 1,
        queue_cap: 64,
        timeout: None,
        cache_dir,
        cold,
        gpu_threads: 1,
    };

    // Seed the spill with the same kernel family, different salt.
    let service = Service::start(cfg(Some(dir.clone()), false));
    service
        .submit(&tiny_request("monte-carlo", 1))
        .unwrap()
        .wait();
    service.join();

    // Reference: the novel salt on a cache-less service.
    let service = Service::start(cfg(None, false));
    let reference = report_bytes(
        &service
            .submit(&tiny_request("monte-carlo", 2))
            .unwrap()
            .wait(),
    );
    service.join();

    // Warm boot, novel salt: fresh simulation, identical bytes.
    let service = Service::start(cfg(Some(dir.clone()), false));
    let resp = service
        .submit(&tiny_request("monte-carlo", 2))
        .unwrap()
        .wait();
    assert_eq!(source_of(&resp), Source::Fresh);
    assert_eq!(report_bytes(&resp), reference);
    service.join();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_or_truncated_spill_starts_cold() {
    let dir = tmp_dir("corrupt");

    // Seed a valid spill.
    let cfg = || ServeConfig {
        shards: 1,
        queue_cap: 16,
        timeout: None,
        cache_dir: Some(dir.clone()),
        cold: false,
        gpu_threads: 1,
    };
    let service = Service::start(cfg());
    let req = tiny_request("regular-wave", 0);
    service.submit(&req).unwrap().wait();
    service.join();
    let path = cache::spill_path(&dir);
    let valid = std::fs::read_to_string(&path).expect("spill exists");

    // Truncated: cut the valid spill in half.
    std::fs::write(&path, &valid[..valid.len() / 2]).unwrap();
    assert!(cache::load(&dir).is_none(), "truncated spill rejected");
    let service = Service::start(cfg());
    let resp = service.submit(&req).unwrap().wait();
    assert_eq!(
        source_of(&resp),
        Source::Fresh,
        "cold start after truncation"
    );
    service.join();

    // Garbage bytes.
    std::fs::write(&path, "{not json at all").unwrap();
    assert!(cache::load(&dir).is_none(), "garbage spill rejected");
    let service = Service::start(cfg());
    let resp = service.submit(&req).unwrap().wait();
    assert_eq!(source_of(&resp), Source::Fresh);
    service.join();

    // Wrong version: valid JSON, unsupported layout.
    std::fs::write(&path, r#"{"version": 999, "results": [], "memo": []}"#).unwrap();
    assert!(cache::load(&dir).is_none(), "version mismatch rejected");

    // `cold: true` ignores even a valid spill.
    std::fs::write(&path, &valid).unwrap();
    let service = Service::start(ServeConfig {
        cold: true,
        ..cfg()
    });
    let resp = service.submit(&req).unwrap().wait();
    assert_eq!(
        source_of(&resp),
        Source::Fresh,
        "cold boot ignores the spill"
    );
    service.join();

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_identical_submissions_dedupe() {
    for shards in [1usize, 2, 8] {
        let service = Arc::new(Service::start(ServeConfig {
            shards,
            queue_cap: 64,
            timeout: None,
            cache_dir: None,
            cold: false,
            gpu_threads: 1,
        }));
        const SUBMITTERS: usize = 16;
        let barrier = Arc::new(Barrier::new(SUBMITTERS));
        let handles: Vec<_> = (0..SUBMITTERS)
            .map(|_| {
                let service = Arc::clone(&service);
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    let req = tiny_request("regular-wave", 42);
                    barrier.wait();
                    let resp = service.submit(&req).unwrap().wait();
                    report_bytes(&resp)
                })
            })
            .collect();
        let bytes: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for b in &bytes[1..] {
            assert_eq!(b, &bytes[0], "all submitters see one identical report");
        }
        let stats = Arc::try_unwrap(service)
            .unwrap_or_else(|_| panic!("all submitters joined"))
            .join();
        // Every submission is answered exactly once: simulated at least
        // once, and the rest split between in-flight dedupe and (for
        // submissions racing in after completion) the result cache.
        assert_eq!(stats.answered(), SUBMITTERS as u64, "shards={shards}");
        assert!(stats.served >= 1, "shards={shards}");
        assert!(
            stats.deduped + stats.cache_hit == SUBMITTERS as u64 - stats.served,
            "shards={shards}: {stats}"
        );
        assert_eq!(
            stats.shed + stats.timeout + stats.failed,
            0,
            "shards={shards}"
        );
    }
}

#[test]
fn full_queue_sheds_and_zero_timeout_times_out() {
    // Shed: one worker, queue capacity 1. The first job occupies the
    // worker (or the queue), the second fills the queue, so among three
    // distinct submissions at least one is shed.
    let service = Service::start(ServeConfig {
        shards: 1,
        queue_cap: 1,
        timeout: None,
        cache_dir: None,
        cold: false,
        gpu_threads: 1,
    });
    let tickets: Vec<_> = (0..3)
        .map(|salt| service.submit(&tiny_request("divergent", salt)))
        .collect();
    let shed = tickets
        .iter()
        .filter(|t| matches!(t, Err(SubmitError::Shed)))
        .count();
    assert!(shed >= 1, "queue of 1 with 3 rapid submits must shed");
    for t in tickets.into_iter().flatten() {
        assert!(matches!(t.wait(), Response::Done { .. }));
    }
    let stats = service.join();
    assert_eq!(stats.shed, shed as u64);

    // Timeout: a deadline that has always already passed when the worker
    // dequeues — cooperative cancellation answers TimedOut, counts once.
    let service = Service::start(ServeConfig {
        shards: 1,
        queue_cap: 16,
        timeout: Some(Duration::ZERO),
        cache_dir: None,
        cold: false,
        gpu_threads: 1,
    });
    let resp = service
        .submit(&tiny_request("regular-wave", 0))
        .unwrap()
        .wait();
    assert!(matches!(resp, Response::TimedOut), "got {resp:?}");
    let stats = service.join();
    assert_eq!(stats.timeout, 1);
    assert_eq!(stats.served, 0);

    // Invalid requests are refused at submit, before touching a worker.
    let service = Service::start(ServeConfig {
        shards: 1,
        ..ServeConfig::default()
    });
    assert!(matches!(
        service.submit(&tiny_request("no-such-kernel", 0)),
        Err(SubmitError::Invalid(_))
    ));
    service.join();
}
