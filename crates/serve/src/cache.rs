//! The persistent spill behind the service's result + memo cache.
//!
//! On shutdown the service writes one JSON file, `serve_cache.json`, into
//! its cache directory: every cached `(key, Report)` pair plus one
//! [`MemoSnapshot`] per device signature (the union of every worker `Gpu`'s
//! memo cache). On boot the file is read back: results pre-populate the
//! result cache, and each snapshot warm-starts the workers that later build
//! a `Gpu` for that signature.
//!
//! Loading is deliberately forgiving: a missing, truncated, corrupt, or
//! version-mismatched file means the service **starts cold** — a warning on
//! stderr, never a panic (the spill is a cache, losing it loses only
//! warmth). Writing is atomic: the file is staged to `serve_cache.json.tmp`
//! and renamed into place, so a crash mid-write leaves the previous spill
//! intact rather than a truncated one.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use npar_sim::{MemoSnapshot, Report};
use serde::{Deserialize, Serialize, Value};

/// Spill file name inside the cache directory.
pub const SPILL_FILE: &str = "serve_cache.json";

/// Spill-format version; bumped whenever the layout changes. A mismatch is
/// treated as corrupt (cold start), not migrated.
const SPILL_VERSION: u64 = 1;

/// Everything the service persists across restarts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Spill {
    /// Result cache: content key → served report (with host-observational
    /// `sim` stats already zeroed — see SERVING.md on determinism).
    pub results: Vec<(u64, Report)>,
    /// Memo snapshots grouped by device signature
    /// ([`crate::workload::device_sig`]).
    pub memo: Vec<(String, MemoSnapshot)>,
}

impl Serialize for Spill {
    fn to_value(&self) -> Value {
        let results = self
            .results
            .iter()
            .map(|(key, report)| {
                Value::Object(vec![
                    ("key".into(), key.to_value()),
                    ("report".into(), report.to_value()),
                ])
            })
            .collect();
        let memo = self
            .memo
            .iter()
            .map(|(sig, snap)| {
                Value::Object(vec![
                    ("device".into(), sig.to_value()),
                    ("snapshot".into(), snap.to_value()),
                ])
            })
            .collect();
        Value::Object(vec![
            ("version".into(), SPILL_VERSION.to_value()),
            ("results".into(), Value::Array(results)),
            ("memo".into(), Value::Array(memo)),
        ])
    }
}

impl Deserialize for Spill {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let version = v
            .get("version")
            .ok_or_else(|| serde::Error("spill: missing version".into()))
            .and_then(u64::from_value)?;
        if version != SPILL_VERSION {
            return Err(serde::Error(format!(
                "spill: version {version} != supported {SPILL_VERSION}"
            )));
        }
        let arr = |name: &str| -> Result<Vec<Value>, serde::Error> {
            match v.get(name) {
                Some(Value::Array(items)) => Ok(items.clone()),
                other => Err(serde::Error(format!("spill: bad {name}: {other:?}"))),
            }
        };
        let mut results = Vec::new();
        for rec in arr("results")? {
            let key = rec
                .get("key")
                .ok_or_else(|| serde::Error("spill result: missing key".into()))
                .and_then(u64::from_value)?;
            let report = rec
                .get("report")
                .ok_or_else(|| serde::Error("spill result: missing report".into()))
                .and_then(Report::from_value)?;
            results.push((key, report));
        }
        let mut memo = Vec::new();
        for rec in arr("memo")? {
            let sig = rec
                .get("device")
                .ok_or_else(|| serde::Error("spill memo: missing device".into()))
                .and_then(String::from_value)?;
            let snap = rec
                .get("snapshot")
                .ok_or_else(|| serde::Error("spill memo: missing snapshot".into()))
                .and_then(MemoSnapshot::from_value)?;
            memo.push((sig, snap));
        }
        Ok(Spill { results, memo })
    }
}

/// Path of the spill file inside `dir`.
pub fn spill_path(dir: &Path) -> PathBuf {
    dir.join(SPILL_FILE)
}

/// Load the spill from `dir`. `None` means cold start: no file, unreadable
/// file, or a file that does not parse as a supported spill — the latter
/// two warn on stderr. Never panics.
pub fn load(dir: &Path) -> Option<Spill> {
    let path = spill_path(dir);
    let text = match fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
        Err(e) => {
            eprintln!(
                "npar-serve: unreadable spill {}: {e}; starting cold",
                path.display()
            );
            return None;
        }
    };
    match serde_json::from_str::<Spill>(&text) {
        Ok(spill) => Some(spill),
        Err(e) => {
            eprintln!(
                "npar-serve: corrupt spill {}: {e}; starting cold",
                path.display()
            );
            None
        }
    }
}

/// Atomically write the spill into `dir` (created if absent): stage to a
/// `.tmp` sibling, then rename over the final name.
pub fn save(dir: &Path, spill: &Spill) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let text = serde_json::to_string(spill)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let path = spill_path(dir);
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, text)?;
    fs::rename(&tmp, &path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spill_roundtrips() {
        let spill = Spill::default();
        let back: Spill = serde_json::from_str(&serde_json::to_string(&spill).unwrap()).unwrap();
        assert_eq!(spill, back);
    }

    #[test]
    fn version_mismatch_is_an_error() {
        let v = Value::Object(vec![
            ("version".into(), Value::Int(99)),
            ("results".into(), Value::Array(vec![])),
            ("memo".into(), Value::Array(vec![])),
        ]);
        assert!(Spill::from_value(&v).is_err());
    }

    #[test]
    fn missing_file_loads_cold() {
        assert!(load(Path::new("/nonexistent/npar-serve-test")).is_none());
    }
}
