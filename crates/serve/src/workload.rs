//! The serving request model and the kernel catalog behind it.
//!
//! A [`Request`] is fully declarative — a catalog kernel id, a complete
//! [`DeviceConfig`], and a [`Dataset`] descriptor — so two requests with the
//! same content are the same simulation. [`request_key`] exploits that: the
//! canonical JSON rendering of the request is hashed into a 64-bit
//! content-addressed key, which is the unit of in-flight dedupe and of the
//! persistent result cache (SERVING.md).
//!
//! The catalog covers the traffic mix ROADMAP item 4 asks the service to be
//! honest about: a cache-friendly regular wave, a fully divergent sweep, a
//! dynamic-parallelism storm, a HyperQ-style multi-stream storm, and a
//! Monte-Carlo-style batch of many small independent replications (the
//! "multiple replications in parallel" profile from PAPERS.md). Every
//! kernel's control flow is a pure function of thread ids and the dataset
//! `salt` — never of global-memory *values* — so a request's `Report` is
//! independent of whatever previously ran on the worker's `Gpu`.

use std::sync::Arc;
use std::time::Instant;

use npar_sim::{
    DeviceConfig, GBuf, Gpu, KernelRef, LaunchConfig, SimError, Stream, ThreadCtx, ThreadKernel,
};
use serde::{Deserialize, Serialize};

/// Catalog kernel ids, in the order SERVING.md documents them.
pub const KERNELS: [&str; 5] = [
    "regular-wave",
    "divergent",
    "dp-storm",
    "stream-storm",
    "monte-carlo",
];

/// Per-shard queue and validation cap on `grid × block` threads per launch.
const MAX_THREADS_PER_LAUNCH: u64 = 1 << 22;
/// Validation cap on launches per request.
const MAX_LAUNCHES: u32 = 256;
/// Validation cap on host streams per request.
const MAX_STREAMS: u32 = 32;

/// Dataset descriptor: the shape of the work a request asks for. All fields
/// participate in the content key, so e.g. two Monte-Carlo batches that
/// differ only in `salt` are distinct requests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dataset {
    /// Problem size (elements); kernels index scratch buffers modulo this.
    pub n: u64,
    /// Blocks per launch.
    pub grid: u32,
    /// Threads per block.
    pub block: u32,
    /// Kernel launches the request batches before one synchronize.
    pub launches: u32,
    /// Host streams the launches round-robin across (`stream-storm`; the
    /// other kernels launch into the default stream and ignore this).
    pub streams: u32,
    /// Divergence / replication seed. Folded into per-thread trip counts,
    /// so distinct salts produce structurally distinct traces.
    pub salt: u64,
}

impl Default for Dataset {
    fn default() -> Self {
        Dataset {
            n: 1 << 14,
            grid: 16,
            block: 128,
            launches: 2,
            streams: 1,
            salt: 0,
        }
    }
}

/// One simulation request: everything needed to reproduce the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Catalog kernel id (one of [`KERNELS`]).
    pub kernel: String,
    /// Full device configuration the simulation runs under.
    pub device: DeviceConfig,
    /// Work-shape descriptor.
    pub dataset: Dataset,
}

impl Request {
    /// A request for catalog kernel `kernel` on the paper's K20 with the
    /// default dataset shape.
    pub fn new(kernel: &str) -> Self {
        Request {
            kernel: kernel.to_string(),
            device: DeviceConfig::kepler_k20(),
            dataset: Dataset::default(),
        }
    }
}

// FxHash-style string hashing (same constants as the memo fingerprints):
// deterministic across processes, unlike `DefaultHasher`, which the
// persistent cache requires — spilled keys must mean the same thing to the
// process that restores them.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;
const K: u64 = 0x517c_c1b7_2722_0a95;

fn fx(bytes: &[u8]) -> u64 {
    let mut h = SEED;
    for &b in bytes {
        h = (h.rotate_left(5) ^ u64::from(b)).wrapping_mul(K);
    }
    h
}

/// The 64-bit content-addressed key of a request: a hash of its canonical
/// JSON rendering (field order is declaration order, so the rendering — and
/// the key — is canonical). Identical requests collide by construction;
/// a hash collision between *different* requests would serve the wrong
/// cached report, the same (accepted, differential-tested) risk posture as
/// the DESIGN.md §8 fingerprint keys.
pub fn request_key(req: &Request) -> u64 {
    let text = serde_json::to_string(req).expect("request JSON is infallible");
    fx(text.as_bytes())
}

/// The device signature memo spills are grouped by: a hash of the canonical
/// `DeviceConfig` JSON, rendered as fixed-width hex. Memo entries replay
/// saved timing verbatim, so a snapshot must never be imported into a `Gpu`
/// with a different configuration.
pub fn device_sig(device: &DeviceConfig) -> String {
    let text = serde_json::to_string(device).expect("device JSON is infallible");
    format!("{:016x}", fx(text.as_bytes()))
}

/// Validate a request before admission: unknown kernel ids and absurd
/// shapes are rejected at submit time (`SubmitError::Invalid`) instead of
/// occupying a worker.
pub fn validate(req: &Request) -> Result<(), String> {
    if !KERNELS.contains(&req.kernel.as_str()) {
        return Err(format!(
            "unknown kernel {:?} (catalog: {})",
            req.kernel,
            KERNELS.join(", ")
        ));
    }
    let d = &req.dataset;
    if d.grid == 0 || d.block == 0 || d.launches == 0 || d.n == 0 {
        return Err("dataset dims must be nonzero".into());
    }
    if u64::from(d.grid) * u64::from(d.block) > MAX_THREADS_PER_LAUNCH {
        return Err(format!(
            "grid {} x block {} exceeds {MAX_THREADS_PER_LAUNCH} threads per launch",
            d.grid, d.block
        ));
    }
    if d.launches > MAX_LAUNCHES {
        return Err(format!("launches {} > {MAX_LAUNCHES}", d.launches));
    }
    if d.streams == 0 || d.streams > MAX_STREAMS {
        return Err(format!("streams {} outside 1..={MAX_STREAMS}", d.streams));
    }
    Ok(())
}

// --- catalog kernels -----------------------------------------------------

/// Regular wave: identical heavy-tailed trip ramp in every block (the
/// thread-mapped loop template on a regular input). All blocks after the
/// first replay from the memo cache.
struct RegularWave {
    x: GBuf<f32>,
    y: GBuf<f32>,
}

impl ThreadKernel for RegularWave {
    fn name(&self) -> &str {
        "serve-regular-wave"
    }
    fn parallel_trace(&self) -> bool {
        true
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let i = t.global_id();
        let lane = t.thread_idx() as usize % 32;
        let trips = if lane >= 28 { 8 + (lane - 28) * 16 } else { 3 };
        for j in 0..trips {
            t.ld(&self.x, i * 2 + lane * 499 + j);
            t.compute(1);
        }
        t.st(&self.y, i);
    }
}

/// Fully divergent sweep: per-thread trip counts and scattered reads keyed
/// by the dataset salt, so neither the memo cache nor a repeat launch hits.
struct DivergentSweep {
    n: usize,
    salt: u64,
    data: GBuf<f32>,
}

impl ThreadKernel for DivergentSweep {
    fn name(&self) -> &str {
        "serve-divergent"
    }
    fn parallel_trace(&self) -> bool {
        true
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let i = t.global_id() as u64 + self.salt;
        let trips = i.wrapping_mul(2_654_435_761) % 23;
        for j in 0..trips {
            let at = i.wrapping_mul(7_919).wrapping_add(j.wrapping_mul(104_729));
            t.ld(&self.data, (at % self.n as u64) as usize);
            t.compute(1);
        }
    }
}

/// Child grid of the DP storm: a short regular sweep.
struct StormChild {
    data: GBuf<f32>,
}

impl ThreadKernel for StormChild {
    fn name(&self) -> &str {
        "serve-dp-child"
    }
    fn parallel_trace(&self) -> bool {
        true
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let i = t.global_id();
        for j in 0..3 {
            t.ld(&self.data, i + j * t.grid_threads());
            t.compute(1);
        }
        t.st(&self.data, i);
    }
}

/// DP storm parent: block leaders fire-and-forget child grids, with a
/// salt-dependent divergence tail so distinct salts stay distinct work.
struct StormParent {
    child: KernelRef,
    salt: u64,
}

impl ThreadKernel for StormParent {
    fn name(&self) -> &str {
        "serve-dp-storm"
    }
    fn parallel_trace(&self) -> bool {
        // Fire-and-forget launches joined at grid completion only.
        true
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        if t.is_leader() {
            t.launch(&self.child, LaunchConfig::new(4, 64), Stream::Default);
        }
        let spin = (t.global_id() as u64 + self.salt) % 5;
        t.compute(1 + spin as u32);
    }
}

/// Uniform short kernel for the multi-stream storm: tiny identical traces
/// whose grids overlap across host streams (HyperQ profile; the partitioned
/// timing pass commits one domain per stream).
struct StreamBurst {
    data: GBuf<f32>,
}

impl ThreadKernel for StreamBurst {
    fn name(&self) -> &str {
        "serve-stream-storm"
    }
    fn parallel_trace(&self) -> bool {
        true
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let i = t.global_id();
        t.ld(&self.data, i);
        t.compute(2);
        t.st(&self.data, i);
    }
}

/// One Monte-Carlo replication batch: each warp walks an independent
/// replication whose path length comes from an LCG over (salt, warp id) —
/// many small independent sims, mildly divergent across warps, uniform
/// within one (the PAPERS.md warp-per-replication packing).
struct MonteCarlo {
    out: GBuf<f32>,
    salt: u64,
}

impl ThreadKernel for MonteCarlo {
    fn name(&self) -> &str {
        "serve-monte-carlo"
    }
    fn parallel_trace(&self) -> bool {
        true
    }
    fn run_thread(&self, t: &mut ThreadCtx<'_, '_>) {
        let warp = t.global_id() / 32;
        let steps = self
            .salt
            .wrapping_add(warp as u64)
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407)
            >> 58; // top 6 bits: 0..=63 steps
        for s in 0..steps {
            t.compute(2);
            if s % 4 == 0 {
                t.ld(&self.out, warp);
            }
        }
        if t.thread_idx() % 32 == 0 {
            t.st(&self.out, warp);
        }
    }
}

/// Outcome of driving one request's launch batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Drive {
    /// Every launch was queued; the caller synchronizes and keeps the
    /// report.
    Completed,
    /// The cooperative deadline passed between launches; the caller
    /// synchronizes to flush the partial batch and discards it.
    DeadlineHit,
}

/// Queue `req`'s launch batch on `gpu`, checking the cooperative `deadline`
/// between launches (a launch in progress is never interrupted — see
/// SERVING.md on timeout semantics). Does **not** synchronize; the caller
/// owns the report or the discard.
pub fn drive(gpu: &mut Gpu, req: &Request, deadline: Option<Instant>) -> Result<Drive, SimError> {
    let d = &req.dataset;
    let cfg = LaunchConfig::new(d.grid, d.block);
    let threads = cfg.total_threads() as usize;
    let over = |deadline: Option<Instant>| deadline.is_some_and(|dl| Instant::now() > dl);
    match req.kernel.as_str() {
        "regular-wave" => {
            let x = gpu.alloc::<f32>(threads * 2 + 31 * 499 + 200);
            let y = gpu.alloc::<f32>(threads);
            let k = Arc::new(RegularWave { x, y });
            for _ in 0..d.launches {
                if over(deadline) {
                    return Ok(Drive::DeadlineHit);
                }
                gpu.launch(k.clone(), cfg)?;
            }
        }
        "divergent" => {
            let n = d.n as usize;
            let data = gpu.alloc::<f32>(n);
            for l in 0..d.launches {
                if over(deadline) {
                    return Ok(Drive::DeadlineHit);
                }
                let k = Arc::new(DivergentSweep {
                    n,
                    salt: d.salt.wrapping_add(u64::from(l)),
                    data,
                });
                gpu.launch(k, cfg)?;
            }
        }
        "dp-storm" => {
            let data = gpu.alloc::<f32>(4 * 64 * 3 + 4 * 64);
            let child: KernelRef = Arc::new(StormChild { data });
            let k = Arc::new(StormParent {
                child,
                salt: d.salt,
            });
            for _ in 0..d.launches {
                if over(deadline) {
                    return Ok(Drive::DeadlineHit);
                }
                gpu.launch(k.clone(), cfg)?;
            }
        }
        "stream-storm" => {
            let data = gpu.alloc::<f32>(threads);
            let k = Arc::new(StreamBurst { data });
            for s in 0..d.streams {
                for _ in 0..d.launches {
                    if over(deadline) {
                        return Ok(Drive::DeadlineHit);
                    }
                    gpu.launch_in(k.clone(), cfg, Stream::Slot(s))?;
                }
            }
        }
        "monte-carlo" => {
            let warps = threads.div_ceil(32);
            let out = gpu.alloc::<f32>(warps.max(1));
            for l in 0..d.launches {
                if over(deadline) {
                    return Ok(Drive::DeadlineHit);
                }
                let k = Arc::new(MonteCarlo {
                    out,
                    salt: d.salt.wrapping_add(u64::from(l) << 32),
                });
                gpu.launch(k, cfg)?;
            }
        }
        other => unreachable!("validate() admits only catalog kernels, got {other:?}"),
    }
    Ok(Drive::Completed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_content_addressed() {
        let a = Request::new("regular-wave");
        let mut b = Request::new("regular-wave");
        assert_eq!(request_key(&a), request_key(&b));
        b.dataset.salt = 1;
        assert_ne!(request_key(&a), request_key(&b));
        let c = Request::new("divergent");
        assert_ne!(request_key(&a), request_key(&c));
    }

    #[test]
    fn device_sig_distinguishes_configs() {
        assert_eq!(
            device_sig(&DeviceConfig::kepler_k20()),
            device_sig(&DeviceConfig::kepler_k20())
        );
        assert_ne!(
            device_sig(&DeviceConfig::kepler_k20()),
            device_sig(&DeviceConfig::tiny())
        );
    }

    #[test]
    fn validate_rejects_bad_requests() {
        assert!(validate(&Request::new("regular-wave")).is_ok());
        assert!(validate(&Request::new("nope")).is_err());
        let mut r = Request::new("divergent");
        r.dataset.grid = 0;
        assert!(validate(&r).is_err());
        let mut r = Request::new("divergent");
        r.dataset.launches = MAX_LAUNCHES + 1;
        assert!(validate(&r).is_err());
        let mut r = Request::new("stream-storm");
        r.dataset.streams = 0;
        assert!(validate(&r).is_err());
        let mut r = Request::new("monte-carlo");
        r.dataset.grid = 1 << 16;
        r.dataset.block = 1 << 10;
        assert!(validate(&r).is_err());
    }

    #[test]
    fn request_json_roundtrip() {
        let mut r = Request::new("monte-carlo");
        r.dataset.salt = 0xdead_beef;
        r.device = DeviceConfig::tiny();
        let text = serde_json::to_string(&r).unwrap();
        let back: Request = serde_json::from_str(&text).unwrap();
        assert_eq!(r, back);
        assert_eq!(request_key(&r), request_key(&back));
    }

    #[test]
    fn every_catalog_kernel_drives_and_reports() {
        for kernel in KERNELS {
            let mut req = Request::new(kernel);
            req.device = DeviceConfig::tiny();
            req.dataset = Dataset {
                n: 256,
                grid: 2,
                block: 64,
                launches: 1,
                streams: 2,
                salt: 7,
            };
            let mut gpu = Gpu::new(req.device.clone(), Default::default());
            assert_eq!(
                drive(&mut gpu, &req, None).unwrap(),
                Drive::Completed,
                "{kernel}"
            );
            let report = gpu.synchronize();
            assert!(report.cycles > 0.0, "{kernel} produced no work");
        }
    }

    #[test]
    fn deadline_in_the_past_stops_between_launches() {
        let mut req = Request::new("regular-wave");
        req.device = DeviceConfig::tiny();
        req.dataset.grid = 2;
        req.dataset.block = 64;
        let mut gpu = Gpu::new(req.device.clone(), Default::default());
        let past = Instant::now() - std::time::Duration::from_millis(1);
        assert_eq!(
            drive(&mut gpu, &req, Some(past)).unwrap(),
            Drive::DeadlineHit
        );
        // The partial batch flushes cleanly.
        let _ = gpu.synchronize();
    }
}
