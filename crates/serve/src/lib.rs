//! npar-serve: a sharded simulation service over the npar-sim engine.
//!
//! The ROADMAP item-1 refactor: instead of one batch binary, a long-running
//! [`Service`] accepts thousands of concurrent simulation requests (catalog
//! kernel id + full `DeviceConfig` + dataset descriptor — see
//! [`workload::Request`]), shards them across a pool of worker threads each
//! owning its own `Gpu` instances, and serves repeats without simulating:
//!
//! * **In-flight dedupe** — requests are content-addressed
//!   ([`workload::request_key`]); a request identical to one already queued
//!   or running just registers as a waiter and receives the same report.
//! * **Result cache** — completed reports are kept (and persisted) by key;
//!   a repeat request is answered immediately.
//! * **Memo warm start** — on shutdown every worker `Gpu`'s alignment memo
//!   cache (DESIGN.md §8) is exported and spilled to disk next to the
//!   results ([`cache`]); on boot the spill warm-starts the fleet, so even
//!   *novel* requests over familiar kernel shapes replay cached alignment.
//!
//! Admission control is a bounded per-shard queue: a full queue sheds the
//! request at submit time ([`SubmitError::Shed`]) instead of letting the
//! backlog grow without bound. Per-job timeouts are cooperative: a job past
//! its deadline when dequeued — or between the launches of its batch — is
//! answered [`Response::TimedOut`] and its partial work discarded.
//!
//! Everything is std-only (threads + `Mutex`/`Condvar` + channels, in the
//! style of `crates/par`); see SERVING.md for the operator view and
//! DESIGN.md §14 for the determinism argument.
//!
//! ```
//! use npar_serve::{Response, ServeConfig, Service, Source, workload::Request};
//!
//! let service = Service::start(ServeConfig {
//!     shards: 1,
//!     ..ServeConfig::default()
//! });
//! let mut req = Request::new("regular-wave");
//! req.device = npar_sim::DeviceConfig::tiny();
//! req.dataset.grid = 2;
//! req.dataset.block = 64;
//! let first = service.submit(&req).unwrap().wait();
//! let second = service.submit(&req).unwrap().wait();
//! let (Response::Done { report: a, .. }, Response::Done { source, report: b }) =
//!     (first, second)
//! else {
//!     panic!("both requests complete");
//! };
//! assert_eq!(source, Source::Cache); // repeat answered from cache
//! assert_eq!(a, b); // …with the identical report
//! service.join();
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use npar_sim::{CostModel, Gpu, MemoSnapshot, Report, SimStats};
use serde::{Deserialize, Serialize};

pub mod cache;
pub mod workload;

pub use workload::{device_sig, request_key, Request};

/// Service configuration. `Default` reads the `NPAR_SHARDS` and
/// `NPAR_SERVE_CACHE` environment variables (see SERVING.md).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards (threads), each owning its own `Gpu` instances.
    /// Requests route to shard `key % shards`.
    pub shards: usize,
    /// Bounded queue capacity per shard; a submit to a full queue sheds.
    pub queue_cap: usize,
    /// Cooperative per-job timeout, measured from submission. `None`
    /// disables timeouts.
    pub timeout: Option<Duration>,
    /// Directory for the persistent spill ([`cache`]); `None` disables
    /// persistence.
    pub cache_dir: Option<PathBuf>,
    /// Ignore an existing spill at boot (still spills on `join`).
    pub cold: bool,
    /// Host threads per worker `Gpu` (`Gpu::with_threads`). Kept at 1 by
    /// default: the shards themselves are the parallelism.
    pub gpu_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let shards = std::env::var("NPAR_SHARDS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        ServeConfig {
            shards,
            queue_cap: 256,
            timeout: Some(Duration::from_secs(2)),
            cache_dir: std::env::var("NPAR_SERVE_CACHE").ok().map(PathBuf::from),
            cold: false,
            gpu_threads: 1,
        }
    }
}

/// Where a completed response came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Source {
    /// Simulated by a worker for this request.
    Fresh,
    /// Answered from the result cache (in-memory or restored from spill).
    Cache,
    /// Coalesced onto an identical in-flight request.
    Dedup,
}

/// Terminal outcome of one submitted request.
#[derive(Debug, Clone)]
pub enum Response {
    /// The simulation's report. Host-observational `Report::sim` stats are
    /// zeroed so the bytes are a pure function of the request — a cache hit
    /// is byte-identical to a cold run (DESIGN.md §14).
    Done {
        /// How the response was produced.
        source: Source,
        /// The (shared) report.
        report: Arc<Report>,
    },
    /// The job passed its deadline before or between launches.
    TimedOut,
    /// The simulation failed (e.g. a Strict hazard or an invalid launch).
    Failed(String),
}

/// Why a submit was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The target shard's queue is full (admission control).
    Shed,
    /// The request failed validation ([`workload::validate`]).
    Invalid(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Shed => write!(f, "queue full, request shed"),
            SubmitError::Invalid(why) => write!(f, "invalid request: {why}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A pending response: hold it and [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    /// The request's content-addressed key.
    pub key: u64,
    rx: Receiver<Response>,
}

impl Ticket {
    /// Block until the response arrives. Every admitted request gets
    /// exactly one response; a worker lost to a panic surfaces as
    /// [`Response::Failed`].
    pub fn wait(self) -> Response {
        self.rx
            .recv()
            .unwrap_or_else(|_| Response::Failed("service worker disconnected".into()))
    }
}

/// Per-shard service counters, surfaced like [`SimStats`]: observational,
/// monotone, and cheap enough to keep always-on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Jobs simulated to completion on this shard.
    pub served: u64,
    /// Requests coalesced onto an identical in-flight job.
    pub deduped: u64,
    /// Requests answered from the result cache.
    pub cache_hit: u64,
    /// Requests refused because the shard queue was full.
    pub shed: u64,
    /// Jobs that passed their deadline and were discarded.
    pub timeout: u64,
    /// Jobs whose simulation returned an error.
    pub failed: u64,
}

impl ServeStats {
    /// Fold another shard's counters into this one.
    pub fn merge(&mut self, other: &ServeStats) {
        self.served += other.served;
        self.deduped += other.deduped;
        self.cache_hit += other.cache_hit;
        self.shed += other.shed;
        self.timeout += other.timeout;
        self.failed += other.failed;
    }

    /// Requests that received a `Done` response.
    pub fn answered(&self) -> u64 {
        self.served + self.deduped + self.cache_hit
    }
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "served {} | deduped {} | cache_hit {} | shed {} | timeout {} | failed {}",
            self.served, self.deduped, self.cache_hit, self.shed, self.timeout, self.failed
        )
    }
}

/// Lock-free per-shard counters (the submit path must not contend on a
/// stats lock).
#[derive(Default)]
struct ShardCounters {
    served: AtomicU64,
    deduped: AtomicU64,
    cache_hit: AtomicU64,
    shed: AtomicU64,
    timeout: AtomicU64,
    failed: AtomicU64,
}

impl ShardCounters {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            served: self.served.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
            cache_hit: self.cache_hit.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            timeout: self.timeout.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
        }
    }
}

struct Job {
    key: u64,
    req: Request,
    enqueued: Instant,
}

struct Shard {
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
}

/// The dedupe + result-cache state, under ONE lock so the
/// check-cache/check-inflight/enqueue sequence is atomic: a key is always
/// in exactly one of {results, inflight, absent}. Lock order: `state`
/// before a shard queue; no path takes them in the other order.
struct CacheState {
    results: BTreeMap<u64, Arc<Report>>,
    /// Waiters per in-flight key; the first is the submitter that enqueued
    /// the job (`Source::Fresh`), the rest are deduped followers.
    inflight: BTreeMap<u64, Vec<(Sender<Response>, Source)>>,
}

struct Inner {
    cfg: ServeConfig,
    shards: Vec<Shard>,
    state: Mutex<CacheState>,
    counters: Vec<ShardCounters>,
    stop: AtomicBool,
    /// Warm-start memo snapshots by device signature, read-only after boot.
    warm: BTreeMap<String, MemoSnapshot>,
    /// Memo exports parked by exiting workers, merged into the spill.
    parked_memo: Mutex<Vec<(String, MemoSnapshot)>>,
}

/// The running service: worker threads plus the shared state. See the
/// crate-level docs for the architecture and SERVING.md for operations.
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Service {
    /// Boot the service: load the spill (unless `cold` or no `cache_dir`),
    /// then start one worker thread per shard.
    pub fn start(cfg: ServeConfig) -> Service {
        let shards = cfg.shards.max(1);
        let mut results = BTreeMap::new();
        let mut warm: BTreeMap<String, MemoSnapshot> = BTreeMap::new();
        if let (Some(dir), false) = (&cfg.cache_dir, cfg.cold) {
            if let Some(spill) = cache::load(dir) {
                for (key, report) in spill.results {
                    results.insert(key, Arc::new(report));
                }
                for (sig, snap) in spill.memo {
                    warm.entry(sig).or_default().merge(&snap);
                }
            }
        }
        let inner = Arc::new(Inner {
            shards: (0..shards)
                .map(|_| Shard {
                    queue: Mutex::new(VecDeque::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            state: Mutex::new(CacheState {
                results,
                inflight: BTreeMap::new(),
            }),
            counters: (0..shards).map(|_| ShardCounters::default()).collect(),
            stop: AtomicBool::new(false),
            warm,
            parked_memo: Mutex::new(Vec::new()),
            cfg,
        });
        let workers = (0..shards)
            .map(|idx| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("npar-serve-{idx}"))
                    .spawn(move || worker(&inner, idx))
                    .expect("spawn shard worker")
            })
            .collect();
        Service { inner, workers }
    }

    /// Submit a request. Returns a [`Ticket`] to wait on, or an error if
    /// the request is invalid or the target shard's queue is full.
    pub fn submit(&self, req: &Request) -> Result<Ticket, SubmitError> {
        workload::validate(req).map_err(SubmitError::Invalid)?;
        let key = request_key(req);
        let shard_idx = (key % self.inner.shards.len() as u64) as usize;
        let counters = &self.inner.counters[shard_idx];
        let (tx, rx) = mpsc::channel();

        let mut state = self.inner.state.lock().expect("serve state");
        if let Some(report) = state.results.get(&key) {
            counters.cache_hit.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(Response::Done {
                source: Source::Cache,
                report: Arc::clone(report),
            });
            return Ok(Ticket { key, rx });
        }
        if let Some(waiters) = state.inflight.get_mut(&key) {
            counters.deduped.fetch_add(1, Ordering::Relaxed);
            waiters.push((tx, Source::Dedup));
            return Ok(Ticket { key, rx });
        }
        // New key: admit or shed. The shard queue nests under the state
        // lock (documented order), keeping insert-inflight + enqueue atomic.
        let shard = &self.inner.shards[shard_idx];
        let mut queue = shard.queue.lock().expect("shard queue");
        if queue.len() >= self.inner.cfg.queue_cap.max(1) {
            counters.shed.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Shed);
        }
        state.inflight.insert(key, vec![(tx, Source::Fresh)]);
        queue.push_back(Job {
            key,
            req: req.clone(),
            enqueued: Instant::now(),
        });
        drop(queue);
        shard.cv.notify_one();
        Ok(Ticket { key, rx })
    }

    /// Per-shard counter snapshots, index-aligned with the shards.
    pub fn stats(&self) -> Vec<ServeStats> {
        self.inner
            .counters
            .iter()
            .map(ShardCounters::snapshot)
            .collect()
    }

    /// All shards' counters folded together.
    pub fn total_stats(&self) -> ServeStats {
        let mut total = ServeStats::default();
        for s in self.stats() {
            total.merge(&s);
        }
        total
    }

    /// Number of results currently in the (in-memory) result cache.
    pub fn cached_results(&self) -> usize {
        self.inner.state.lock().expect("serve state").results.len()
    }

    /// Drain every queued and in-flight job, stop the workers, spill the
    /// result + memo cache (when configured), and return the folded stats.
    pub fn join(mut self) -> ServeStats {
        // Drain: a key leaves `inflight` only when its response is sent.
        loop {
            let idle = {
                let state = self.inner.state.lock().expect("serve state");
                state.inflight.is_empty()
            } && self
                .inner
                .shards
                .iter()
                .all(|s| s.queue.lock().expect("shard queue").is_empty());
            if idle {
                break;
            }
            thread::sleep(Duration::from_micros(200));
        }
        self.inner.stop.store(true, Ordering::SeqCst);
        for shard in &self.inner.shards {
            shard.cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(dir) = &self.inner.cfg.cache_dir {
            let spill = self.build_spill();
            if let Err(e) = cache::save(dir, &spill) {
                eprintln!(
                    "npar-serve: failed to spill cache to {}: {e}",
                    dir.display()
                );
            }
        }
        self.inner
            .counters
            .iter()
            .fold(ServeStats::default(), |mut total, c| {
                total.merge(&c.snapshot());
                total
            })
    }

    /// Assemble the spill: the whole result cache plus the workers' parked
    /// memo snapshots merged per device signature (warm-start entries the
    /// workers never re-built ride along via the boot snapshots).
    fn build_spill(&self) -> cache::Spill {
        let results = {
            let state = self.inner.state.lock().expect("serve state");
            state
                .results
                .iter()
                .map(|(&key, report)| (key, (**report).clone()))
                .collect()
        };
        let mut by_sig: BTreeMap<String, MemoSnapshot> = self.inner.warm.clone();
        for (sig, snap) in self
            .inner
            .parked_memo
            .lock()
            .expect("parked memo")
            .drain(..)
        {
            by_sig.entry(sig).or_default().merge(&snap);
        }
        cache::Spill {
            results,
            memo: by_sig.into_iter().collect(),
        }
    }
}

/// One shard's worker loop: pop jobs, simulate on a per-device-signature
/// `Gpu`, publish results, answer waiters.
fn worker(inner: &Inner, shard_idx: usize) {
    let shard = &inner.shards[shard_idx];
    let counters = &inner.counters[shard_idx];
    let mut gpus: BTreeMap<String, Gpu> = BTreeMap::new();

    loop {
        let job = {
            let mut queue = shard.queue.lock().expect("shard queue");
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if inner.stop.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shard.cv.wait(queue).expect("shard queue");
            }
        };
        let Some(job) = job else { break };

        let deadline = inner.cfg.timeout.map(|t| job.enqueued + t);
        if deadline.is_some_and(|dl| Instant::now() > dl) {
            counters.timeout.fetch_add(1, Ordering::Relaxed);
            finish(inner, job.key, &Response::TimedOut, None);
            continue;
        }

        let sig = device_sig(&job.req.device);
        let gpu = gpus.entry(sig.clone()).or_insert_with(|| {
            let mut gpu = Gpu::new(job.req.device.clone(), CostModel::default())
                .with_threads(inner.cfg.gpu_threads.max(1));
            if let Some(snap) = inner.warm.get(&sig) {
                gpu.import_memo(snap);
            }
            gpu
        });

        match workload::drive(gpu, &job.req, deadline) {
            Ok(workload::Drive::Completed) => {
                let mut report = gpu.synchronize();
                // Host-observational stats are per-process, not per-request
                // content; zero them so responses are a pure function of
                // the request (shard counters carry the service-side view).
                report.sim = SimStats::default();
                counters.served.fetch_add(1, Ordering::Relaxed);
                let report = Arc::new(report);
                finish(
                    inner,
                    job.key,
                    &Response::Done {
                        source: Source::Fresh,
                        report: Arc::clone(&report),
                    },
                    Some(report),
                );
            }
            Ok(workload::Drive::DeadlineHit) => {
                // Flush the partial batch; its report is discarded.
                let _ = gpu.synchronize();
                counters.timeout.fetch_add(1, Ordering::Relaxed);
                finish(inner, job.key, &Response::TimedOut, None);
            }
            Err(e) => {
                let _ = gpu.synchronize();
                counters.failed.fetch_add(1, Ordering::Relaxed);
                finish(inner, job.key, &Response::Failed(e.to_string()), None);
            }
        }
    }

    // Shutdown: park this shard's memo caches for the spill.
    let mut parked = inner.parked_memo.lock().expect("parked memo");
    for (sig, gpu) in gpus {
        let snap = gpu.export_memo();
        if !snap.is_empty() {
            parked.push((sig, snap));
        }
    }
}

/// Publish a job's terminal response: cache it (if `Done`), retire the
/// in-flight entry, and answer every waiter — followers with their own
/// `Dedup` source.
fn finish(inner: &Inner, key: u64, response: &Response, cache_as: Option<Arc<Report>>) {
    let waiters = {
        let mut state = inner.state.lock().expect("serve state");
        if let Some(report) = cache_as {
            state.results.insert(key, report);
        }
        state.inflight.remove(&key).unwrap_or_default()
    };
    for (tx, source) in waiters {
        let resp = match (response, source) {
            (Response::Done { report, .. }, source) => Response::Done {
                source,
                report: Arc::clone(report),
            },
            (other, _) => other.clone(),
        };
        // A dropped ticket is fine; the caller stopped caring.
        let _ = tx.send(resp);
    }
}
