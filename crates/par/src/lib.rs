//! npar-par — a minimal work-stealing thread pool for the simulator's
//! parallel host execution (DESIGN.md §10).
//!
//! The build environment is offline, so this is a from-scratch pool on
//! `std::thread` + `Mutex`/`Condvar` only. It is deliberately small and
//! shaped around what the simulation engine needs:
//!
//! * **Per-lane worker state.** Each lane (OS thread) owns a `W` built by a
//!   factory on that thread — alignment scratch buffers, recycled trace
//!   pools — handed `&mut` to every task it runs. No `Sync` bound on `W`.
//! * **Scoped tasks over borrowed data.** [`Pool::scope`] runs closures
//!   that may borrow from the caller's stack frame; the scope does not
//!   return until every task (including tasks spawned *by* tasks) has
//!   finished, which is what makes the lifetime erasure sound.
//! * **Nested submission without deadlock.** Tasks receive a [`Scope`]
//!   handle and may spawn further tasks from worker threads (a parent
//!   block enqueueing its children). Only the scope *owner* ever blocks
//!   waiting for completion, and while waiting it helps execute queued
//!   tasks — workers never wait on other tasks, so there is no cycle to
//!   deadlock on.
//! * **Work stealing.** Each lane has its own deque; owners pop LIFO (hot
//!   caches for freshly split subranges), thieves steal FIFO (the oldest,
//!   typically largest pending task).
//!
//! Determinism note: the pool makes **no** ordering promises — tasks run
//! whenever a lane grabs them. Callers that need deterministic output
//! (the engine's bit-identical reports) must write results into
//! per-task slots and merge them in a canonical order afterwards.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A queued task, type-erased to `'static`. Soundness: tasks are only
/// created by [`Scope::spawn`], which transmutes away the scope's `'env`
/// lifetime, and [`Pool::scope`] does not return until every task has run
/// to completion — so the borrows a task captures outlive its execution.
type Task<W> = Box<dyn FnOnce(&Scope<'static, W>, &mut W) + Send + 'static>;

struct Shared<W> {
    /// One deque per lane; lane 0 belongs to the pool owner's thread.
    queues: Vec<Mutex<VecDeque<Task<W>>>>,
    /// Wake generation counter: bumped (under the lock) on every event a
    /// sleeper could be waiting for — spawn, scope drain, shutdown. A lane
    /// reads the generation *before* scanning the queues and sleeps only
    /// while it is unchanged, so a spawn between scan and sleep is never
    /// missed.
    sleep: Mutex<u64>,
    cv: Condvar,
    /// Tasks spawned into the current scope and not yet finished
    /// (queued + running). The scope owner waits for zero.
    pending: AtomicUsize,
    shutdown: AtomicBool,
    /// First panic payload captured from a task; rethrown by the scope.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl<W> Shared<W> {
    fn bump(&self) {
        let mut gen = self.sleep.lock().unwrap();
        *gen = gen.wrapping_add(1);
        drop(gen);
        self.cv.notify_all();
    }

    /// Pop from our own deque (LIFO) or steal from another lane (FIFO).
    fn grab(&self, lane: usize) -> Option<Task<W>> {
        if let Some(t) = self.queues[lane].lock().unwrap().pop_back() {
            return Some(t);
        }
        let n = self.queues.len();
        for off in 1..n {
            let victim = (lane + off) % n;
            if let Some(t) = self.queues[victim].lock().unwrap().pop_front() {
                return Some(t);
            }
        }
        None
    }

    /// Run one task, capturing panics; decrements `pending` afterwards and
    /// wakes the scope owner when the count drains to zero.
    fn run(&self, task: Task<W>, scope: &Scope<'_, W>, ctx: &mut W) {
        // The `'env` parameter is phantom; reborrowing as `'static` only
        // affects the fiction the erased task was stored under.
        let scope: &Scope<'static, W> = unsafe { std::mem::transmute(scope) };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(scope, ctx))) {
            let mut slot = self.panic.lock().unwrap();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.bump();
        }
    }
}

/// Handle for spawning tasks into the active scope. Tasks receive the
/// handle of the lane running them, so nested spawns push onto that
/// lane's own deque (cheap, and stealable by everyone else).
pub struct Scope<'env, W> {
    shared: Arc<Shared<W>>,
    lane: usize,
    /// Invariant in `'env` (a scope must not be coerced to a shorter or
    /// longer environment).
    _env: PhantomData<fn(&'env ()) -> &'env ()>,
}

impl<'env, W> Scope<'env, W> {
    /// The lane (0 = scope owner's thread) this handle belongs to.
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// Total lanes in the pool (owner + workers).
    pub fn lanes(&self) -> usize {
        self.shared.queues.len()
    }

    /// Queue `f` for execution by any lane. May be called from inside a
    /// running task (nested submission). `f` must not block waiting for
    /// other tasks — only the scope owner joins.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'env, W>, &mut W) + Send + 'env,
    {
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        #[allow(clippy::type_complexity)] // spelled out: this is the erasure site
        let task: Box<dyn FnOnce(&Scope<'env, W>, &mut W) + Send + 'env> = Box::new(f);
        // Erase 'env; see the soundness note on `Task`.
        let task: Task<W> = unsafe { std::mem::transmute(task) };
        self.shared.queues[self.lane]
            .lock()
            .unwrap()
            .push_back(task);
        self.shared.bump();
    }
}

/// The pool: `lanes` execution lanes, one of which (lane 0) is the thread
/// that owns the pool and runs [`Pool::scope`].
pub struct Pool<W> {
    shared: Arc<Shared<W>>,
    /// Lane 0's worker state, lent to each scope.
    main_ctx: Mutex<W>,
    workers: Vec<JoinHandle<()>>,
    /// Guards against re-entrant scopes (one scope at a time per pool).
    in_scope: AtomicBool,
}

impl<W: 'static> Pool<W> {
    /// Build a pool with `lanes` total lanes (clamped to at least 1).
    /// `factory(lane)` constructs each lane's worker state *on that lane's
    /// thread*; lane 0's state is built on the calling thread.
    pub fn new<F>(lanes: usize, factory: F) -> Self
    where
        F: Fn(usize) -> W + Send + Sync + 'static,
    {
        let lanes = lanes.max(1);
        let shared = Arc::new(Shared {
            queues: (0..lanes).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(0),
            cv: Condvar::new(),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panic: Mutex::new(None),
        });
        let factory = Arc::new(factory);
        let main_ctx = Mutex::new(factory(0));
        let workers = (1..lanes)
            .map(|lane| {
                let shared = Arc::clone(&shared);
                let factory = Arc::clone(&factory);
                std::thread::Builder::new()
                    .name(format!("npar-worker-{lane}"))
                    // Alignment/scan tasks are shallow; 16 MiB leaves slack
                    // for debug builds.
                    .stack_size(16 << 20)
                    .spawn(move || {
                        let mut ctx = factory(lane);
                        worker_loop(&shared, lane, &mut ctx);
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            main_ctx,
            workers,
            in_scope: AtomicBool::new(false),
        }
    }

    /// Total lanes (owner + workers).
    pub fn lanes(&self) -> usize {
        self.shared.queues.len()
    }

    /// Run `f` with a [`Scope`] and lane 0's worker state, then execute
    /// queued tasks on this thread until *every* task spawned into the
    /// scope (transitively) has finished. Panics from tasks are re-thrown
    /// here after the scope drains.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'env, W>, &mut W) -> R) -> R {
        assert!(
            !self.in_scope.swap(true, Ordering::AcqRel),
            "Pool::scope is not reentrant (one scope at a time)"
        );
        let mut ctx = self.main_ctx.lock().unwrap();
        let scope = Scope {
            shared: Arc::clone(&self.shared),
            lane: 0,
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope, &mut ctx)));
        // Help execute until the scope is fully drained — even if `f`
        // panicked, outstanding tasks still borrow from its environment
        // and must finish before we unwind.
        loop {
            let gen = *self.shared.sleep.lock().unwrap();
            if let Some(task) = self.shared.grab(0) {
                self.shared.run(task, &scope, &mut ctx);
                continue;
            }
            if self.shared.pending.load(Ordering::Acquire) == 0 {
                break;
            }
            let mut guard = self.shared.sleep.lock().unwrap();
            while *guard == gen && self.shared.pending.load(Ordering::Acquire) != 0 {
                guard = self.shared.cv.wait(guard).unwrap();
            }
        }
        drop(ctx);
        self.in_scope.store(false, Ordering::Release);
        let panic = self.shared.panic.lock().unwrap().take();
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }
}

impl<W> Drop for Pool<W> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.bump();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop<W>(shared: &Arc<Shared<W>>, lane: usize, ctx: &mut W) {
    let scope = Scope {
        shared: Arc::clone(shared),
        lane,
        _env: PhantomData,
    };
    loop {
        let gen = *shared.sleep.lock().unwrap();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        if let Some(task) = shared.grab(lane) {
            shared.run(task, &scope, ctx);
            continue;
        }
        let mut guard = shared.sleep.lock().unwrap();
        while *guard == gen && !shared.shutdown.load(Ordering::Acquire) {
            guard = shared.cv.wait(guard).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn pool(lanes: usize) -> Pool<usize> {
        Pool::new(lanes, |lane| lane)
    }

    #[test]
    fn runs_tasks_over_borrowed_data() {
        let p = pool(4);
        let data: Vec<u64> = (0..100).collect();
        let sum = AtomicU64::new(0);
        p.scope(|scope, _w| {
            for chunk in data.chunks(7) {
                let sum = &sum;
                scope.spawn(move |_, _| {
                    sum.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), (0..100).sum::<u64>());
    }

    #[test]
    fn single_lane_pool_runs_everything_on_owner() {
        let p = pool(1);
        let count = AtomicU64::new(0);
        p.scope(|scope, _| {
            for _ in 0..32 {
                let count = &count;
                scope.spawn(move |_, _| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn nested_spawns_from_workers_complete() {
        // Binary range splitting: every task spawns two children until the
        // range is a leaf — the pattern the engine uses for block ranges.
        let p = pool(8);
        let hits = AtomicU64::new(0);
        fn split<'env>(scope: &Scope<'env, usize>, lo: u64, hi: u64, hits: &'env AtomicU64) {
            if hi - lo <= 1 {
                hits.fetch_add(lo, Ordering::Relaxed);
                return;
            }
            let mid = lo + (hi - lo) / 2;
            let (h1, h2) = (hits, hits);
            scope.spawn(move |s, _| split(s, lo, mid, h1));
            scope.spawn(move |s, _| split(s, mid, hi, h2));
        }
        p.scope(|scope, _| split(scope, 0, 1000, &hits));
        assert_eq!(hits.load(Ordering::Relaxed), (0..1000).sum::<u64>());
    }

    #[test]
    fn worker_state_is_per_lane() {
        let p = pool(4);
        let seen = Mutex::new(Vec::new());
        p.scope(|scope, w| {
            seen.lock().unwrap().push(*w); // lane 0's state
            for _ in 0..64 {
                let seen = &seen;
                scope.spawn(move |s, w| {
                    assert_eq!(*w, s.lane());
                    seen.lock().unwrap().push(*w);
                });
            }
        });
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 65);
        assert!(seen.iter().all(|&l| l < 4));
    }

    #[test]
    fn scope_returns_closure_value() {
        let p = pool(2);
        let v = p.scope(|_, w| *w + 41);
        assert_eq!(v, 41);
    }

    #[test]
    fn sequential_scopes_reuse_the_pool() {
        let p = pool(3);
        for round in 0..10u64 {
            let total = AtomicU64::new(0);
            p.scope(|scope, _| {
                for i in 0..20 {
                    let total = &total;
                    scope.spawn(move |_, _| {
                        total.fetch_add(round * i, Ordering::Relaxed);
                    });
                }
            });
            assert_eq!(total.load(Ordering::Relaxed), round * (0..20).sum::<u64>());
        }
    }

    #[test]
    fn task_panic_propagates_after_drain() {
        let p = pool(4);
        let done = AtomicU64::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            p.scope(|scope, _| {
                for i in 0..16 {
                    let done = &done;
                    scope.spawn(move |_, _| {
                        if i == 7 {
                            panic!("boom");
                        }
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err());
        // All non-panicking tasks still ran (the scope drains before
        // rethrowing), and the pool remains usable.
        assert_eq!(done.load(Ordering::Relaxed), 15);
        let ok = p.scope(|_, _| 5);
        assert_eq!(ok, 5);
    }
}
