//! Fixed-width result tables, printed like the paper's figures/tables and
//! also rendered to markdown for EXPERIMENTS.md.

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// Render for the terminal.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = format!("== {} ==\n", self.title);
        let line = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = w[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(w.iter().sum::<usize>() + 2 * (w.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Render as a markdown table (for EXPERIMENTS.md).
    pub fn markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.header.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Format a speedup/slowdown factor compactly.
pub fn fx(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}x")
    } else if x >= 10.0 {
        format!("{x:.1}x")
    } else {
        format!("{x:.2}x")
    }
}

/// Format a ratio as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a time in milliseconds.
pub fn ms(seconds: f64) -> String {
    format!("{:.3} ms", seconds * 1e3)
}

/// Format a count with k/m suffixes like the paper's profiling tables.
pub fn count(x: u64) -> String {
    if x >= 1_000_000 {
        format!("{:.1}m", x as f64 / 1e6)
    } else if x >= 1_000 {
        format!("{:.1}k", x as f64 / 1e3)
    } else {
        x.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("demo"));
        assert!(r.contains("long-header"));
        let md = t.markdown();
        assert!(md.starts_with("### demo"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fx(2.345), "2.35x");
        assert_eq!(fx(23.46), "23.5x");
        assert_eq!(fx(234.5), "234x");
        assert_eq!(pct(0.356), "35.6%");
        assert_eq!(count(403_000_000), "403.0m");
        assert_eq!(count(1_100), "1.1k");
        assert_eq!(count(513), "513");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
