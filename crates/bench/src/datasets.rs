//! The evaluation datasets at their paper parameters (scaled where the
//! paper's full size exceeds software-simulator throughput; the scale knob
//! is the `NPAR_SCALE` environment variable, `1.0` = paper size).

use npar_graph::{citeseer_like, uniform_random, wiki_vote_like, with_random_weights, Csr};
use npar_tree::{Tree, TreeGen};

/// Deterministic master seed for every dataset.
pub const SEED: u64 = 20150901; // ICPP'15

/// Scale factor for the large datasets: `NPAR_SCALE=1.0` reproduces the
/// paper's full sizes; the default `0.14` targets minutes-scale sweeps on
/// the software simulator (documented in DESIGN.md §1).
pub fn scale() -> f64 {
    std::env::var("NPAR_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(0.14)
        .clamp(0.001, 1.0)
}

/// CiteSeer-like citation network (paper: 434 k nodes, ~16 M edges,
/// outdegree 1–1188, mean 73.9) at the current scale, weighted for SSSP.
pub fn citeseer() -> Csr {
    let n = ((434_000.0 * scale()) as usize).max(1000);
    let g = citeseer_like(n, SEED);
    with_random_weights(&g, 10, SEED + 1)
}

/// Unweighted CiteSeer-like network (PageRank, SpMV structure).
pub fn citeseer_unweighted() -> Csr {
    let n = ((434_000.0 * scale()) as usize).max(1000);
    citeseer_like(n, SEED)
}

/// Wiki-Vote-like network at full published scale (it is small).
pub fn wiki_vote() -> Csr {
    wiki_vote_like(SEED + 2)
}

/// Figure 9 random graph: `n` nodes, outdegree uniform in
/// `[range.0, range.1]`.
pub fn fig9_graph(n: usize, range: (u32, u32)) -> Csr {
    uniform_random(n, range.0, range.1, SEED + u64::from(range.1))
}

/// Figure 7/8 synthetic tree. The paper uses depth 4; outdegree 512 at
/// depth 4 is ~134 M nodes, beyond a software simulator, so that one point
/// shrinks to depth 3 (the paper reports depth has no significant effect —
/// Section III.C). Up to outdegree 256 the depth-4 trees match the paper
/// exactly (e.g. the 50.4 M flat atomics of Figure 7(c)).
pub fn fig78_tree(outdegree: u32, sparsity: u32) -> Tree {
    let depth = if outdegree > 256 { 3 } else { 4 };
    TreeGen {
        depth,
        outdegree,
        sparsity,
        seed: SEED + 3,
    }
    .generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_is_fractional() {
        // Cannot assert the env var, but the parser must clamp.
        assert!(scale() > 0.0 && scale() <= 1.0);
    }

    #[test]
    fn fig78_tree_depth_rule() {
        assert_eq!(fig78_tree(32, 0).num_levels(), 4);
        assert_eq!(fig78_tree(128, 0).num_levels(), 4);
        assert_eq!(fig78_tree(512, 0).num_levels(), 3);
    }

    #[test]
    fn sparse_trees_do_not_collapse() {
        let t = fig78_tree(512, 4);
        assert!(t.num_nodes() > 1000, "nodes {}", t.num_nodes());
    }
}
