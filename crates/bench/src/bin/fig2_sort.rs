//! Figure 2: execution time of the sort implementations (Simple QuickSort
//! and Advanced QuickSort via dynamic parallelism vs flat MergeSort) on
//! uniform random arrays from 300 k to 2 M elements. The paper's finding:
//! Advanced beats Simple, and the non-recursive MergeSort beats both.

use npar_apps::sort::{sort_gpu, SortAlgo, SortParams};
use npar_bench::{datasets, results, runner, table};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    elements: usize,
    algo: String,
    seconds: f64,
    nested_launches: u64,
}

fn main() {
    runner::init();
    // Paper sizes 300k..2M, scaled with the rest of the harness.
    let scale = datasets::scale().max(0.1);
    let sizes: Vec<usize> = [300_000f64, 700_000.0, 1_200_000.0, 2_000_000.0]
        .iter()
        .map(|&s| (s * scale) as usize)
        .collect();

    let mut jobs = Vec::new();
    for &n in &sizes {
        for algo in [
            SortAlgo::QuickSimple,
            SortAlgo::QuickAdvanced,
            SortAlgo::MergeFlat,
        ] {
            jobs.push((n, algo));
        }
    }
    let rows: Vec<Row> = runner::parallel_map(jobs, |(n, algo)| {
        runner::with_big_stack(move || {
            let mut rng = ChaCha8Rng::seed_from_u64(datasets::SEED + n as u64);
            let data: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
            let mut gpu = runner::gpu();
            let r = sort_gpu(&mut gpu, &data, algo, &SortParams::default());
            runner::export_profile(&mut gpu, &format!("fig2_{}_{n}", algo.label()));
            let mut sorted = data;
            sorted.sort_unstable();
            assert_eq!(r.data, sorted, "{} mis-sorted", algo.label());
            Row {
                elements: n,
                algo: algo.label().to_string(),
                seconds: r.report.seconds,
                nested_launches: r.report.device_launches,
            }
        })
    });

    let mut t = table::Table::new(
        "Figure 2 — sort execution time (uniform random u32)",
        &[
            "elements",
            "simple-quicksort",
            "advanced-quicksort",
            "mergesort",
        ],
    );
    for &n in &sizes {
        let cell = |name: &str| {
            rows.iter()
                .find(|r| r.elements == n && r.algo == name)
                .map(|r| table::ms(r.seconds))
                .unwrap_or_default()
        };
        t.row(vec![
            table::count(n as u64),
            cell("simple-quicksort"),
            cell("advanced-quicksort"),
            cell("mergesort"),
        ]);
    }
    results::save("fig2_sort", &[t], &rows);
}
