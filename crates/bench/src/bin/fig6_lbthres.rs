//! Figure 6: BC (Wiki-Vote), PageRank and SpMV (CiteSeer) — speedup of the
//! load-balancing templates over the thread-mapped baseline across
//! lbTHRES settings. dpar-naive is omitted from the chart like in the
//! paper (it is significantly slower throughout).

use npar_apps::{bc, pagerank, spmv};
use npar_bench::{datasets, results, runner, table};
use npar_core::{LoopParams, LoopTemplate};
use npar_graph::Csr;
use serde::Serialize;

const LB_VALUES: [usize; 5] = [32, 64, 128, 256, 1024];
const TEMPLATES: [LoopTemplate; 4] = [
    LoopTemplate::DualQueue,
    LoopTemplate::DbufShared,
    LoopTemplate::DbufGlobal,
    LoopTemplate::DparOpt,
];

#[derive(Serialize)]
struct Row {
    app: String,
    template: String,
    lb_thres: usize,
    seconds: f64,
    speedup: f64,
}

fn sweep(
    app: &str,
    g: Csr,
    run: impl Fn(&Csr, LoopTemplate, &LoopParams) -> f64 + Send + Sync,
) -> Vec<Row> {
    let base = run(&g, LoopTemplate::ThreadMapped, &LoopParams::default());
    let mut jobs = Vec::new();
    for t in TEMPLATES {
        for lb in LB_VALUES {
            jobs.push((t, lb));
        }
    }
    runner::parallel_map(jobs, move |(template, lb)| {
        let seconds = run(&g, template, &LoopParams::with_lb_thres(lb));
        Row {
            app: app.to_string(),
            template: template.to_string(),
            lb_thres: lb,
            seconds,
            speedup: base / seconds,
        }
    })
}

fn to_table(title: &str, rows: &[Row]) -> table::Table {
    let mut t = table::Table::new(
        title,
        &[
            "lbTHRES",
            "dual-queue",
            "dbuf-shared",
            "dbuf-global",
            "dpar-opt",
        ],
    );
    for lb in LB_VALUES {
        let cell = |name: &str| {
            rows.iter()
                .find(|r| r.lb_thres == lb && r.template == name)
                .map(|r| table::fx(r.speedup))
                .unwrap_or_default()
        };
        t.row(vec![
            lb.to_string(),
            cell("dual-queue"),
            cell("dbuf-shared"),
            cell("dbuf-global"),
            cell("dpar-opt"),
        ]);
    }
    t
}

fn main() {
    runner::init();
    let mut all_rows = Vec::new();
    let mut tables = Vec::new();

    // (a) BC on Wiki-Vote.
    {
        let g = datasets::wiki_vote();
        let sources = bc::sample_sources(&g, 8);
        let rows = sweep("bc", g, move |g, template, params| {
            let mut gpu = runner::gpu();
            bc::bc_gpu(&mut gpu, g, &sources, template, params)
                .report
                .seconds
        });
        tables.push(to_table(
            "Figure 6(a) — BC speedup vs lbTHRES (Wiki-Vote)",
            &rows,
        ));
        all_rows.extend(rows);
    }

    // (b) PageRank on CiteSeer.
    {
        let g = datasets::citeseer_unweighted();
        let rows = sweep("pagerank", g, |g, template, params| {
            let mut gpu = runner::gpu();
            pagerank::pagerank_gpu(&mut gpu, g, 5, template, params)
                .report
                .seconds
        });
        tables.push(to_table(
            "Figure 6(b) — PageRank speedup vs lbTHRES (CiteSeer)",
            &rows,
        ));
        all_rows.extend(rows);
    }

    // (c) SpMV on CiteSeer.
    {
        let g = datasets::citeseer();
        let x: Vec<f32> = (0..g.num_nodes()).map(|i| (i % 13) as f32 * 0.25).collect();
        let rows = sweep("spmv", g, move |g, template, params| {
            let mut gpu = runner::gpu();
            spmv::spmv_gpu(&mut gpu, g, &x, template, params)
                .report
                .seconds
        });
        tables.push(to_table(
            "Figure 6(c) — SpMV speedup vs lbTHRES (CiteSeer)",
            &rows,
        ));
        all_rows.extend(rows);
    }

    results::save("fig6_lbthres", &tables, &all_rows);

    if runner::analyze_enabled() {
        // Probe each app's thread-mapped baseline and print the advisor's
        // template pick next to the measured best of the lbTHRES sweep.
        type Probe = Box<dyn FnOnce(&mut npar_sim::Gpu)>;
        let probes: [(&str, Probe); 3] = [
            ("bc", {
                let g = datasets::wiki_vote();
                let sources = bc::sample_sources(&g, 8);
                Box::new(move |gpu| {
                    bc::bc_gpu(
                        gpu,
                        &g,
                        &sources,
                        LoopTemplate::ThreadMapped,
                        &LoopParams::default(),
                    );
                })
            }),
            ("pagerank", {
                let g = datasets::citeseer_unweighted();
                Box::new(move |gpu| {
                    pagerank::pagerank_gpu(
                        gpu,
                        &g,
                        5,
                        LoopTemplate::ThreadMapped,
                        &LoopParams::default(),
                    );
                })
            }),
            ("spmv", {
                let g = datasets::citeseer();
                let x: Vec<f32> = (0..g.num_nodes()).map(|i| (i % 13) as f32 * 0.25).collect();
                Box::new(move |gpu| {
                    spmv::spmv_gpu(
                        gpu,
                        &g,
                        &x,
                        LoopTemplate::ThreadMapped,
                        &LoopParams::default(),
                    );
                })
            }),
        ];
        for (app, probe) in probes {
            let analysis = {
                let mut gpu = runner::gpu();
                probe(&mut gpu);
                gpu.analysis()
            };
            if analysis.is_empty() {
                continue;
            }
            println!("\nnpar-analyze [fig6 {app} thread-mapped probe]\n{analysis}");
            let best = all_rows
                .iter()
                .filter(|r| r.app == app)
                .max_by(|a, b| a.speedup.total_cmp(&b.speedup));
            let (measured, best_speedup) = match best {
                Some(b) if b.speedup > 1.0 => (b.template.as_str(), b.speedup),
                _ => ("thread-mapped", 1.0),
            };
            // Compare on the hot kernel (most total probe work), not on
            // whichever helper ties on block count.
            if let Some(k) = analysis
                .kernels
                .iter()
                .max_by_key(|k| u64::from(k.lane_ops_max) * k.blocks)
            {
                let advice = k.advise();
                let verdict = if advice.template == measured {
                    "agree"
                } else {
                    "DISAGREE"
                };
                println!(
                    "advisor on `{}`: {} | measured best: {} ({:.2}x) -> {}",
                    k.kernel, advice.template, measured, best_speedup, verdict
                );
            }
        }
    }
}
